"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` falls back to the legacy ``setup.py develop`` path
here (the sandbox has setuptools but no wheel, so PEP-660 editable builds
cannot produce a wheel). All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
