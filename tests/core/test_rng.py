"""Unit tests for RNG handling."""

import numpy as np
import pytest

from repro.core import ensure_rng, spawn_rngs
from repro.core.exceptions import ValidationError


class TestEnsureRng:
    def test_none_gives_fresh_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_reproducible(self):
        a = ensure_rng(42).integers(0, 100, 10)
        b = ensure_rng(42).integers(0, 100, 10)
        np.testing.assert_array_equal(a, b)

    def test_generator_passed_through_shares_state(self):
        rng = np.random.default_rng(0)
        assert ensure_rng(rng) is rng

    def test_invalid_seed_rejected(self):
        with pytest.raises(ValidationError):
            ensure_rng("not a seed")


class TestSpawnRngs:
    def test_spawn_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_streams_are_independent(self):
        streams = spawn_rngs(7, 3)
        draws = [s.integers(0, 10**9) for s in streams]
        assert len(set(draws)) == 3

    def test_spawn_reproducible(self):
        a = [s.integers(0, 10**9) for s in spawn_rngs(9, 4)]
        b = [s.integers(0, 10**9) for s in spawn_rngs(9, 4)]
        assert a == b

    def test_negative_count_rejected(self):
        with pytest.raises(ValidationError):
            spawn_rngs(0, -1)
