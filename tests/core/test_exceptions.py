"""Unit tests for the exception hierarchy contracts."""

import pytest

from repro.core.exceptions import (
    BudgetExhaustedError,
    DataError,
    NotFittedError,
    ReproError,
    SchemaError,
    ValidationError,
)


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (ValidationError, SchemaError, DataError, NotFittedError,
                    BudgetExhaustedError):
            assert issubclass(exc, ReproError)

    def test_validation_error_is_value_error(self):
        """Callers using stdlib idioms still catch our errors."""
        assert issubclass(ValidationError, ValueError)

    def test_schema_error_is_key_error(self):
        assert issubclass(SchemaError, KeyError)

    def test_not_fitted_is_runtime_error(self):
        assert issubclass(NotFittedError, RuntimeError)

    def test_single_except_clause_catches_everything(self):
        with pytest.raises(ReproError):
            raise SchemaError("no such column")
