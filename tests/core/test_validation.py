"""Unit tests for the shared validation helpers."""

import numpy as np
import pytest

from repro.core import (
    check_array,
    check_consistent_length,
    check_fraction,
    check_positive_int,
    check_X_y,
)
from repro.core.exceptions import ValidationError


class TestCheckArray:
    def test_coerces_lists(self):
        arr = check_array([[1, 2], [3, 4]])
        assert arr.dtype.kind == "f"
        assert arr.shape == (2, 2)

    def test_wrong_ndim_rejected(self):
        with pytest.raises(ValidationError):
            check_array([1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            check_array(np.empty((0, 3)))

    def test_nan_rejected_by_default(self):
        with pytest.raises(ValidationError):
            check_array([[np.nan]])

    def test_nan_allowed_when_requested(self):
        arr = check_array([[np.nan, 1.0]], allow_nan=True)
        assert np.isnan(arr[0, 0])

    def test_inf_always_rejected(self):
        with pytest.raises(ValidationError):
            check_array([[np.inf]], allow_nan=True)


class TestCheckXy:
    def test_lengths_must_match(self):
        with pytest.raises(ValidationError):
            check_X_y([[1.0], [2.0]], [0])

    def test_y_must_be_1d(self):
        with pytest.raises(ValidationError):
            check_X_y([[1.0]], [[0]])


class TestScalarChecks:
    def test_consistent_length(self):
        assert check_consistent_length([1, 2], np.array([3, 4]), None) == 2
        with pytest.raises(ValidationError):
            check_consistent_length([1], [1, 2])

    def test_fraction_bounds(self):
        assert check_fraction(0.5) == 0.5
        assert check_fraction(0.0) == 0.0
        with pytest.raises(ValidationError):
            check_fraction(1.5)
        with pytest.raises(ValidationError):
            check_fraction(0.0, inclusive_low=False)

    def test_positive_int(self):
        assert check_positive_int(3) == 3
        with pytest.raises(ValidationError):
            check_positive_int(0)
        with pytest.raises(ValidationError):
            check_positive_int(2.5)
        with pytest.raises(ValidationError):
            check_positive_int(True)
