"""Unit tests for approximate Newton-step unlearning."""

import numpy as np
import pytest

from repro.core.exceptions import NotFittedError, ValidationError
from repro.datasets import make_blobs
from repro.errors import inject_label_errors_array
from repro.unlearning import InfluenceUnlearner


@pytest.fixture(scope="module")
def data():
    X, y = make_blobs(150, n_features=3, centers=2, cluster_std=1.2, seed=4)
    return X[:110], y[:110], X[110:], y[110:]


class TestInfluenceUnlearner:
    def test_fit_and_predict(self, data):
        X, y, X_test, y_test = data
        model = InfluenceUnlearner().fit(X, y)
        assert model.score(X_test, y_test) >= 0.8

    def test_unlearning_tracks_exact_retraining(self, data):
        X, y, _, _ = data
        model = InfluenceUnlearner().fit(X, y)
        model.unlearn(np.arange(5))
        fidelity = model.fidelity(y)
        assert fidelity["prediction_agreement"] >= 0.95
        assert model.n_alive == len(X) - 5

    def test_unlearning_harmful_points_improves_accuracy(self, data):
        """Debug-then-forget: deleting flipped-label points via the
        unlearner should recover most of the damage."""
        X, y, X_test, y_test = data
        y_dirty, flipped = inject_label_errors_array(y, fraction=0.2, seed=5)
        dirty_model = InfluenceUnlearner().fit(X, y_dirty)
        acc_dirty = dirty_model.score(X_test, y_test)
        dirty_model.unlearn(flipped)
        acc_forgotten = dirty_model.score(X_test, y_test)
        assert acc_forgotten >= acc_dirty

    def test_repeated_unlearn_is_noop(self, data):
        X, y, _, _ = data
        model = InfluenceUnlearner().fit(X, y)
        model.unlearn([3])
        theta = model.theta_.copy()
        model.unlearn([3])
        np.testing.assert_array_equal(model.theta_, theta)

    def test_out_of_range_rejected(self, data):
        X, y, _, _ = data
        model = InfluenceUnlearner().fit(X, y)
        with pytest.raises(ValidationError):
            model.unlearn([10**6])

    def test_unfitted_rejected(self):
        with pytest.raises(NotFittedError):
            InfluenceUnlearner().unlearn([0])
