"""Unit tests for exact sharded unlearning."""

import numpy as np
import pytest

from repro.core.exceptions import NotFittedError, ValidationError
from repro.datasets import make_blobs
from repro.ml import KNeighborsClassifier, LogisticRegression
from repro.unlearning import ShardedUnlearner


@pytest.fixture(scope="module")
def data():
    X, y = make_blobs(160, n_features=3, centers=2, cluster_std=1.1, seed=2)
    return X[:120], y[:120], X[120:], y[120:]


class TestShardedUnlearner:
    def test_ensemble_learns(self, data):
        X, y, X_test, y_test = data
        model = ShardedUnlearner(LogisticRegression(max_iter=60),
                                 n_shards=4, seed=0).fit(X, y)
        assert model.score(X_test, y_test) >= 0.8

    def test_unlearn_retrains_only_touched_shards(self, data):
        X, y, _, _ = data
        model = ShardedUnlearner(KNeighborsClassifier(3), n_shards=5,
                                 seed=0).fit(X, y)
        trainings_after_fit = model.retrain_counter_
        # All deleted points in one shard -> exactly one retrain.
        shard0_members = np.flatnonzero(model._shard_of == 0)[:3]
        model.unlearn(shard0_members)
        assert model.retrain_counter_ == trainings_after_fit + 1

    def test_exactness_matches_from_scratch(self, data):
        """Post-deletion ensemble must equal training from scratch on the
        remaining rows with the same shard assignment."""
        X, y, X_test, _ = data
        model = ShardedUnlearner(LogisticRegression(max_iter=80),
                                 n_shards=4, seed=0).fit(X, y)
        deleted = np.array([0, 7, 42, 99])
        model.unlearn(deleted)

        scratch = ShardedUnlearner(LogisticRegression(max_iter=80),
                                   n_shards=4, seed=0).fit(X, y)
        scratch._alive[deleted] = False
        for shard in range(scratch.n_shards):
            scratch._train_shard(shard)
        np.testing.assert_array_equal(model.predict(X_test),
                                      scratch.predict(X_test))

    def test_unlearn_idempotent(self, data):
        X, y, _, _ = data
        model = ShardedUnlearner(KNeighborsClassifier(3), n_shards=4,
                                 seed=0).fit(X, y)
        model.unlearn([5])
        count = model.retrain_counter_
        model.unlearn([5])  # already gone: no retraining
        assert model.retrain_counter_ == count
        assert model.n_alive == len(X) - 1

    def test_out_of_range_rejected(self, data):
        X, y, _, _ = data
        model = ShardedUnlearner(KNeighborsClassifier(3), n_shards=4,
                                 seed=0).fit(X, y)
        with pytest.raises(ValidationError):
            model.unlearn([len(X) + 5])

    def test_unfitted_rejected(self):
        with pytest.raises(NotFittedError):
            ShardedUnlearner(KNeighborsClassifier(3)).unlearn([0])

    def test_degenerate_shard_abstains(self):
        """A shard reduced to one class must abstain, not crash."""
        X = np.vstack([np.zeros((6, 2)), np.ones((6, 2)) * 5])
        y = np.array([0] * 6 + [1] * 6)
        model = ShardedUnlearner(LogisticRegression(max_iter=40),
                                 n_shards=2, seed=3).fit(X, y)
        # Delete every class-1 member of shard 0.
        victims = np.flatnonzero((model._shard_of == 0) & (y == 1))
        model.unlearn(victims)
        predictions = model.predict(X)  # still works via other shards
        assert len(predictions) == len(X)


class TestCheckpointResume:
    def _unlearner(self, **kwargs):
        return ShardedUnlearner(LogisticRegression(max_iter=60),
                                n_shards=4, seed=2, **kwargs)

    def test_resume_rebuilds_identical_ensemble(self, data, tmp_path):
        X, y, X_test, _ = data
        ref = self._unlearner()
        ref.fit(X, y).unlearn([1, 5]).unlearn([9, 17])
        logged = self._unlearner(checkpoint=tmp_path)
        logged.fit(X, y).unlearn([1, 5]).unlearn([9, 17])

        resumed = self._unlearner(resume_from=tmp_path)
        resumed.fit(X, y)
        np.testing.assert_array_equal(resumed.predict(X_test),
                                      ref.predict(X_test))
        assert resumed.n_alive == ref.n_alive
        assert resumed.retrain_counter_ == ref.retrain_counter_

    def test_resume_then_continue_unlearning(self, data, tmp_path):
        X, y, X_test, _ = data
        ref = self._unlearner()
        ref.fit(X, y).unlearn([1, 5]).unlearn([12])
        logged = self._unlearner(checkpoint=tmp_path)
        logged.fit(X, y).unlearn([1, 5])
        resumed = self._unlearner(resume_from=tmp_path,
                                  checkpoint=tmp_path)
        resumed.fit(X, y)
        resumed.unlearn([12])
        np.testing.assert_array_equal(resumed.predict(X_test),
                                      ref.predict(X_test))
        assert resumed.n_alive == ref.n_alive

    def test_identity_mismatch_rejected(self, data, tmp_path):
        X, y, _, _ = data
        self._unlearner(checkpoint=tmp_path).fit(X, y)
        other = ShardedUnlearner(LogisticRegression(max_iter=60),
                                 n_shards=5, seed=2, resume_from=tmp_path)
        with pytest.raises(ValidationError):
            other.fit(X, y)

    def test_checkpoint_requires_integer_seed(self, tmp_path):
        with pytest.raises(ValidationError, match="integer seed"):
            ShardedUnlearner(LogisticRegression(), seed=None,
                             checkpoint=tmp_path)
