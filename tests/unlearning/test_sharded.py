"""Unit tests for exact sharded unlearning."""

import numpy as np
import pytest

from repro.core.exceptions import NotFittedError, ValidationError
from repro.datasets import make_blobs
from repro.ml import KNeighborsClassifier, LogisticRegression
from repro.unlearning import ShardedUnlearner


@pytest.fixture(scope="module")
def data():
    X, y = make_blobs(160, n_features=3, centers=2, cluster_std=1.1, seed=2)
    return X[:120], y[:120], X[120:], y[120:]


class TestShardedUnlearner:
    def test_ensemble_learns(self, data):
        X, y, X_test, y_test = data
        model = ShardedUnlearner(LogisticRegression(max_iter=60),
                                 n_shards=4, seed=0).fit(X, y)
        assert model.score(X_test, y_test) >= 0.8

    def test_unlearn_retrains_only_touched_shards(self, data):
        X, y, _, _ = data
        model = ShardedUnlearner(KNeighborsClassifier(3), n_shards=5,
                                 seed=0).fit(X, y)
        trainings_after_fit = model.retrain_counter_
        # All deleted points in one shard -> exactly one retrain.
        shard0_members = np.flatnonzero(model._shard_of == 0)[:3]
        model.unlearn(shard0_members)
        assert model.retrain_counter_ == trainings_after_fit + 1

    def test_exactness_matches_from_scratch(self, data):
        """Post-deletion ensemble must equal training from scratch on the
        remaining rows with the same shard assignment."""
        X, y, X_test, _ = data
        model = ShardedUnlearner(LogisticRegression(max_iter=80),
                                 n_shards=4, seed=0).fit(X, y)
        deleted = np.array([0, 7, 42, 99])
        model.unlearn(deleted)

        scratch = ShardedUnlearner(LogisticRegression(max_iter=80),
                                   n_shards=4, seed=0).fit(X, y)
        scratch._alive[deleted] = False
        for shard in range(scratch.n_shards):
            scratch._train_shard(shard)
        np.testing.assert_array_equal(model.predict(X_test),
                                      scratch.predict(X_test))

    def test_unlearn_idempotent(self, data):
        X, y, _, _ = data
        model = ShardedUnlearner(KNeighborsClassifier(3), n_shards=4,
                                 seed=0).fit(X, y)
        model.unlearn([5])
        count = model.retrain_counter_
        model.unlearn([5])  # already gone: no retraining
        assert model.retrain_counter_ == count
        assert model.n_alive == len(X) - 1

    def test_out_of_range_rejected(self, data):
        X, y, _, _ = data
        model = ShardedUnlearner(KNeighborsClassifier(3), n_shards=4,
                                 seed=0).fit(X, y)
        with pytest.raises(ValidationError):
            model.unlearn([len(X) + 5])

    def test_unfitted_rejected(self):
        with pytest.raises(NotFittedError):
            ShardedUnlearner(KNeighborsClassifier(3)).unlearn([0])

    def test_degenerate_shard_abstains(self):
        """A shard reduced to one class must abstain, not crash."""
        X = np.vstack([np.zeros((6, 2)), np.ones((6, 2)) * 5])
        y = np.array([0] * 6 + [1] * 6)
        model = ShardedUnlearner(LogisticRegression(max_iter=40),
                                 n_shards=2, seed=3).fit(X, y)
        # Delete every class-1 member of shard 0.
        victims = np.flatnonzero((model._shard_of == 0) & (y == 1))
        model.unlearn(victims)
        predictions = model.predict(X)  # still works via other shards
        assert len(predictions) == len(X)
