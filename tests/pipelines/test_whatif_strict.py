"""Regressions for the silent-no-op and no-op-delta what-if bugs.

Two distinct failure modes of the same symptom (``delta == 0.0``):

- a typo'd row id used to be silently ignored by ``drop_rows``, so an
  intervention that touched nothing reported "no effect" — scenarios
  are now strict by default;
- a genuinely empty intervention must report ``delta == 0.0``
  *exactly*, for every estimator — which requires clone/refit to be
  bit-deterministic (including ``seed=<Generator>`` hyperparameters,
  which clones used to share state with).
"""

import numpy as np
import pytest

from repro.core.exceptions import ValidationError
from repro.dataframe import DataFrame
from repro.datasets import make_blobs
from repro.ml import (
    ColumnTransformer,
    DecisionTreeClassifier,
    GaussianNB,
    KNeighborsClassifier,
    LinearRegression,
    LinearSVC,
    LogisticRegression,
    Pipeline,
    RandomForestClassifier,
    StandardScaler,
    clone,
)
from repro.pipelines import DataPipeline, WhatIfAnalysis, source

N_FEATURES = 4


def _frame(X, y):
    data = {f"f{j}": X[:, j] for j in range(X.shape[1])}
    data["label"] = y
    return DataFrame(data)


@pytest.fixture(scope="module")
def blob_world():
    X, y = make_blobs(140, n_features=N_FEATURES, centers=2, seed=7)
    return {"train": _frame(X[:100], y[:100]),
            "valid": _frame(X[100:], y[100:])}


def _plan():
    encoder = ColumnTransformer([
        ("num", StandardScaler(), [f"f{j}" for j in range(N_FEATURES)]),
    ])
    return source("train_df").encode(encoder, label="label")


def _analysis(blob_world, model, metric=None):
    kwargs = {} if metric is None else {"metric": metric}
    return WhatIfAnalysis(DataPipeline(_plan()), {"train_df": blob_world["train"]},
                          model, blob_world["valid"], **kwargs)


class TestStrictScenarios:
    def test_typoed_drop_ids_raise(self, blob_world):
        analysis = _analysis(blob_world, LogisticRegression(max_iter=30))
        bogus = int(blob_world["train"].row_ids.max()) + 999
        with pytest.raises(ValidationError) as exc:
            analysis.drop_rows_scenario("train_df", [bogus])
        assert str(bogus) in str(exc.value)

    def test_mixed_known_and_unknown_ids_raise(self, blob_world):
        analysis = _analysis(blob_world, LogisticRegression(max_iter=30))
        known = blob_world["train"].row_ids[:2].tolist()
        with pytest.raises(ValidationError):
            analysis.drop_rows_scenario("train_df", known + [10**9])

    def test_non_strict_drop_keeps_old_tolerance(self, blob_world):
        analysis = _analysis(blob_world, LogisticRegression(max_iter=30))
        outcome = analysis.drop_rows_scenario("train_df", [10**9],
                                              strict=False)
        assert outcome["delta"] == 0.0  # nothing dropped, honest no-op

    def test_typoed_patch_ids_raise(self, blob_world):
        analysis = _analysis(blob_world, LogisticRegression(max_iter=30))
        with pytest.raises(ValidationError):
            analysis.patch_cells_scenario("train_df", [10**9], "f0", [1.0])

    def test_non_strict_patch_skips_unknown_ids(self, blob_world):
        analysis = _analysis(blob_world, LogisticRegression(max_iter=30))
        known = int(blob_world["train"].row_ids[0])
        outcome = analysis.patch_cells_scenario(
            "train_df", [known, 10**9], "f0", [123.0, 456.0], strict=False)
        assert "delta" in outcome


ESTIMATORS = [
    LogisticRegression(max_iter=40),
    LinearSVC(max_iter=40),
    KNeighborsClassifier(n_neighbors=3),
    DecisionTreeClassifier(max_depth=4),
    RandomForestClassifier(n_estimators=8, max_depth=4, seed=3),
    GaussianNB(),
    Pipeline([("sc", StandardScaler()),
              ("lr", LogisticRegression(max_iter=40))]),
]


class TestNoOpScenarioIsExact:
    @pytest.mark.parametrize(
        "model", ESTIMATORS, ids=lambda m: type(m).__name__)
    def test_empty_replacements_give_exactly_zero_delta(self, blob_world,
                                                        model):
        analysis = _analysis(blob_world, model)
        outcome = analysis.run_scenario({})
        assert outcome["delta"] == 0.0
        assert outcome["score"].hex() == analysis.baseline_score.hex()

    def test_regressor_with_mse_metric(self, blob_world):
        def neg_mse(y_true, y_pred):
            diff = np.asarray(y_true, dtype=float) - np.asarray(y_pred,
                                                                dtype=float)
            return -float(np.mean(diff * diff))

        analysis = _analysis(blob_world, LinearRegression(), metric=neg_mse)
        assert analysis.run_scenario({})["delta"] == 0.0

    def test_generator_seeded_forest_is_refit_deterministic(self, blob_world):
        model = RandomForestClassifier(n_estimators=8, max_depth=4,
                                       seed=np.random.default_rng(11))
        analysis = _analysis(blob_world, model)
        for _ in range(3):  # every refit must replay the identical stream
            assert analysis.run_scenario({})["delta"] == 0.0


class TestCloneGeneratorIsolation:
    def test_clones_do_not_share_generator_state(self):
        rng = np.random.default_rng(5)
        model = RandomForestClassifier(n_estimators=4, seed=rng)
        a, b = clone(model), clone(model)
        assert a.seed is not rng and b.seed is not rng
        assert a.seed.bit_generator.state == b.seed.bit_generator.state
        X, y = make_blobs(60, n_features=3, centers=2, seed=1)
        preds_a = clone(model).fit(X, y).predict(X)
        preds_b = clone(model).fit(X, y).predict(X)
        np.testing.assert_array_equal(preds_a, preds_b)
