"""Unit tests for pipeline execution."""

import numpy as np
import pytest

from repro.core.exceptions import SchemaError, ValidationError
from repro.dataframe import DataFrame
from repro.ml import ColumnTransformer, StandardScaler
from repro.pipelines import DataPipeline, source


class TestExecution:
    def test_unbound_source_rejected(self):
        pipe = DataPipeline(source("missing"))
        with pytest.raises(ValidationError):
            pipe.run({})

    def test_duplicate_source_names_rejected(self):
        plan = source("t").join(source("t"), on="k")
        with pytest.raises(ValidationError):
            DataPipeline(plan)

    def test_relational_only_plan_returns_frame(self):
        frame = DataFrame({"x": [1, 2, 3]})
        result = DataPipeline(source("t").filter(("x", 2))).run({"t": frame})
        assert len(result.frame) == 1
        assert result.X is None

    def test_filter_with_udf(self):
        frame = DataFrame({"x": [1, 2, 3]})
        plan = source("t").filter(lambda r: r["x"] > 1)
        result = DataPipeline(plan).run({"t": frame})
        assert result.frame["x"].to_list() == [2, 3]

    def test_map_column(self):
        frame = DataFrame({"x": [1, 2]})
        plan = source("t").map_column("y", lambda r: r["x"] * 10)
        result = DataPipeline(plan).run({"t": frame})
        assert result.frame["y"].to_list() == [10, 20]

    def test_project_and_drop(self):
        frame = DataFrame({"x": [1], "y": [2], "z": [3]})
        result = DataPipeline(source("t").project(["x", "y"]).drop("y")).run(
            {"t": frame})
        assert result.frame.columns == ["x"]

    def test_concat(self):
        a = DataFrame({"x": [1]})
        b = DataFrame({"x": [2]})
        plan = source("a").concat(source("b"))
        result = DataPipeline(plan).run({"a": a, "b": b})
        assert result.frame["x"].to_list() == [1, 2]

    def test_fuzzy_join_in_plan(self):
        left = DataFrame({"k": ["Alpha "], "v": [1]})
        right = DataFrame({"k": ["alpha"], "w": [2]})
        plan = source("L").join(source("R"), on="k", fuzzy=True)
        result = DataPipeline(plan).run({"L": left, "R": right})
        assert len(result.frame) == 1

    def test_timings_recorded(self):
        frame = DataFrame({"x": [1]})
        result = DataPipeline(source("t")).run({"t": frame})
        assert len(result.timings) == 1


class TestEncode:
    def test_encode_produces_aligned_arrays(self):
        frame = DataFrame({"a": [1.0, 2.0, 3.0], "label": ["x", "y", "x"]})
        encoder = ColumnTransformer([("n", StandardScaler(), ["a"])])
        plan = source("t").encode(encoder, label="label")
        result = DataPipeline(plan).run({"t": frame})
        assert result.X.shape == (3, 1)
        np.testing.assert_array_equal(result.y, ["x", "y", "x"])

    def test_missing_label_raises(self):
        frame = DataFrame({"a": [1.0]})
        encoder = ColumnTransformer([("n", StandardScaler(), ["a"])])
        plan = source("t").encode(encoder, label="label")
        with pytest.raises(SchemaError):
            DataPipeline(plan).run({"t": frame})

    def test_null_label_raises(self):
        frame = DataFrame({"a": [1.0, 2.0], "label": ["x", None]})
        encoder = ColumnTransformer([("n", StandardScaler(), ["a"])])
        plan = source("t").encode(encoder, label="label")
        with pytest.raises(ValidationError):
            DataPipeline(plan).run({"t": frame})

    def test_two_encode_nodes_rejected(self):
        encoder = ColumnTransformer([("n", StandardScaler(), ["a"])])
        plan = source("t").encode(encoder, label="l").encode(encoder, label="l")
        with pytest.raises(ValidationError):
            DataPipeline(plan)

    def test_apply_runs_fitted_pipeline_on_new_sources(self, hiring_result,
                                                       hiring_sources,
                                                       hiring_data):
        valid_sources = dict(hiring_sources)
        valid_sources["train_df"] = hiring_data["valid"]
        X_valid, y_valid = hiring_result.apply(valid_sources)
        assert X_valid.shape[1] == hiring_result.X.shape[1]
        assert len(X_valid) == len(y_valid) == len(hiring_data["valid"])

    def test_apply_without_label_returns_none_y(self):
        frame = DataFrame({"a": [1.0, 2.0], "label": ["x", "y"]})
        encoder = ColumnTransformer([("n", StandardScaler(), ["a"])])
        plan = source("t").encode(encoder, label="label")
        result = DataPipeline(plan).run({"t": frame})
        X_new, y_new = result.apply({"t": DataFrame({"a": [5.0]})})
        assert y_new is None
        assert X_new.shape == (1, 1)

    def test_trained_model_generalizes_through_pipeline(
            self, hiring_result, hiring_validation, model):
        X_valid, y_valid = hiring_validation
        model.fit(hiring_result.X, hiring_result.y)
        accuracy = float(np.mean(model.predict(X_valid) == y_valid))
        assert accuracy >= 0.6


class TestTrace:
    def test_trace_captures_every_relational_node(self, hiring_plan,
                                                  hiring_sources):
        from repro.pipelines import DataPipeline

        captured = DataPipeline(hiring_plan).trace(hiring_sources)
        descriptions = " ".join(captured)
        assert "Source(train_df)" in descriptions
        assert "Join" in descriptions
        assert "Encode" not in descriptions  # encode is not relational

    def test_trace_frames_shrink_and_grow_as_expected(self, hiring_plan,
                                                      hiring_sources):
        from repro.pipelines import DataPipeline

        captured = DataPipeline(hiring_plan).trace(hiring_sources)
        by_op = {key.split(":", 1)[1]: frame for key, frame in captured.items()}
        n_train = len(hiring_sources["train_df"])
        # Inner joins on complete keys preserve cardinality here.
        joins = [f for key, f in captured.items() if "Join" in key]
        assert all(len(f) == n_train for f in joins)


class TestFuzzyDistanceJoin:
    def test_typo_keys_recovered_in_pipeline(self):
        left = DataFrame({"k": ["berlim", "tokyo"], "v": [1.0, 2.0],
                          "label": ["p", "n"]})
        right = DataFrame({"k": ["berlin", "tokyo"], "w": [10.0, 20.0]})
        plan = source("L").join(source("R"), on="k", fuzzy=True,
                                fuzzy_distance=1)
        result = DataPipeline(plan).run({"L": left, "R": right})
        assert len(result.frame) == 2

    def test_provenance_through_fuzzy_distance_join(self):
        left = DataFrame({"k": ["berlim"], "v": [1.0]})
        right = DataFrame({"k": ["berlin"], "w": [10.0]})
        plan = source("L").join(source("R"), on="k", fuzzy=True,
                                fuzzy_distance=1)
        result = DataPipeline(plan).run({"L": left, "R": right},
                                        provenance=True)
        witness = result.provenance.inputs_of(0)
        assert witness["L"] == frozenset([int(left.row_ids[0])])
        assert witness["R"] == frozenset([int(right.row_ids[0])])
