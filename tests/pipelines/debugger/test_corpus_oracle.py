"""Corpus oracle: every seeded bug isolated to its true stage set.

The acceptance bar from the issue: on the seeded corpus the debugger
must isolate the true root-cause stage set for >= 14/15 pipelines while
evaluating <= 35% of the exhaustive configuration grid.  These tests
hold every entry to the subset-validity bar individually and the
detection bar in aggregate.
"""

import pytest

from repro.observe import Observer
from repro.pipelines.debugger import CORPUS_SEED, load_corpus
from repro.runtime import Runtime

ENTRIES = {entry.name: entry for entry in load_corpus()}


@pytest.fixture(scope="module")
def reports():
    """One debugger run per corpus entry on a shared cached runtime."""
    out = {}
    for name, entry in ENTRIES.items():
        with Runtime(backend="serial", cache=True) as runtime:
            out[name] = entry.debugger(runtime=runtime).run()
    return out


def test_corpus_has_at_least_fifteen_entries():
    assert len(ENTRIES) >= 15
    kinds = {entry.bug_kind for entry in ENTRIES.values()}
    assert {"leakage", "encoder", "order", "hyperparameter", "plan",
            "model", "scaling", "imputation"} <= kinds


@pytest.mark.parametrize("name", sorted(ENTRIES))
def test_every_root_cause_is_a_culprit_subset(name, reports):
    entry, report = ENTRIES[name], reports[name]
    assert report.root_causes, f"{name}: no root cause isolated"
    for cause in report.root_causes:
        assert entry.cause_is_valid(cause.assignment), (
            f"{name}: cause {cause.assignment} blames factors outside "
            f"every culprit {entry.culprits}")


@pytest.mark.parametrize("name", sorted(ENTRIES))
def test_budget_stays_under_35_percent_of_grid(name, reports):
    report = reports[name]
    assert report.configs_evaluated < report.grid_size
    assert report.fraction_of_grid <= 0.35, (
        f"{name}: evaluated {report.configs_evaluated} of "
        f"{report.grid_size} configs")


@pytest.mark.parametrize("name", sorted(ENTRIES))
def test_screen_round_flags_real_failures(name, reports):
    entry, report = ENTRIES[name], reports[name]
    assert report.n_failing > 0
    assert not report.all_failing
    for verdict in report.verdicts:
        assert verdict.failed == (verdict.score < entry.threshold)


def test_detection_rate_meets_the_acceptance_bar(reports):
    detected = []
    for name, entry in ENTRIES.items():
        hits = any(
            set(cause.assignment.items()) <= set(culprit.items())
            for culprit in entry.culprits
            for cause in reports[name].root_causes)
        detected.append(hits)
    assert sum(detected) >= 15, (
        f"only {sum(detected)}/{len(detected)} culprits detected")


@pytest.mark.parametrize("name", sorted(ENTRIES))
def test_remediations_point_at_observed_passing_levels(name, reports):
    entry, report = ENTRIES[name], reports[name]
    for cause in report.root_causes:
        assert len(cause.remediations) == len(cause.assignment)
        for remedy in cause.remediations:
            assert remedy.action in {"swap", "re-range", "reorder"}
            assert remedy.from_level == cause.assignment[remedy.factor]
            if remedy.to_level is not None:
                assert remedy.to_level != remedy.from_level
                assert remedy.to_level in entry.space[remedy.factor].levels
                assert remedy.observed_score >= entry.threshold


def test_report_summary_and_jsonable_round_trip(reports):
    report = reports["stumps-on-band"]
    text = report.summary()
    assert "stumps-on-band" in text
    assert "model__max_depth" in text
    payload = report.jsonable()
    assert payload["grid_size"] == report.grid_size
    assert payload["root_causes"][0]["assignment"] \
        == report.root_causes[0].assignment


def test_observer_counters_and_runlog_events():
    observer = Observer(run_id="debugger-oracle")
    # join-typo-keys: many failing screens minimize against the same
    # neighbour, so ddmin re-proposes configurations and the
    # fingerprint cache demonstrably absorbs the repeats
    entry = ENTRIES["join-typo-keys"]
    with Runtime(backend="serial", cache=True) as runtime:
        report = entry.debugger(runtime=runtime, observer=observer).run()
    counters = observer.metrics.snapshot()
    assert counters["debugger.rounds"] == report.rounds
    assert counters["debugger.configs_evaluated"] == report.configs_evaluated
    assert counters["debugger.configs_pruned"] \
        == report.grid_size - report.configs_evaluated
    assert counters["debugger.cache_hits"] > 0
    kinds = [event["kind"] for event in observer.runlog.events]
    assert kinds.count("debugger.round") == report.rounds
    assert kinds.count("debugger.report") == 1
    report_event = [e for e in observer.runlog.events
                    if e["kind"] == "debugger.report"][0]
    assert report_event["grid_size"] == report.grid_size
    assert report_event["n_root_causes"] == len(report.root_causes)


def test_entries_are_deterministic_across_loads():
    first = ENTRIES["knn-all-neighbors"]
    second = {e.name: e for e in load_corpus()}["knn-all-neighbors"]
    assert first.space.fingerprint() == second.space.fingerprint()
    assert (first.shared["X_train"] == second.shared["X_train"]).all()
    assert CORPUS_SEED == 1729
