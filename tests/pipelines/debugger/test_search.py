"""ddmin minimization: correctness, 1-minimality, batched rounds."""

import pytest

from repro.core.exceptions import ValidationError
from repro.pipelines.debugger import (
    ConfigurationSpace,
    Factor,
    minimize_failure,
)


def _space(n_factors):
    return ConfigurationSpace([
        Factor(f"f{i}", {"good": 0, "bad": 1}) for i in range(n_factors)])


class _Oracle:
    """Fails iff every factor in ``bug`` is set to its failing level.

    Records each evaluate_batch call so tests can assert the probes are
    batched rather than issued one configuration at a time.
    """

    def __init__(self, bug):
        self.bug = bug
        self.batches = []

    def evaluate_batch(self, configs):
        self.batches.append(len(configs))
        return [0.0 if all(c[name] == "bad" for name in self.bug) else 1.0
                for c in configs]

    @staticmethod
    def is_failure(score):
        return score < 0.5


def _run(n_factors, bug, failing_names=None):
    space = _space(n_factors)
    failing_names = set(space.factor_names if failing_names is None
                        else failing_names)
    failing = {n: "bad" if n in failing_names else "good"
               for n in space.factor_names}
    passing = {n: "good" for n in space.factor_names}
    oracle = _Oracle(bug)
    minimal = minimize_failure(space, failing, passing,
                               oracle.evaluate_batch, oracle.is_failure)
    return space, oracle, minimal


def test_isolates_single_factor_bug():
    _, _, minimal = _run(6, bug={"f3"})
    assert minimal == {"f3": "bad"}


def test_isolates_interaction_bug():
    _, _, minimal = _run(8, bug={"f1", "f5"})
    assert minimal == {"f1": "bad", "f5": "bad"}


def test_result_is_one_minimal():
    space, oracle, minimal = _run(7, bug={"f0", "f4", "f6"})
    assert set(minimal) == {"f0", "f4", "f6"}
    passing = {n: "good" for n in space.factor_names}
    # the full assignment fails; dropping any single entry passes
    full = dict(passing, **minimal)
    assert oracle.is_failure(oracle.evaluate_batch([full])[0])
    for name in minimal:
        probe = dict(full)
        probe[name] = "good"
        assert not oracle.is_failure(oracle.evaluate_batch([probe])[0])


def test_delta_restricted_to_differing_factors():
    # factors already agreeing with the passing reference never show up
    _, _, minimal = _run(6, bug={"f2"}, failing_names={"f2", "f4"})
    assert minimal == {"f2": "bad"}


def test_probes_are_batched_rounds():
    _, oracle, _ = _run(12, bug={"f3", "f7"})
    # every outer ddmin iteration submits its chunk and complement
    # probes as ONE batch, so rounds stay far below total probes
    assert all(batch >= 2 for batch in oracle.batches)
    assert len(oracle.batches) <= 10
    assert sum(oracle.batches) > len(oracle.batches)


def test_identical_configurations_raise():
    space = _space(3)
    config = {n: "good" for n in space.factor_names}
    oracle = _Oracle({"f0"})
    with pytest.raises(ValidationError, match="identical"):
        minimize_failure(space, config, dict(config),
                         oracle.evaluate_batch, oracle.is_failure)


def test_deterministic_minimization():
    runs = [_run(9, bug={"f2", "f6"})[2] for _ in range(3)]
    assert runs[0] == runs[1] == runs[2]
