"""Verdicts are bit-identical across backends, with or without caching.

The debugger's batched rounds go through ``Runtime.map_cached``; every
evaluator and predicate in the corpus is module-level, so the process
backend can pickle the work.  A debug run must produce hex-identical
scores and the same ranked root causes no matter which backend executes
it and whether a fingerprint cache memoizes the probes.
"""

import pytest

from repro.pipelines.debugger import load_corpus
from repro.runtime import Runtime

# one ml-variant entry and one relational-plan entry keep this fast
# while covering both evaluator families
ENTRY_NAMES = ["stumps-on-band", "join-typo-keys"]
ENTRIES = {entry.name: entry for entry in load_corpus()
           if entry.name in ENTRY_NAMES}


def _signature(report):
    """Everything observable about a run, scores down to the bit."""
    return {
        "verdicts": [(tuple(sorted(v.config.items())),
                      float(v.score).hex(), v.failed)
                     for v in report.verdicts],
        "causes": [(tuple(sorted(c.assignment.items())), c.support,
                    float(c.worst_score).hex())
                   for c in report.root_causes],
        "remedies": [[(r.factor, r.action, r.from_level, r.to_level)
                      for r in c.remediations]
                     for c in report.root_causes],
        "evaluated": report.configs_evaluated,
    }


def _run(name, backend, cache):
    with Runtime(backend=backend, cache=cache) as runtime:
        return ENTRIES[name].debugger(runtime=runtime).run()


@pytest.fixture(scope="module")
def references():
    return {name: _signature(_run(name, "serial", True))
            for name in ENTRY_NAMES}


@pytest.mark.parametrize("name", ENTRY_NAMES)
@pytest.mark.parametrize("backend", ["serial", "thread", "process"])
def test_backend_matches_serial_reference(name, backend, references):
    assert _signature(_run(name, backend, True)) == references[name]


@pytest.mark.parametrize("name", ENTRY_NAMES)
def test_uncached_run_matches_cached_reference(name, references):
    assert _signature(_run(name, "serial", False)) == references[name]


@pytest.mark.parametrize("name", ENTRY_NAMES)
def test_repeated_runs_are_identical(name, references):
    assert _signature(_run(name, "serial", True)) == references[name]
