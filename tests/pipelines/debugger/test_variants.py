"""PipelineVariants: declarative slots -> spaces -> concrete Pipelines."""

import numpy as np
import pytest

from repro.core.exceptions import ValidationError
from repro.datasets import make_blobs
from repro.ml import (
    KNeighborsClassifier,
    LogisticRegression,
    MinMaxScaler,
    StandardScaler,
)
from repro.pipelines.debugger import (
    FAILED_SCORE,
    PipelineVariants,
    evaluate_ml_variant,
)


def _variants():
    return (PipelineVariants()
            .step("scale", {"standard": StandardScaler(),
                            "minmax": MinMaxScaler(),
                            "none": None})
            .step("model", {"knn": KNeighborsClassifier(),
                            "logistic": LogisticRegression()})
            .hyper("model", "n_neighbors", {"k-3": 3, "k-5": 5}))


def _data():
    X, y = make_blobs(80, n_features=3, centers=2, seed=3)
    return {"X_train": X[:60], "y_train": y[:60],
            "X_valid": X[60:], "y_valid": y[60:]}


def test_space_spans_declared_slots():
    space = _variants().space()
    assert space.factor_names == ["scale", "model", "model__n_neighbors"]
    assert space.grid_size == 12
    assert space["model__n_neighbors"].kind == "hyperparameter"


def test_build_applies_hyper_only_when_param_exists():
    variants = _variants()
    knn = variants.build({"scale": "standard", "model": "knn",
                          "model__n_neighbors": "k-5"})
    assert knn.steps[-1][1].n_neighbors == 5
    logistic = variants.build({"scale": "standard", "model": "logistic",
                               "model__n_neighbors": "k-5"})
    assert not hasattr(logistic.steps[-1][1], "n_neighbors")


def test_none_alternative_omits_the_step():
    pipeline = _variants().build({"scale": "none", "model": "knn",
                                  "model__n_neighbors": "k-3"})
    assert [name for name, _ in pipeline.steps] == ["model"]


def test_build_clones_prototypes():
    variants = _variants()
    data = _data()
    config = {"scale": "standard", "model": "knn",
              "model__n_neighbors": "k-3"}
    variants.build(config).fit(data["X_train"], data["y_train"])
    # the declared prototype never accumulates fitted state
    fresh = variants.build(config)
    assert not hasattr(fresh.steps[0][1], "mean_")


def test_step_name_cannot_contain_dunder():
    with pytest.raises(ValidationError, match="__"):
        PipelineVariants().step("my__step", {"a": None})


def test_hyper_requires_declared_step():
    with pytest.raises(ValidationError, match="no such step"):
        PipelineVariants().hyper("model", "C", {"c-1": 1.0})


def test_orderings_must_permute_every_step():
    variants = _variants()
    with pytest.raises(ValidationError, match="permute"):
        variants.orderings({"only-model": ("model",)})
    variants.orderings({"scale-first": ("scale", "model"),
                        "model-first": ("model", "scale")})
    config = {"scale": "standard", "model": "knn",
              "model__n_neighbors": "k-3", "order": "model-first"}
    assert [name for name, _ in variants.build(config).steps] \
        == ["model", "scale"]


def test_all_steps_omitted_raises():
    variants = PipelineVariants().step("scale", {"none": None})
    with pytest.raises(ValidationError, match="omits every step"):
        variants.build({"scale": "none"})


def test_evaluate_scores_a_working_variant():
    shared = {"variants": _variants(), **_data()}
    score = evaluate_ml_variant(shared, {"scale": "standard", "model": "knn",
                                         "model__n_neighbors": "k-3"})
    assert 0.0 <= score <= 1.0
    assert score > 0.8


def test_evaluate_maps_crash_to_failed_score():
    variants = (PipelineVariants()
                .step("model", {"knn": KNeighborsClassifier()})
                .hyper("model", "n_neighbors", {"k-huge": 10_000}))
    shared = {"variants": variants, **_data()}
    score = evaluate_ml_variant(shared, {"model": "knn",
                                         "model__n_neighbors": "k-huge"})
    assert score == FAILED_SCORE


def test_evaluate_maps_nan_metric_to_failed_score():
    def nan_metric(y_true, y_pred):
        return float("nan")

    shared = {"variants": _variants(), **_data(), "metric": nan_metric}
    score = evaluate_ml_variant(shared, {"scale": "standard", "model": "knn",
                                         "model__n_neighbors": "k-3"})
    assert score == FAILED_SCORE
