"""Configuration spaces and the strength-2 covering array."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import ValidationError
from repro.pipelines.debugger import (
    ConfigurationSpace,
    Factor,
    pairwise_covering_array,
)


def _space(*level_counts):
    return ConfigurationSpace([
        Factor(f"f{i}", {f"l{j}": j for j in range(count)})
        for i, count in enumerate(level_counts)])


def _covered_pairs(space, rows):
    names = space.factor_names
    covered = set()
    for row in rows:
        for i in range(len(names)):
            for j in range(i + 1, len(names)):
                covered.add(((i, row[names[i]]), (j, row[names[j]])))
    return covered


def _all_pairs(space):
    pairs = set()
    factors = space.factors
    for i in range(len(factors)):
        for j in range(i + 1, len(factors)):
            for la in factors[i].level_names:
                for lb in factors[j].level_names:
                    pairs.add(((i, la), (j, lb)))
    return pairs


class TestFactor:
    def test_rejects_empty_levels(self):
        with pytest.raises(ValidationError, match="level"):
            Factor("f", {})

    def test_rejects_empty_name(self):
        with pytest.raises(ValidationError, match="non-empty"):
            Factor("", {"a": 1})

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValidationError, match="kind"):
            Factor("f", {"a": 1}, kind="knob")


class TestConfigurationSpace:
    def test_rejects_duplicate_factor_names(self):
        with pytest.raises(ValidationError, match="duplicate"):
            ConfigurationSpace([Factor("f", {"a": 1}),
                                Factor("f", {"b": 2})])

    def test_grid_size_and_enumerate(self):
        space = _space(2, 3, 2)
        assert space.grid_size == 12
        grid = list(space.enumerate())
        assert len(grid) == 12
        assert len({space.key(c) for c in grid}) == 12

    def test_validate_flags_missing_and_unknown(self):
        space = _space(2, 2)
        with pytest.raises(ValidationError, match="misses"):
            space.validate({"f0": "l0"})
        with pytest.raises(ValidationError, match="unknown"):
            space.validate({"f0": "l0", "f1": "l1", "f9": "l0"})
        with pytest.raises(ValidationError, match="no level"):
            space.validate({"f0": "l0", "f1": "nope"})

    def test_values_resolves_levels(self):
        space = _space(2, 2)
        assert space.values({"f0": "l1", "f1": "l0"}) == {"f0": 1, "f1": 0}

    def test_fingerprint_tracks_level_values(self):
        a = ConfigurationSpace([Factor("f", {"x": 1, "y": 2})])
        b = ConfigurationSpace([Factor("f", {"x": 1, "y": 3})])
        assert a.fingerprint() != b.fingerprint()
        assert a.fingerprint() == ConfigurationSpace(
            [Factor("f", {"x": 1, "y": 2})]).fingerprint()


class TestCoveringArray:
    def test_single_factor_degenerates_to_levels(self):
        space = _space(3)
        rows = pairwise_covering_array(space)
        assert [r["f0"] for r in rows] == ["l0", "l1", "l2"]

    def test_two_by_two_covers_every_corner(self):
        # The regression case: pure greedy first-wins tie-breaking can
        # starve the (l1, l1) corner pair forever.
        space = _space(2, 2)
        rows = pairwise_covering_array(space)
        assert _covered_pairs(space, rows) == _all_pairs(space)
        assert len(rows) == 4

    def test_strength_two_on_mixed_levels(self):
        space = _space(3, 2, 4, 2, 3)
        rows = pairwise_covering_array(space, seed=5)
        assert _covered_pairs(space, rows) >= _all_pairs(space)
        for row in rows:
            space.validate(row)
        # the whole point: far fewer rows than the 144-config grid
        assert len(rows) < space.grid_size / 3

    def test_deterministic_for_a_seed(self):
        space = _space(3, 3, 2, 2)
        assert (pairwise_covering_array(space, seed=7)
                == pairwise_covering_array(space, seed=7))

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=4),
                    min_size=2, max_size=5),
           st.integers(min_value=0, max_value=2 ** 16))
    def test_strength_two_property(self, level_counts, seed):
        space = _space(*level_counts)
        rows = pairwise_covering_array(space, seed=seed)
        for row in rows:
            space.validate(row)
        assert _covered_pairs(space, rows) >= _all_pairs(space)
        assert len(rows) <= space.grid_size
