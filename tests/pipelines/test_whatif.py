"""Unit tests for what-if analysis with operator caching."""

import numpy as np
import pytest

from repro.core.exceptions import ValidationError
from repro.pipelines import DataPipeline, WhatIfAnalysis


@pytest.fixture()
def analysis(hiring_plan, hiring_sources, hiring_data, model):
    return WhatIfAnalysis(DataPipeline(hiring_plan), hiring_sources, model,
                          hiring_data["valid"], train_source="train_df")


class TestWhatIfAnalysis:
    def test_noop_scenario_matches_baseline(self, analysis, hiring_sources):
        outcome = analysis.run_scenario(
            {"train_df": hiring_sources["train_df"]})
        assert outcome["delta"] == pytest.approx(0.0)

    def test_unknown_source_rejected(self, analysis, hiring_sources):
        with pytest.raises(ValidationError):
            analysis.run_scenario({"bogus": hiring_sources["train_df"]})

    def test_drop_rows_scenario(self, analysis, hiring_sources):
        rows = hiring_sources["train_df"].row_ids[:10]
        outcome = analysis.drop_rows_scenario("train_df", rows)
        assert "score" in outcome and "delta" in outcome

    def test_caching_reuses_untouched_subtrees(self, analysis,
                                               hiring_sources):
        """Changing only the social table must reuse the train-jobs join
        subtree (sources and the first join don't touch social_df)."""
        analysis.run_scenario({"social_df": hiring_sources["social_df"]})
        assert analysis.cache_hits >= 3  # two sources + their join

    def test_scenario_matches_full_rerun(self, hiring_plan, hiring_sources,
                                         hiring_data, model, analysis):
        """Cached re-execution must give the same score as a from-scratch
        run on the modified sources."""
        rows = hiring_sources["train_df"].row_ids[:15]
        cached = analysis.drop_rows_scenario("train_df", rows)

        from repro.pipelines import remove_and_evaluate

        scratch = remove_and_evaluate(
            DataPipeline(hiring_plan), hiring_sources, source="train_df",
            row_ids=rows, model=model, valid_frame=hiring_data["valid"])
        assert cached["score"] == pytest.approx(scratch["after"])

    def test_patch_cells_scenario(self, analysis, hiring_sources):
        rows = hiring_sources["train_df"].row_ids[:3]
        outcome = analysis.patch_cells_scenario(
            "train_df", rows, "employer_rating", [5.0, 5.0, 5.0])
        assert "delta" in outcome
