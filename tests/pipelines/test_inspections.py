"""Unit tests for pipeline inspections."""

import numpy as np
import pytest

from repro.dataframe import DataFrame, concat_rows
from repro.ml import ColumnTransformer, StandardScaler
from repro.pipelines import (
    DataLeakageInspection,
    DataPipeline,
    FilterSelectivityInspection,
    JoinCoverageInspection,
    LabelDistributionInspection,
    MissingnessInspection,
    run_inspections,
    source,
)


def _encode_plan(extra=None):
    encoder = ColumnTransformer([("n", StandardScaler(), ["x"])])
    plan = source("t")
    if extra is not None:
        plan = extra(plan)
    return plan.encode(encoder, label="label")


class TestJoinCoverage:
    def test_complete_join_passes(self):
        left = DataFrame({"k": ["a", "b"], "x": [1.0, 2.0],
                          "label": ["p", "n"]})
        right = DataFrame({"k": ["a", "b"], "w": [1, 2]})
        plan = (source("t").join(source("side"), on="k")
                .encode(ColumnTransformer([("n", StandardScaler(), ["x"])]),
                        label="label"))
        pipe = DataPipeline(plan)
        sources = {"t": left, "side": right}
        result = pipe.run(sources, provenance=True)
        outcome = JoinCoverageInspection().run(pipe, sources, result)
        assert outcome.passed

    def test_lossy_join_flagged(self):
        left = DataFrame({"k": ["a", "b", "c", "d"], "x": [1.0] * 4,
                          "label": ["p", "n", "p", "n"]})
        right = DataFrame({"k": ["a"], "w": [1]})
        plan = (source("t").join(source("side"), on="k")
                .encode(ColumnTransformer([("n", StandardScaler(), ["x"])]),
                        label="label"))
        pipe = DataPipeline(plan)
        sources = {"t": left, "side": right}
        result = pipe.run(sources, provenance=True)
        outcome = JoinCoverageInspection().run(pipe, sources, result)
        assert outcome.severity == "error"
        assert outcome.metrics["worst_coverage"] == pytest.approx(0.25)


class TestFilterSelectivity:
    def test_aggressive_filter_flagged(self):
        frame = DataFrame({"x": [1.0] * 100, "keep": [1] + [0] * 99,
                           "label": ["p", "n"] * 50})
        plan = _encode_plan(lambda p: p.filter(("keep", 1)))
        pipe = DataPipeline(plan)
        result = pipe.run({"t": frame}, provenance=True)
        outcome = FilterSelectivityInspection().run(pipe, {"t": frame}, result)
        assert outcome.severity == "warning"
        assert outcome.metrics["worst_selectivity"] == pytest.approx(0.01)

    def test_mild_filter_passes(self):
        frame = DataFrame({"x": [1.0] * 10, "keep": [1] * 9 + [0],
                           "label": ["p", "n"] * 5})
        plan = _encode_plan(lambda p: p.filter(("keep", 1)))
        pipe = DataPipeline(plan)
        result = pipe.run({"t": frame}, provenance=True)
        assert FilterSelectivityInspection().run(
            pipe, {"t": frame}, result).passed


class TestLabelDistribution:
    def test_balanced_passes(self):
        frame = DataFrame({"x": [1.0] * 10, "label": ["p", "n"] * 5})
        pipe = DataPipeline(_encode_plan())
        result = pipe.run({"t": frame})
        assert LabelDistributionInspection().run(pipe, {"t": frame},
                                                 result).passed

    def test_imbalanced_flagged(self):
        frame = DataFrame({"x": [1.0] * 20,
                           "label": ["p"] * 19 + ["n"]})
        pipe = DataPipeline(_encode_plan())
        result = pipe.run({"t": frame})
        outcome = LabelDistributionInspection().run(pipe, {"t": frame}, result)
        assert outcome.severity == "warning"


class TestMissingness:
    def test_nully_source_flagged(self):
        frame = DataFrame({"x": [1.0, None, None, None],
                           "label": ["p", "n", "p", "n"]})
        pipe = DataPipeline(_encode_plan())
        result = pipe.run({"t": frame})
        outcome = MissingnessInspection(warn_above=0.5).run(
            pipe, {"t": frame}, result)
        assert outcome.severity == "warning"
        assert "t.x" in outcome.findings[0]


class TestDataLeakage:
    def test_overlapping_validation_rows_flagged(self):
        frame = DataFrame({"x": [1.0, 2.0, 3.0, 4.0],
                           "label": ["p", "n", "p", "n"]})
        # Validation frame shares two physical rows with training data.
        valid = frame.take([0, 1])
        pipe = DataPipeline(_encode_plan())
        result = pipe.run({"t": frame}, provenance=True)
        outcome = DataLeakageInspection(valid, train_source="t").run(
            pipe, {"t": frame}, result)
        assert outcome.severity == "error"
        assert outcome.metrics["row_id_overlap"] == 2

    def test_disjoint_validation_passes(self):
        frame = DataFrame({"x": [1.0, 2.0], "label": ["p", "n"]})
        valid = DataFrame({"x": [30.0, 40.0], "label": ["p", "n"]})
        pipe = DataPipeline(_encode_plan())
        result = pipe.run({"t": frame}, provenance=True)
        outcome = DataLeakageInspection(valid, train_source="t").run(
            pipe, {"t": frame}, result)
        assert outcome.passed


class TestRunInspections:
    def test_battery_returns_all_results(self, hiring_plan, hiring_sources,
                                         hiring_result, hiring_data):
        results = run_inspections(
            DataPipeline(hiring_plan), hiring_sources, hiring_result,
            [JoinCoverageInspection(), LabelDistributionInspection(),
             MissingnessInspection(),
             DataLeakageInspection(hiring_data["valid"],
                                   train_source="train_df")])
        assert len(results) == 4
        names = {r.name for r in results}
        assert names == {"join_coverage", "label_distribution",
                         "missingness", "data_leakage"}
