"""Unit tests for plan construction."""

import pytest

from repro.core.exceptions import ValidationError
from repro.pipelines import source
from repro.pipelines.plan import plan_stats


class TestPlanBuilding:
    def test_source_requires_name(self):
        with pytest.raises(ValidationError):
            source("")

    def test_chaining_builds_dag(self):
        plan = source("a").filter(("x", 1)).project(["x"])
        ops = [node.op for node in plan.walk()]
        assert ops == ["source", "filter", "project"]

    def test_join_has_two_inputs(self):
        plan = source("a").join(source("b"), on="k")
        assert len(plan.inputs) == 2

    def test_join_requires_node(self):
        with pytest.raises(ValidationError):
            source("a").join("not a node", on="k")

    def test_walk_deduplicates_shared_subtrees(self):
        shared = source("a").filter(("x", 1))
        plan = shared.join(shared, on="k")
        ids = [node.id for node in plan.walk()]
        assert len(ids) == len(set(ids)) == 3  # source, filter, join

    def test_describe_strings(self):
        assert source("t").describe() == "Source(t)"
        assert source("t").filter(("col", 5)).describe() == "Filter(col == 5)"
        join = source("a").join(source("b"), on="k", fuzzy=True)
        assert join.describe().startswith("FuzzyJoin")
        encode = source("a").encode(None, label="y")
        assert "label='y'" in encode.describe()

    def test_plan_stats(self):
        plan = (source("a").join(source("b"), on="k")
                .filter(("x", 1)).map_column("z", lambda r: 0))
        stats = plan_stats(plan)
        assert stats["n_operators"] == 5
        assert stats["operator_counts"]["source"] == 2
        assert stats["sources"] == ["a", "b"]
        assert stats["depth"] == 3
