"""Unit tests for the distribution-shift inspection."""

import numpy as np
import pytest

from repro.dataframe import DataFrame
from repro.ml import ColumnTransformer, StandardScaler
from repro.pipelines import DataPipeline, DistributionShiftInspection, source


def _pipeline():
    encoder = ColumnTransformer([("n", StandardScaler(), ["x"])])
    return DataPipeline(source("t").encode(encoder, label="label"))


def _frame(mean, n=80, seed=0):
    rng = np.random.default_rng(seed)
    return DataFrame({"x": rng.normal(mean, 1.0, n),
                      "label": [str(v) for v in rng.integers(0, 2, n)]})


class TestDistributionShiftInspection:
    def test_same_distribution_passes(self):
        train = _frame(0.0, seed=1)
        valid = _frame(0.0, seed=2)
        pipe = _pipeline()
        result = pipe.run({"t": train})
        outcome = DistributionShiftInspection(valid, train_source="t").run(
            pipe, {"t": train}, result)
        assert outcome.passed

    def test_shifted_validation_flagged(self):
        train = _frame(0.0, seed=3)
        valid = _frame(5.0, seed=4)  # 5 sigma away
        pipe = _pipeline()
        result = pipe.run({"t": train})
        outcome = DistributionShiftInspection(valid, train_source="t").run(
            pipe, {"t": train}, result)
        assert outcome.severity == "warning"
        assert outcome.metrics["worst_drift_sigma"] > 2.0
        assert outcome.findings

    def test_threshold_configurable(self):
        train = _frame(0.0, seed=5)
        valid = _frame(1.0, seed=6)  # ~1 sigma drift
        pipe = _pipeline()
        result = pipe.run({"t": train})
        strict = DistributionShiftInspection(valid, warn_sigma=0.5,
                                             train_source="t").run(
            pipe, {"t": train}, result)
        lax = DistributionShiftInspection(valid, warn_sigma=3.0,
                                          train_source="t").run(
            pipe, {"t": train}, result)
        assert strict.severity == "warning"
        assert lax.passed
