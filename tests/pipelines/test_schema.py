"""Unit tests for schema inference and validation."""

import numpy as np
import pytest

from repro.dataframe import DataFrame
from repro.pipelines.schema import infer_schema, validate_frame


@pytest.fixture()
def reference():
    rng = np.random.default_rng(0)
    return DataFrame({
        "age": rng.integers(18, 70, 100).astype(float),
        "sector": [str(s) for s in
                   rng.choice(["health", "finance", "retail"], 100)],
        "active": rng.choice([True, False], 100).tolist(),
    })


class TestInferSchema:
    def test_kinds_inferred(self, reference):
        schema = infer_schema(reference)
        assert schema.columns["age"].kind == "numeric"
        assert schema.columns["sector"].kind == "string"
        assert schema.columns["active"].kind == "bool"

    def test_numeric_range_with_slack(self, reference):
        schema = infer_schema(reference, range_slack=0.1)
        expected_span = 0.1 * (reference["age"].max() - reference["age"].min())
        assert schema.columns["age"].low == pytest.approx(
            reference["age"].min() - expected_span)

    def test_categorical_domain_captured(self, reference):
        schema = infer_schema(reference)
        assert schema.columns["sector"].domain == \
            frozenset({"health", "finance", "retail"})

    def test_high_cardinality_column_has_no_domain(self):
        frame = DataFrame({"id": [f"user-{i}" for i in range(100)]})
        schema = infer_schema(frame)
        assert schema.columns["id"].domain is None


class TestValidateFrame:
    def test_reference_validates_against_itself(self, reference):
        schema = infer_schema(reference)
        assert validate_frame(reference, schema) == []

    def test_missing_and_extra_columns(self, reference):
        schema = infer_schema(reference)
        mutated = reference.drop("age").with_column("bonus", lambda r: 1.0)
        kinds = {a.kind for a in validate_frame(mutated, schema)}
        assert {"missing_column", "extra_column"} <= kinds

    def test_type_mismatch(self, reference):
        schema = infer_schema(reference)
        mutated = reference.copy()
        mutated["age"] = [str(v) for v in reference["age"].to_list()]
        anomalies = validate_frame(mutated, schema)
        assert any(a.kind == "type_mismatch" and a.column == "age"
                   for a in anomalies)

    def test_null_rate_violation(self, reference):
        schema = infer_schema(reference, null_slack=0.01)
        ages = reference["age"].to_list()
        for i in range(30):
            ages[i] = None
        mutated = reference.copy()
        mutated["age"] = ages
        anomalies = validate_frame(mutated, schema)
        assert any(a.kind == "null_rate" for a in anomalies)

    def test_out_of_range_values(self, reference):
        schema = infer_schema(reference)
        ages = reference["age"].to_list()
        ages[0] = -40.0
        mutated = reference.copy()
        mutated["age"] = ages
        anomalies = validate_frame(mutated, schema)
        assert any(a.kind == "out_of_range" and a.column == "age"
                   for a in anomalies)

    def test_unknown_category(self, reference):
        schema = infer_schema(reference)
        sectors = reference["sector"].to_list()
        sectors[0] = "crypto"
        mutated = reference.copy()
        mutated["sector"] = sectors
        anomalies = validate_frame(mutated, schema)
        assert any(a.kind == "unknown_category" for a in anomalies)

    def test_catches_injected_errors(self):
        """End-to-end: schema validation flags the cancer registry's
        seeded invalid ages and wrong codes."""
        from repro.datasets import make_cancer_registry

        clean, _ = make_cancer_registry(300, error_fraction=0.0, seed=9)
        dirty, _ = make_cancer_registry(300, error_fraction=0.15, seed=9)
        schema = infer_schema(clean, range_slack=0.0)
        anomalies = validate_frame(dirty, schema)
        kinds = {a.kind for a in anomalies}
        assert "out_of_range" in kinds        # negative ages
        assert "unknown_category" in kinds    # typo'd diagnosis codes