"""Fixtures: the Figure-3 hiring pipeline, shared across pipeline tests."""

import numpy as np
import pytest

from repro.datasets import make_hiring_tables
from repro.ml import (
    ColumnTransformer,
    LogisticRegression,
    OneHotEncoder,
    Pipeline,
    SimpleImputer,
    StandardScaler,
)
from repro.pipelines import DataPipeline, source
from repro.text import SentenceEmbedder


@pytest.fixture(scope="module")
def hiring_data():
    letters, jobs, social = make_hiring_tables(160, n_jobs=25, seed=21)
    train, valid = letters.split([0.7, 0.3], seed=22)
    return {"train": train, "valid": valid, "jobs": jobs, "social": social}


def build_letter_encoder(dim=16):
    return ColumnTransformer([
        ("text", SentenceEmbedder(dim=dim), "letter_text"),
        ("num", Pipeline([("imp", SimpleImputer()), ("sc", StandardScaler())]),
         ["years_experience", "employer_rating"]),
        ("deg", OneHotEncoder(), "degree"),
        ("tw", "passthrough", "has_twitter"),
    ])


@pytest.fixture(scope="module")
def hiring_plan():
    train = source("train_df")
    jobs = source("jobdetail_df")
    social = source("social_df")
    return (train.join(jobs, on="job_id")
                 .join(social, on="person_id")
                 .map_column("has_twitter",
                             lambda r: 1.0 if r["twitter"] is not None else 0.0)
                 .drop(["person_id", "job_id", "twitter", "sector",
                        "seniority", "salary_band", "followers",
                        "linkedin_connections"])
                 .encode(build_letter_encoder(), label="sentiment"))


@pytest.fixture(scope="module")
def hiring_sources(hiring_data):
    return {"train_df": hiring_data["train"],
            "jobdetail_df": hiring_data["jobs"],
            "social_df": hiring_data["social"]}


@pytest.fixture(scope="module")
def hiring_result(hiring_plan, hiring_sources):
    return DataPipeline(hiring_plan).run(hiring_sources, provenance=True)


@pytest.fixture(scope="module")
def hiring_validation(hiring_result, hiring_sources, hiring_data):
    valid_sources = dict(hiring_sources)
    valid_sources["train_df"] = hiring_data["valid"]
    X_valid, y_valid = hiring_result.apply(valid_sources)
    return X_valid, y_valid


@pytest.fixture()
def model():
    return LogisticRegression(max_iter=80)
