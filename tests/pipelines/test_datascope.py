"""Unit tests for Datascope-style pipeline importance."""

import numpy as np
import pytest

from repro.core.exceptions import ValidationError
from repro.dataframe import DataFrame
from repro.errors import inject_label_errors
from repro.importance import knn_shapley
from repro.ml import ColumnTransformer, StandardScaler
from repro.pipelines import DataPipeline, datascope_importance, remove_and_evaluate, source
from repro.pipelines.datascope import rank_source_rows


class TestDatascopeImportance:
    def test_requires_provenance(self, hiring_plan, hiring_sources,
                                 hiring_validation):
        result = DataPipeline(hiring_plan).run(hiring_sources,
                                               provenance=False)
        X_valid, y_valid = hiring_validation
        with pytest.raises(ValidationError):
            datascope_importance(result, source="train_df",
                                 X_valid=X_valid, y_valid=y_valid)

    def test_unknown_source_rejected(self, hiring_result, hiring_validation):
        X_valid, y_valid = hiring_validation
        with pytest.raises(ValidationError):
            datascope_importance(hiring_result, source="nope",
                                 X_valid=X_valid, y_valid=y_valid)

    def test_every_surviving_source_row_scored(self, hiring_result,
                                               hiring_sources,
                                               hiring_validation):
        X_valid, y_valid = hiring_validation
        importances = datascope_importance(hiring_result, source="train_df",
                                           X_valid=X_valid, y_valid=y_valid)
        surviving = hiring_result.provenance.source_rows("train_df")
        assert set(importances) == surviving

    def test_identity_pipeline_matches_plain_knn_shapley(self):
        """With a pass-through pipeline, source importance must equal the
        plain per-row KNN-Shapley values."""
        rng = np.random.default_rng(0)
        frame = DataFrame({
            "f1": rng.normal(0, 1, 40), "f2": rng.normal(0, 1, 40),
            "label": (["a", "b"] * 20),
        })
        valid = DataFrame({
            "f1": rng.normal(0, 1, 20), "f2": rng.normal(0, 1, 20),
            "label": (["a", "b"] * 10),
        })
        encoder = ColumnTransformer([("n", StandardScaler(), ["f1", "f2"])])
        plan = source("t").encode(encoder, label="label")
        result = DataPipeline(plan).run({"t": frame}, provenance=True)
        X_valid, y_valid = result.apply({"t": valid})

        via_pipeline = datascope_importance(result, source="t",
                                            X_valid=X_valid, y_valid=y_valid,
                                            k=3)
        direct = knn_shapley(result.X, result.y, X_valid, y_valid, k=3)
        for position, rid in enumerate(frame.row_ids):
            assert via_pipeline[int(rid)] == pytest.approx(direct[position])

    def test_corrupted_source_rows_rank_low(self, hiring_sources, hiring_plan,
                                            hiring_data):
        """Label-flip some train rows; Datascope should push a clear share
        of them into the bottom quartile."""
        dirty, report = inject_label_errors(
            hiring_sources["train_df"], column="sentiment", fraction=0.15,
            seed=5)
        sources = dict(hiring_sources, train_df=dirty)
        result = DataPipeline(hiring_plan).run(sources, provenance=True)
        valid_sources = dict(sources, train_df=hiring_data["valid"])
        X_valid, y_valid = result.apply(valid_sources)
        importances = datascope_importance(result, source="train_df",
                                           X_valid=X_valid, y_valid=y_valid)
        quartile = rank_source_rows(importances, len(importances) // 4)
        flipped = report.row_ids()
        hits = len(set(quartile) & flipped)
        assert hits / len(flipped) >= 0.4  # ~1.6x better than random

    def test_rank_source_rows_ascending(self):
        ranked = rank_source_rows({3: 0.5, 1: -0.5, 2: 0.0})
        assert ranked == [1, 2, 3]


class TestRemoveAndEvaluate:
    def test_reports_before_after_delta(self, hiring_plan, hiring_sources,
                                        hiring_data, model):
        some_rows = hiring_sources["train_df"].row_ids[:5]
        outcome = remove_and_evaluate(
            DataPipeline(hiring_plan), hiring_sources, source="train_df",
            row_ids=some_rows, model=model,
            valid_frame=hiring_data["valid"])
        assert outcome["delta"] == pytest.approx(
            outcome["after"] - outcome["before"])
        assert 0.0 <= outcome["before"] <= 1.0
        assert 0.0 <= outcome["after"] <= 1.0

    def test_removing_side_table_rows_changes_output_size(
            self, hiring_plan, hiring_sources, hiring_data, model):
        """Dropping jobdetail rows removes all letters referencing them
        (inner-join semantics) — the silent data loss inspections hunt."""
        pipeline = DataPipeline(hiring_plan)
        baseline = pipeline.run(hiring_sources)
        dropped = hiring_sources["jobdetail_df"].row_ids[:5]
        patched = dict(hiring_sources)
        patched["jobdetail_df"] = \
            hiring_sources["jobdetail_df"].drop_rows(dropped)
        rerun = pipeline.run(patched)
        assert len(rerun.frame) < len(baseline.frame)


class TestSideTableImportance:
    def test_jobdetail_importance_aggregates_fanout(self, hiring_result,
                                                    hiring_sources,
                                                    hiring_validation):
        """A jobdetail row joined into many letters accumulates the sum of
        its derived rows' values (Shapley linearity through provenance)."""
        X_valid, y_valid = hiring_validation
        importances = datascope_importance(hiring_result,
                                           source="jobdetail_df",
                                           X_valid=X_valid, y_valid=y_valid)
        groups = hiring_result.provenance.group_matrix("jobdetail_df")
        row_values = knn_shapley(hiring_result.X, hiring_result.y,
                                 X_valid, y_valid, k=5)
        for rid, positions in groups.items():
            assert importances[rid] == pytest.approx(
                float(row_values[positions].sum()))

    def test_side_table_rows_cover_more_output(self, hiring_result):
        """jobdetail rows fan out: at least one witnesses several output
        rows, while train rows witness exactly one each."""
        prov = hiring_result.provenance
        job_groups = prov.group_matrix("jobdetail_df")
        train_groups = prov.group_matrix("train_df")
        assert max(len(v) for v in job_groups.values()) > 1
        assert all(len(v) == 1 for v in train_groups.values())


class TestSourceRowUtility:
    def test_full_coalition_matches_direct_training(self, hiring_result,
                                                    hiring_validation,
                                                    model):
        from repro.pipelines import SourceRowUtility

        X_valid, y_valid = hiring_validation
        utility = SourceRowUtility(hiring_result, source="train_df",
                                   model=model, X_valid=X_valid,
                                   y_valid=y_valid)
        from repro.ml.base import clone

        direct = clone(model)
        direct.fit(hiring_result.X, hiring_result.y)
        expected = float(np.mean(direct.predict(X_valid) == y_valid))
        assert utility.full_value() == pytest.approx(expected)

    def test_empty_coalition_is_null_value(self, hiring_result,
                                           hiring_validation, model):
        from repro.pipelines import SourceRowUtility

        X_valid, y_valid = hiring_validation
        utility = SourceRowUtility(hiring_result, source="train_df",
                                   model=model, X_valid=X_valid,
                                   y_valid=y_valid)
        assert utility(np.array([], dtype=int)) == utility.null_value()

    def test_monte_carlo_shapley_over_source_rows(self, hiring_result,
                                                  hiring_validation, model):
        """The general path: TMC-Shapley with source rows as players,
        mapped back to row ids."""
        from repro.importance import MonteCarloShapley
        from repro.pipelines import SourceRowUtility

        X_valid, y_valid = hiring_validation
        utility = SourceRowUtility(hiring_result, source="jobdetail_df",
                                   model=model, X_valid=X_valid,
                                   y_valid=y_valid)
        values = MonteCarloShapley(n_permutations=3, truncation_tol=0.05,
                                   seed=0).score(utility)
        by_id = utility.values_by_row_id(values)
        assert set(by_id) == \
            hiring_result.provenance.source_rows("jobdetail_df")

    def test_requires_provenance(self, hiring_plan, hiring_sources,
                                 hiring_validation, model):
        from repro.core.exceptions import ValidationError
        from repro.pipelines import SourceRowUtility

        result = DataPipeline(hiring_plan).run(hiring_sources,
                                               provenance=False)
        X_valid, y_valid = hiring_validation
        with pytest.raises(ValidationError):
            SourceRowUtility(result, source="train_df", model=model,
                             X_valid=X_valid, y_valid=y_valid)
