"""Unit tests for why-provenance tracking."""

import numpy as np
import pytest

from repro.core.exceptions import ValidationError
from repro.dataframe import DataFrame
from repro.pipelines import DataPipeline, Provenance, source


class TestProvenanceAlgebra:
    def test_source_provenance_is_identity(self):
        prov = Provenance.for_source("t", [10, 11, 12])
        assert prov.inputs_of(0) == {"t": frozenset([10])}

    def test_take_subsets(self):
        prov = Provenance.for_source("t", [10, 11, 12]).take([2, 0])
        assert prov.inputs_of(0, "t") == frozenset([12])
        assert prov.inputs_of(1, "t") == frozenset([10])

    def test_take_with_boolean_mask(self):
        prov = Provenance.for_source("t", [1, 2, 3]).take(
            np.array([True, False, True]))
        assert len(prov) == 2

    def test_join_unions_witnesses(self):
        left = Provenance.for_source("L", [1, 2])
        right = Provenance.for_source("R", [7])
        joined = Provenance.join(left, right, [0, 1], [0, 0])
        assert joined.inputs_of(0) == {"L": frozenset([1]), "R": frozenset([7])}
        assert joined.inputs_of(1) == {"L": frozenset([2]), "R": frozenset([7])}

    def test_left_join_unmatched_right_contributes_nothing(self):
        left = Provenance.for_source("L", [1])
        right = Provenance.for_source("R", [7])
        joined = Provenance.join(left, right, [0], [-1])
        assert joined.inputs_of(0) == {"L": frozenset([1])}

    def test_concat(self):
        a = Provenance.for_source("A", [1])
        b = Provenance.for_source("B", [2])
        combined = Provenance.concat([a, b])
        assert combined.sources() == ["A", "B"]
        assert len(combined) == 2

    def test_outputs_of_forward_trace(self):
        left = Provenance.for_source("L", [1, 2])
        right = Provenance.for_source("R", [7, 8])
        joined = Provenance.join(left, right, [0, 0, 1], [0, 1, 0])
        np.testing.assert_array_equal(joined.outputs_of("L", 1), [0, 1])
        np.testing.assert_array_equal(joined.outputs_of("R", 7), [0, 2])

    def test_inputs_of_out_of_range(self):
        prov = Provenance.for_source("t", [1])
        with pytest.raises(ValidationError):
            prov.inputs_of(5)

    def test_group_matrix(self):
        left = Provenance.for_source("L", [1, 2])
        right = Provenance.for_source("R", [7])
        joined = Provenance.join(left, right, [0, 0, 1], [0, 0, 0])
        groups = joined.group_matrix("L")
        np.testing.assert_array_equal(groups[1], [0, 1])
        np.testing.assert_array_equal(groups[2], [2])


class TestProvenanceThroughExecution:
    def test_filter_keeps_surviving_row_ids(self):
        frame = DataFrame({"x": [1, 2, 3, 4], "keep": [1, 0, 1, 0]})
        plan = source("t").filter(("keep", 1))
        result = DataPipeline(plan).run({"t": frame}, provenance=True)
        assert result.provenance.source_rows("t") == {
            int(frame.row_ids[0]), int(frame.row_ids[2])}

    def test_join_fanout_shares_source_row(self):
        left = DataFrame({"k": ["a"], "v": [1]})
        right = DataFrame({"k": ["a", "a"], "w": [1, 2]})
        plan = source("L").join(source("R"), on="k")
        result = DataPipeline(plan).run({"L": left, "R": right},
                                        provenance=True)
        groups = result.provenance.group_matrix("L")
        assert len(groups[int(left.row_ids[0])]) == 2

    def test_provenance_aligned_with_encoded_rows(self, hiring_result,
                                                  hiring_sources):
        """Output row i's witness for train_df must be the person whose
        features ended up in X[i]."""
        frame = hiring_result.frame
        for i in range(0, len(frame), 17):
            witness = hiring_result.provenance.inputs_of(i, "train_df")
            assert len(witness) == 1
            (rid,) = witness
            original = hiring_sources["train_df"]
            position = int(original.positions_of([rid])[0])
            assert original["letter_text"].get(position) == \
                frame["letter_text"].get(i)

    def test_every_output_row_has_all_three_sources(self, hiring_result):
        for witness in hiring_result.provenance.witnesses:
            assert set(witness) == {"train_df", "jobdetail_df", "social_df"}
