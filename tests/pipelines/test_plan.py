"""Unit tests for query-plan rendering."""

import networkx as nx

from repro.pipelines import show_query_plan, source, to_networkx


class TestShowQueryPlan:
    def test_renders_all_operators(self, hiring_plan):
        text = show_query_plan(hiring_plan)
        assert "Source(train_df)" in text
        assert "Join(on='job_id'" in text
        assert "Encode(label='sentiment')" in text

    def test_indentation_reflects_depth(self):
        plan = source("a").filter(("x", 1))
        lines = show_query_plan(plan).splitlines()
        assert lines[0].startswith("[")          # root unindented
        assert lines[1].startswith("  [")        # child indented

    def test_shared_subtree_printed_once(self):
        shared = source("a").map_column("y", lambda r: 1)
        plan = shared.join(shared, on="y")
        text = show_query_plan(plan)
        assert text.count("Map(+y)") == 2  # second is the reference line
        assert "shared, see above" in text


class TestToNetworkx:
    def test_graph_is_dag(self, hiring_plan):
        graph = to_networkx(hiring_plan)
        assert nx.is_directed_acyclic_graph(graph)

    def test_edges_point_downstream(self):
        plan = source("a").filter(("x", 1))
        graph = to_networkx(plan)
        source_id = plan.inputs[0].id
        assert graph.has_edge(source_id, plan.id)

    def test_node_labels(self, hiring_plan):
        graph = to_networkx(hiring_plan)
        labels = {data["op"] for _, data in graph.nodes(data=True)}
        assert {"source", "join", "map", "drop", "encode"} <= labels
