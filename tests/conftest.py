"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.dataframe import DataFrame
from repro.datasets import make_blobs, make_hiring_tables


@pytest.fixture(scope="session")
def blobs():
    """A well-separated binary classification problem."""
    X, y = make_blobs(120, n_features=3, centers=2, cluster_std=1.0, seed=7)
    return X, y


@pytest.fixture(scope="session")
def blobs_split(blobs):
    X, y = blobs
    return X[:80], y[:80], X[80:], y[80:]


@pytest.fixture(scope="session")
def hiring_tables():
    return make_hiring_tables(150, n_jobs=20, seed=11)


@pytest.fixture()
def small_frame():
    return DataFrame({
        "a": [1, 2, 3, None, 5],
        "b": ["x", "y", "x", "z", None],
        "c": [1.5, 2.5, None, 4.5, 5.5],
        "flag": [True, False, True, True, False],
    })


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(0)
