"""Unit tests for Zorro-style symbolic uncertainty propagation."""

import numpy as np
import pytest

from repro.core.exceptions import ValidationError
from repro.dataframe import DataFrame
from repro.errors import inject_missing
from repro.uncertain import (
    SymbolicTable,
    ZorroLinearModel,
    encode_symbolic,
    estimate_worst_case_loss,
)
from repro.uncertain.zorro import prediction_ranges_over_worlds


@pytest.fixture(scope="module")
def regression_frame():
    rng = np.random.default_rng(4)
    x1 = rng.normal(0, 1, 120)
    x2 = rng.normal(0, 1, 120)
    target = 2.0 * x1 - 1.0 * x2 + rng.normal(0, 0.05, 120)
    return DataFrame({"x1": x1, "x2": x2, "target": target}), \
        np.column_stack([x1, x2]), target


class TestEncodeSymbolic:
    def test_complete_data_gives_point_intervals(self, regression_frame):
        frame, _, _ = regression_frame
        table = encode_symbolic(frame, feature_columns=["x1", "x2"],
                                label_column="target")
        assert table.n_missing == 0
        assert np.all(table.X.width == 0.0)

    def test_missing_cells_get_observed_range(self, regression_frame):
        frame, _, _ = regression_frame
        dirty, _ = inject_missing(frame, column="x1", fraction=0.1, seed=0)
        table = encode_symbolic(dirty, feature_columns=["x1", "x2"],
                                label_column="target")
        assert table.n_missing == 12
        observed = [v for v in dirty["x1"].to_list() if v is not None]
        wide = table.missing_mask[:, 0]
        assert np.allclose(table.X.lo[wide, 0], min(observed))
        assert np.allclose(table.X.hi[wide, 0], max(observed))

    def test_custom_bounds(self, regression_frame):
        frame, _, _ = regression_frame
        dirty, _ = inject_missing(frame, column="x1", fraction=0.1, seed=1)
        table = encode_symbolic(dirty, feature_columns=["x1", "x2"],
                                label_column="target",
                                bounds={"x1": (-10.0, 10.0)})
        wide = table.missing_mask[:, 0]
        assert np.all(table.X.lo[wide, 0] == -10.0)

    def test_non_numeric_feature_rejected(self):
        frame = DataFrame({"s": ["a", "b"], "target": [1.0, 2.0]})
        with pytest.raises(ValidationError):
            encode_symbolic(frame, feature_columns=["s"],
                            label_column="target")

    def test_null_label_rejected(self):
        frame = DataFrame({"x": [1.0, 2.0], "target": [1.0, None]})
        with pytest.raises(ValidationError):
            encode_symbolic(frame, feature_columns=["x"],
                            label_column="target")


class TestZorroLinearModel:
    def test_point_data_recovers_ols(self, regression_frame):
        frame, X, y = regression_frame
        table = encode_symbolic(frame, feature_columns=["x1", "x2"],
                                label_column="target")
        model = ZorroLinearModel(lr=0.2, n_iter=500, l2=0.0).fit(table)
        np.testing.assert_allclose(model.coef_, [2.0, -1.0], atol=0.1)

    def test_prediction_range_contains_point_prediction(self,
                                                        regression_frame):
        frame, X, y = regression_frame
        dirty, _ = inject_missing(frame, column="x1", fraction=0.2, seed=2)
        table = encode_symbolic(dirty, feature_columns=["x1", "x2"],
                                label_column="target")
        model = ZorroLinearModel(n_iter=200).fit(table)
        ranges = model.predict_range(table.X)
        midpoint_pred = model.predict(table.impute_midpoint())
        assert (ranges.lo - 1e-9 <= midpoint_pred).all()
        assert (midpoint_pred <= ranges.hi + 1e-9).all()

    def test_worst_case_mse_bounds_every_completion(self, regression_frame):
        """Sampled concrete completions can never exceed the certified
        worst-case MSE."""
        frame, X, y = regression_frame
        dirty, _ = inject_missing(frame, column="x1", fraction=0.2, seed=3)
        table = encode_symbolic(dirty, feature_columns=["x1", "x2"],
                                label_column="target")
        model = ZorroLinearModel(n_iter=200).fit(table)
        bound = model.worst_case_mse(table)
        rng = np.random.default_rng(0)
        for _ in range(20):
            world = table.X.lo + rng.uniform(size=table.X.shape) * table.X.width
            mse = float(np.mean((model.predict(world) - table.y) ** 2))
            assert mse <= bound + 1e-9

    def test_predict_range_requires_fit(self, regression_frame):
        frame, _, _ = regression_frame
        table = encode_symbolic(frame, feature_columns=["x1", "x2"],
                                label_column="target")
        with pytest.raises(ValidationError):
            ZorroLinearModel().predict_range(table.X)


class TestWorstCaseLossEstimation:
    def test_loss_grows_with_missingness(self, regression_frame):
        """The Figure-4 shape: max worst-case loss increases with the
        missing fraction."""
        frame, X, y = regression_frame
        losses = []
        for fraction in (0.05, 0.15, 0.3):
            dirty, _ = inject_missing(frame, column="x1", fraction=fraction,
                                      mechanism="MNAR", seed=4)
            table = encode_symbolic(dirty, feature_columns=["x1", "x2"],
                                    label_column="target")
            outcome = estimate_worst_case_loss(table, X, y)
            losses.append(outcome["max_worst_case_loss"])
        assert losses[0] < losses[-1]

    def test_zero_missing_has_tiny_loss(self, regression_frame):
        frame, X, y = regression_frame
        table = encode_symbolic(frame, feature_columns=["x1", "x2"],
                                label_column="target")
        outcome = estimate_worst_case_loss(table, X, y)
        assert outcome["mean_test_mse"] < 0.05


class TestPossibleWorldRanges:
    def test_sampled_ranges_inside_reasonable_bounds(self, regression_frame):
        frame, X, y = regression_frame
        dirty, _ = inject_missing(frame, column="x1", fraction=0.2, seed=5)
        table = encode_symbolic(dirty, feature_columns=["x1", "x2"],
                                label_column="target")
        ranges = prediction_ranges_over_worlds(table, X[:10], n_worlds=10,
                                               seed=0)
        assert ranges.shape == (10,)
        assert (ranges.width >= 0).all()
