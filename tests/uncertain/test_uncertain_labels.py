"""Unit tests for Zorro's uncertain-label support."""

import numpy as np
import pytest

from repro.core.exceptions import ValidationError
from repro.dataframe import DataFrame
from repro.uncertain import ZorroLinearModel, encode_symbolic


@pytest.fixture(scope="module")
def table():
    rng = np.random.default_rng(3)
    x = rng.normal(0, 1, 80)
    frame = DataFrame({"x": x, "target": 2.0 * x + rng.normal(0, 0.05, 80)})
    return encode_symbolic(frame, feature_columns=["x"],
                           label_column="target")


class TestUncertainLabels:
    def test_default_labels_are_point_intervals(self, table):
        assert np.all(table.y_interval.width == 0.0)

    def test_with_uncertain_labels_widens_only_marked_rows(self, table):
        uncertain = table.with_uncertain_labels([0, 3], -1.0, 1.0)
        assert uncertain.y_interval.width[0] == 2.0
        assert uncertain.y_interval.width[3] == 2.0
        assert uncertain.y_interval.width[1] == 0.0
        # Original table untouched.
        assert np.all(table.y_interval.width == 0.0)

    def test_midpoint_label_recorded(self, table):
        uncertain = table.with_uncertain_labels([0], 0.0, 4.0)
        assert uncertain.y[0] == 2.0

    def test_out_of_range_rows_rejected(self, table):
        with pytest.raises(ValidationError):
            table.with_uncertain_labels([10**4], 0.0, 1.0)

    def test_worst_case_mse_grows_with_label_uncertainty(self, table):
        model = ZorroLinearModel(n_iter=200).fit(table)
        baseline = model.worst_case_mse(table)
        uncertain = table.with_uncertain_labels(np.arange(20), -5.0, 5.0)
        assert model.worst_case_mse(uncertain) > baseline

    def test_bound_covers_sampled_label_worlds(self, table):
        """Any concrete labels inside the intervals give an MSE within
        the certified bound."""
        uncertain = table.with_uncertain_labels(np.arange(10), -2.0, 2.0)
        model = ZorroLinearModel(n_iter=150).fit(uncertain)
        bound = model.worst_case_mse(uncertain)
        rng = np.random.default_rng(0)
        predictions = model.predict(uncertain.impute_midpoint())
        for _ in range(15):
            y_world = uncertain.y_interval.lo + rng.uniform(
                size=len(uncertain.y)) * uncertain.y_interval.width
            mse = float(np.mean((predictions - y_world) ** 2))
            assert mse <= bound + 1e-9

    def test_robust_training_tolerates_uncertain_labels(self, table):
        """Training with wide label intervals on a few rows yields a
        *conservative* but still meaningful fit: the robust minimax
        optimum shrinks the slope (the adversary can realize huge
        residuals on the uncertain rows), but the sign and the ordering of
        predictions on certain rows must survive."""
        uncertain = table.with_uncertain_labels([0, 1, 2], -10.0, 10.0)
        model = ZorroLinearModel(n_iter=300).fit(uncertain)
        assert 0.5 <= model.coef_[0] <= 2.5  # shrunk, not destroyed
        predictions = model.predict(uncertain.impute_midpoint()[3:])
        correlation = np.corrcoef(predictions, uncertain.y[3:])[0, 1]
        assert correlation > 0.95
