"""Unit and property tests for interval arithmetic (soundness is the
load-bearing invariant: every concrete completion stays inside)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import ValidationError
from repro.uncertain import IntervalArray

finite = st.floats(-1e3, 1e3, allow_nan=False)


def interval_strategy(n):
    return st.lists(st.tuples(finite, finite), min_size=n, max_size=n).map(
        lambda pairs: IntervalArray([min(a, b) for a, b in pairs],
                                    [max(a, b) for a, b in pairs]))


class TestConstruction:
    def test_inverted_bounds_rejected(self):
        with pytest.raises(ValidationError):
            IntervalArray([1.0], [0.0])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            IntervalArray([1.0], [0.0, 1.0])

    def test_point_has_zero_width(self):
        box = IntervalArray.point([1.0, 2.0])
        np.testing.assert_array_equal(box.width, [0.0, 0.0])

    def test_from_nan_boxes_missing_cells(self):
        X = np.array([[1.0, np.nan], [3.0, 4.0]])
        box = IntervalArray.from_nan(X, [0.0, -1.0], [10.0, 9.0])
        assert box.lo[0, 1] == -1.0
        assert box.hi[0, 1] == 9.0
        assert box.lo[0, 0] == box.hi[0, 0] == 1.0

    def test_contains(self):
        box = IntervalArray([0.0], [2.0])
        assert box.contains([1.0]).all()
        assert not box.contains([3.0]).any()


class TestArithmetic:
    def test_add(self):
        a = IntervalArray([0.0], [1.0])
        b = IntervalArray([2.0], [3.0])
        result = a + b
        assert result.lo[0] == 2.0 and result.hi[0] == 4.0

    def test_sub_widens_correctly(self):
        a = IntervalArray([0.0], [1.0])
        result = a - a  # interval arithmetic cannot cancel: [-1, 1]
        assert result.lo[0] == -1.0 and result.hi[0] == 1.0

    def test_mul_four_products(self):
        a = IntervalArray([-2.0], [1.0])
        b = IntervalArray([-3.0], [4.0])
        result = a * b
        assert result.lo[0] == -8.0  # -2 * 4
        assert result.hi[0] == 6.0   # -2 * -3

    def test_neg(self):
        a = IntervalArray([1.0], [2.0])
        result = -a
        assert result.lo[0] == -2.0 and result.hi[0] == -1.0

    def test_scale_negative(self):
        a = IntervalArray([1.0], [2.0]).scale(-2.0)
        assert a.lo[0] == -4.0 and a.hi[0] == -2.0

    def test_square_crossing_zero(self):
        a = IntervalArray([-2.0], [1.0]).square()
        assert a.lo[0] == 0.0 and a.hi[0] == 4.0

    def test_dot_vector_exact_for_signs(self):
        box = IntervalArray([[0.0, -1.0]], [[1.0, 1.0]])
        w = np.array([2.0, -3.0])
        result = box.dot_vector(w)
        assert result.lo[0] == 0.0 * 2 + 1.0 * -3
        assert result.hi[0] == 1.0 * 2 + -1.0 * -3

    def test_sum_and_mean(self):
        box = IntervalArray([0.0, 2.0], [1.0, 4.0])
        total = box.sum()
        assert total.lo == 2.0 and total.hi == 5.0
        avg = box.mean()
        assert avg.lo == 1.0 and avg.hi == 2.5


@given(interval_strategy(4), interval_strategy(4), st.data())
@settings(max_examples=50)
def test_soundness_of_add_sub_mul(a, b, data):
    """Any concrete pair of points inside the inputs yields results inside
    the interval outputs — the defining property of the abstract domain."""
    alpha = np.array(data.draw(st.lists(st.floats(0, 1), min_size=4,
                                        max_size=4)))
    beta = np.array(data.draw(st.lists(st.floats(0, 1), min_size=4,
                                       max_size=4)))
    x = a.lo + alpha * (a.hi - a.lo)
    y = b.lo + beta * (b.hi - b.lo)
    assert (a + b).contains(x + y).all()
    assert (a - b).contains(x - y).all()
    assert (a * b).contains(x * y).all()
    assert a.square().contains(x * x).all()


@given(interval_strategy(6), st.data())
@settings(max_examples=50)
def test_soundness_of_dot_vector(box, data):
    w = np.array(data.draw(st.lists(st.floats(-5, 5, allow_nan=False),
                                    min_size=3, max_size=3)))
    matrix = IntervalArray(box.lo.reshape(2, 3), box.hi.reshape(2, 3))
    alpha = np.array(data.draw(st.lists(st.floats(0, 1), min_size=6,
                                        max_size=6))).reshape(2, 3)
    X = matrix.lo + alpha * (matrix.hi - matrix.lo)
    result = matrix.dot_vector(w)
    concrete = X @ w
    assert (result.lo - 1e-6 <= concrete).all()
    assert (concrete <= result.hi + 1e-6).all()
