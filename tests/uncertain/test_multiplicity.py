"""Unit tests for dataset-multiplicity robustness."""

import itertools

import numpy as np
import pytest

from repro.core.exceptions import ValidationError
from repro.datasets import make_blobs
from repro.ml import KNeighborsClassifier, LogisticRegression
from repro.uncertain import knn_label_robustness, multiplicity_prediction_range
from repro.uncertain.multiplicity import certified_fraction


class TestKnnLabelRobustness:
    def test_unanimous_neighborhood_has_max_radius(self):
        X = np.zeros((5, 1)) + np.arange(5)[:, None]
        y = np.zeros(5, dtype=int)
        # all 3 neighbors vote 0 -> margin 3 -> flips needed = 2 -> radius 1
        outcome = knn_label_robustness(X, y, np.array([[0.0]]), k=3)
        assert outcome["radii"][0] == 1

    def test_radius_certificate_is_exact_for_small_k(self):
        """Brute-force check: flipping any `radius` neighbor labels never
        changes the prediction; some set of `radius+1` flips does."""
        rng = np.random.default_rng(0)
        X = rng.normal(0, 1, (12, 2))
        y = rng.integers(0, 2, 12)
        x_test = rng.normal(0, 1, (1, 2))
        k = 5
        outcome = knn_label_robustness(X, y, x_test, k=k)
        radius = int(outcome["radii"][0])
        base = outcome["predictions"][0]

        model = KNeighborsClassifier(k).fit(X, y)
        _, neighbors = model.kneighbors(x_test)
        neighbor_set = neighbors[0]

        def prediction_with_flips(flip_set):
            y_world = y.copy()
            for i in flip_set:
                y_world[i] = 1 - y_world[i]
            return KNeighborsClassifier(k).fit(X, y_world).predict(x_test)[0]

        # No flip-set of size <= radius changes the prediction.
        for size in range(1, radius + 1):
            for flip_set in itertools.combinations(neighbor_set, size):
                assert prediction_with_flips(flip_set) == base
        # Some flip-set of size radius + 1 does.
        changed = any(
            prediction_with_flips(flip_set) != base
            for flip_set in itertools.combinations(neighbor_set, radius + 1)
        )
        assert changed

    def test_certified_fraction(self):
        radii = np.array([0, 1, 2, 3])
        assert certified_fraction(radii, 0) == 1.0
        assert certified_fraction(radii, 2) == 0.5
        with pytest.raises(ValidationError):
            certified_fraction(radii, -1)


class TestMultiplicityPredictionRange:
    def test_zero_radius_is_fully_robust(self, blobs_split):
        X_train, y_train, X_test, _ = blobs_split
        outcome = multiplicity_prediction_range(
            LogisticRegression(max_iter=50), X_train, y_train, X_test,
            radius=0, n_worlds=3, seed=0)
        assert outcome["robust_mask"].all()
        assert np.all(outcome["agreement"] == 1.0)

    def test_agreement_decreases_with_radius(self, blobs_split):
        X_train, y_train, X_test, _ = blobs_split
        small = multiplicity_prediction_range(
            LogisticRegression(max_iter=50), X_train, y_train, X_test,
            radius=2, n_worlds=10, seed=1)
        large = multiplicity_prediction_range(
            LogisticRegression(max_iter=50), X_train, y_train, X_test,
            radius=40, n_worlds=10, seed=1)
        assert large["agreement"].mean() <= small["agreement"].mean() + 1e-9

    def test_invalid_radius_rejected(self, blobs_split):
        X_train, y_train, X_test, _ = blobs_split
        with pytest.raises(ValidationError):
            multiplicity_prediction_range(
                LogisticRegression(), X_train, y_train, X_test,
                radius=len(y_train) + 1)
