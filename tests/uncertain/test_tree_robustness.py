"""Unit tests for certified tree robustness under interval inputs."""

import numpy as np
import pytest

from repro.core.exceptions import ValidationError
from repro.datasets import make_blobs
from repro.ml import DecisionTreeClassifier, RandomForestClassifier
from repro.uncertain import IntervalArray
from repro.uncertain.tree_robustness import (
    certify_forest_robustness,
    certify_tree_robustness,
    tree_prediction_set,
)


@pytest.fixture(scope="module")
def fitted_tree():
    X, y = make_blobs(150, n_features=2, centers=2, cluster_std=0.8, seed=6)
    return DecisionTreeClassifier(max_depth=4).fit(X, y), X, y


class TestTreePredictionSet:
    def test_point_box_gives_single_prediction(self, fitted_tree):
        tree, X, y = fitted_tree
        box = IntervalArray.point(X[:1])
        labels = tree_prediction_set(tree, box)
        assert labels == {tree.predict(X[:1])[0]}

    def test_giant_box_reaches_both_classes(self, fitted_tree):
        tree, X, y = fitted_tree
        lo = X.min(axis=0, keepdims=True) - 1
        hi = X.max(axis=0, keepdims=True) + 1
        labels = tree_prediction_set(tree, IntervalArray(lo, hi))
        assert labels == {0, 1}

    def test_wrong_dimension_rejected(self, fitted_tree):
        tree, _, _ = fitted_tree
        with pytest.raises(ValidationError):
            tree_prediction_set(tree, IntervalArray.point(np.zeros((1, 5))))

    def test_set_is_sound_against_sampling(self, fitted_tree):
        """Every sampled completion's prediction is inside the reachable
        set — the certificate's defining property."""
        tree, X, _ = fitted_tree
        rng = np.random.default_rng(0)
        for i in range(10):
            lo = X[i] - 0.5
            hi = X[i] + 0.5
            labels = tree_prediction_set(
                tree, IntervalArray(lo[None, :], hi[None, :]))
            for _ in range(20):
                point = rng.uniform(lo, hi)[None, :]
                assert tree.predict(point)[0] in labels


class TestCertifyTree:
    def test_zero_width_boxes_all_robust(self, fitted_tree):
        tree, X, _ = fitted_tree
        outcome = certify_tree_robustness(tree, IntervalArray.point(X[:20]))
        assert outcome["robust_mask"].all()
        np.testing.assert_array_equal(outcome["predictions"],
                                      tree.predict(X[:20]))

    def test_wider_boxes_less_robust(self, fitted_tree):
        tree, X, _ = fitted_tree
        narrow = IntervalArray(X[:40] - 0.05, X[:40] + 0.05)
        wide = IntervalArray(X[:40] - 3.0, X[:40] + 3.0)
        robust_narrow = certify_tree_robustness(tree, narrow)["robust_mask"]
        robust_wide = certify_tree_robustness(tree, wide)["robust_mask"]
        assert robust_wide.sum() <= robust_narrow.sum()

    def test_certified_rows_survive_adversarial_sampling(self, fitted_tree):
        tree, X, _ = fitted_tree
        box = IntervalArray(X[:30] - 0.3, X[:30] + 0.3)
        outcome = certify_tree_robustness(tree, box)
        rng = np.random.default_rng(1)
        certified = np.flatnonzero(outcome["robust_mask"])
        assert len(certified)  # vacuous otherwise
        for _ in range(10):
            points = rng.uniform(box.lo, box.hi)
            predictions = tree.predict(points)
            for i in certified:
                assert predictions[i] == outcome["predictions"][i]


class TestCertifyForest:
    def test_point_boxes_all_robust(self):
        X, y = make_blobs(120, n_features=3, centers=2, cluster_std=0.7,
                          seed=8)
        forest = RandomForestClassifier(n_estimators=7, max_depth=4,
                                        seed=0).fit(X, y)
        outcome = certify_forest_robustness(forest,
                                            IntervalArray.point(X[:15]))
        assert outcome["robust_mask"].all()

    def test_certificates_sound_against_sampling(self):
        X, y = make_blobs(120, n_features=3, centers=2, cluster_std=0.7,
                          seed=8)
        forest = RandomForestClassifier(n_estimators=7, max_depth=4,
                                        seed=0).fit(X, y)
        box = IntervalArray(X[:25] - 0.2, X[:25] + 0.2)
        outcome = certify_forest_robustness(forest, box)
        certified = np.flatnonzero(outcome["robust_mask"])
        rng = np.random.default_rng(2)
        for _ in range(10):
            points = rng.uniform(box.lo, box.hi)
            predictions = forest.predict(points)
            for i in certified:
                assert predictions[i] == outcome["predictions"][i]
