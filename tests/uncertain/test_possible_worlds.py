"""Unit tests for the possible-worlds ensemble."""

import numpy as np
import pytest

from repro.core.exceptions import ValidationError
from repro.datasets import make_blobs
from repro.errors import inject_missing_array
from repro.ml import KNeighborsClassifier, LinearRegression
from repro.uncertain import PossibleWorldsEnsemble


@pytest.fixture(scope="module")
def incomplete_data():
    X, y = make_blobs(70, n_features=2, centers=2, cluster_std=1.0, seed=8)
    X_dirty, _ = inject_missing_array(X, fraction=0.15, seed=1)
    X_test, y_test = make_blobs(25, n_features=2, centers=2, cluster_std=1.0,
                                seed=8)
    return X_dirty, y, X_test, y_test


class TestPossibleWorldsEnsemble:
    def test_trains_n_worlds_models(self, incomplete_data):
        X_dirty, y, _, _ = incomplete_data
        ensemble = PossibleWorldsEnsemble(KNeighborsClassifier(3),
                                          n_worlds=7, seed=0).fit(X_dirty, y)
        assert len(ensemble.models_) == 7

    def test_consensus_accuracy_reasonable(self, incomplete_data):
        X_dirty, y, X_test, y_test = incomplete_data
        ensemble = PossibleWorldsEnsemble(KNeighborsClassifier(3),
                                          n_worlds=10, seed=0).fit(X_dirty, y)
        accuracy = float(np.mean(ensemble.predict(X_test) == y_test))
        assert accuracy >= 0.8

    def test_disagreement_in_unit_interval(self, incomplete_data):
        X_dirty, y, X_test, _ = incomplete_data
        ensemble = PossibleWorldsEnsemble(KNeighborsClassifier(3),
                                          n_worlds=10, seed=0).fit(X_dirty, y)
        disagreement = ensemble.disagreement(X_test)
        assert np.all((disagreement >= 0) & (disagreement <= 1))

    def test_no_missing_data_means_no_disagreement(self):
        X, y = make_blobs(50, seed=9)
        X_test, _ = make_blobs(10, seed=9)
        ensemble = PossibleWorldsEnsemble(KNeighborsClassifier(3),
                                          n_worlds=5, seed=0).fit(X, y)
        assert np.all(ensemble.disagreement(X_test) == 0.0)

    def test_regression_prediction_interval(self, rng):
        X = rng.standard_normal((60, 2))
        y = X[:, 0] * 2.0
        X_dirty = X.copy()
        X_dirty[rng.uniform(size=X.shape) < 0.2] = np.nan
        ensemble = PossibleWorldsEnsemble(LinearRegression(), n_worlds=8,
                                          sampler="uniform", seed=0)
        ensemble.fit(X_dirty, y)
        lo, hi = ensemble.prediction_interval(X[:5])
        assert np.all(lo <= hi)

    def test_unknown_sampler_rejected(self):
        with pytest.raises(ValidationError):
            PossibleWorldsEnsemble(KNeighborsClassifier(3), sampler="magic")

    def test_predict_before_fit_rejected(self, incomplete_data):
        _, _, X_test, _ = incomplete_data
        with pytest.raises(ValidationError):
            PossibleWorldsEnsemble(KNeighborsClassifier(3)).predict_all(X_test)
