"""Unit tests for certain/approximately-certain model checks."""

import numpy as np
import pytest

from repro.core.exceptions import ValidationError
from repro.datasets import make_linear_separable
from repro.uncertain import certain_model_linear_regression, certain_model_svm


class TestCertainLinearRegression:
    def test_no_missing_is_trivially_certain(self, rng):
        X = rng.standard_normal((30, 2))
        y = X[:, 0]
        outcome = certain_model_linear_regression(X, y)
        assert outcome["certain"]
        assert outcome["n_incomplete"] == 0

    def test_missing_cell_on_irrelevant_feature_is_certain(self):
        """Feature 1 has zero coefficient, so rows missing it cannot move
        the optimum: the model is certain within tolerance."""
        rng = np.random.default_rng(0)
        X = rng.standard_normal((60, 2))
        y = 3.0 * X[:, 0]  # feature 1 irrelevant
        X_dirty = X.copy()
        X_dirty[5, 1] = np.nan
        outcome = certain_model_linear_regression(X_dirty, y, tolerance=1e-4)
        assert outcome["certain"]

    def test_missing_cell_on_relevant_feature_is_uncertain(self):
        rng = np.random.default_rng(1)
        X = rng.standard_normal((60, 2))
        y = 3.0 * X[:, 0] + 2.0 * X[:, 1]
        X_dirty = X.copy()
        X_dirty[5, 0] = np.nan
        outcome = certain_model_linear_regression(X_dirty, y, tolerance=1e-4)
        assert not outcome["certain"]
        assert outcome["worst_residuals"].max() > 1.0

    def test_tolerance_relaxation(self):
        rng = np.random.default_rng(2)
        X = rng.standard_normal((60, 2))
        y = 0.01 * X[:, 1] + X[:, 0]
        X_dirty = X.copy()
        X_dirty[3, 1] = np.nan
        strict = certain_model_linear_regression(X_dirty, y, tolerance=0.0)
        relaxed = certain_model_linear_regression(X_dirty, y, tolerance=1.0)
        assert not strict["certain"]
        assert relaxed["certain"]

    def test_too_few_complete_rows_rejected(self):
        X = np.array([[1.0, np.nan], [np.nan, 2.0], [3.0, 4.0]])
        with pytest.raises(ValidationError):
            certain_model_linear_regression(X, np.zeros(3))


class TestCertainSVM:
    def test_wide_margin_incomplete_rows_are_certain(self):
        """Incomplete rows far on the correct side of a wide-margin
        separator stay non-support-vectors for every completion of an
        irrelevant feature."""
        X, y, w = make_linear_separable(120, n_features=2, margin=2.0, seed=3)
        X = np.column_stack([X, np.zeros(len(X))])  # irrelevant 3rd feature
        X_dirty = X.copy()
        far = np.argmax(np.abs(X[:, :2] @ w))
        X_dirty[far, 2] = np.nan
        outcome = certain_model_svm(X_dirty, y, margin_slack=0.5,
                                    bounds=(np.full(3, -0.1),
                                            np.full(3, 0.1)))
        assert outcome["certain"]

    def test_near_margin_incomplete_rows_are_uncertain(self):
        X, y, _ = make_linear_separable(80, n_features=2, margin=0.2, seed=4)
        X_dirty = X.copy()
        X_dirty[0, 0] = np.nan
        outcome = certain_model_svm(X_dirty, y)
        assert not outcome["certain"]

    def test_multiclass_rejected(self):
        from repro.datasets import make_blobs

        X, y = make_blobs(30, centers=3, seed=5)
        with pytest.raises(ValidationError):
            certain_model_svm(X, y)

    def test_no_missing_trivially_certain(self):
        X, y, _ = make_linear_separable(50, seed=6)
        outcome = certain_model_svm(X, y)
        assert outcome["certain"]
