"""Unit tests for CPClean-style certain predictions."""

import numpy as np
import pytest

from repro.core.exceptions import ValidationError
from repro.datasets import make_blobs
from repro.errors import inject_missing_array
from repro.uncertain import CertainPredictionKNN, cpclean_greedy


@pytest.fixture(scope="module")
def incomplete_blobs():
    X, y = make_blobs(80, n_features=2, centers=2, cluster_std=1.0, seed=12)
    X_test, y_test = make_blobs(25, n_features=2, centers=2,
                                cluster_std=1.0, seed=12)
    X_dirty, mask = inject_missing_array(X, fraction=0.15, columns=[0],
                                         seed=3)
    return {"X": X, "y": y, "X_dirty": X_dirty, "mask": mask,
            "X_test": X_test, "y_test": y_test}


class TestCertainPredictionKNN:
    def test_complete_data_is_always_certain(self, incomplete_blobs):
        checker = CertainPredictionKNN(k=3).fit(incomplete_blobs["X"],
                                                incomplete_blobs["y"])
        assert checker.certain_fraction(incomplete_blobs["X_test"]) == 1.0

    def test_certain_predictions_match_ground_truth_worlds(
            self, incomplete_blobs):
        """Whenever the checker says 'certain', the true-world k-NN must
        predict exactly that label (the true world is one completion)."""
        from repro.ml import KNeighborsClassifier

        checker = CertainPredictionKNN(k=3).fit(incomplete_blobs["X_dirty"],
                                                incomplete_blobs["y"])
        truth_model = KNeighborsClassifier(3).fit(incomplete_blobs["X"],
                                                  incomplete_blobs["y"])
        for x in incomplete_blobs["X_test"]:
            outcome = checker.check(x)
            if outcome["certain"]:
                assert outcome["prediction"] == \
                    truth_model.predict(x[None, :])[0]

    def test_certainty_never_contradicted_by_sampled_worlds(
            self, incomplete_blobs):
        """Monte-Carlo check of the worst-case argument: no sampled
        completion may flip a certain prediction."""
        from repro.ml import KNeighborsClassifier

        X_dirty = incomplete_blobs["X_dirty"]
        checker = CertainPredictionKNN(k=3).fit(X_dirty, incomplete_blobs["y"])
        lo = np.nanmin(X_dirty, axis=0)
        hi = np.nanmax(X_dirty, axis=0)
        nan = np.isnan(X_dirty)
        rng = np.random.default_rng(1)
        certain_points = [
            (x, checker.check(x)["prediction"])
            for x in incomplete_blobs["X_test"]
            if checker.check(x)["certain"]
        ]
        assert certain_points  # the test is vacuous otherwise
        for _ in range(15):
            world = X_dirty.copy()
            fills = rng.uniform(lo, hi, size=world.shape)
            world[nan] = fills[nan]
            model = KNeighborsClassifier(3).fit(world, incomplete_blobs["y"])
            for x, certain_label in certain_points:
                assert model.predict(x[None, :])[0] == certain_label

    def test_more_missingness_less_certainty(self):
        X, y = make_blobs(80, n_features=2, centers=2, cluster_std=1.2,
                          seed=5)
        X_test, _ = make_blobs(30, n_features=2, centers=2, cluster_std=1.2,
                               seed=5)
        fractions = []
        for missing in (0.05, 0.5):
            X_dirty, _ = inject_missing_array(X, fraction=missing,
                                              columns=[0, 1], seed=6)
            checker = CertainPredictionKNN(k=3).fit(X_dirty, y)
            fractions.append(checker.certain_fraction(X_test))
        assert fractions[0] >= fractions[1]

    def test_uncertain_outcome_reports_midpoint_guess(self):
        X = np.array([[0.0], [np.nan], [np.nan]])
        y = np.array([0, 1, 1])
        checker = CertainPredictionKNN(k=3, bounds=(np.array([-10.0]),
                                                    np.array([10.0]))).fit(X, y)
        outcome = checker.check(np.array([0.0]))
        if not outcome["certain"]:
            assert "midpoint_guess" in outcome

    def test_multiclass_rejected(self):
        X, y = make_blobs(30, centers=3, seed=7)
        with pytest.raises(ValidationError):
            CertainPredictionKNN(k=3).fit(X, y)

    def test_k_exceeding_train_rejected(self):
        with pytest.raises(ValidationError):
            CertainPredictionKNN(k=10).fit(np.ones((3, 1)),
                                           np.array([0, 1, 0]))


class TestCpcleanGreedy:
    def test_certainty_trajectory_monotone(self, incomplete_blobs):
        outcome = cpclean_greedy(incomplete_blobs["X_dirty"],
                                 incomplete_blobs["y"],
                                 incomplete_blobs["X"],
                                 incomplete_blobs["X_test"][:10],
                                 k=3, max_cleaned=6)
        trajectory = outcome["certain_fraction"]
        assert all(b >= a - 1e-9 for a, b in zip(trajectory, trajectory[1:]))

    def test_stops_when_all_certain(self, incomplete_blobs):
        outcome = cpclean_greedy(incomplete_blobs["X_dirty"],
                                 incomplete_blobs["y"],
                                 incomplete_blobs["X"],
                                 incomplete_blobs["X_test"][:10], k=3)
        if outcome["certain_fraction"][-1] == 1.0:
            incomplete_rows = int(np.isnan(
                incomplete_blobs["X_dirty"]).any(axis=1).sum())
            assert outcome["n_cleaned"] <= incomplete_rows

    def test_budget_respected(self, incomplete_blobs):
        outcome = cpclean_greedy(incomplete_blobs["X_dirty"],
                                 incomplete_blobs["y"],
                                 incomplete_blobs["X"],
                                 incomplete_blobs["X_test"][:10],
                                 k=3, max_cleaned=2)
        assert outcome["n_cleaned"] <= 2


class TestIncrementalCandidateEvaluation:
    """The greedy selector's incremental candidate path must be
    bit-identical to refitting a fresh checker per candidate."""

    @staticmethod
    def _shared(X, X_clean, y, X_test, k):
        from repro.uncertain.cpclean import _distance_bounds

        nan = np.isnan(X)
        lo = np.nanmin(X, axis=0)
        hi = np.nanmax(X, axis=0)
        X_lo = np.where(nan, np.broadcast_to(lo, X.shape), X)
        X_hi = np.where(nan, np.broadcast_to(hi, X.shape), X)
        base_dmin, base_dmax = _distance_bounds(X_lo, X_hi, X_test)
        exact = _distance_bounds(X_clean, X_clean, X_test)[0]
        return (X, X_clean, y, X_test, k, np.unique(y), lo, hi,
                base_dmin, base_dmax, exact)

    def _assert_all_candidates_match(self, X, X_clean, y, X_test, k=3):
        from repro.uncertain.cpclean import (
            _candidate_fraction_task,
            _incremental_candidate_fraction_task,
        )

        shared = self._shared(X, X_clean, y, X_test, k)
        brute_shared = (X, X_clean, y, X_test, k)
        for row in np.flatnonzero(np.isnan(X).any(axis=1)):
            brute = _candidate_fraction_task(brute_shared, int(row))
            fast = _incremental_candidate_fraction_task(shared, int(row))
            assert float(brute).hex() == float(fast).hex()

    def test_bit_identical_to_brute_force(self, incomplete_blobs):
        self._assert_all_candidates_match(
            incomplete_blobs["X_dirty"], incomplete_blobs["X"],
            incomplete_blobs["y"], incomplete_blobs["X_test"])

    def test_bit_identical_when_fills_change(self, incomplete_blobs):
        # A hidden extreme value: revealing it moves the column minimum,
        # which shifts every other incomplete row's fill values — the
        # incremental path must detect this and recompute.
        X_clean = incomplete_blobs["X"].copy()
        X_dirty = incomplete_blobs["X_dirty"]
        row = int(np.flatnonzero(np.isnan(X_dirty).any(axis=1))[0])
        col = int(np.flatnonzero(np.isnan(X_dirty[row]))[0])
        X_clean[row, col] = X_clean[:, col].min() - 10.0
        self._assert_all_candidates_match(
            X_dirty, X_clean, incomplete_blobs["y"],
            incomplete_blobs["X_test"])

    def test_greedy_matches_brute_force_reference(self, incomplete_blobs):
        from repro.uncertain.cpclean import _candidate_fraction_task

        X_dirty = incomplete_blobs["X_dirty"]
        X_clean = incomplete_blobs["X"]
        y, X_test = incomplete_blobs["y"], incomplete_blobs["X_test"]
        result = cpclean_greedy(X_dirty, y, X_clean, X_test, k=3,
                                max_cleaned=4)

        # Reference: the pre-kernel greedy loop, refitting per candidate.
        X_current = X_dirty.copy()
        incomplete = list(np.flatnonzero(np.isnan(X_current).any(axis=1)))
        checker = CertainPredictionKNN(k=3).fit(X_current, y)
        cleaned = [checker.certain_fraction(X_test)]
        rows = []
        while incomplete and len(rows) < 4 and cleaned[-1] < 1.0:
            fractions = [_candidate_fraction_task(
                (X_current, X_clean, y, X_test, 3), r) for r in incomplete]
            best = int(np.argmax(fractions))
            rows.append(incomplete[best])
            X_current[incomplete[best]] = X_clean[incomplete[best]]
            cleaned.append(fractions[best])
            incomplete.pop(best)
        assert result["cleaned_rows"] == rows
        assert [float(f).hex() for f in result["certain_fraction"]] == \
            [float(f).hex() for f in cleaned]


@pytest.fixture(scope="module")
def hard_blobs():
    """Overlapping clusters + heavy missingness: the greedy selector
    genuinely cleans several rows (the well-separated fixture above is
    often certain from the start)."""
    X, y = make_blobs(60, n_features=2, centers=2, cluster_std=2.5, seed=12)
    X_test, _ = make_blobs(20, n_features=2, centers=2, cluster_std=2.5,
                           seed=13)
    from repro.errors import inject_missing_array
    X_dirty, _ = inject_missing_array(X, fraction=0.3, seed=3)
    return {"X": X, "y": y, "X_dirty": X_dirty, "X_test": X_test}


class TestCheckpointResume:
    def _select(self, hard_blobs, **kwargs):
        return cpclean_greedy(hard_blobs["X_dirty"], hard_blobs["y"],
                              hard_blobs["X"], hard_blobs["X_test"], k=3,
                              max_cleaned=5, **kwargs)

    def test_resume_reproduces_selection(self, hard_blobs, tmp_path):
        ref = self._select(hard_blobs)
        assert ref["n_cleaned"] == 5  # the scenario must exercise the loop
        self._select(hard_blobs, checkpoint=tmp_path)
        from repro.runtime import CheckpointStore
        # Keep only the oldest surviving record — a kill mid-selection.
        for record in CheckpointStore(tmp_path).record_paths()[1:]:
            record.unlink()
        resumed = self._select(hard_blobs, resume_from=tmp_path)
        assert resumed["cleaned_rows"] == ref["cleaned_rows"]
        assert [float(f).hex() for f in resumed["certain_fraction"]] == \
            [float(f).hex() for f in ref["certain_fraction"]]
        assert resumed["n_cleaned"] == ref["n_cleaned"]

    def test_resume_extends_budget(self, hard_blobs, tmp_path):
        """The greedy order is a prefix property: a snapshot from a
        budget-3 run seeds a budget-5 run without divergence."""
        ref = self._select(hard_blobs)
        cpclean_greedy(hard_blobs["X_dirty"], hard_blobs["y"],
                       hard_blobs["X"], hard_blobs["X_test"],
                       k=3, max_cleaned=3, checkpoint=tmp_path)
        resumed = self._select(hard_blobs, resume_from=tmp_path)
        assert resumed["cleaned_rows"] == ref["cleaned_rows"]
        assert [float(f).hex() for f in resumed["certain_fraction"]] == \
            [float(f).hex() for f in ref["certain_fraction"]]

    def test_identity_mismatch_rejected(self, hard_blobs, tmp_path):
        self._select(hard_blobs, checkpoint=tmp_path)
        with pytest.raises(ValidationError, match="different job"):
            cpclean_greedy(hard_blobs["X_dirty"], hard_blobs["y"],
                           hard_blobs["X"], hard_blobs["X_test"], k=5,
                           resume_from=tmp_path)
