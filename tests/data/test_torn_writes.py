"""Crash-consistency tests: SIGKILL mid-publish never tears a shard.

A subprocess driver writes a sharded dataset with the
``REPRO_DATA_SLOW_PUBLISH`` seam armed so the parent can SIGKILL it
deterministically *inside* a publish window — after the temp file is
fsynced but before the rename. The format's contract: no partial shard
or manifest is ever visible under its final name, the journal only
references checksum-valid shards, and resuming completes a dataset
byte-identical to an uninterrupted run.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.exceptions import ValidationError
from repro.data import ShardWriter, ShardedDataset
from repro.data.shards import MANIFEST_NAME, PARTIAL_MANIFEST_NAME

SRC = str(Path(__file__).resolve().parents[2] / "src")

_DRIVER = '''\
"""Torn-write driver (modes: ref | shard | manifest)."""
import os
import sys

import numpy as np

from repro.data import ShardWriter
from repro.data.shards import _SLOW_PUBLISH_ENV

META = {"origin": "torn-write-test"}


def parts():
    rng = np.random.default_rng(42)
    X = rng.normal(size=(30, 2))
    y = rng.integers(0, 2, size=30)
    return [{"X": X[i:i + 10], "y": y[i:i + 10]} for i in range(0, 30, 10)]


def main():
    mode, path, ready = sys.argv[1:4]
    chunks = parts()
    writer = ShardWriter(path)
    if mode == "ref":
        for chunk in chunks:
            writer.append(chunk)
        writer.finalize(META)
        return
    if mode == "shard":
        for chunk in chunks[:2]:
            writer.append(chunk)
        os.environ[_SLOW_PUBLISH_ENV] = "60"
        open(ready, "w").close()
        writer.append(chunks[2])  # parent SIGKILLs inside this publish
    else:  # manifest
        for chunk in chunks:
            writer.append(chunk)
        os.environ[_SLOW_PUBLISH_ENV] = "60"
        open(ready, "w").close()
        writer.finalize(META)  # parent SIGKILLs inside this publish


main()
'''


def _write_driver(tmp_path) -> Path:
    driver = tmp_path / "torn_driver.py"
    driver.write_text(_DRIVER)
    return driver


def _reference(driver, tmp_path) -> ShardedDataset:
    env = dict(os.environ, PYTHONPATH=SRC)
    subprocess.run([sys.executable, str(driver), "ref",
                    str(tmp_path / "ref"), "unused"],
                   check=True, timeout=120, env=env, cwd=tmp_path)
    return ShardedDataset(tmp_path / "ref")


def _kill_mid_publish(driver, tmp_path, mode) -> Path:
    """Run the driver in ``mode``, SIGKILL it inside the armed publish
    window (temp file on disk, rename pending), return the dataset dir."""
    target = tmp_path / mode
    ready = tmp_path / f"{mode}.ready"
    env = dict(os.environ, PYTHONPATH=SRC)
    process = subprocess.Popen(
        [sys.executable, str(driver), mode, str(target), str(ready)],
        env=env, cwd=tmp_path)
    try:
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if ready.exists() and list(target.glob("*.tmp")):
                break
            if process.poll() is not None:
                raise AssertionError(
                    f"driver exited early with {process.returncode}")
            time.sleep(0.02)
        else:
            raise AssertionError("publish window never opened")
        process.send_signal(signal.SIGKILL)
        process.wait(timeout=60)
    finally:
        if process.poll() is None:
            process.kill()
            process.wait()
    assert process.returncode != 0
    return target


@pytest.mark.slow
class TestTornShardWrite:
    def test_sigkill_mid_shard_write_leaves_no_partial_shard(self, tmp_path):
        driver = _write_driver(tmp_path)
        reference = _reference(driver, tmp_path)
        target = _kill_mid_publish(driver, tmp_path, "shard")

        # The interrupted publish left its temp file, never the shard.
        assert list(target.glob("*.tmp"))
        visible = sorted(p.name for p in target.glob("shard-*.shard"))
        assert visible == [reference.shards[i].name for i in range(2)]
        # Every visible shard is whole — bit-for-bit the reference bytes.
        for i, name in enumerate(visible):
            assert (target / name).read_bytes() == \
                reference.shard_path(i).read_bytes()
        # Not readable as a dataset; the journal survives for resume.
        assert not (target / MANIFEST_NAME).exists()
        assert (target / PARTIAL_MANIFEST_NAME).exists()
        with pytest.raises(ValidationError, match="partial"):
            ShardedDataset(target)

        # Resume re-verifies the journal, sweeps the temp, and finishes
        # a dataset byte-identical to the uninterrupted run.
        writer = ShardWriter.resume(target)
        assert writer.n_shards == 2
        assert not list(target.glob("*.tmp"))
        chunk = {name: reference.load_shard(2)[name]
                 for name in reference.array_names}
        writer.append(chunk)
        resumed = writer.finalize({"origin": "torn-write-test"})
        for i in range(reference.n_shards):
            assert resumed.shard_path(i).read_bytes() == \
                reference.shard_path(i).read_bytes()
        assert (target / MANIFEST_NAME).read_bytes() == \
            (reference.path / MANIFEST_NAME).read_bytes()


@pytest.mark.slow
class TestTornManifestWrite:
    def test_sigkill_mid_manifest_write_is_recoverable(self, tmp_path):
        driver = _write_driver(tmp_path)
        reference = _reference(driver, tmp_path)
        target = _kill_mid_publish(driver, tmp_path, "manifest")

        # All shards were published whole; the manifest never appeared.
        assert not (target / MANIFEST_NAME).exists()
        assert (target / PARTIAL_MANIFEST_NAME).exists()
        visible = sorted(p.name for p in target.glob("shard-*.shard"))
        assert visible == [info.name for info in reference.shards]
        for i, name in enumerate(visible):
            assert (target / name).read_bytes() == \
                reference.shard_path(i).read_bytes()

        # Finalize-after-resume publishes the identical manifest.
        writer = ShardWriter.resume(target)
        assert writer.n_shards == reference.n_shards
        resumed = writer.finalize({"origin": "torn-write-test"})
        assert resumed.verify_all() == []
        assert (target / MANIFEST_NAME).read_bytes() == \
            (reference.path / MANIFEST_NAME).read_bytes()
        assert not (target / PARTIAL_MANIFEST_NAME).exists()
