"""Tests for the on-disk sharded dataset format."""

import numpy as np
import pytest

from repro.core.exceptions import ValidationError
from repro.data import (
    ShardCorruptionError,
    ShardedDataset,
    ShardInfo,
    ShardWriter,
    write_shards,
)
from repro.data.shards import MANIFEST_NAME, PARTIAL_MANIFEST_NAME
from repro.observe import Observer


@pytest.fixture()
def arrays(rng):
    return {"X": rng.normal(size=(37, 3)),
            "y": rng.integers(0, 3, size=37)}


class TestWriteAndRead:
    def test_roundtrip_bit_identical(self, tmp_path, arrays):
        dataset = write_shards(tmp_path / "d", arrays, rows_per_shard=10)
        assert dataset.n_shards == 4
        assert dataset.n_rows == 37
        assert dataset.array_names == ["X", "y"]
        loaded = {name: np.concatenate([dataset.load_shard(i)[name]
                                        for i in range(dataset.n_shards)])
                  for name in dataset.array_names}
        for name in arrays:
            assert loaded[name].tobytes() == \
                np.asarray(arrays[name]).tobytes()
            assert loaded[name].dtype == np.asarray(arrays[name]).dtype

    def test_shard_files_are_byte_deterministic(self, tmp_path, arrays):
        a = write_shards(tmp_path / "a", arrays, rows_per_shard=10)
        b = write_shards(tmp_path / "b", arrays, rows_per_shard=10)
        for i in range(a.n_shards):
            assert a.shard_path(i).read_bytes() == b.shard_path(i).read_bytes()
            assert a.shards[i].sha256 == b.shards[i].sha256

    def test_object_dtype_roundtrip(self, tmp_path):
        labels = np.array(["a", "b", None, "longer-string"], dtype=object)
        dataset = write_shards(tmp_path / "d", {"labels": labels},
                               rows_per_shard=2)
        out = np.concatenate([dataset.load_shard(i)["labels"]
                              for i in range(dataset.n_shards)])
        assert all(x == y for x, y in zip(out, labels))

    def test_row_offsets(self, tmp_path, arrays):
        dataset = write_shards(tmp_path / "d", arrays, rows_per_shard=10)
        assert [dataset.row_offset(i) for i in range(4)] == [0, 10, 20, 30]
        assert [info.rows for info in dataset.shards] == [10, 10, 10, 7]

    def test_meta_persisted(self, tmp_path, arrays):
        dataset = write_shards(tmp_path / "d", arrays, rows_per_shard=20,
                               meta={"source": "unit-test"})
        reopened = ShardedDataset(dataset.path)
        assert reopened.meta["source"] == "unit-test"

    def test_observer_counters(self, tmp_path, arrays):
        observer = Observer(run_id="t")
        dataset = write_shards(tmp_path / "d", arrays, rows_per_shard=10,
                               observer=observer)
        dataset.load_shard(0, observer=observer)
        metrics = observer.as_dict()["metrics"]
        assert metrics["data.shards_written"] == 4
        assert metrics["data.bytes_written"] > 0
        assert metrics["data.shards_read"] == 1
        assert metrics["data.bytes_read"] > 0

    def test_validation_errors(self, tmp_path, arrays):
        with pytest.raises(ValidationError):
            write_shards(tmp_path / "a", arrays, rows_per_shard=0)
        with pytest.raises(ValidationError):
            write_shards(tmp_path / "b", {}, rows_per_shard=5)
        with pytest.raises(ValidationError):
            write_shards(tmp_path / "c",
                         {"X": np.zeros(4), "y": np.zeros(5)},
                         rows_per_shard=5)

    def test_open_requires_manifest(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(ValidationError, match="not a sharded dataset"):
            ShardedDataset(tmp_path / "empty")


class TestWriter:
    def test_mismatched_array_names_rejected(self, tmp_path):
        writer = ShardWriter(tmp_path / "d")
        writer.append({"X": np.zeros(3)})
        with pytest.raises(ValidationError, match="do not match"):
            writer.append({"Z": np.zeros(3)})

    def test_unequal_lengths_rejected(self, tmp_path):
        writer = ShardWriter(tmp_path / "d")
        with pytest.raises(ValidationError, match="share one length"):
            writer.append({"X": np.zeros(3), "y": np.zeros(4)})

    def test_refuses_finalized_directory(self, tmp_path, arrays):
        write_shards(tmp_path / "d", arrays, rows_per_shard=10)
        with pytest.raises(ValidationError, match="finalized"):
            ShardWriter(tmp_path / "d")

    def test_refuses_partial_directory_without_resume(self, tmp_path):
        writer = ShardWriter(tmp_path / "d")
        writer.append({"X": np.zeros(3)})
        with pytest.raises(ValidationError, match="resume"):
            ShardWriter(tmp_path / "d")

    def test_resume_continues_after_last_complete_shard(self, tmp_path,
                                                        arrays):
        reference = write_shards(tmp_path / "ref", arrays, rows_per_shard=10)
        # Write the first two shards, "die", resume, finish.
        writer = ShardWriter(tmp_path / "d")
        for start in (0, 10):
            writer.append({n: a[start:start + 10]
                           for n, a in arrays.items()})
        del writer  # killed before finalize — journal stays on disk

        resumed = ShardWriter.resume(tmp_path / "d")
        assert resumed.n_shards == 2
        for start in (20, 30):
            resumed.append({n: a[start:start + 10]
                            for n, a in arrays.items()})
        dataset = resumed.finalize()
        for i in range(reference.n_shards):
            assert dataset.shard_path(i).read_bytes() == \
                reference.shard_path(i).read_bytes()
        assert not (dataset.path / PARTIAL_MANIFEST_NAME).exists()

    def test_resume_detects_journaled_shard_corruption(self, tmp_path,
                                                       arrays):
        writer = ShardWriter(tmp_path / "d")
        writer.append({n: a[:10] for n, a in arrays.items()})
        shard = tmp_path / "d" / writer.shards[0].name
        shard.write_bytes(shard.read_bytes()[:-3] + b"zzz")
        with pytest.raises(ShardCorruptionError):
            ShardWriter.resume(tmp_path / "d")

    def test_resume_sweeps_stray_temp_files(self, tmp_path):
        writer = ShardWriter(tmp_path / "d")
        writer.append({"X": np.zeros(3)})
        stray = tmp_path / "d" / "deadbeef.tmp"
        stray.write_bytes(b"half-written shard")
        resumed = ShardWriter.resume(tmp_path / "d")
        assert not stray.exists()
        resumed.finalize()

    def test_context_manager_finalizes_on_clean_exit(self, tmp_path):
        with ShardWriter(tmp_path / "d") as writer:
            writer.append({"X": np.arange(4)})
        dataset = ShardedDataset(tmp_path / "d")
        assert dataset.n_shards == 1

    def test_empty_finalize_rejected(self, tmp_path):
        with pytest.raises(ValidationError, match="empty"):
            ShardWriter(tmp_path / "d").finalize()

    def test_partial_dataset_open_error_is_helpful(self, tmp_path):
        writer = ShardWriter(tmp_path / "d")
        writer.append({"X": np.zeros(3)})
        with pytest.raises(ValidationError, match="partial dataset"):
            ShardedDataset(tmp_path / "d")


class TestCorruption:
    def test_checksum_failure_raises(self, tmp_path, arrays):
        dataset = write_shards(tmp_path / "d", arrays, rows_per_shard=10)
        path = dataset.shard_path(1)
        path.write_bytes(path.read_bytes()[:-4] + b"XXXX")
        with pytest.raises(ShardCorruptionError) as excinfo:
            dataset.load_shard(1)
        assert excinfo.value.index == 1
        assert excinfo.value.path == path
        # unverified load still decodes (the container is intact)
        dataset.load_shard(1, verify=False)

    def test_garbled_container_raises(self, tmp_path, arrays):
        dataset = write_shards(tmp_path / "d", arrays, rows_per_shard=10)
        dataset.shard_path(0).write_bytes(b"not a shard at all")
        with pytest.raises(ShardCorruptionError):
            dataset.load_shard(0)

    def test_verify_all_reports_damage(self, tmp_path, arrays):
        dataset = write_shards(tmp_path / "d", arrays, rows_per_shard=10)
        assert dataset.verify_all() == []
        dataset.shard_path(2).write_bytes(b"junk")
        assert dataset.verify_all() == [2]

    def test_quarantine_moves_file(self, tmp_path, arrays):
        dataset = write_shards(tmp_path / "d", arrays, rows_per_shard=10)
        target = dataset.quarantine_shard(1)
        assert target is not None and target.exists()
        assert not dataset.shard_path(1).exists()
        with pytest.raises(ShardCorruptionError, match="quarantine"):
            dataset.load_shard(1)

    def test_heal_from_mirror_restores_bytes(self, tmp_path, arrays):
        dataset = write_shards(tmp_path / "d", arrays, rows_per_shard=10,
                               mirror=True)
        original = dataset.shard_path(1).read_bytes()
        dataset.shard_path(1).write_bytes(b"bit rot")
        assert dataset.heal_from_mirror(1)
        assert dataset.shard_path(1).read_bytes() == original
        assert dataset.verify_all() == []

    def test_heal_without_mirror_fails(self, tmp_path, arrays):
        dataset = write_shards(tmp_path / "d", arrays, rows_per_shard=10)
        dataset.shard_path(1).write_bytes(b"bit rot")
        assert not dataset.heal_from_mirror(1)

    def test_torn_manifest_detected(self, tmp_path, arrays):
        dataset = write_shards(tmp_path / "d", arrays, rows_per_shard=10)
        manifest = dataset.path / MANIFEST_NAME
        manifest.write_text(manifest.read_text()[:-20])
        with pytest.raises(ShardCorruptionError, match="manifest"):
            ShardedDataset(dataset.path)


class TestShardInfo:
    def test_dict_roundtrip(self):
        info = ShardInfo(index=3, name="shard-00003.shard", rows=128,
                         sha256="ab" * 32, nbytes=4096)
        assert ShardInfo.from_dict(info.as_dict()) == info
