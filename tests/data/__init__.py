"""Tests for repro.data: sharded datasets and the reading service."""
