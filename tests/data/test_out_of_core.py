"""ISSUE acceptance: out-of-core pipelines are bit-identical to in-memory.

Every consumer wired to the sharded data layer — Shapley estimation via
``Utility.from_sharded``, the iterative cleaner on a spilled frame, and
SISA unlearning via ``fit_sharded`` — must produce results hex-identical
to the in-memory path on every backend, with or without reader-worker
crashes, a corrupted shard healed from its mirror, or a SIGKILL +
checkpoint-resume along the way.
"""

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.cleaning import CleaningOracle, IterativeCleaner
from repro.data import transform_shards, write_shards
from repro.dataframe import DataFrame
from repro.datasets import make_blobs
from repro.errors import inject_label_errors
from repro.importance import MonteCarloShapley, Utility
from repro.importance.base import hex_floats
from repro.ml import KNeighborsClassifier, LogisticRegression
from repro.runtime import FaultPolicy, Runtime
from repro.unlearning import ShardedUnlearner

SRC = str(Path(__file__).resolve().parents[2] / "src")

BACKENDS = ["serial", "thread", "process"]


class WorkerCrash(BaseException):
    """Kills a reader worker thread (escapes its ``except Exception``)."""


@pytest.fixture(autouse=True)
def quiet_crash_tracebacks(monkeypatch):
    monkeypatch.setattr(threading, "excepthook", lambda args: None)


class CrashOnce:
    """load_fn seam: the first load of ``index`` kills its worker."""

    def __init__(self, index):
        self.index = index
        self.lock = threading.Lock()
        self.armed = True

    def __call__(self, dataset, index):
        with self.lock:
            if index == self.index and self.armed:
                self.armed = False
                raise WorkerCrash("injected")
        return dataset.load_shard(index)


def faulty_reader(shard_index):
    return {"workers": 2, "load_fn": CrashOnce(shard_index),
            "faults": FaultPolicy(max_worker_crashes=2)}


def corrupt_shard(dataset, index):
    path = dataset.shard_path(index)
    path.write_bytes(path.read_bytes()[:-4] + b"XXXX")


# --- Shapley via Utility.from_sharded ---------------------------------------

@pytest.fixture(scope="module")
def shapley_setting(tmp_path_factory):
    X, y = make_blobs(80, n_features=3, centers=2, seed=7)
    path = tmp_path_factory.mktemp("shapley") / "train"
    dataset = write_shards(path, {"X": X[:60], "y": y[:60]},
                           rows_per_shard=13, mirror=True)
    return {"X": X[:60], "y": y[:60], "X_valid": X[60:], "y_valid": y[60:],
            "dataset": dataset}


def shapley_scores(utility):
    return hex_floats(MonteCarloShapley(n_permutations=5, seed=3)
                      .score(utility))


@pytest.fixture(scope="module")
def shapley_reference(shapley_setting):
    s = shapley_setting
    return shapley_scores(Utility(LogisticRegression(max_iter=40),
                                  s["X"], s["y"],
                                  s["X_valid"], s["y_valid"]))


class TestShapleyOutOfCore:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_hex_identical_on_every_backend(self, shapley_setting,
                                            shapley_reference, backend):
        s = shapley_setting
        with Runtime(backend=backend) as runtime:
            utility = Utility.from_sharded(
                LogisticRegression(max_iter=40), s["dataset"],
                s["X_valid"], s["y_valid"], runtime=runtime)
            assert shapley_scores(utility) == shapley_reference

    def test_hex_identical_under_worker_crash(self, shapley_setting,
                                              shapley_reference):
        s = shapley_setting
        utility = Utility.from_sharded(
            LogisticRegression(max_iter=40), s["dataset"],
            s["X_valid"], s["y_valid"], reader=faulty_reader(1))
        assert shapley_scores(utility) == shapley_reference

    def test_hex_identical_after_mirror_heal(self, shapley_setting,
                                             shapley_reference):
        s = shapley_setting
        corrupt_shard(s["dataset"], 2)
        utility = Utility.from_sharded(
            LogisticRegression(max_iter=40), s["dataset"],
            s["X_valid"], s["y_valid"],
            reader={"on_corrupt": "quarantine",
                    "faults": FaultPolicy(retries=0)})
        assert shapley_scores(utility) == shapley_reference
        assert s["dataset"].verify_all() == []  # healed in place


# --- IterativeCleaner on a spilled frame ------------------------------------

@pytest.fixture(scope="module")
def cleaning_setting():
    X, y = make_blobs(120, n_features=3, centers=2, cluster_std=1.3, seed=19)
    frame = DataFrame({
        "f0": X[:80, 0], "f1": X[:80, 1], "f2": X[:80, 2],
        "label": [str(v) for v in y[:80]],
    })
    dirty, _ = inject_label_errors(frame, column="label", fraction=0.25,
                                   seed=20)
    return {"clean": frame, "dirty": dirty, "X_valid": X[80:],
            "y_valid": np.array([str(v) for v in y[80:]])}


def encode(frame):
    X = frame.select(["f0", "f1", "f2"]).to_numpy()
    y = np.array(frame["label"].to_list())
    return X, y


def run_cleaner(setting, dirty, **run_kwargs):
    cleaner = IterativeCleaner(
        KNeighborsClassifier(5), "knn_shapley",
        CleaningOracle(setting["clean"]), encode=encode, batch=8, seed=3)
    return cleaner.run(dirty, setting["X_valid"], setting["y_valid"],
                       n_rounds=2, **run_kwargs)


class TestCleanerOutOfCore:
    def test_spilled_frame_trajectory_is_hex_identical(self, tmp_path,
                                                       cleaning_setting):
        reference = run_cleaner(cleaning_setting, cleaning_setting["dirty"])
        spilled = cleaning_setting["dirty"].to_shards(
            tmp_path / "spill", rows_per_shard=17)
        result = run_cleaner(cleaning_setting, spilled)
        assert hex_floats(result.scores) == hex_floats(reference.scores)
        assert result.cleaned_ids == reference.cleaned_ids

    def test_trajectory_survives_reader_crash(self, tmp_path,
                                              cleaning_setting):
        reference = run_cleaner(cleaning_setting, cleaning_setting["dirty"])
        spilled = cleaning_setting["dirty"].to_shards(
            tmp_path / "spill", rows_per_shard=17, mirror=True)
        corrupt_shard(spilled, 0)
        result = run_cleaner(
            cleaning_setting, spilled,
            reader={"workers": 2, "load_fn": CrashOnce(2),
                    "faults": FaultPolicy(max_worker_crashes=2, retries=0),
                    "on_corrupt": "quarantine"})
        assert hex_floats(result.scores) == hex_floats(reference.scores)
        assert result.cleaned_ids == reference.cleaned_ids


# --- ShardedUnlearner.fit_sharded -------------------------------------------

@pytest.fixture(scope="module")
def unlearn_setting(tmp_path_factory):
    X, y = make_blobs(90, n_features=3, centers=2, seed=23)
    path = tmp_path_factory.mktemp("unlearn") / "train"
    dataset = write_shards(path, {"X": X[:70], "y": y[:70]},
                           rows_per_shard=15, mirror=True)
    rows = [info.rows for info in dataset.shards]
    assignment = np.repeat(np.arange(dataset.n_shards), rows)
    return {"X": X[:70], "y": y[:70], "X_valid": X[70:], "y_valid": y[70:],
            "dataset": dataset, "assignment": assignment}


def member_bytes(unlearner):
    return [None if m is None else m.coef_.tobytes()
            for m in unlearner.models_]


class TestUnlearnerOutOfCore:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_fit_and_unlearn_match_in_memory(self, unlearn_setting, backend):
        s = unlearn_setting
        reference = ShardedUnlearner(
            LogisticRegression(max_iter=40),
            n_shards=s["dataset"].n_shards, seed=0)
        reference.fit(s["X"], s["y"], assignment=s["assignment"])
        with ShardedUnlearner(LogisticRegression(max_iter=40), seed=0,
                              runtime=backend) as sharded:
            sharded.fit_sharded(s["dataset"])
            assert member_bytes(sharded) == member_bytes(reference)
            assert sharded.retrain_counter_ == reference.retrain_counter_

            targets = [3, 17, 44, 61]
            reference.unlearn(targets)
            sharded.unlearn(targets)
            assert member_bytes(sharded) == member_bytes(reference)
            assert sharded.retrain_counter_ == reference.retrain_counter_
            assert sharded.predict(s["X_valid"]).tolist() == \
                reference.predict(s["X_valid"]).tolist()

    def test_fit_sharded_under_reader_crash(self, unlearn_setting):
        s = unlearn_setting
        reference = ShardedUnlearner(
            LogisticRegression(max_iter=40),
            n_shards=s["dataset"].n_shards, seed=0)
        reference.fit(s["X"], s["y"], assignment=s["assignment"])
        sharded = ShardedUnlearner(LogisticRegression(max_iter=40), seed=0)
        sharded.fit_sharded(s["dataset"], reader=faulty_reader(2))
        assert member_bytes(sharded) == member_bytes(reference)


# --- SIGKILL + snapshot resume ----------------------------------------------

_DRIVER = '''\
"""transform_shards kill/resume driver (modes: ref | run | resume)."""
import sys
import time

from repro.data import transform_shards


def slow_double(index, arrays, rng):
    time.sleep(0.3)
    return ({"X": arrays["X"] * 2 + rng.normal(size=arrays["X"].shape)},
            [float(arrays["X"].sum())])


def main():
    mode, dataset_path, out_path, store = sys.argv[1:5]
    kwargs = {"workers": 1, "checkpoint_every": 1}
    if mode == "run":
        kwargs["checkpoint"] = store
    elif mode == "resume":
        kwargs["checkpoint"] = store
        kwargs["resume_from"] = store
    transform_shards(dataset_path, out_path, slow_double, seed=5, **kwargs)


main()
'''


@pytest.mark.slow
class TestSigkillSnapshotResume:
    def test_killed_transform_resumes_byte_identically(self, tmp_path, rng):
        dataset = write_shards(tmp_path / "in",
                               {"X": rng.normal(size=(48, 2))},
                               rows_per_shard=8)
        driver = tmp_path / "driver.py"
        driver.write_text(_DRIVER)
        env = dict(os.environ, PYTHONPATH=SRC)

        subprocess.run(
            [sys.executable, str(driver), "ref", str(dataset.path),
             str(tmp_path / "ref"), "unused"],
            check=True, timeout=120, env=env, cwd=tmp_path)

        store = tmp_path / "store"
        process = subprocess.Popen(
            [sys.executable, str(driver), "run", str(dataset.path),
             str(tmp_path / "out"), str(store)], env=env, cwd=tmp_path)
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if store.exists() and len(list(store.glob("*.json"))) >= 2:
                    break
                if process.poll() is not None:
                    raise AssertionError(
                        f"driver exited early with {process.returncode}")
                time.sleep(0.02)
            else:
                raise AssertionError("no checkpoint records within 60s")
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()

        # Killed mid-pass: some output shards are journaled, no manifest.
        assert (tmp_path / "out" / "manifest.partial.json").exists()
        assert not (tmp_path / "out" / "manifest.json").exists()

        subprocess.run(
            [sys.executable, str(driver), "resume", str(dataset.path),
             str(tmp_path / "out"), str(store)],
            check=True, timeout=120, env=env, cwd=tmp_path)

        reference = tmp_path / "ref"
        for name in ["manifest.json"] + sorted(
                p.name for p in reference.glob("shard-*.shard")):
            assert (tmp_path / "out" / name).read_bytes() == \
                (reference / name).read_bytes()
