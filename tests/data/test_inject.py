"""Tests for streaming transforms and out-of-core error injection."""

import numpy as np
import pytest

from repro.core.exceptions import ValidationError
from repro.data import (
    ShardedDataset,
    inject_label_errors_sharded,
    inject_missing_sharded,
    read_arrays,
    transform_shards,
    write_shards,
)
from repro.runtime import CheckpointStore


@pytest.fixture()
def dataset(tmp_path, rng):
    X = rng.normal(size=(40, 3))
    y = rng.integers(0, 3, size=40)
    return write_shards(tmp_path / "in", {"X": X, "y": y}, rows_per_shard=9)


def double(index, arrays, rng):
    return {"X": arrays["X"] * 2, "y": arrays["y"]}, {"shard": index}


class TestTransformShards:
    def test_transform_applies_fn_per_shard(self, tmp_path, dataset):
        out, sides = transform_shards(dataset, tmp_path / "out", double)
        assert sides == [{"shard": i} for i in range(dataset.n_shards)]
        original = read_arrays(dataset)
        result = read_arrays(out)
        assert result["X"].tobytes() == (original["X"] * 2).tobytes()
        assert result["y"].tobytes() == original["y"].tobytes()
        assert out.meta["transform"] == "double"

    def test_seeded_transform_is_deterministic(self, tmp_path, dataset):
        def jitter(index, arrays, rng):
            return {"X": arrays["X"] + rng.normal(size=arrays["X"].shape),
                    "y": arrays["y"]}, None

        a, _ = transform_shards(dataset, tmp_path / "a", jitter, seed=7)
        b, _ = transform_shards(dataset, tmp_path / "b", jitter, seed=7,
                                workers=4, prefetch=1)
        for i in range(a.n_shards):
            assert a.shards[i].sha256 == b.shards[i].sha256

    def test_resume_after_interrupt_is_byte_identical(self, tmp_path,
                                                      dataset):
        reference, ref_sides = transform_shards(
            dataset, tmp_path / "ref", double, seed=3)

        calls = {"n": 0}

        def dying(index, arrays, rng):
            calls["n"] += 1
            if calls["n"] > 2:
                raise RuntimeError("simulated crash")
            return double(index, arrays, rng)

        dying.__name__ = "double"  # same checkpoint identity as `double`
        store = tmp_path / "ckpt"
        with pytest.raises(RuntimeError):
            transform_shards(dataset, tmp_path / "out", dying, seed=3,
                             checkpoint=CheckpointStore(store), workers=1)

        out, sides = transform_shards(
            dataset, tmp_path / "out", double, seed=3,
            checkpoint=CheckpointStore(store), resume_from=store)
        assert sides == ref_sides
        for i in range(reference.n_shards):
            assert out.shard_path(i).read_bytes() == \
                reference.shard_path(i).read_bytes()

    def test_params_change_invalidates_checkpoint_identity(self, tmp_path,
                                                           dataset):
        store = tmp_path / "ckpt"
        transform_shards(dataset, tmp_path / "a", double,
                         params={"fraction": 0.1},
                         checkpoint=CheckpointStore(store))
        # Same fn name, different params: resuming into a
        # differently-parameterized pass must fail loudly, not silently
        # continue from the other job's progress.
        with pytest.raises(ValidationError, match="identity"):
            transform_shards(dataset, tmp_path / "b", double,
                             params={"fraction": 0.2},
                             checkpoint=CheckpointStore(store),
                             resume_from=store)


class TestLabelInjection:
    def test_flips_expected_rows(self, tmp_path, dataset):
        out, flipped = inject_label_errors_sharded(
            dataset, tmp_path / "noisy", fraction=0.2, seed=11)
        clean = read_arrays(dataset)
        noisy = read_arrays(out)
        changed = np.flatnonzero(clean["y"] != noisy["y"])
        assert changed.tolist() == flipped.tolist()
        assert len(flipped) == sum(
            int(round(0.2 * info.rows)) for info in dataset.shards)
        # features untouched
        assert noisy["X"].tobytes() == clean["X"].tobytes()

    def test_deterministic_across_worker_counts(self, tmp_path, dataset):
        a, fa = inject_label_errors_sharded(dataset, tmp_path / "a",
                                            fraction=0.15, seed=5, workers=1)
        b, fb = inject_label_errors_sharded(dataset, tmp_path / "b",
                                            fraction=0.15, seed=5, workers=4)
        assert fa.tolist() == fb.tolist()
        for i in range(a.n_shards):
            assert a.shards[i].sha256 == b.shards[i].sha256

    def test_flip_targets_drawn_from_global_classes(self, tmp_path):
        # All of class 2 lives in the last shard; earlier shards must
        # still be able to flip *to* it.
        y = np.array([0] * 10 + [1] * 10 + [2] * 10)
        X = np.zeros((30, 2))
        dataset = write_shards(tmp_path / "in", {"X": X, "y": y},
                               rows_per_shard=10)
        out, flipped = inject_label_errors_sharded(
            dataset, tmp_path / "noisy", fraction=0.5, seed=0)
        noisy = read_arrays(out)["y"]
        assert set(np.unique(noisy)) <= {0, 1, 2}
        assert len(flipped) == 15

    def test_single_class_rejected(self, tmp_path):
        dataset = write_shards(tmp_path / "in",
                               {"X": np.zeros((8, 1)),
                                "y": np.zeros(8, dtype=int)},
                               rows_per_shard=4)
        with pytest.raises(ValidationError, match="two classes"):
            inject_label_errors_sharded(dataset, tmp_path / "out")


class TestMissingInjection:
    def test_holes_expected_cells(self, tmp_path, dataset):
        out, cells = inject_missing_sharded(
            dataset, tmp_path / "holey", fraction=0.25, seed=4)
        clean = read_arrays(dataset)
        holey = read_arrays(out)
        rows, cols = np.nonzero(np.isnan(holey["X"]))
        observed = sorted(zip(rows.tolist(), cols.tolist()))
        assert observed == [tuple(c) for c in cells.tolist()]
        # untouched cells are bit-identical
        mask = np.isnan(holey["X"])
        assert holey["X"][~mask].tobytes() == clean["X"][~mask].tobytes()
        assert holey["y"].tobytes() == clean["y"].tobytes()

    def test_deterministic_and_accepts_dataset_path(self, tmp_path, dataset):
        a, ca = inject_missing_sharded(dataset, tmp_path / "a",
                                       fraction=0.1, seed=2)
        # a plain path (str) must resolve to the same dataset
        b, cb = inject_missing_sharded(str(dataset.path), tmp_path / "b",
                                       fraction=0.1, seed=2, workers=3)
        assert ca.tolist() == cb.tolist()
        for i in range(a.n_shards):
            assert a.shards[i].sha256 == b.shards[i].sha256

    def test_fraction_validated(self, tmp_path, dataset):
        with pytest.raises(ValidationError):
            inject_missing_sharded(dataset, tmp_path / "out", fraction=1.5)


class TestOutputDatasets:
    def test_outputs_are_valid_datasets(self, tmp_path, dataset):
        out, _ = inject_label_errors_sharded(dataset, tmp_path / "noisy",
                                             seed=0)
        reopened = ShardedDataset(out.path)
        assert reopened.verify_all() == []
        assert reopened.meta["inject"] == "label_errors"
        assert [s.rows for s in reopened.shards] == \
            [s.rows for s in dataset.shards]
