"""Tests for the fault-tolerant prefetching reading service."""

import threading
import time

import numpy as np
import pytest

from repro.core.exceptions import ValidationError
from repro.data import ShardCorruptionError, ShardReader, read_arrays, write_shards
from repro.observe import Observer
from repro.runtime import FaultPolicy, TaskError


class WorkerCrash(BaseException):
    """Escapes the worker's ``except Exception`` net, killing the thread
    — the documented crash-injection seam."""


@pytest.fixture(autouse=True)
def quiet_crash_tracebacks(monkeypatch):
    """Simulated worker crashes are BaseExceptions escaping threads;
    keep threading's default excepthook from spamming stderr."""
    monkeypatch.setattr(threading, "excepthook", lambda args: None)


@pytest.fixture()
def dataset(tmp_path, rng):
    X = rng.normal(size=(50, 2))
    y = rng.integers(0, 2, size=50)
    return write_shards(tmp_path / "d", {"X": X, "y": y}, rows_per_shard=7,
                        mirror=True)


def metrics(observer):
    return observer.as_dict()["metrics"]


class FaultySource:
    """Thread-safe per-shard fault scripting for the load_fn seam."""

    def __init__(self, script):
        # script: {shard_index: [exception_or_None, ...]} consumed in order
        self.script = {k: list(v) for k, v in script.items()}
        self.lock = threading.Lock()

    def __call__(self, dataset, index):
        with self.lock:
            queued = self.script.get(index)
            action = queued.pop(0) if queued else None
        if isinstance(action, BaseException):
            raise action
        if action == "hang":
            time.sleep(10)
        return dataset.load_shard(index)


class TestBasicStreaming:
    @pytest.mark.parametrize("workers", [1, 2, 3, 5])
    def test_manifest_order_any_worker_count(self, dataset, workers):
        with ShardReader(dataset, workers=workers) as reader:
            indices = [batch.index for batch in reader]
        assert indices == list(range(dataset.n_shards))

    def test_read_arrays_bit_identical(self, dataset):
        direct = {name: np.concatenate(
            [dataset.load_shard(i)[name] for i in range(dataset.n_shards)])
            for name in dataset.array_names}
        out = read_arrays(dataset, workers=3, prefetch=2)
        for name in direct:
            assert out[name].tobytes() == direct[name].tobytes()

    def test_batch_offsets_and_rows(self, dataset):
        offset = 0
        for batch in ShardReader(dataset, workers=2):
            assert batch.offset == offset
            assert batch.rows == len(batch["X"])
            offset += batch.rows
        assert offset == dataset.n_rows

    def test_backpressure_bounds_resident_shards(self, dataset):
        """With bounded queues, workers stall instead of reading the
        whole dataset ahead of a slow consumer."""
        reader = ShardReader(dataset, workers=1, prefetch=2)
        iterator = iter(reader)
        next(iterator)
        time.sleep(0.5)  # give the worker time to fill its queue
        # one delivered + at most prefetch queued + one in flight
        assert reader._lanes[0].queue.qsize() <= 2
        reader.close()

    def test_validation(self, dataset):
        with pytest.raises(ValidationError):
            ShardReader(dataset, workers=0)
        with pytest.raises(ValidationError):
            ShardReader(dataset, prefetch=0)
        with pytest.raises(ValidationError):
            ShardReader(dataset, on_corrupt="explode")
        with pytest.raises(ValidationError):
            ShardReader(dataset, start=dataset.n_shards + 1)


class TestRetries:
    def test_transient_failures_retried(self, dataset):
        source = FaultySource({2: [OSError("transient"), OSError("again")]})
        observer = Observer(run_id="t")
        out = read_arrays(dataset, workers=2, load_fn=source,
                          faults=FaultPolicy(retries=2, backoff=0.0),
                          observer=observer)
        clean = read_arrays(dataset)
        assert out["X"].tobytes() == clean["X"].tobytes()
        assert metrics(observer)["data.read_retries"] == 2

    def test_exhausted_retries_raise_task_error(self, dataset):
        source = FaultySource({1: [OSError("io")] * 5})
        with pytest.raises(TaskError) as excinfo:
            read_arrays(dataset, workers=2, load_fn=source,
                        faults=FaultPolicy(retries=1, backoff=0.0))
        assert excinfo.value.stage == "data.read"
        assert excinfo.value.chunk_index == 1
        assert excinfo.value.backend == "reader"


class TestWorkerCrashes:
    def test_crash_recovers_with_identical_stream(self, dataset):
        source = FaultySource({3: [WorkerCrash("boom")]})
        observer = Observer(run_id="t")
        out = read_arrays(dataset, workers=2, load_fn=source,
                          faults=FaultPolicy(max_worker_crashes=2),
                          observer=observer)
        clean = read_arrays(dataset)
        assert out["X"].tobytes() == clean["X"].tobytes()
        assert metrics(observer)["data.worker_crashes"] == 1
        events = [e for e in observer.as_dict()["events"]
                  if e["kind"] == "reader.fault"]
        assert any(e["fault"] == "worker_crash" for e in events)

    def test_repeated_crashes_exhaust_budget(self, dataset):
        source = FaultySource({1: [WorkerCrash("boom")] * 10})
        with pytest.raises(TaskError) as excinfo:
            read_arrays(dataset, workers=2, load_fn=source,
                        faults=FaultPolicy(max_worker_crashes=1))
        assert excinfo.value.stage == "data.read"

    def test_crash_on_every_worker(self, dataset):
        script = {i: [WorkerCrash(f"w{i}")]
                  for i in range(min(2, dataset.n_shards))}
        out = read_arrays(dataset, workers=2, load_fn=FaultySource(script),
                          faults=FaultPolicy(max_worker_crashes=4))
        assert out["X"].shape == (dataset.n_rows, 2)


class TestTimeouts:
    def test_stuck_worker_abandoned_and_lane_respawned(self, dataset):
        source = FaultySource({0: ["hang"]})
        observer = Observer(run_id="t")
        out = read_arrays(dataset, workers=2, load_fn=source,
                          faults=FaultPolicy(timeout=0.4,
                                             max_worker_crashes=2),
                          observer=observer)
        clean = read_arrays(dataset)
        assert out["X"].tobytes() == clean["X"].tobytes()
        assert metrics(observer)["data.read_timeouts"] == 1


class TestCorruptShards:
    def corrupt(self, dataset, index):
        path = dataset.shard_path(index)
        path.write_bytes(path.read_bytes()[:-4] + b"XXXX")

    def test_raise_policy_propagates(self, dataset):
        self.corrupt(dataset, 2)
        with pytest.raises(ShardCorruptionError):
            read_arrays(dataset, workers=2, faults=FaultPolicy(retries=0))

    def test_quarantine_heals_from_mirror_bit_identical(self, dataset):
        clean = read_arrays(dataset)
        self.corrupt(dataset, 2)
        observer = Observer(run_id="t")
        out = read_arrays(dataset, workers=2, on_corrupt="quarantine",
                          faults=FaultPolicy(retries=0), observer=observer)
        assert out["X"].tobytes() == clean["X"].tobytes()
        assert metrics(observer)["data.shards_healed"] == 1
        assert dataset.verify_all() == []  # the primary was re-published

    def test_quarantine_skips_without_mirror(self, tmp_path, rng):
        X = rng.normal(size=(30, 2))
        dataset = write_shards(tmp_path / "nm", {"X": X}, rows_per_shard=6)
        self.corrupt(dataset, 1)
        observer = Observer(run_id="t")
        reader = ShardReader(dataset, workers=2, on_corrupt="quarantine",
                             faults=FaultPolicy(retries=0),
                             observer=observer)
        out = reader.read_all()
        expected = np.concatenate([X[:6], X[12:]])
        assert out["X"].tobytes() == expected.tobytes()
        assert reader.quarantined == [1]
        assert (dataset.path / "quarantine" / dataset.shards[1].name).exists()
        assert metrics(observer)["data.quarantined_shards"] == 1


class TestPauseResume:
    def test_pause_blocks_prefetch(self, dataset):
        reader = ShardReader(dataset, workers=2, prefetch=1)
        iterator = iter(reader)
        next(iterator)
        reader.pause()
        assert reader.paused
        reader.resume()
        remaining = [batch.index for batch in iterator]
        assert remaining == list(range(1, dataset.n_shards))

    def test_pause_does_not_trip_timeout(self, dataset):
        """The consumer's stuck-worker clock must not tick while the
        stream is deliberately paused."""
        reader = ShardReader(dataset, workers=1, prefetch=1,
                             faults=FaultPolicy(timeout=0.3))
        iterator = iter(reader)
        reader.pause()
        consumer_error = []

        def consume():
            try:
                consumer_error.append([b.index for b in iterator])
            except Exception as error:  # pragma: no cover
                consumer_error.append(error)

        thread = threading.Thread(target=consume, daemon=True)
        thread.start()
        time.sleep(0.8)  # well past the timeout while paused
        reader.resume()
        thread.join(timeout=10)
        assert consumer_error and isinstance(consumer_error[0], list)


class TestSnapshot:
    def test_snapshot_resume_continues_exactly(self, dataset):
        reader = ShardReader(dataset, workers=2)
        iterator = iter(reader)
        first = [next(iterator).index, next(iterator).index]
        state = reader.snapshot()
        reader.close()

        resumed = ShardReader.from_snapshot(dataset, state, workers=3)
        rest = [batch.index for batch in resumed]
        assert first + rest == list(range(dataset.n_shards))

    def test_snapshot_event_emitted(self, dataset):
        observer = Observer(run_id="t")
        reader = ShardReader(dataset, observer=observer)
        reader.snapshot()
        events = [e for e in observer.as_dict()["events"]
                  if e["kind"] == "reader.snapshot"]
        assert len(events) == 1 and events[0]["next_index"] == 0

    def test_snapshot_carries_quarantine_record(self, tmp_path, rng):
        X = rng.normal(size=(30, 2))
        dataset = write_shards(tmp_path / "nm", {"X": X}, rows_per_shard=6)
        path = dataset.shard_path(0)
        path.write_bytes(b"junk")
        reader = ShardReader(dataset, on_corrupt="quarantine",
                             faults=FaultPolicy(retries=0))
        iterator = iter(reader)
        batch = next(iterator)  # shard 0 quarantined, shard 1 delivered
        assert batch.index == 1 and batch.offset == 6
        state = reader.snapshot()
        reader.close()
        resumed = ShardReader.from_snapshot(dataset, state)
        assert resumed.quarantined == [0]
        assert [b.index for b in resumed] == list(range(2, 5))

    def test_invalid_snapshot_rejected(self, dataset):
        with pytest.raises(ValidationError):
            ShardReader.from_snapshot(dataset, {"next_index": 2})
