"""Unit tests for DataFrame relational operations."""

import numpy as np
import pytest

from repro.core.exceptions import SchemaError, ValidationError
from repro.dataframe import DataFrame, concat_rows


class TestConstruction:
    def test_shape_and_columns(self, small_frame):
        assert small_frame.shape == (5, 4)
        assert small_frame.columns == ["a", "b", "c", "flag"]

    def test_row_ids_are_unique_across_frames(self):
        f1 = DataFrame({"x": [1, 2]})
        f2 = DataFrame({"x": [3, 4]})
        assert set(f1.row_ids.tolist()).isdisjoint(f2.row_ids.tolist())

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            DataFrame({"a": [1, 2], "b": [1]})

    def test_from_records_fills_missing_keys_with_null(self):
        frame = DataFrame.from_records([{"a": 1}, {"a": 2, "b": "x"}])
        assert frame["b"].to_list() == [None, "x"]

    def test_row_returns_plain_dict(self, small_frame):
        row = small_frame.row(3)
        assert row == {"a": None, "b": "z", "c": 4.5, "flag": True}

    def test_copy_is_independent(self, small_frame):
        clone = small_frame.copy()
        clone["a"] = [9, 9, 9, 9, 9]
        assert small_frame["a"].get(0) == 1

    def test_null_counts(self, small_frame):
        assert small_frame.null_counts() == {"a": 1, "b": 1, "c": 1, "flag": 0}


class TestRowOperations:
    def test_take_keeps_row_ids(self, small_frame):
        subset = small_frame.take([2, 0])
        assert subset.row_ids.tolist() == [small_frame.row_ids[2],
                                           small_frame.row_ids[0]]

    def test_filter_with_mask(self, small_frame):
        result = small_frame.filter(np.asarray(small_frame["b"] == "x"))
        assert len(result) == 2

    def test_filter_with_callable(self, small_frame):
        result = small_frame.filter(lambda r: r["flag"])
        assert len(result) == 3

    def test_drop_rows_by_id(self, small_frame):
        target = small_frame.row_ids[1]
        result = small_frame.drop_rows([target])
        assert len(result) == 4
        assert target not in result.row_ids

    def test_drop_rows_tolerates_unknown_ids_by_default(self, small_frame):
        result = small_frame.drop_rows([small_frame.row_ids[0], 10**9])
        assert len(result) == len(small_frame) - 1

    def test_drop_rows_strict_rejects_unknown_ids(self, small_frame):
        bogus = 10**9
        with pytest.raises(ValidationError) as exc:
            small_frame.drop_rows([small_frame.row_ids[0], bogus],
                                  strict=True)
        assert str(bogus) in str(exc.value)

    def test_drop_rows_strict_accepts_known_ids(self, small_frame):
        result = small_frame.drop_rows(small_frame.row_ids[:2], strict=True)
        assert len(result) == len(small_frame) - 2

    def test_positions_of_roundtrip(self, small_frame):
        ids = small_frame.row_ids[[3, 1]]
        np.testing.assert_array_equal(small_frame.positions_of(ids), [3, 1])

    def test_positions_of_unknown_id_raises(self, small_frame):
        with pytest.raises(SchemaError):
            small_frame.positions_of([10**9])

    def test_sort_by_pushes_nulls_last(self, small_frame):
        result = small_frame.sort_by("c")
        assert result["c"].to_list()[-1] is None
        values = [v for v in result["c"].to_list() if v is not None]
        assert values == sorted(values)

    def test_sort_descending(self, small_frame):
        result = small_frame.sort_by("c", descending=True)
        values = [v for v in result["c"].to_list() if v is not None]
        assert values == sorted(values, reverse=True)

    def test_sample_without_replacement(self, small_frame):
        result = small_frame.sample(3, seed=0)
        assert len(result) == 3
        assert len(set(result.row_ids.tolist())) == 3

    def test_sample_too_large_rejected(self, small_frame):
        with pytest.raises(ValidationError):
            small_frame.sample(10)

    def test_split_fractions(self):
        frame = DataFrame({"x": list(range(100))})
        a, b, c = frame.split([0.6, 0.2, 0.2], seed=1)
        assert (len(a), len(b), len(c)) == (60, 20, 20)
        all_ids = set(a.row_ids) | set(b.row_ids) | set(c.row_ids)
        assert len(all_ids) == 100

    def test_split_over_one_rejected(self):
        with pytest.raises(ValidationError):
            DataFrame({"x": [1]}).split([0.7, 0.7])

    def test_set_values_by_row_id(self, small_frame):
        target = small_frame.row_ids[0]
        result = small_frame.set_values([target], "a", [42])
        assert result["a"].get(0) == 42
        assert small_frame["a"].get(0) == 1  # original untouched


class TestColumnOperations:
    def test_select(self, small_frame):
        assert small_frame.select(["b", "a"]).columns == ["b", "a"]

    def test_select_missing_raises(self, small_frame):
        with pytest.raises(SchemaError):
            small_frame.select(["nope"])

    def test_drop(self, small_frame):
        assert "a" not in small_frame.drop("a").columns

    def test_rename(self, small_frame):
        renamed = small_frame.rename({"a": "alpha"})
        assert "alpha" in renamed.columns and "a" not in renamed.columns

    def test_with_column_udf(self, small_frame):
        result = small_frame.with_column("double",
                                         lambda r: None if r["a"] is None
                                         else r["a"] * 2)
        assert result["double"].to_list() == [2, 4, 6, None, 10]

    def test_setitem_scalar_broadcast(self, small_frame):
        frame = small_frame.copy()
        frame["const"] = 7
        assert frame["const"].to_list() == [7] * 5

    def test_getitem_column_list(self, small_frame):
        sub = small_frame[["a", "b"]]
        assert sub.columns == ["a", "b"]


class TestJoins:
    def test_inner_join_basic(self):
        left = DataFrame({"k": ["a", "b", "c"], "v": [1, 2, 3]})
        right = DataFrame({"k": ["a", "b"], "w": [10, 20]})
        joined = left.join(right, on="k")
        assert len(joined) == 2
        assert joined["w"].to_list() == [10, 20]

    def test_inner_join_fanout(self):
        left = DataFrame({"k": ["a"], "v": [1]})
        right = DataFrame({"k": ["a", "a"], "w": [10, 20]})
        joined = left.join(right, on="k")
        assert len(joined) == 2

    def test_left_join_null_fills(self):
        left = DataFrame({"k": ["a", "z"], "v": [1, 2]})
        right = DataFrame({"k": ["a"], "w": [10]})
        joined = left.join(right, on="k", how="left")
        assert joined["w"].to_list() == [10, None]

    def test_null_keys_never_match(self):
        left = DataFrame({"k": [None, "a"], "v": [1, 2]})
        right = DataFrame({"k": [None, "a"], "w": [10, 20]})
        joined = left.join(right, on="k")
        assert len(joined) == 1

    def test_join_different_key_names(self):
        left = DataFrame({"lk": ["a"], "v": [1]})
        right = DataFrame({"rk": ["a"], "w": [2]})
        joined = left.join(right, on=("lk", "rk"))
        assert len(joined) == 1

    def test_join_name_collision_suffixed(self):
        left = DataFrame({"k": ["a"], "v": [1]})
        right = DataFrame({"k": ["a"], "v": [2]})
        joined = left.join(right, on="k")
        assert "v_right" in joined.columns

    def test_join_return_indices(self):
        left = DataFrame({"k": ["a", "b"], "v": [1, 2]})
        right = DataFrame({"k": ["b"], "w": [3]})
        _, lpos, rpos = left.join(right, on="k", return_indices=True)
        assert lpos.tolist() == [1]
        assert rpos.tolist() == [0]

    def test_invalid_how_rejected(self):
        frame = DataFrame({"k": ["a"]})
        with pytest.raises(ValidationError):
            frame.join(frame, on="k", how="outer")

    def test_fuzzy_join_normalizes_case_and_whitespace(self):
        left = DataFrame({"k": ["  Alpha Beta "], "v": [1]})
        right = DataFrame({"k": ["alpha  beta"], "w": [2]})
        joined = left.fuzzy_join(right, on="k")
        assert len(joined) == 1
        assert "__fuzzy_key__" not in joined.columns


class TestConcat:
    def test_concat_preserves_row_ids(self):
        f1 = DataFrame({"x": [1, 2]})
        f2 = DataFrame({"x": [3]})
        combined = concat_rows([f1, f2])
        assert combined.row_ids.tolist() == \
            f1.row_ids.tolist() + f2.row_ids.tolist()

    def test_concat_schema_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            concat_rows([DataFrame({"x": [1]}), DataFrame({"y": [1]})])

    def test_concat_empty_list_rejected(self):
        with pytest.raises(ValidationError):
            concat_rows([])


class TestExport:
    def test_to_numpy_numeric(self, small_frame):
        matrix = small_frame.select(["a", "c"]).to_numpy()
        assert matrix.shape == (5, 2)

    def test_pretty_renders_nulls(self, small_frame):
        text = small_frame.pretty()
        assert "<null>" in text
        assert "row_id" in text


class TestDescribe:
    def test_numeric_summary(self, small_frame):
        summary = small_frame.describe()
        by_column = {r["column"]: r for r in summary.to_records()}
        assert by_column["a"]["count"] == 4
        assert by_column["a"]["nulls"] == 1
        assert by_column["a"]["min"] == 1.0
        assert by_column["a"]["max"] == 5.0

    def test_categorical_summary(self, small_frame):
        summary = small_frame.describe()
        by_column = {r["column"]: r for r in summary.to_records()}
        assert by_column["b"]["distinct"] == 3
        assert by_column["b"]["mode"] == "x"
        assert by_column["b"]["mean"] is None

    def test_one_row_per_column(self, small_frame):
        assert len(small_frame.describe()) == len(small_frame.columns)


class TestEditDistanceFuzzyJoin:
    def test_typo_resolved_within_distance_one(self):
        left = DataFrame({"city": ["berlim", "tokyo"], "v": [1, 2]})
        right = DataFrame({"city": ["berlin", "tokyo"], "w": [10, 20]})
        joined = left.fuzzy_join(right, on="city", max_edit_distance=1)
        assert len(joined) == 2
        assert sorted(joined["w"].to_list()) == [10, 20]

    def test_distance_zero_keeps_exact_semantics(self):
        left = DataFrame({"city": ["berlim"], "v": [1]})
        right = DataFrame({"city": ["berlin"], "w": [10]})
        assert len(left.fuzzy_join(right, on="city")) == 0

    def test_ambiguous_typos_stay_unmatched(self):
        """A key one edit away from TWO right keys must not guess."""
        left = DataFrame({"k": ["cat"], "v": [1]})
        right = DataFrame({"k": ["cut", "car"], "w": [10, 20]})
        joined = left.fuzzy_join(right, on="k", max_edit_distance=1)
        assert len(joined) == 0

    def test_far_keys_stay_unmatched(self):
        left = DataFrame({"k": ["zzzzzz"], "v": [1]})
        right = DataFrame({"k": ["berlin"], "w": [10]})
        joined = left.fuzzy_join(right, on="k", max_edit_distance=2)
        assert len(joined) == 0

    def test_levenshtein_helper(self):
        from repro.dataframe.frame import _levenshtein_within

        assert _levenshtein_within("kitten", "sitten", 1)
        assert _levenshtein_within("kitten", "sitting", 3)
        assert not _levenshtein_within("kitten", "sitting", 2)
        assert _levenshtein_within("", "ab", 2)
        assert not _levenshtein_within("", "abc", 2)
