"""Unit tests for group-by aggregation."""

import pytest

from repro.core.exceptions import SchemaError, ValidationError
from repro.dataframe import DataFrame


@pytest.fixture()
def frame():
    return DataFrame({
        "sector": ["health", "finance", "health", "finance", "health"],
        "grade": ["a", "a", "b", "b", None],
        "salary": [10.0, 20.0, 30.0, None, 50.0],
    })


class TestGrouping:
    def test_group_count(self, frame):
        assert len(frame.group_by("sector")) == 2

    def test_sizes(self, frame):
        assert frame.group_by("sector").sizes() == {
            ("health",): 3, ("finance",): 2,
        }

    def test_null_key_forms_own_group(self, frame):
        sizes = frame.group_by("grade").sizes()
        assert (None,) in sizes and sizes[(None,)] == 1

    def test_multi_key(self, frame):
        sizes = frame.group_by("sector", "grade").sizes()
        assert sizes[("health", "a")] == 1

    def test_missing_key_column_rejected(self, frame):
        with pytest.raises(SchemaError):
            frame.group_by("nope")

    def test_empty_keys_rejected(self, frame):
        with pytest.raises(ValidationError):
            frame.group_by()

    def test_groups_yield_subframes(self, frame):
        for key, sub in frame.group_by("sector").groups():
            assert set(sub["sector"].to_list()) == {key[0]}


class TestAggregation:
    def test_count_and_mean(self, frame):
        result = frame.group_by("sector").agg(
            n=("salary", "count"), avg=("salary", "mean"))
        by_sector = {r["sector"]: r for r in result.to_records()}
        assert by_sector["health"]["n"] == 3
        assert by_sector["health"]["avg"] == 30.0
        assert by_sector["finance"]["avg"] == 20.0  # null skipped

    def test_null_count_aggregate(self, frame):
        result = frame.group_by("sector").agg(nulls=("salary", "null_count"))
        by_sector = {r["sector"]: r["nulls"] for r in result.to_records()}
        assert by_sector["finance"] == 1

    def test_custom_callable_aggregate(self, frame):
        result = frame.group_by("sector").agg(
            spread=("salary", lambda col: (col.max() or 0) - (col.min() or 0)))
        by_sector = {r["sector"]: r["spread"] for r in result.to_records()}
        assert by_sector["health"] == 40.0

    def test_unknown_aggregate_rejected(self, frame):
        with pytest.raises(ValidationError):
            frame.group_by("sector").agg(x=("salary", "p99"))

    def test_empty_spec_rejected(self, frame):
        with pytest.raises(ValidationError):
            frame.group_by("sector").agg()

    def test_nunique_and_mode(self, frame):
        result = frame.group_by("sector").agg(
            kinds=("grade", "nunique"), common=("grade", "mode"))
        by_sector = {r["sector"]: r for r in result.to_records()}
        assert by_sector["health"]["kinds"] == 2
