"""Property-based tests for group-by aggregation invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataframe import DataFrame


@st.composite
def grouped_data(draw):
    n = draw(st.integers(1, 50))
    keys = draw(st.lists(st.sampled_from(["a", "b", "c", "d"]),
                         min_size=n, max_size=n))
    values = draw(st.lists(st.floats(-100, 100, allow_nan=False),
                           min_size=n, max_size=n))
    return DataFrame({"key": keys, "value": values})


@given(grouped_data())
@settings(max_examples=40)
def test_group_counts_partition_the_frame(frame):
    sizes = frame.group_by("key").sizes()
    assert sum(sizes.values()) == len(frame)


@given(grouped_data())
@settings(max_examples=40)
def test_group_sums_add_to_total(frame):
    result = frame.group_by("key").agg(total=("value", "sum"))
    grand_total = sum(r["total"] for r in result.to_records())
    assert grand_total == np.float64(frame["value"].sum()).item() or \
        abs(grand_total - frame["value"].sum()) < 1e-6


@given(grouped_data())
@settings(max_examples=40)
def test_group_min_max_bound_group_means(frame):
    result = frame.group_by("key").agg(
        lo=("value", "min"), hi=("value", "max"), avg=("value", "mean"))
    for row in result.to_records():
        assert row["lo"] - 1e-9 <= row["avg"] <= row["hi"] + 1e-9
