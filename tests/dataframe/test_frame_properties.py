"""Property-based tests for the dataframe engine (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataframe import Column, DataFrame, concat_rows

values = st.one_of(st.none(), st.integers(-100, 100),
                   st.floats(-1e6, 1e6, allow_nan=False), st.text(max_size=8))
value_lists = st.lists(values, min_size=1, max_size=30)


@given(value_lists)
def test_column_to_list_roundtrip(items):
    """Column(list).to_list() preserves values (ints may become floats
    when nulls force promotion, so compare numerically)."""
    col = Column(items)
    out = col.to_list()
    assert len(out) == len(items)
    for original, restored in zip(items, out):
        if original is None:
            assert restored is None
        elif isinstance(original, (int, float)):
            assert restored == original
        else:
            assert restored == original


@given(value_lists, st.data())
def test_take_matches_python_indexing(items, data):
    col = Column(items)
    indices = data.draw(st.lists(
        st.integers(0, len(items) - 1), max_size=10))
    taken = col.take(np.array(indices, dtype=int)) if indices else \
        col.take(np.array([], dtype=int))
    expected = [col.get(i) for i in indices]
    assert taken.to_list() == expected


@given(st.lists(st.integers(-5, 5), min_size=1, max_size=20),
       st.lists(st.integers(-5, 5), min_size=1, max_size=20))
@settings(max_examples=30)
def test_inner_join_cardinality_is_key_product(left_keys, right_keys):
    """|A join B| = sum over keys of count_A(k) * count_B(k)."""
    left = DataFrame({"k": left_keys})
    right = DataFrame({"k": right_keys})
    joined = left.join(right, on="k")
    expected = sum(
        left_keys.count(k) * right_keys.count(k) for k in set(left_keys)
    )
    assert len(joined) == expected


@given(st.lists(st.integers(0, 50), min_size=1, max_size=40))
@settings(max_examples=30)
def test_filter_then_concat_partition_is_identity(items):
    """Splitting by a predicate and concatenating reconstructs the multiset
    of rows (by row id)."""
    frame = DataFrame({"x": items})
    mask = np.array([v % 2 == 0 for v in items])
    evens = frame.take(mask)
    odds = frame.take(~mask)
    rebuilt = concat_rows([evens, odds])
    assert sorted(rebuilt.row_ids.tolist()) == sorted(frame.row_ids.tolist())
    assert sorted(rebuilt["x"].to_list()) == sorted(items)


@given(st.lists(st.floats(-100, 100, allow_nan=False), min_size=2, max_size=30))
@settings(max_examples=30)
def test_sort_by_is_monotone(items):
    frame = DataFrame({"x": items})
    result = frame.sort_by("x")
    values_sorted = result["x"].to_list()
    assert all(a <= b for a, b in zip(values_sorted, values_sorted[1:]))
