"""CSV round-trip tests."""

from repro.dataframe import DataFrame, read_csv, write_csv


class TestCsvRoundtrip:
    def test_roundtrip_types_and_nulls(self, tmp_path):
        original = DataFrame({
            "name": ["ann", "bob", None],
            "age": [30, None, 40],
            "score": [1.5, 2.5, 3.5],
            "active": [True, False, True],
        })
        path = tmp_path / "data.csv"
        write_csv(original, path)
        loaded = read_csv(path)
        assert loaded.columns == original.columns
        assert loaded["name"].to_list() == ["ann", "bob", None]
        assert loaded["age"].to_list() == [30, None, 40]
        assert loaded["score"].to_list() == [1.5, 2.5, 3.5]
        assert loaded["active"].to_list() == [True, False, True]

    def test_quoted_commas_survive(self, tmp_path):
        original = DataFrame({"text": ['hello, world', 'a "quote"']})
        path = tmp_path / "q.csv"
        write_csv(original, path)
        loaded = read_csv(path)
        assert loaded["text"].to_list() == ['hello, world', 'a "quote"']

    def test_numeric_looking_strings_parse_as_numbers(self, tmp_path):
        path = tmp_path / "n.csv"
        path.write_text("v\n42\n4.5\nhello\n")
        loaded = read_csv(path)
        assert loaded["v"].to_list() == [42, 4.5, "hello"]
