"""Tests for the expression-based filter API (`repro.dataframe.expr`)."""

import numpy as np
import pytest

from repro.core.exceptions import ValidationError
from repro.dataframe import DataFrame, col
from repro.dataframe.expr import Expr


@pytest.fixture
def frame():
    return DataFrame({
        "a": [1, 2, 3, None, 5],
        "b": ["x", "y", "x", "z", None],
        "c": [1.5, 2.5, None, 4.5, 5.5],
        "flag": [True, False, True, False, True],
    })


class TestComparisons:
    def test_greater_than(self, frame):
        out = frame.filter(col("a") > 2)
        assert out["a"].to_list() == [3, 5]

    def test_equality(self, frame):
        out = frame.filter(col("b") == "x")
        assert out["a"].to_list() == [1, 3]

    def test_nulls_compare_false(self, frame):
        # Null a-values match neither a predicate nor its complement.
        assert len(frame.filter(col("a") > 0)) + len(frame.filter(~(col("a") > 0))) \
            == len(frame)
        assert len(frame.filter(col("a") <= 100)) == 4

    def test_column_vs_column(self, frame):
        out = frame.filter(col("c") > col("a"))
        assert out["a"].to_list() == [1, 2, 5]

    def test_matches_row_udf(self, frame):
        expr_rows = frame.filter(col("a") >= 2).row_ids.tolist()
        udf_rows = frame.filter(
            lambda r: r["a"] is not None and r["a"] >= 2).row_ids.tolist()
        assert expr_rows == udf_rows


class TestComposition:
    def test_and(self, frame):
        out = frame.filter((col("a") > 1) & (col("b") == "x"))
        assert out["a"].to_list() == [3]

    def test_or(self, frame):
        out = frame.filter((col("a") == 1) | (col("b") == "z"))
        assert out["a"].to_list() == [1, None]

    def test_invert(self, frame):
        out = frame.filter(~(col("flag") == True))  # noqa: E712
        assert out["a"].to_list() == [2, None]

    def test_python_and_raises(self, frame):
        with pytest.raises(ValidationError, match="not truthy"):
            frame.filter((col("a") > 1) and (col("b") == "x"))

    def test_combining_with_non_expr_raises(self):
        with pytest.raises(ValidationError, match="expected an expression"):
            (col("a") > 1) & True


class TestPredicates:
    def test_isin(self, frame):
        out = frame.filter(col("b").isin(["x", "z"]))
        assert out["a"].to_list() == [1, 3, None]

    def test_is_null(self, frame):
        assert frame.filter(col("a").is_null())["b"].to_list() == ["z"]

    def test_not_null(self, frame):
        assert len(frame.filter(col("c").not_null())) == 4

    def test_bare_column_is_truthiness(self, frame):
        out = frame.filter(col("flag"))
        assert out["a"].to_list() == [1, 3, 5]


class TestIntegration:
    def test_expr_in_pipeline_filter(self, frame):
        from repro.pipelines import DataPipeline, source

        plan = source("t").filter(col("a") > 1).project(["a"])
        result = DataPipeline(plan).run({"t": frame})
        assert result.frame["a"].to_list() == [2, 3, 5]

    def test_describe_renders_expression(self):
        from repro.pipelines import source

        node = source("t").filter((col("a") > 1) & col("b").is_null())
        assert "col('a') > 1" in node.describe()

    def test_with_column_accepts_expr(self, frame):
        out = frame.with_column("big", col("a") > 2)
        assert out["big"].to_list() == [False, False, True, False, True]

    def test_expr_is_an_expr(self):
        assert isinstance(col("a") > 1, Expr)
        assert isinstance(np.asarray((col("a") > 1).evaluate(
            DataFrame({"a": [1, 2]}))), np.ndarray)
