"""Tests for the column-builder factory (`repro.dataframe.builders`)."""

import numpy as np
import pytest

from repro.core.exceptions import ValidationError
from repro.dataframe import builders
from repro.dataframe.builders import (
    ColumnBuilder,
    FloatColumnBuilder,
    arrays_from_items,
    builder_for,
    infer_kind,
    register_column,
    registered_kinds,
)
from repro.dataframe.column import Column


class TestInference:
    def test_bool_wins_over_int(self):
        assert infer_kind([True, False, None], np.array([False, False, True])) == "bool"

    def test_ints_stay_int(self):
        assert infer_kind([1, 2], np.array([False, False])) == "int"

    def test_mixed_numeric_is_float(self):
        assert infer_kind([1, 2.5], np.array([False, False])) == "float"

    def test_strings(self):
        assert infer_kind(["a", None], np.array([False, True])) == "str"

    def test_mixed_types_are_object(self):
        assert infer_kind([1, "a"], np.array([False, False])) == "object"

    def test_all_null_is_float(self):
        assert infer_kind([None, None], np.array([True, True])) == "float"


class TestBuilderProtocol:
    def test_incremental_build_matches_bulk(self):
        items = [1.5, None, 3.0]
        builder = builder_for("float")._empty()
        for item in items:
            if item is None:
                builder._append_null()
            else:
                builder._append_value(item)
        col = builder._finalize()
        bulk = Column(items)
        assert col.to_list() == bulk.to_list()
        assert col.dtype == bulk.dtype
        assert col.mask.tolist() == bulk.mask.tolist()

    def test_int_with_null_promotes_to_float(self):
        values, mask = arrays_from_items([1, None, 3])
        assert values.dtype.kind == "f"
        assert mask.tolist() == [False, True, False]
        assert np.isnan(values[1])  # pre-normalization filler

    def test_string_filler_is_empty_string(self):
        values, mask = arrays_from_items(["a", None])
        assert values.dtype.kind == "O"
        assert values[1] == ""

    def test_unknown_kind_raises(self):
        with pytest.raises(ValidationError, match="no column builder"):
            builder_for("decimal")

    def test_registered_kinds(self):
        assert {"bool", "int", "float", "str", "object"} <= set(registered_kinds())


class TestRegistration:
    def test_register_and_dispatch_custom_builder(self):
        calls = []

        class TracingFloatBuilder(FloatColumnBuilder):
            @classmethod
            def _from_items(cls, items, mask):
                calls.append(len(items))
                return super()._from_items(items, mask)

        original = builders._REGISTRY["float"]
        register_column("float", TracingFloatBuilder)
        try:
            col = Column([1.0, None, 2.0])
            assert calls == [3]
            assert col.to_list() == [1.0, None, 2.0]
        finally:
            register_column("float", original)

    def test_register_rejects_non_builders(self):
        with pytest.raises(ValidationError, match="ColumnBuilder"):
            register_column("float", dict)

    def test_registry_restored(self):
        # Paranoia: the previous test must not leak its tracer.
        assert builders._REGISTRY["float"] is FloatColumnBuilder


class TestColumnIntegration:
    def test_nan_in_list_becomes_null(self):
        col = Column([1.0, float("nan"), 3.0])
        assert col.null_count() == 1
        assert col.to_list() == [1.0, None, 3.0]

    def test_numpy_scalars_unbox(self):
        col = Column([np.int64(1), np.float64(2.5)])
        assert col.dtype.kind == "f"
        assert col.to_list() == [1.0, 2.5]

    def test_empty_list_is_float(self):
        col = Column([])
        assert col.dtype.kind == "f"
        assert len(col) == 0

    def test_slice_take_is_zero_copy_view(self):
        col = Column([1, 2, 3, 4])
        view = col.take(slice(1, 3))
        assert view.to_list() == [2, 3]
        assert view.values.base is col.values

    def test_copy_constructor_stays_deep(self):
        original = Column([1, 2, 3])
        copied = Column(original)
        copied.values[0] = 99
        assert original.to_list() == [1, 2, 3]
