"""Differential tests: vectorized kernels vs. row-wise reference loops.

Every relational kernel in ``repro.dataframe.kernels`` must reproduce the
retained reference implementation exactly — same values, same null masks,
same row ids, same output order — on randomized null-heavy frames.
"""

import numpy as np
import pytest

from repro.dataframe import kernels, reference
from repro.dataframe.column import Column
from repro.dataframe.frame import DataFrame


def random_column(rng, n, kind, null_rate=0.3):
    """A Column of the given dtype kind with ~null_rate nulls."""
    nulls = rng.random(n) < null_rate
    if kind == "int":
        items = [None if m else int(v)
                 for m, v in zip(nulls, rng.integers(-5, 6, size=n))]
    elif kind == "float":
        items = [None if m else float(round(v, 2))
                 for m, v in zip(nulls, rng.normal(size=n) * 3)]
    elif kind == "bool":
        items = [None if m else bool(v)
                 for m, v in zip(nulls, rng.integers(0, 2, size=n))]
    else:
        words = ["alpha", "beta", "gamma", "delta", "", "Alpha  beta", "x"]
        items = [None if m else words[int(v)]
                 for m, v in zip(nulls, rng.integers(0, len(words), size=n))]
    return Column(items)


def assert_columns_equal(a, b):
    assert a.mask.tolist() == b.mask.tolist()
    assert a.to_list() == b.to_list()


KINDS = ["int", "float", "bool", "str"]


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("how", ["inner", "left"])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_join_positions_matches_reference(kind, how, seed):
    rng = np.random.default_rng(seed)
    left = random_column(rng, 40, kind)
    right = random_column(rng, 30, kind)
    fast = kernels.join_positions(left, right, how)
    slow = reference.join_positions_rowwise(left, right, how)
    assert fast[0].tolist() == slow[0].tolist()
    assert fast[1].tolist() == slow[1].tolist()


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("seed", [0, 1])
def test_gather_matches_reference(kind, seed):
    rng = np.random.default_rng(seed)
    source = random_column(rng, 25, kind)
    positions = rng.integers(-1, 25, size=40)
    fast = kernels.gather_column(source, positions)
    slow = reference.gather_column_rowwise(source, positions)
    assert_columns_equal(fast, slow)
    assert fast.dtype.kind == slow.dtype.kind


def test_gather_from_empty_column_is_all_null():
    fast = kernels.gather_column(Column([]), np.array([-1, -1]))
    slow = reference.gather_column_rowwise(Column([]), np.array([-1, -1]))
    assert_columns_equal(fast, slow)


@pytest.mark.parametrize("n_keys", [1, 2, 3])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_group_positions_matches_reference(n_keys, seed):
    rng = np.random.default_rng(seed)
    kinds = [KINDS[(seed + i) % len(KINDS)] for i in range(n_keys)]
    cols = [random_column(rng, 50, k) for k in kinds]
    f_firsts, f_slices = kernels.group_positions(cols)
    s_firsts, s_slices = reference.group_positions_rowwise(cols)
    assert f_firsts.tolist() == s_firsts.tolist()
    assert [s.tolist() for s in f_slices] == [s.tolist() for s in s_slices]


def test_join_falls_back_on_unsortable_keys():
    # ints and strings mixed in one object column cannot be sorted, but the
    # join must still work (through the reference path).
    left = Column([1, "a", None, 2])
    right = Column(["a", 2, 2, None])
    with pytest.raises(kernels.KernelFallback):
        kernels.join_positions(left, right, "inner")
    frame = DataFrame({"k": left, "x": [10, 20, 30, 40]})
    other = DataFrame({"k": right, "y": [1.0, 2.0, 3.0, 4.0]})
    joined = frame.join(other, on="k")
    assert joined["x"].to_list() == [20, 40, 40]
    assert joined["y"].to_list() == [1.0, 2.0, 3.0]


def test_group_by_falls_back_on_unsortable_keys():
    frame = DataFrame({"k": Column([1, "a", 1, "a", None]),
                       "v": [1, 2, 3, 4, 5]})
    sizes = frame.group_by("k").sizes()
    assert sizes == {(1,): 2, ("a",): 2, (None,): 1}


def test_group_positions_overflow_guard():
    # Radix products beyond int64 must signal fallback, not wrap around.
    many = [Column(list(range(10))) for _ in range(25)]
    with pytest.raises(kernels.KernelFallback):
        kernels.group_positions(many)
    firsts, slices = reference.group_positions_rowwise(many)
    assert len(slices) == 10


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_resolve_fuzzy_keys_matches_reference(seed):
    rng = np.random.default_rng(seed)
    base = ["new york", "san francisco", "boston", "chicago", "austin", "la"]
    def typo(word):
        if len(word) < 2:
            return word
        i = int(rng.integers(0, len(word)))
        op = int(rng.integers(0, 3))
        if op == 0:
            return word[:i] + word[i + 1:]          # delete
        if op == 1:
            return word[:i] + "z" + word[i:]         # insert
        return word[:i] + "q" + word[i + 1:]         # substitute
    left = sorted({typo(base[int(rng.integers(0, len(base)))])
                   for _ in range(20)})
    for dist in (1, 2):
        fast = kernels.resolve_fuzzy_keys(left, base, dist,
                                          reference.levenshtein_within)
        slow = reference.resolve_fuzzy_keys_rowwise(left, base, dist,
                                                    reference.levenshtein_within)
        assert fast == slow


def test_fuzzy_pruning_is_lossless_on_all_short_pairs():
    # Exhaustive check of the length-band + character-bag pruning against
    # the unpruned all-pairs loop over a dense short-string space.
    alphabet = "abc"
    keys = [a + b for a in alphabet for b in alphabet]
    keys += [a for a in alphabet] + ["", "abc", "bca", "aab"]
    fast = kernels.resolve_fuzzy_keys(keys, keys[::2], 1,
                                      reference.levenshtein_within)
    slow = reference.resolve_fuzzy_keys_rowwise(keys, keys[::2], 1,
                                                reference.levenshtein_within)
    assert fast == slow


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_full_frame_join_matches_rowwise_everything(seed):
    """End-to-end: a DataFrame join must produce identical frames whether
    the kernel or the reference computed the match table."""
    rng = np.random.default_rng(seed)
    left = DataFrame({
        "k": random_column(rng, 30, "str"),
        "a": random_column(rng, 30, "int"),
    })
    right = DataFrame({
        "k": random_column(rng, 20, "str"),
        "b": random_column(rng, 20, "float"),
    })
    for how in ("inner", "left"):
        lp, rp = reference.join_positions_rowwise(left["k"], right["k"], how)
        expected = left.take(lp)
        expected["b"] = reference.gather_column_rowwise(right["b"], rp)
        actual, alp, arp = left.join(right, on="k", how=how,
                                     return_indices=True)
        assert alp.tolist() == lp.tolist()
        assert arp.tolist() == rp.tolist()
        assert actual.row_ids.tolist() == expected.row_ids.tolist()
        for name in actual.columns:
            assert_columns_equal(actual[name], expected[name])
