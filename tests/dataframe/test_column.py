"""Unit tests for the null-aware Column type."""

import numpy as np
import pytest

from repro.core.exceptions import ValidationError
from repro.dataframe import Column


class TestConstruction:
    def test_int_column_without_nulls_stays_integer(self):
        col = Column([1, 2, 3])
        assert col.dtype.kind == "i"
        assert col.null_count() == 0

    def test_int_column_with_null_promotes_to_float(self):
        col = Column([1, None, 3])
        assert col.dtype.kind == "f"
        assert col.null_count() == 1
        assert col.get(1) is None

    def test_nan_is_treated_as_null(self):
        col = Column([1.0, float("nan"), 3.0])
        assert col.null_count() == 1

    def test_string_column(self):
        col = Column(["a", None, "c"])
        assert col.null_count() == 1
        assert col.get(0) == "a"
        assert col.get(1) is None

    def test_bool_column(self):
        col = Column([True, False, True])
        assert col.dtype.kind == "b"

    def test_from_numpy_float_array(self):
        col = Column(np.array([1.0, np.nan]))
        assert col.null_count() == 1

    def test_copy_constructor_is_deep(self):
        original = Column([1, 2, 3])
        copy = Column(original)
        copy.values[0] = 99
        assert original.get(0) == 1

    def test_explicit_mask_merges_with_inferred(self):
        col = Column([1.0, 2.0, 3.0], mask=[True, False, False])
        assert col.null_count() == 1
        assert col.get(0) is None

    def test_mask_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            Column([1, 2, 3], mask=[True, False])

    def test_scalar_input_rejected(self):
        with pytest.raises(ValidationError):
            Column(5)


class TestComparison:
    def test_equality_with_scalar(self):
        col = Column([1, 2, 1, None])
        np.testing.assert_array_equal(col == 1, [True, False, True, False])

    def test_null_never_equals_anything(self):
        col = Column([None, None])
        assert not (col == None).any()  # noqa: E711 - elementwise semantics

    def test_inequality(self):
        col = Column([1, 2, None])
        np.testing.assert_array_equal(col != 1, [False, True, False])

    def test_ordering_comparisons_skip_nulls(self):
        col = Column([1.0, 5.0, None])
        np.testing.assert_array_equal(col > 2, [False, True, False])
        np.testing.assert_array_equal(col <= 1, [True, False, False])

    def test_column_vs_column(self):
        a = Column([1, 2, 3])
        b = Column([1, 0, 3])
        np.testing.assert_array_equal(a == b, [True, False, True])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            Column([1, 2]) == Column([1, 2, 3])

    def test_columns_unhashable(self):
        with pytest.raises(TypeError):
            hash(Column([1]))


class TestTransforms:
    def test_take_preserves_nulls(self):
        col = Column([1, None, 3]).take([2, 1])
        assert col.to_list() == [3, None]

    def test_take_with_boolean_mask(self):
        col = Column([1, 2, 3]).take(np.array([True, False, True]))
        assert col.to_list() == [1, 3]

    def test_fill_null_numeric(self):
        col = Column([1.0, None]).fill_null(0.0)
        assert col.to_list() == [1.0, 0.0]
        assert col.null_count() == 0

    def test_fill_null_string(self):
        col = Column(["a", None]).fill_null("missing")
        assert col.to_list() == ["a", "missing"]

    def test_map_skips_nulls_by_default(self):
        col = Column([1, None, 3]).map(lambda v: v * 10)
        assert col.to_list() == [10, None, 30]

    def test_map_can_observe_nulls(self):
        col = Column([1, None]).map(lambda v: -1 if v is None else v,
                                    skip_null=False)
        assert col.to_list() == [1, -1]

    def test_cast_string_to_float(self):
        col = Column(["1.5", "2.5", None]).cast(float)
        assert col.to_list() == [1.5, 2.5, None]

    def test_cast_int_to_float_preserves_mask(self):
        col = Column([1, None]).cast(float)
        assert col.null_count() == 1

    def test_to_numpy_float_nulls_become_nan(self):
        arr = Column([1.0, None]).to_numpy()
        assert np.isnan(arr[1])

    def test_to_numpy_object_requires_null_value(self):
        with pytest.raises(ValidationError):
            Column(["a", None]).to_numpy()

    def test_to_numpy_with_none_null_value(self):
        arr = Column(["a", None]).to_numpy(null_value=None)
        assert arr[1] is None


class TestReductions:
    def test_mean_skips_nulls(self):
        assert Column([1.0, None, 3.0]).mean() == 2.0

    def test_mean_of_all_null_is_none(self):
        assert Column([None, None]).mean() is None

    def test_min_max(self):
        col = Column([3, 1, None, 5])
        assert col.min() == 1
        assert col.max() == 5

    def test_mode_breaks_ties_by_first_occurrence(self):
        assert Column(["b", "a", "b", "a"]).mode() == "b"

    def test_unique_sorted(self):
        assert Column([3, 1, 3, None]).unique() == [1, 3]

    def test_value_counts(self):
        assert Column(["x", "y", "x", None]).value_counts() == {"x": 2, "y": 1}

    def test_std(self):
        assert Column([2.0, 2.0, 2.0]).std() == 0.0
