"""Unit tests for toy distributions."""

import numpy as np
import pytest

from repro.core.exceptions import ValidationError
from repro.datasets import make_blobs, make_linear_separable, make_moons
from repro.ml import KNeighborsClassifier, LogisticRegression


class TestMakeBlobs:
    def test_shapes_and_balance(self):
        X, y = make_blobs(101, n_features=4, centers=2, seed=0)
        assert X.shape == (101, 4)
        counts = np.bincount(y)
        assert abs(counts[0] - counts[1]) <= 1

    def test_seed_reproducible(self):
        a = make_blobs(50, seed=3)
        b = make_blobs(50, seed=3)
        np.testing.assert_array_equal(a[0], b[0])

    def test_learnable(self):
        X, y = make_blobs(200, centers=2, cluster_std=0.8, seed=1)
        assert KNeighborsClassifier(5).fit(X, y).score(X, y) >= 0.95

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValidationError):
            make_blobs(2, centers=3)


class TestMakeMoons:
    def test_shapes(self):
        X, y = make_moons(80, seed=0)
        assert X.shape == (80, 2)
        assert set(y) == {0, 1}

    def test_not_linearly_separable_but_knn_learnable(self):
        X, y = make_moons(400, noise=0.05, seed=2)
        linear = LogisticRegression().fit(X[:300], y[:300])
        knn = KNeighborsClassifier(5).fit(X[:300], y[:300])
        assert knn.score(X[300:], y[300:]) > linear.score(X[300:], y[300:])


class TestLinearSeparable:
    def test_true_hyperplane_separates(self):
        X, y, w = make_linear_separable(100, n_features=3, seed=4)
        assert np.all((X @ w > 0) == (y == 1))

    def test_margin_respected(self):
        X, y, w = make_linear_separable(50, margin=1.0, seed=5)
        assert np.min(np.abs(X @ w)) >= 1.0
