"""Unit tests for the Figure-1 cancer registry generator."""

from repro.datasets import make_cancer_registry


class TestCancerRegistry:
    def test_schema(self):
        df, log = make_cancer_registry(100, seed=0)
        assert set(df.columns) == {"diagnosis", "race", "sex", "age",
                                   "survived"}

    def test_error_log_covers_all_error_kinds(self):
        _, log = make_cancer_registry(300, error_fraction=0.1, seed=1)
        kinds = {kind for _, _, kind in log}
        assert {"missing", "wrong_code", "invalid_age"} <= kinds

    def test_missing_errors_are_actually_null(self):
        df, log = make_cancer_registry(200, seed=2)
        for row_id, column, kind in log:
            if kind == "missing":
                position = int(df.positions_of([row_id])[0])
                assert df[column].get(position) is None

    def test_invalid_ages_are_negative(self):
        df, log = make_cancer_registry(200, seed=3)
        for row_id, column, kind in log:
            if kind == "invalid_age":
                position = int(df.positions_of([row_id])[0])
                assert df["age"].get(position) < 0

    def test_wrong_codes_outside_valid_set(self):
        df, log = make_cancer_registry(200, seed=4)
        valid = {"SKCM", "BRCA", "CRC", "LUAD"}
        for row_id, column, kind in log:
            if kind == "wrong_code":
                position = int(df.positions_of([row_id])[0])
                assert df["diagnosis"].get(position) not in valid

    def test_race_coverage_is_biased(self):
        df, _ = make_cancer_registry(500, seed=5)
        counts = df["race"].value_counts()
        assert counts.get("black", 0) < counts.get("white", 0) * 0.2
