"""Unit tests for the census-like fairness dataset."""

import numpy as np

from repro.datasets import make_census


class TestMakeCensus:
    def test_schema_and_size(self):
        df, biased = make_census(200, seed=0)
        assert set(df.columns) == {"age", "education_years", "hours_per_week",
                                   "group", "income"}
        assert len(df) == 200

    def test_biased_rows_are_negative_group_b(self):
        df, biased = make_census(300, bias_fraction=0.3, seed=1)
        positions = df.positions_of(biased)
        for p in positions:
            row = df.row(int(p))
            assert row["group"] == "groupB"
            assert row["income"] == 0  # flipped from 1 to 0

    def test_zero_bias_fraction_flips_nothing(self):
        _, biased = make_census(100, bias_fraction=0.0, seed=2)
        assert len(biased) == 0

    def test_bias_creates_group_gap(self):
        df, _ = make_census(600, bias_fraction=0.5, seed=3)
        group = np.array(df["group"].to_list())
        income = np.array(df["income"].to_list())
        rate_a = income[group == "groupA"].mean()
        rate_b = income[group == "groupB"].mean()
        assert rate_a - rate_b > 0.1
