"""Unit tests for the hiring scenario generators."""

import numpy as np

import repro as nde
from repro.datasets import make_hiring_tables


class TestHiringTables:
    def test_schema(self, hiring_tables):
        letters, jobs, social = hiring_tables
        assert set(letters.columns) == {
            "person_id", "job_id", "letter_text", "sentiment",
            "years_experience", "employer_rating", "degree",
        }
        assert set(jobs.columns) == {"job_id", "sector", "seniority",
                                     "salary_band"}
        assert set(social.columns) == {"person_id", "twitter", "followers",
                                       "linkedin_connections"}

    def test_keys_join_completely(self, hiring_tables):
        letters, jobs, social = hiring_tables
        joined = letters.join(jobs, on="job_id").join(social, on="person_id")
        assert len(joined) == len(letters)

    def test_sentiment_binary(self, hiring_tables):
        letters, _, _ = hiring_tables
        assert set(letters["sentiment"].unique()) == {"negative", "positive"}

    def test_letters_carry_sentiment_signal(self, hiring_tables):
        """Positive letters must share more vocabulary with the positive
        phrase pool than negative letters do."""
        letters, _, _ = hiring_tables
        positive_words = {"exceeded", "outstanding", "exceptional", "brilliant"}
        def hits(text):
            return sum(1 for w in positive_words if w in text)
        pos_rows = letters.filter(np.asarray(letters["sentiment"] == "positive"))
        neg_rows = letters.filter(np.asarray(letters["sentiment"] == "negative"))
        pos_hits = np.mean([hits(t) for t in pos_rows["letter_text"].to_list()])
        neg_hits = np.mean([hits(t) for t in neg_rows["letter_text"].to_list()])
        assert pos_hits > neg_hits

    def test_rating_correlates_with_sentiment(self, hiring_tables):
        letters, _, _ = hiring_tables
        pos = letters.filter(np.asarray(letters["sentiment"] == "positive"))
        neg = letters.filter(np.asarray(letters["sentiment"] == "negative"))
        assert pos["employer_rating"].mean() > neg["employer_rating"].mean()

    def test_degree_has_some_nulls(self, hiring_tables):
        letters, _, _ = hiring_tables
        assert letters["degree"].null_count() > 0

    def test_seed_reproducible(self):
        a, _, _ = make_hiring_tables(50, seed=9)
        b, _, _ = make_hiring_tables(50, seed=9)
        assert a["letter_text"].to_list() == b["letter_text"].to_list()


class TestLoaders:
    def test_load_recommendation_letters_splits(self):
        train, valid, test = nde.load_recommendation_letters(100, seed=1)
        assert len(train) + len(valid) + len(test) == 100
        ids = set(train.row_ids) | set(valid.row_ids) | set(test.row_ids)
        assert len(ids) == 100

    def test_sidedata_matches_letters(self):
        train, valid, test = nde.load_recommendation_letters(80, seed=2)
        jobs, social = nde.load_sidedata(80, seed=2)
        joined = train.join(social, on="person_id")
        assert len(joined) == len(train)

    def test_model_learns_the_task(self):
        train, valid, _ = nde.load_recommendation_letters(300, seed=0)
        accuracy = nde.evaluate_model(train, validation=valid)
        assert accuracy >= 0.7  # well above the 0.5 chance level
