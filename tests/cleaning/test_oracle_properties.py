"""Property-based tests for cleaning-oracle invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cleaning import CleaningOracle
from repro.dataframe import DataFrame
from repro.errors import inject_label_errors


@st.composite
def corrupted_frame(draw):
    n = draw(st.integers(10, 40))
    seed = draw(st.integers(0, 10**6))
    rng = np.random.default_rng(seed)
    labels = [str(v) for v in rng.integers(0, 2, n)]
    labels[0], labels[1] = "0", "1"
    clean = DataFrame({"label": labels, "x": rng.normal(0, 1, n)})
    fraction = draw(st.floats(0.1, 0.5))
    dirty, report = inject_label_errors(clean, column="label",
                                        fraction=fraction, seed=seed + 1)
    return clean, dirty, report


@given(corrupted_frame(), st.data())
@settings(max_examples=30, deadline=None)
def test_cleaning_is_idempotent(setting, data):
    """Cleaning the same rows twice equals cleaning them once."""
    clean, dirty, report = setting
    targets = data.draw(st.lists(
        st.sampled_from(sorted(set(int(r) for r in dirty.row_ids))),
        min_size=1, max_size=5, unique=True))
    oracle = CleaningOracle(clean)
    once = oracle.clean(dirty, targets)
    twice = oracle.clean(once, targets)
    assert once["label"].to_list() == twice["label"].to_list()


@given(corrupted_frame())
@settings(max_examples=30, deadline=None)
def test_cleaning_everything_restores_truth(setting):
    clean, dirty, report = setting
    oracle = CleaningOracle(clean)
    repaired = oracle.clean(dirty, dirty.row_ids.tolist())
    assert repaired["label"].to_list() == clean["label"].to_list()


@given(corrupted_frame(), st.data())
@settings(max_examples=30, deadline=None)
def test_cleaning_order_does_not_matter(setting, data):
    """Cleaning rows one by one in any order equals cleaning them at
    once."""
    clean, dirty, report = setting
    targets = data.draw(st.lists(
        st.sampled_from(sorted(set(int(r) for r in dirty.row_ids))),
        min_size=2, max_size=6, unique=True))
    batch = CleaningOracle(clean).clean(dirty, targets)
    sequential = dirty
    oracle = CleaningOracle(clean)
    for target in reversed(targets):
        sequential = oracle.clean(sequential, [target])
    assert batch["label"].to_list() == sequential["label"].to_list()
