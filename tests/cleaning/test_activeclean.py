"""Unit tests for the ActiveClean loop."""

import numpy as np
import pytest

from repro.cleaning import active_clean
from repro.core.exceptions import ValidationError
from repro.datasets import make_blobs
from repro.errors import inject_label_errors_array


@pytest.fixture(scope="module")
def setting():
    X, y = make_blobs(200, n_features=3, centers=2, cluster_std=1.2, seed=23)
    X_train, y_train = X[:140], y[:140]
    X_valid, y_valid = X[140:], y[140:]
    y_dirty, flipped = inject_label_errors_array(y_train, fraction=0.3,
                                                 seed=24)
    dirty_mask = np.zeros(len(y_train), dtype=bool)
    dirty_mask[flipped] = True
    return {"X": X_train, "y_clean": y_train, "y_dirty": y_dirty,
            "mask": dirty_mask, "X_valid": X_valid, "y_valid": y_valid}


class TestActiveClean:
    def test_accuracy_improves_with_cleaning(self, setting):
        outcome = active_clean(
            setting["X"], setting["y_dirty"], setting["X"],
            setting["y_clean"], setting["X_valid"], setting["y_valid"],
            dirty_mask=setting["mask"], budget=len(setting["mask"]),
            batch=10, seed=0)
        assert outcome["accuracy"][-1] >= outcome["accuracy"][0]

    def test_budget_respected(self, setting):
        outcome = active_clean(
            setting["X"], setting["y_dirty"], setting["X"],
            setting["y_clean"], setting["X_valid"], setting["y_valid"],
            dirty_mask=setting["mask"], budget=12, batch=5, seed=1)
        assert len(outcome["cleaned"]) <= 12

    def test_only_dirty_records_cleaned(self, setting):
        outcome = active_clean(
            setting["X"], setting["y_dirty"], setting["X"],
            setting["y_clean"], setting["X_valid"], setting["y_valid"],
            dirty_mask=setting["mask"], budget=20, batch=5, seed=2)
        dirty_indices = set(np.flatnonzero(setting["mask"]).tolist())
        assert set(outcome["cleaned"]) <= dirty_indices

    def test_invalid_budget_rejected(self, setting):
        with pytest.raises(ValidationError):
            active_clean(setting["X"], setting["y_dirty"], setting["X"],
                         setting["y_clean"], setting["X_valid"],
                         setting["y_valid"], dirty_mask=setting["mask"],
                         budget=0)
