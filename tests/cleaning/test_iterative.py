"""Unit tests for the iterative prioritized cleaner."""

import numpy as np
import pytest

from repro.core.exceptions import ValidationError
from repro.cleaning import CleaningOracle, IterativeCleaner, make_strategy
from repro.datasets import make_blobs
from repro.dataframe import DataFrame
from repro.errors import inject_label_errors
from repro.ml import KNeighborsClassifier, LogisticRegression


@pytest.fixture(scope="module")
def setting():
    X, y = make_blobs(150, n_features=3, centers=2, cluster_std=1.3, seed=19)
    frame = DataFrame({
        "f0": X[:100, 0], "f1": X[:100, 1], "f2": X[:100, 2],
        "label": [str(v) for v in y[:100]],
    })
    dirty, report = inject_label_errors(frame, column="label", fraction=0.25,
                                        seed=20)
    return {
        "clean": frame, "dirty": dirty, "report": report,
        "X_valid": X[100:], "y_valid": np.array([str(v) for v in y[100:]]),
    }


def encode(frame):
    X = frame.select(["f0", "f1", "f2"]).to_numpy()
    y = np.array(frame["label"].to_list())
    return X, y


class TestStrategies:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValidationError):
            make_strategy("quantum")

    def test_random_strategy_is_permutation(self, setting, rng):
        strategy = make_strategy("random")
        X, y = encode(setting["dirty"])
        scores = strategy(None, X, y, setting["X_valid"], setting["y_valid"],
                          np.random.default_rng(0))
        assert sorted(scores.tolist()) == list(range(len(X)))

    def test_loss_strategy_ranks_flipped_low(self, setting, rng):
        strategy = make_strategy("loss")
        X, y = encode(setting["dirty"])
        scores = strategy(LogisticRegression(max_iter=60), X, y,
                          setting["X_valid"], setting["y_valid"],
                          np.random.default_rng(0))
        flipped_positions = setting["dirty"].positions_of(
            sorted(setting["report"].row_ids()))
        worst = set(np.argsort(scores)[:25].tolist())
        hits = len(worst & set(int(p) for p in flipped_positions))
        assert hits / len(flipped_positions) >= 0.6


class TestIterativeCleaner:
    def test_shapley_cleaning_beats_random(self, setting):
        def run(strategy, seed):
            oracle = CleaningOracle(setting["clean"])
            cleaner = IterativeCleaner(
                KNeighborsClassifier(5), strategy, oracle,
                encode=encode, batch=10, seed=seed)
            return cleaner.run(setting["dirty"], setting["X_valid"],
                               setting["y_valid"], n_rounds=2)

        shapley = run("knn_shapley", 0)
        random_runs = [run("random", s).improvement for s in range(3)]
        assert shapley.improvement >= np.mean(random_runs)

    def test_trajectory_length(self, setting):
        oracle = CleaningOracle(setting["clean"])
        cleaner = IterativeCleaner(KNeighborsClassifier(5), "knn_shapley",
                                   oracle, encode=encode, batch=5)
        result = cleaner.run(setting["dirty"], setting["X_valid"],
                             setting["y_valid"], n_rounds=3)
        assert len(result.scores) == 4
        assert result.rounds == 3
        assert len(result.cleaned_ids) == 15

    def test_rescoring_each_round(self, setting):
        """Cleaned rows must not be recleaned: ids are distinct."""
        oracle = CleaningOracle(setting["clean"])
        cleaner = IterativeCleaner(KNeighborsClassifier(5), "knn_shapley",
                                   oracle, encode=encode, batch=8)
        result = cleaner.run(setting["dirty"], setting["X_valid"],
                             setting["y_valid"], n_rounds=2)
        # Note: re-scoring may re-rank already-clean rows lowest again; the
        # oracle tolerates that, but most cleaned ids should be distinct.
        assert len(set(result.cleaned_ids)) >= len(result.cleaned_ids) * 0.6

    def test_invalid_rounds_rejected(self, setting):
        oracle = CleaningOracle(setting["clean"])
        cleaner = IterativeCleaner(KNeighborsClassifier(5), "random", oracle,
                                   encode=encode)
        with pytest.raises(ValidationError):
            cleaner.run(setting["dirty"], setting["X_valid"],
                        setting["y_valid"], n_rounds=0)


class TestCheckpointResume:
    def _cleaner(self, setting, **kwargs):
        # "random" consumes RNG state every round, so an identical
        # resumed trajectory proves the snapshot carries the stream.
        return IterativeCleaner(KNeighborsClassifier(5), "random",
                                CleaningOracle(setting["clean"]),
                                encode=encode, batch=10, seed=3, **kwargs)

    def _run(self, setting, cleaner, n_rounds=4):
        return cleaner.run(setting["dirty"], setting["X_valid"],
                           setting["y_valid"], n_rounds=n_rounds)

    def test_resume_reproduces_trajectory(self, setting, tmp_path):
        ref = self._run(setting, self._cleaner(setting))
        self._run(setting, self._cleaner(setting, checkpoint=tmp_path))
        # Keep only the oldest record: simulates a kill after round 2
        # (keep=3 means records for rounds 2, 3, 4 exist).
        from repro.runtime import CheckpointStore
        for record in CheckpointStore(tmp_path).record_paths()[1:]:
            record.unlink()
        resumed = self._run(setting, self._cleaner(setting,
                                                   resume_from=tmp_path))
        assert [s.hex() for s in resumed.scores] == \
            [s.hex() for s in ref.scores]
        assert resumed.cleaned_ids == ref.cleaned_ids
        assert resumed.rounds == ref.rounds

    def test_resume_extends_to_more_rounds(self, setting, tmp_path):
        ref = self._run(setting, self._cleaner(setting), n_rounds=5)
        self._run(setting, self._cleaner(setting, checkpoint=tmp_path),
                  n_rounds=3)
        resumed = self._run(setting, self._cleaner(setting,
                                                   resume_from=tmp_path),
                            n_rounds=5)
        assert [s.hex() for s in resumed.scores] == \
            [s.hex() for s in ref.scores]
        assert resumed.cleaned_ids == ref.cleaned_ids

    def test_checkpoint_requires_integer_seed(self, setting, tmp_path):
        with pytest.raises(ValidationError, match="integer seed"):
            IterativeCleaner(KNeighborsClassifier(5), "random",
                             CleaningOracle(setting["clean"]),
                             encode=encode, seed=None, checkpoint=tmp_path)
