"""Unit tests for the cleaning oracle."""

import numpy as np
import pytest

from repro.core.exceptions import BudgetExhaustedError, ValidationError
from repro.dataframe import DataFrame
from repro.cleaning import CleaningOracle
from repro.errors import inject_label_errors


@pytest.fixture()
def corrupted():
    clean = DataFrame({"label": ["a", "b"] * 10, "x": list(range(20))})
    dirty, report = inject_label_errors(clean, column="label", fraction=0.3,
                                        seed=0)
    return clean, dirty, report


class TestCleaningOracle:
    def test_restores_ground_truth(self, corrupted):
        clean, dirty, report = corrupted
        oracle = CleaningOracle(clean)
        repaired = oracle.clean(dirty, sorted(report.row_ids()))
        assert repaired["label"].to_list() == clean["label"].to_list()

    def test_untouched_rows_stay_dirty(self, corrupted):
        clean, dirty, report = corrupted
        oracle = CleaningOracle(clean)
        target = sorted(report.row_ids())[:1]
        repaired = oracle.clean(dirty, target)
        remaining = report.row_ids() - set(target)
        dirty_positions = repaired.positions_of(sorted(remaining))
        originals = {e.row_id: e.corrupted for e in report.errors}
        for rid, pos in zip(sorted(remaining), dirty_positions):
            assert repaired["label"].get(int(pos)) == originals[rid]

    def test_budget_enforced(self, corrupted):
        clean, dirty, _ = corrupted
        oracle = CleaningOracle(clean, budget=2)
        oracle.clean(dirty, dirty.row_ids[:2])
        with pytest.raises(BudgetExhaustedError):
            oracle.clean(dirty, dirty.row_ids[2:4])

    def test_repeated_rows_not_recharged(self, corrupted):
        clean, dirty, _ = corrupted
        oracle = CleaningOracle(clean, budget=2)
        oracle.clean(dirty, dirty.row_ids[:2])
        oracle.clean(dirty, dirty.row_ids[:2])  # same rows: free
        assert oracle.cleaned_count == 2
        assert oracle.remaining_budget == 0

    def test_column_restriction(self, corrupted):
        clean, dirty, report = corrupted
        oracle = CleaningOracle(clean, columns=["x"])
        repaired = oracle.clean(dirty, sorted(report.row_ids()))
        # label column untouched: still dirty
        assert repaired["label"].to_list() == dirty["label"].to_list()

    def test_negative_budget_rejected(self, corrupted):
        clean, _, _ = corrupted
        with pytest.raises(ValidationError):
            CleaningOracle(clean, budget=-1)
