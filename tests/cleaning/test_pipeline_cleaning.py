"""Integration tests for iterative cleaning over a pipeline."""

import numpy as np
import pytest

from repro.cleaning import CleaningOracle, PipelineIterativeCleaner
from repro.core.exceptions import ValidationError
from repro.datasets import make_hiring_tables
from repro.errors import inject_label_errors
from repro.ml import (
    ColumnTransformer,
    LogisticRegression,
    OneHotEncoder,
    Pipeline,
    SimpleImputer,
    StandardScaler,
)
from repro.pipelines import DataPipeline, source
from repro.text import SentenceEmbedder


@pytest.fixture(scope="module")
def setting():
    letters, jobs, social = make_hiring_tables(240, seed=71)
    train, valid = letters.split([0.75, 0.25], seed=72)
    dirty, report = inject_label_errors(train, column="sentiment",
                                        fraction=0.2, seed=73)
    encoder = ColumnTransformer([
        ("text", SentenceEmbedder(dim=24), "letter_text"),
        ("num", Pipeline([("imp", SimpleImputer()),
                          ("sc", StandardScaler())]),
         ["years_experience", "employer_rating"]),
        ("deg", OneHotEncoder(), "degree"),
    ])
    plan = (source("train_df")
            .join(source("jobdetail_df"), on="job_id")
            .drop(["person_id", "job_id", "sector", "seniority",
                   "salary_band"])
            .encode(encoder, label="sentiment"))
    return {
        "pipeline": DataPipeline(plan),
        "sources": {"train_df": dirty, "jobdetail_df": jobs},
        "clean_train": train,
        "valid": valid,
        "report": report,
    }


class TestPipelineIterativeCleaner:
    def test_runs_and_tracks_trajectory(self, setting):
        cleaner = PipelineIterativeCleaner(
            setting["pipeline"], LogisticRegression(max_iter=80),
            CleaningOracle(setting["clean_train"]),
            dirty_source="train_df", valid_frame=setting["valid"],
            batch=12, k=10)
        result = cleaner.run(setting["sources"], n_rounds=2)
        assert len(result.scores) == 3
        assert len(result.cleaned_ids) == 24
        assert result.final >= result.initial - 0.08

    def test_cleaned_rows_are_never_repeated(self, setting):
        cleaner = PipelineIterativeCleaner(
            setting["pipeline"], LogisticRegression(max_iter=80),
            CleaningOracle(setting["clean_train"]),
            dirty_source="train_df", valid_frame=setting["valid"],
            batch=8)
        result = cleaner.run(setting["sources"], n_rounds=3)
        assert len(set(result.cleaned_ids)) == len(result.cleaned_ids)

    def test_sources_not_mutated(self, setting):
        before = setting["sources"]["train_df"]["sentiment"].to_list()
        cleaner = PipelineIterativeCleaner(
            setting["pipeline"], LogisticRegression(max_iter=80),
            CleaningOracle(setting["clean_train"]),
            dirty_source="train_df", valid_frame=setting["valid"],
            batch=5)
        cleaner.run(setting["sources"], n_rounds=1)
        assert setting["sources"]["train_df"]["sentiment"].to_list() == before

    def test_cleaning_targets_injected_errors(self, setting):
        cleaner = PipelineIterativeCleaner(
            setting["pipeline"], LogisticRegression(max_iter=80),
            CleaningOracle(setting["clean_train"]),
            dirty_source="train_df", valid_frame=setting["valid"],
            batch=18, k=10)
        result = cleaner.run(setting["sources"], n_rounds=2)
        flipped = setting["report"].row_ids()
        hits = len(set(result.cleaned_ids) & flipped)
        base_rate = len(flipped) / len(setting["clean_train"])
        assert hits / len(result.cleaned_ids) > base_rate

    def test_unknown_source_rejected(self, setting):
        with pytest.raises(ValidationError):
            PipelineIterativeCleaner(
                setting["pipeline"], LogisticRegression(),
                CleaningOracle(setting["clean_train"]),
                dirty_source="nope", valid_frame=setting["valid"])

    def test_invalid_rounds_rejected(self, setting):
        cleaner = PipelineIterativeCleaner(
            setting["pipeline"], LogisticRegression(),
            CleaningOracle(setting["clean_train"]),
            dirty_source="train_df", valid_frame=setting["valid"])
        with pytest.raises(ValidationError):
            cleaner.run(setting["sources"], n_rounds=0)
