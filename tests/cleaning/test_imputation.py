"""Unit tests for dataframe imputation repair."""

import numpy as np
import pytest

from repro.cleaning import impute_frame
from repro.core.exceptions import ValidationError
from repro.dataframe import DataFrame


@pytest.fixture()
def frame():
    return DataFrame({
        "num": [1.0, None, 3.0, None],
        "cat": ["a", "a", None, "b"],
        "full": [1.0, 2.0, 3.0, 4.0],
    })


class TestImputeFrame:
    def test_mean(self, frame):
        out = impute_frame(frame, strategy="mean", columns=["num"])
        assert out["num"].to_list() == [1.0, 2.0, 3.0, 2.0]

    def test_median(self, frame):
        out = impute_frame(frame, strategy="median", columns=["num"])
        assert out["num"].null_count() == 0

    def test_mode_works_on_categoricals(self, frame):
        out = impute_frame(frame, strategy="mode", columns=["cat"])
        assert out["cat"].to_list() == ["a", "a", "a", "b"]

    def test_mean_skips_categoricals_silently(self, frame):
        out = impute_frame(frame, strategy="mean")
        assert out["cat"].null_count() == 1  # untouched
        assert out["num"].null_count() == 0

    def test_knn(self, frame):
        out = impute_frame(frame, strategy="knn", columns=["num", "full"])
        assert out["num"].null_count() == 0

    def test_unknown_strategy_rejected(self, frame):
        with pytest.raises(ValidationError):
            impute_frame(frame, strategy="prophecy")

    def test_unknown_column_rejected(self, frame):
        with pytest.raises(ValidationError):
            impute_frame(frame, columns=["ghost"])

    def test_original_untouched(self, frame):
        impute_frame(frame, strategy="mean", columns=["num"])
        assert frame["num"].null_count() == 2
