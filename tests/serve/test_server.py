"""Integration tests for the Server facade — including the acceptance
criteria: concurrent multi-tenant jobs with bit-identical scores, fair
dispatch, early stop + resume, and observability isolation."""

import math
import time

import pytest

from repro.core.exceptions import ValidationError
from repro.importance import DataBanzhaf, MonteCarloShapley, leave_one_out
from repro.runtime import FingerprintCache, Runtime
from repro.serve import AdmissionError, Server


def hexes(values):
    return [float(v).hex() for v in values]


def wait_for(predicate, timeout=10.0, interval=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestAcceptance:
    def test_sixteen_jobs_four_tenants_bit_identical_and_fair(
            self, tmp_path, make_utility):
        """16 concurrent importance jobs from 4 tenants on one shared
        Runtime: scores bit-identical to solo serial runs, and every
        dispatch-log prefix gives each tenant at most 1.5x fair share."""
        tenants = {f"t{i}": {"weight": 1.0} for i in range(4)}
        runtime = Runtime(backend="serial", cache=FingerprintCache())
        submitted = []  # (job_id, method, seed)
        try:
            with Server(tmp_path / "srv", runtime=runtime, workers=4,
                        tenants=tenants) as server:
                for i in range(16):
                    method = "shapley_mc" if i % 2 == 0 else "banzhaf"
                    params = ({"n_permutations": 8, "seed": 100 + i}
                              if method == "shapley_mc"
                              else {"n_samples": 16, "seed": 100 + i})
                    job_id = server.submit(method, make_utility,
                                           tenant=f"t{i % 4}",
                                           params=params, every=4)
                    submitted.append((job_id, method, 100 + i))
                results = {job_id: server.result(job_id, timeout=120)
                           for job_id, _, _ in submitted}
                log = server.dispatch_log
        finally:
            runtime.close()

        for job_id, method, seed in submitted:
            if method == "shapley_mc":
                solo = MonteCarloShapley(
                    n_permutations=8, seed=seed).score(make_utility())
            else:
                solo = DataBanzhaf(
                    n_samples=16, seed=seed).score(make_utility())
            assert hexes(results[job_id]) == hexes(solo), \
                f"{job_id} ({method}, seed={seed}) diverged from solo run"

        assert len(log) == 16
        for tenant in tenants:
            assert log.count(tenant) == 4
        for k in (8, 12, 16):
            fair = k / 4
            for tenant in tenants:
                share = log[:k].count(tenant)
                assert share <= math.ceil(1.5 * fair), \
                    f"{tenant} got {share}/{k} dispatches (fair {fair})"

    def test_early_stop_then_resume_completes_hex_identically(
            self, tmp_path, make_utility):
        with Server(tmp_path / "srv", workers=1) as server:
            job_id = server.submit(
                "shapley_mc", make_utility, tenant="alice",
                params={"n_permutations": 60, "seed": 3}, every=1)
            est = server.estimate(job_id)
            seen = 0
            for snap in server.stream(job_id, timeout=30.0):
                seen += 1
                if seen >= 5:
                    est.stop()
                if snap.done:
                    break
            partial = server.result(job_id, timeout=30.0)
            status = server.status(job_id)
            assert status["state"] == "done"
            assert status["completed"] < 60
            assert len(partial) == 40

            resumed_id = server.resume(job_id)
            assert resumed_id == job_id
            final = server.result(job_id, timeout=60.0)
            assert server.status(job_id)["completed"] == 60

        solo = MonteCarloShapley(n_permutations=60, seed=3).score(
            make_utility())
        assert hexes(final) == hexes(solo)

    def test_stop_width_accuracy_budget(self, tmp_path, make_utility):
        with Server(tmp_path / "srv", workers=1) as server:
            job_id = server.submit(
                "shapley_mc", make_utility,
                params={"n_permutations": 500, "seed": 9},
                every=1, stop_width=1e9)
            server.result(job_id, timeout=60.0)
            status = server.status(job_id)
        # finite stderr appears at 2 folded permutations; a huge width
        # budget is satisfied immediately after that
        assert status["completed"] < 500
        assert status["ci_width"] <= 1e9


class TestSubmission:
    def test_loo_job_matches_direct_call(self, tmp_path, make_utility):
        with Server(tmp_path / "srv", workers=1) as server:
            job_id = server.submit("loo", make_utility)
            got = server.result(job_id, timeout=60.0)
        assert hexes(got) == hexes(leave_one_out(make_utility()))

    def test_sampling_methods_require_seed(self, tmp_path, make_utility):
        with Server(tmp_path / "srv", workers=1) as server:
            with pytest.raises(ValidationError, match="seed"):
                server.submit("shapley_mc", make_utility,
                              params={"n_permutations": 4})

    def test_unknown_method_rejected(self, tmp_path, make_utility):
        with Server(tmp_path / "srv", workers=1) as server:
            with pytest.raises(ValidationError):
                server.submit("influence", make_utility,
                              params={"seed": 0})

    def test_unknown_job_id_everywhere(self, tmp_path):
        with Server(tmp_path / "srv", workers=1) as server:
            for call in (server.status, server.result, server.cancel,
                         server.resume, server.estimate):
                with pytest.raises(ValidationError):
                    call("nope")

    def test_resubmit_of_live_job_rejected(self, tmp_path, make_utility):
        def slow_factory():
            time.sleep(0.4)
            return make_utility()

        with Server(tmp_path / "srv", workers=1) as server:
            job_id = server.submit("loo", slow_factory, job_id="dup-1")
            with pytest.raises(ValidationError, match="already"):
                server.submit("loo", slow_factory, job_id="dup-1")
            with pytest.raises(ValidationError, match="still"):
                server.resume(job_id)
            server.result(job_id, timeout=30.0)

    def test_result_timeout(self, tmp_path, make_utility):
        def slow_factory():
            time.sleep(0.5)
            return make_utility()

        with Server(tmp_path / "srv", workers=1) as server:
            job_id = server.submit("loo", slow_factory)
            with pytest.raises(TimeoutError):
                server.result(job_id, timeout=0.05)
            server.result(job_id, timeout=30.0)


class TestAdmissionControl:
    def test_queue_full_rejects_with_retry_after(self, tmp_path,
                                                 make_utility):
        def slow_factory():
            time.sleep(0.8)
            return make_utility()

        with Server(tmp_path / "srv", workers=1, queue_capacity=2,
                    retry_after=0.25) as server:
            running = server.submit("loo", slow_factory)
            assert wait_for(lambda:
                            server.status(running)["state"] == "running")
            server.submit("loo", make_utility)
            server.submit("loo", make_utility)
            with pytest.raises(AdmissionError) as err:
                server.submit("loo", make_utility)
            assert err.value.reason == "queue_full"
            assert err.value.retry_after >= 0.25

    def test_tenant_quota_rejects(self, tmp_path, make_utility):
        def slow_factory():
            time.sleep(0.6)
            return make_utility()

        with Server(tmp_path / "srv", workers=1,
                    tenants={"a": {"max_pending": 1}}) as server:
            running = server.submit("loo", slow_factory, tenant="z")
            assert wait_for(lambda:
                            server.status(running)["state"] == "running")
            server.submit("loo", make_utility, tenant="a")
            with pytest.raises(AdmissionError) as err:
                server.submit("loo", make_utility, tenant="a")
            assert err.value.reason == "tenant_quota"
            server.submit("loo", make_utility, tenant="b")  # unaffected


class TestCancellation:
    def test_cancel_pending_job(self, tmp_path, make_utility):
        def slow_factory():
            time.sleep(0.6)
            return make_utility()

        with Server(tmp_path / "srv", workers=1) as server:
            blocker = server.submit("loo", slow_factory)
            assert wait_for(lambda:
                            server.status(blocker)["state"] == "running")
            victim = server.submit("loo", make_utility)
            server.cancel(victim)
            assert server.status(victim)["state"] == "cancelled"
            with pytest.raises(ValidationError, match="cancelled"):
                server.result(victim, timeout=5.0)

    def test_cancel_running_job_at_next_publish(self, tmp_path,
                                                make_utility):
        with Server(tmp_path / "srv", workers=1) as server:
            job_id = server.submit(
                "shapley_mc", make_utility,
                params={"n_permutations": 50000, "seed": 1}, every=1)
            est = server.estimate(job_id)
            assert est.wait(seq=0, timeout=30.0) is not None
            server.cancel(job_id)
            assert wait_for(lambda: server.status(job_id)["state"]
                            == "cancelled", timeout=30.0)
            with pytest.raises(ValidationError):
                server.result(job_id, timeout=5.0)


class TestObservabilityIsolation:
    def test_tenant_metrics_are_isolated(self, tmp_path, make_utility):
        with Server(tmp_path / "srv", workers=2) as server:
            a_job = server.submit("loo", make_utility, tenant="a")
            b_job = server.submit(
                "shapley_mc", make_utility, tenant="b",
                params={"n_permutations": 4, "seed": 0})
            server.result(a_job, timeout=60.0)
            server.result(b_job, timeout=60.0)
            a_metrics = server.tenant_metrics("a")
            b_metrics = server.tenant_metrics("b")
        assert a_metrics["jobs.done"] == 1
        assert b_metrics["jobs.done"] == 1
        assert "jobs.seconds" in a_metrics

    def test_each_job_gets_its_own_runlog(self, tmp_path, make_utility):
        with Server(tmp_path / "srv", workers=1) as server:
            first = server.submit("loo", make_utility, tenant="a")
            second = server.submit("loo", make_utility, tenant="b")
            server.result(first, timeout=60.0)
            server.result(second, timeout=60.0)
        for job_id in (first, second):
            path = tmp_path / "srv" / "runlogs" / f"{job_id}.jsonl"
            assert path.exists()
            text = path.read_text()
            assert "job.start" in text and "job.done" in text
            assert job_id in text
        first_log = (tmp_path / "srv" / "runlogs"
                     / f"{first}.jsonl").read_text()
        assert second not in first_log  # no cross-job leakage


class TestLifecycle:
    def test_drain_stops_jobs_flushes_and_rejects(self, tmp_path,
                                                  make_utility):
        server = Server(tmp_path / "srv", workers=1)
        job_id = server.submit(
            "shapley_mc", make_utility,
            params={"n_permutations": 50000, "seed": 2}, every=1)
        est = server.estimate(job_id)
        assert est.wait(seq=0, timeout=30.0) is not None
        assert server.drain(timeout=60.0, stop_running=True) is True
        assert server.status(job_id)["state"] == "done"
        assert server.status(job_id)["completed"] < 50000
        store = tmp_path / "srv" / "checkpoints" / job_id
        assert store.exists() and any(store.iterdir())
        with pytest.raises(AdmissionError) as err:
            server.submit("loo", make_utility)
        assert err.value.reason == "draining"

    def test_stats_snapshot(self, tmp_path, make_utility):
        with Server(tmp_path / "srv", workers=1, owner="stats-owner") \
                as server:
            job_id = server.submit("loo", make_utility)
            server.result(job_id, timeout=60.0)
            stats = server.stats()
            jobs = server.jobs()
        assert stats["owner"] == "stats-owner"
        assert stats["jobs"][job_id] == "done"
        assert stats["queue"]["capacity"] == 64
        assert stats["metrics"]["serve.jobs.completed"] == 1
        assert [j["job_id"] for j in jobs] == [job_id]
        assert "Server(" in repr(server)
