"""Unit tests for checkpoint-backed job leases."""

import time

import pytest

from repro.core.exceptions import ValidationError
from repro.serve import LeaseLost, LeaseManager


def manager(tmp_path, owner, ttl=30.0):
    return LeaseManager(tmp_path / "leases", owner=owner, ttl=ttl)


class TestAcquire:
    def test_fresh_acquire(self, tmp_path):
        leases = manager(tmp_path, "w1")
        lease = leases.acquire("job-a")
        assert lease is not None
        assert lease.owner == "w1" and lease.epoch == 0
        assert not lease.adopted
        assert lease.remaining() > 0
        record = leases.peek("job-a")
        assert record["state"] == "running" and record["owner"] == "w1"

    def test_held_lease_blocks_other_owner(self, tmp_path):
        manager(tmp_path, "w1").acquire("job-a")
        assert manager(tmp_path, "w2").acquire("job-a") is None

    def test_same_owner_reacquires_at_next_epoch(self, tmp_path):
        leases = manager(tmp_path, "w1")
        assert leases.acquire("job-a").epoch == 0
        again = leases.acquire("job-a")
        assert again.epoch == 1 and not again.adopted

    def test_released_lease_transfers_cleanly(self, tmp_path):
        first = manager(tmp_path, "w1")
        lease = first.acquire("job-a")
        first.release(lease, state="done")
        assert manager(tmp_path, "w1").peek("job-a")["state"] == "done"
        taken = manager(tmp_path, "w2").acquire("job-a")
        assert taken is not None and taken.epoch == 1
        assert not taken.adopted  # clean handoff, not a crash adoption

    def test_validation(self, tmp_path):
        with pytest.raises(ValidationError):
            LeaseManager(tmp_path, ttl=0.0)


class TestExpiryAndAdoption:
    def test_expired_lease_is_adopted(self, tmp_path):
        victim = manager(tmp_path, "victim", ttl=0.2)
        lease = victim.acquire("job-a")
        assert lease is not None
        time.sleep(0.25)
        adopter = manager(tmp_path, "adopter", ttl=0.2)
        taken = adopter.acquire("job-a")
        assert taken is not None
        assert taken.adopted and taken.epoch == lease.epoch + 1
        assert taken.owner == "adopter"

    def test_superseded_owner_gets_lease_lost_on_heartbeat(self, tmp_path):
        victim = manager(tmp_path, "victim", ttl=0.2)
        lease = victim.acquire("job-a")
        time.sleep(0.25)
        manager(tmp_path, "adopter", ttl=0.2).acquire("job-a")
        with pytest.raises(LeaseLost):
            victim.heartbeat(lease)

    def test_superseded_release_is_a_noop(self, tmp_path):
        victim = manager(tmp_path, "victim", ttl=0.2)
        lease = victim.acquire("job-a")
        time.sleep(0.25)
        adopter = manager(tmp_path, "adopter", ttl=60.0)
        adopter.acquire("job-a")
        victim.release(lease, state="failed")  # must not clobber
        record = victim.peek("job-a")
        assert record["owner"] == "adopter" and record["state"] == "running"


class TestHeartbeat:
    def test_fresh_lease_skips_the_write(self, tmp_path):
        leases = manager(tmp_path, "w1", ttl=30.0)
        lease = leases.acquire("job-a")
        before = lease.expires_at
        assert leases.heartbeat(lease).expires_at == before

    def test_aging_lease_is_extended(self, tmp_path):
        leases = manager(tmp_path, "w1", ttl=0.3)
        lease = leases.acquire("job-a")
        time.sleep(0.2)  # inside the second half of the ttl
        before = lease.expires_at
        extended = leases.heartbeat(lease)
        assert extended.expires_at > before
        assert leases.peek("job-a")["expires_at"] == extended.expires_at

    def test_epoch_fencing_across_generations(self, tmp_path):
        leases = manager(tmp_path, "w1")
        epochs = []
        for _ in range(3):
            lease = leases.acquire("job-a")
            epochs.append(lease.epoch)
            leases.release(lease, state="done")
        assert epochs == [0, 1, 2]
