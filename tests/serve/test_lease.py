"""Unit tests for checkpoint-backed job leases."""

import time

import pytest

from repro.core.exceptions import ValidationError
from repro.serve import LeaseLost, LeaseManager


def manager(tmp_path, owner, ttl=30.0):
    return LeaseManager(tmp_path / "leases", owner=owner, ttl=ttl)


class TestAcquire:
    def test_fresh_acquire(self, tmp_path):
        leases = manager(tmp_path, "w1")
        lease = leases.acquire("job-a")
        assert lease is not None
        assert lease.owner == "w1" and lease.epoch == 0
        assert not lease.adopted
        assert lease.remaining() > 0
        record = leases.peek("job-a")
        assert record["state"] == "running" and record["owner"] == "w1"

    def test_held_lease_blocks_other_owner(self, tmp_path):
        manager(tmp_path, "w1").acquire("job-a")
        assert manager(tmp_path, "w2").acquire("job-a") is None

    def test_same_owner_reacquires_at_next_epoch(self, tmp_path):
        leases = manager(tmp_path, "w1")
        assert leases.acquire("job-a").epoch == 0
        again = leases.acquire("job-a")
        assert again.epoch == 1 and not again.adopted

    def test_released_lease_transfers_cleanly(self, tmp_path):
        first = manager(tmp_path, "w1")
        lease = first.acquire("job-a")
        first.release(lease, state="done")
        assert manager(tmp_path, "w1").peek("job-a")["state"] == "done"
        taken = manager(tmp_path, "w2").acquire("job-a")
        assert taken is not None and taken.epoch == 1
        assert not taken.adopted  # clean handoff, not a crash adoption

    def test_validation(self, tmp_path):
        with pytest.raises(ValidationError):
            LeaseManager(tmp_path, ttl=0.0)


def adopt(adopter, job_id, *, ttl):
    """Adoption is two-phase: the first acquire only starts the
    adopter's monotonic observation window; once the holder's record
    has gone unrenewed for a full ttl, the next acquire takes it."""
    assert adopter.acquire(job_id) is None  # starts the window
    time.sleep(ttl + 0.05)
    return adopter.acquire(job_id)


class TestExpiryAndAdoption:
    def test_unrenewed_lease_is_adopted(self, tmp_path):
        victim = manager(tmp_path, "victim", ttl=0.2)
        lease = victim.acquire("job-a")
        assert lease is not None
        adopter = manager(tmp_path, "adopter", ttl=0.2)
        taken = adopt(adopter, "job-a", ttl=0.2)
        assert taken is not None
        assert taken.adopted and taken.epoch == lease.epoch + 1
        assert taken.owner == "adopter"

    def test_renewed_lease_resets_the_observation_window(self, tmp_path):
        victim = manager(tmp_path, "victim", ttl=0.3)
        lease = victim.acquire("job-a")
        adopter = manager(tmp_path, "adopter", ttl=0.3)
        assert adopter.acquire("job-a") is None  # window starts
        time.sleep(0.2)  # owner alive: renew inside the second half
        victim.heartbeat(lease)
        time.sleep(0.2)  # 0.4s since first sight, but record changed
        assert adopter.acquire("job-a") is None
        assert adopter.retry_after("job-a") > 0.0

    def test_retry_after_counts_down_to_adoptability(self, tmp_path):
        victim = manager(tmp_path, "victim", ttl=0.2)
        victim.acquire("job-a")
        adopter = manager(tmp_path, "adopter", ttl=0.2)
        first = adopter.retry_after("job-a")  # starts the window
        assert 0.0 < first <= 0.2
        time.sleep(0.25)
        assert adopter.retry_after("job-a") == 0.0
        assert adopter.acquire("job-a").adopted

    def test_superseded_owner_gets_lease_lost_on_heartbeat(self, tmp_path):
        victim = manager(tmp_path, "victim", ttl=0.2)
        lease = victim.acquire("job-a")
        assert adopt(manager(tmp_path, "adopter", ttl=0.2), "job-a",
                     ttl=0.2) is not None
        lease.deadline_mono = 0.0  # force the renewal write path
        with pytest.raises(LeaseLost):
            victim.heartbeat(lease)

    def test_superseded_release_is_a_noop(self, tmp_path):
        victim = manager(tmp_path, "victim", ttl=0.2)
        lease = victim.acquire("job-a")
        adopter = manager(tmp_path, "adopter", ttl=60.0)
        assert adopt(adopter, "job-a", ttl=0.2) is not None
        victim.release(lease, state="failed")  # must not clobber
        record = victim.peek("job-a")
        assert record["owner"] == "adopter" and record["state"] == "running"


class TestClockJumps:
    """Liveness must ride the monotonic clock: NTP steps to the wall
    clock change display fields only (the regression behind this suite:
    a forward wall jump used to expire a live lease instantly)."""

    def test_forward_wall_jump_does_not_expire_a_live_lease(
            self, tmp_path, monkeypatch):
        from repro.serve import lease as lease_mod

        victim = manager(tmp_path, "victim", ttl=30.0)
        victim.acquire("job-a")
        real_time = time.time
        monkeypatch.setattr(lease_mod.time, "time",
                            lambda: real_time() + 3600.0)
        adopter = manager(tmp_path, "adopter", ttl=30.0)
        # Wall clock says the lease expired an hour ago; the adopter's
        # monotonic observation window says the owner may be alive.
        assert adopter.acquire("job-a") is None
        assert adopter.retry_after("job-a") > 0.0

    def test_backward_wall_jump_does_not_block_renewal(
            self, tmp_path, monkeypatch):
        from repro.serve import lease as lease_mod

        leases = manager(tmp_path, "w1", ttl=0.3)
        lease = leases.acquire("job-a")
        real_time = time.time
        monkeypatch.setattr(lease_mod.time, "time",
                            lambda: real_time() - 3600.0)
        time.sleep(0.2)  # monotonic aging into the renewal half
        renewed = leases.heartbeat(lease)
        assert renewed.renewals == 1
        assert renewed.remaining() > 0.2  # extended on the monotonic clock

    def test_wall_fields_stay_for_provenance(self, tmp_path):
        leases = manager(tmp_path, "w1", ttl=30.0)
        lease = leases.acquire("job-a")
        record = leases.peek("job-a")
        assert record["expires_at"] == pytest.approx(lease.expires_at)
        assert record["ttl"] == 30.0 and record["renewals"] == 0


class TestHeartbeat:
    def test_fresh_lease_skips_the_write(self, tmp_path):
        leases = manager(tmp_path, "w1", ttl=30.0)
        lease = leases.acquire("job-a")
        before = lease.expires_at
        assert leases.heartbeat(lease).expires_at == before

    def test_aging_lease_is_extended(self, tmp_path):
        leases = manager(tmp_path, "w1", ttl=0.3)
        lease = leases.acquire("job-a")
        time.sleep(0.2)  # inside the second half of the ttl
        before = lease.expires_at
        extended = leases.heartbeat(lease)
        assert extended.expires_at > before
        assert leases.peek("job-a")["expires_at"] == extended.expires_at

    def test_epoch_fencing_across_generations(self, tmp_path):
        leases = manager(tmp_path, "w1")
        epochs = []
        for _ in range(3):
            lease = leases.acquire("job-a")
            epochs.append(lease.epoch)
            leases.release(lease, state="done")
        assert epochs == [0, 1, 2]
