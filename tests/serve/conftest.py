"""Shared fixtures for the serving-tier tests.

The game is deliberately tiny and kernel-backed (KNN on 3-feature
blobs) so that full importance runs cost milliseconds — the serve tests
exercise scheduling, leases, and streaming, not model training.
"""

import pytest

from repro.datasets import make_blobs
from repro.importance import Utility
from repro.ml import KNeighborsClassifier


@pytest.fixture(scope="session")
def game_data():
    X, y = make_blobs(60, n_features=3, centers=2, seed=0)
    return X[:40], y[:40], X[40:], y[40:]


@pytest.fixture()
def make_utility(game_data):
    """Zero-arg utility factory — the preferred JobSpec.utility form."""
    X_train, y_train, X_valid, y_valid = game_data

    def factory():
        return Utility(KNeighborsClassifier(n_neighbors=3),
                       X_train, y_train, X_valid, y_valid)

    return factory


def hexes(values):
    """Bitwise-exact comparison key for a float array."""
    return [float(v).hex() for v in values]
