"""Unit tests for the AnytimeEstimate publish/consume protocol."""

import threading

import numpy as np
import pytest
from scipy.stats import norm

from repro.core.exceptions import ValidationError
from repro.serve import AnytimeEstimate


def publish(est, *, completed=1, total=10, values=(1.0, 2.0),
            stderr=(0.1, 0.2)):
    return est.publish(method="m", completed=completed, total=total,
                       values=np.asarray(values, dtype=float),
                       stderr=np.asarray(stderr, dtype=float))


class TestPublish:
    def test_snapshot_fields_and_halfwidth(self):
        est = AnytimeEstimate(confidence=0.9)
        assert est.latest() is None
        assert publish(est) is False
        snap = est.latest()
        assert snap.method == "m"
        assert snap.completed == 1 and snap.total == 10
        assert snap.seq == 1 and not snap.done and snap.error is None
        z = norm.ppf(0.95)
        np.testing.assert_allclose(snap.halfwidth, z * np.array([0.1, 0.2]))
        assert snap.width == pytest.approx(z * 0.2)
        assert snap.fraction == pytest.approx(0.1)

    def test_arrays_are_copied(self):
        est = AnytimeEstimate()
        values = np.array([1.0, 2.0])
        est.publish(method="m", completed=1, total=2, values=values,
                    stderr=np.zeros(2))
        values[0] = 99.0
        assert est.latest().values[0] == 1.0

    def test_seq_increments_per_publish(self):
        est = AnytimeEstimate()
        for k in range(1, 4):
            publish(est, completed=k)
            assert est.latest().seq == k

    def test_halfwidth_monotone_under_clt_shrinking_stderr(self):
        # Feeding the canonical CLT sequence s/sqrt(k) must yield a
        # nonincreasing width — the property stop_when() relies on.
        est = AnytimeEstimate()
        widths = []
        for k in range(2, 50):
            publish(est, completed=k, total=50,
                    stderr=(1.0 / np.sqrt(k), 0.5 / np.sqrt(k)))
            widths.append(est.latest().width)
        assert all(a >= b for a, b in zip(widths, widths[1:]))


class TestEarlyStop:
    def test_stop_when_fires_at_threshold(self):
        est = AnytimeEstimate()
        est.stop_when(0.5)
        assert publish(est, stderr=(1.0, 1.0)) is False
        assert publish(est, stderr=(0.1, 0.1)) is True

    def test_inf_stderr_never_satisfies_stop_when(self):
        est = AnytimeEstimate()
        est.stop_when(1e9)
        assert publish(est, stderr=(0.0, np.inf)) is False

    def test_stop_forces_next_publish(self):
        est = AnytimeEstimate()
        assert publish(est) is False
        est.stop()
        assert publish(est, stderr=(np.inf, np.inf)) is True

    def test_zero_width_threshold_needs_exact_estimate(self):
        est = AnytimeEstimate()
        est.stop_when(0.0)
        assert publish(est, stderr=(0.1, 0.0)) is False
        assert publish(est, stderr=(0.0, 0.0)) is True


class TestLifecycle:
    def test_mark_done_republishes_with_final_values(self):
        est = AnytimeEstimate()
        publish(est)
        est.mark_done(np.array([3.0, 4.0]))
        snap = est.latest()
        assert est.done and snap.done
        assert list(snap.values) == [3.0, 4.0]
        assert snap.seq == 2

    def test_mark_done_without_any_publish(self):
        est = AnytimeEstimate()
        est.mark_done(np.array([1.0]))
        assert est.done and est.latest().done

    def test_mark_failed_attaches_error(self):
        est = AnytimeEstimate()
        publish(est)
        est.mark_failed(RuntimeError("boom"))
        snap = est.latest()
        assert snap.done and "boom" in snap.error

    def test_wait_returns_newer_snapshot(self):
        est = AnytimeEstimate()
        publish(est)
        snap = est.wait(seq=0, timeout=1.0)
        assert snap is not None and snap.seq == 1
        assert est.wait(seq=snap.seq, timeout=0.02) is None

    def test_stream_from_background_publisher(self):
        est = AnytimeEstimate()

        def produce():
            for k in range(1, 5):
                publish(est, completed=k, total=4)
            est.mark_done()

        thread = threading.Thread(target=produce)
        thread.start()
        snaps = list(est.stream(timeout=5.0))
        thread.join()
        assert snaps[-1].done
        seqs = [s.seq for s in snaps]
        assert seqs == sorted(seqs)  # never goes backwards


class TestValidation:
    def test_confidence_bounds(self):
        with pytest.raises(ValidationError):
            AnytimeEstimate(confidence=0.0)
        with pytest.raises(ValidationError):
            AnytimeEstimate(confidence=1.0)

    def test_every_bound(self):
        with pytest.raises(ValidationError):
            AnytimeEstimate(every=0)

    def test_negative_stop_width_rejected(self):
        with pytest.raises(ValidationError):
            AnytimeEstimate().stop_when(-0.1)
