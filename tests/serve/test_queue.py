"""Unit tests for admission control and stride-fair dispatch."""

import itertools
import time

import pytest

from repro.core.exceptions import ValidationError
from repro.serve import AdmissionError, Job, JobQueue, JobSpec
from repro.serve.anytime import AnytimeEstimate

_seq = itertools.count(1)


def make_job(tenant="t", priority=0):
    seq = next(_seq)
    spec = JobSpec(job_id=f"q-{seq}", tenant=tenant, method="loo",
                   utility=None, priority=priority)
    return Job(spec, anytime=AnytimeEstimate(), seq=seq)


def drain(queue, n):
    """Pop ``n`` jobs, reporting each done, and return the tenant log."""
    for _ in range(n):
        job = queue.pop(timeout=1.0)
        assert job is not None
        queue.task_done(job.spec.tenant)
    return queue.dispatch_log


class TestAdmission:
    def test_capacity_rejection_with_retry_hint(self):
        queue = JobQueue(capacity=2, retry_after=0.5)
        queue.push(make_job())
        queue.push(make_job())
        with pytest.raises(AdmissionError) as err:
            queue.push(make_job())
        assert err.value.reason == "queue_full"
        assert err.value.retry_after >= 0.5

    def test_tenant_pending_quota(self):
        queue = JobQueue(capacity=10)
        queue.configure_tenant("a", max_pending=1)
        queue.push(make_job("a"))
        with pytest.raises(AdmissionError) as err:
            queue.push(make_job("a"))
        assert err.value.reason == "tenant_quota"
        queue.push(make_job("b"))  # other tenants unaffected

    def test_closed_queue_rejects_but_still_drains(self):
        queue = JobQueue(capacity=10)
        queue.push(make_job("a"))
        queue.close()
        with pytest.raises(AdmissionError) as err:
            queue.push(make_job("a"))
        assert err.value.reason == "draining"
        assert queue.pop(timeout=1.0) is not None

    def test_invalid_config_rejected(self):
        with pytest.raises(ValidationError):
            JobQueue(capacity=0)
        with pytest.raises(ValidationError):
            JobQueue().configure_tenant("a", weight=0.0)


class TestDispatchOrder:
    def test_priority_beats_fifo_within_tenant(self):
        queue = JobQueue()
        low = make_job("a", priority=0)
        high = make_job("a", priority=5)
        mid = make_job("a", priority=1)
        for job in (low, high, mid):
            queue.push(job)
        popped = [queue.pop(timeout=1.0) for _ in range(3)]
        assert popped == [high, mid, low]

    def test_fifo_ties_by_admission_order(self):
        queue = JobQueue()
        jobs = [make_job("a") for _ in range(4)]
        for job in jobs:
            queue.push(job)
        assert [queue.pop(timeout=1.0) for _ in range(4)] == jobs

    def test_equal_weights_alternate(self):
        queue = JobQueue()
        for _ in range(4):
            queue.push(make_job("a"))
        for _ in range(4):
            queue.push(make_job("b"))
        assert drain(queue, 8) == ["a", "b"] * 4

    def test_weighted_two_to_one_stride(self):
        queue = JobQueue()
        queue.configure_tenant("a", weight=2.0)
        queue.configure_tenant("b", weight=1.0)
        for _ in range(6):
            queue.push(make_job("a"))
        for _ in range(3):
            queue.push(make_job("b"))
        log = drain(queue, 9)
        assert log == ["a", "b", "a", "a", "b", "a", "a", "b", "a"]

    def test_late_tenant_starts_at_virtual_time(self):
        # A tenant arriving mid-stream must not be owed "back pay": it
        # starts at the incumbents' pass, so it cannot monopolize.
        queue = JobQueue()
        for _ in range(8):
            queue.push(make_job("a"))
        drain(queue, 4)
        for _ in range(4):
            queue.push(make_job("b"))
        log = drain(queue, 8)
        recent = log[4:]
        assert recent.count("a") == 4 and recent.count("b") == 4
        # never two-in-a-row for the latecomer
        assert all(not (x == y == "b") for x, y in zip(recent, recent[1:]))

    def test_max_active_skips_saturated_tenant(self):
        queue = JobQueue()
        queue.configure_tenant("a", max_active=1)
        first, second = make_job("a"), make_job("a")
        other = make_job("b")
        for job in (first, second, other):
            queue.push(job)
        assert queue.pop(timeout=1.0) is first
        assert queue.pop(timeout=1.0) is other  # a is at max_active
        assert queue.pop(timeout=0.05) is None
        queue.task_done("a")
        assert queue.pop(timeout=1.0) is second


class TestParkAndRemove:
    def test_parked_job_returns_after_deadline(self):
        queue = JobQueue()
        job = make_job("a")
        queue.push(job)
        assert queue.pop(timeout=1.0) is job
        queue.task_done("a")
        queue.park(job, delay=0.15)
        assert queue.pop(timeout=0.05) is None
        assert queue.pop(timeout=2.0) is job

    def test_parked_deadline_ignores_wall_clock_jumps(self, monkeypatch):
        from repro.serve import queue as queue_mod

        queue = JobQueue()
        job = make_job("a")
        queue.push(job)
        assert queue.pop(timeout=1.0) is job
        queue.task_done("a")
        queue.park(job, delay=60.0)
        # A forward wall-clock step used to unpark lease-backoff jobs
        # immediately; the deadline now lives on the monotonic clock.
        real_time = time.time
        monkeypatch.setattr(queue_mod.time, "time",
                            lambda: real_time() + 3600.0)
        assert queue.pop(timeout=0.2) is None
        assert queue.remove(job) is True

    def test_remove_pending_and_parked(self):
        queue = JobQueue()
        first, second = make_job("a"), make_job("a")
        queue.push(first)
        queue.push(second)
        assert queue.remove(first) is True
        assert queue.pop(timeout=1.0) is second
        queue.task_done("a")
        queue.park(second, delay=60)
        assert queue.remove(second) is True
        assert queue.remove(second) is False
        assert queue.idle()


class TestIntrospection:
    def test_snapshot_and_idle(self):
        queue = JobQueue(capacity=8)
        queue.configure_tenant("a", weight=2.0)
        queue.push(make_job("a"))
        snap = queue.snapshot()
        assert snap["pending"] == 1 and snap["capacity"] == 8
        assert snap["tenants"]["a"]["weight"] == 2.0
        assert not queue.idle()
        job = queue.pop(timeout=1.0)
        assert queue.active == 1
        queue.task_done(job.spec.tenant)
        assert queue.idle() and queue.wait_idle(timeout=1.0)
