"""Crash adoption: SIGKILL a worker process mid-job, adopt via lease
expiry, and resume hex-identically with exact call accounting.

The victim is a real subprocess running its own Server; the parent
plays the adopter. Both build the identical utility (deterministic data
and model fingerprints), so the parent resumes the victim's checkpoint.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.datasets import make_blobs
from repro.importance import MonteCarloShapley, Utility
from repro.ml import LogisticRegression
from repro.serve import Server

JOB_ID = "adopt-1"
PARAMS = {"n_permutations": 800, "seed": 11}
LEASE_TTL = 1.5

SRC = str(Path(__file__).resolve().parents[2] / "src")

VICTIM_SCRIPT = """\
import sys
sys.path.insert(0, {src!r})
from repro.datasets import make_blobs
from repro.importance import Utility
from repro.ml import LogisticRegression
from repro.serve import Server

def factory():
    X, y = make_blobs(60, n_features=3, centers=2, seed=0)
    return Utility(LogisticRegression(max_iter=40),
                   X[:40], y[:40], X[40:], y[40:])

server = Server({data_dir!r}, workers=1, lease_ttl={ttl!r},
                owner="victim")
server.submit("shapley_mc", factory, tenant="alice",
              params={params!r}, every=1, job_id={job_id!r})
server.result({job_id!r}, timeout=600)
"""


def _factory():
    X, y = make_blobs(60, n_features=3, centers=2, seed=0)
    return Utility(LogisticRegression(max_iter=40),
                   X[:40], y[:40], X[40:], y[40:])


def hexes(values):
    return [float(v).hex() for v in values]


@pytest.mark.skipif(not hasattr(signal, "SIGKILL"),
                    reason="needs SIGKILL")
def test_sigkilled_worker_is_adopted_and_resumes_hex_identically(
        tmp_path):
    data_dir = tmp_path / "cluster"
    script = VICTIM_SCRIPT.format(src=SRC, data_dir=str(data_dir),
                                  ttl=LEASE_TTL, params=PARAMS,
                                  job_id=JOB_ID)
    victim = subprocess.Popen([sys.executable, "-c", script],
                              stdout=subprocess.DEVNULL,
                              stderr=subprocess.PIPE)
    try:
        # Wait for real progress: the first flushed estimator
        # checkpoint proves the job is running and has durable state.
        store = data_dir / "checkpoints" / JOB_ID
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            if store.exists() and any(store.iterdir()):
                break
            if victim.poll() is not None:
                stderr = victim.stderr.read().decode()
                pytest.fail(f"victim exited prematurely:\n{stderr}")
            time.sleep(0.005)
        else:
            pytest.fail("victim never flushed a checkpoint")
        time.sleep(0.1)  # let a few more permutations land
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=30.0)
    finally:
        if victim.poll() is None:
            victim.kill()
            victim.wait(timeout=30.0)
        victim.stderr.close()

    # The victim died holding the lease: its record must still say
    # "running" with an unexpired-or-recent expiry.
    built = []

    def recording_factory():
        utility = _factory()
        built.append(utility)
        return utility

    with Server(data_dir, workers=1, lease_ttl=LEASE_TTL,
                owner="adopter") as server:
        held = server._leases.peek(JOB_ID)
        assert held is not None and held["owner"] == "victim"
        assert held["state"] == "running"
        server.submit("shapley_mc", recording_factory, tenant="alice",
                      params=PARAMS, every=1, job_id=JOB_ID)
        adopted = server.result(JOB_ID, timeout=300.0)
        status = server.status(JOB_ID)
        record = server._leases.peek(JOB_ID)

    # The job waited out the victim's lease and took it at a higher
    # epoch — the adoption path, not a fresh acquisition.
    assert record["owner"] == "adopter" and record["state"] == "done"
    assert record["epoch"] == held["epoch"] + 1
    assert status["state"] == "done"
    assert status["completed"] == PARAMS["n_permutations"]

    # Hex-identical to an uninterrupted solo serial run...
    solo_utility = _factory()
    solo = MonteCarloShapley(**PARAMS).score(solo_utility)
    assert hexes(adopted) == hexes(solo)

    # ...with exact call accounting: checkpoint resume restores the
    # victim's utility.calls, so the adopter's total matches solo.
    assert len(built) == 1
    assert built[0].calls == solo_utility.calls
