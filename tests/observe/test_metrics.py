"""Counter/gauge/histogram semantics, snapshot, reset, type safety."""

import threading

import pytest

from repro.observe import MetricsRegistry, global_registry


def test_counter_accumulates():
    registry = MetricsRegistry()
    registry.inc("evals")
    registry.inc("evals", 41)
    assert registry.counter("evals").value == 42


def test_gauge_last_value_wins():
    registry = MetricsRegistry()
    registry.set_gauge("hit_rate", 0.25)
    registry.set_gauge("hit_rate", 0.75)
    assert registry.gauge("hit_rate").value == 0.75


def test_histogram_summary():
    registry = MetricsRegistry()
    for value in (1.0, 2.0, 3.0):
        registry.observe("round_seconds", value)
    summary = registry.histogram("round_seconds").as_value()
    assert summary == {"count": 3, "sum": 6.0, "min": 1.0, "max": 3.0,
                       "mean": 2.0}


def test_snapshot_is_sorted_and_typed():
    registry = MetricsRegistry()
    registry.inc("b.counter", 2)
    registry.set_gauge("a.gauge", 1.5)
    registry.observe("c.hist", 4.0)
    snap = registry.snapshot()
    assert list(snap) == ["a.gauge", "b.counter", "c.hist"]
    assert snap["a.gauge"] == 1.5
    assert snap["b.counter"] == 2
    assert snap["c.hist"]["count"] == 1


def test_reset_clears_everything():
    registry = MetricsRegistry()
    registry.inc("x")
    registry.reset()
    assert len(registry) == 0
    assert registry.snapshot() == {}
    registry.inc("x")        # names re-register cleanly
    assert registry.counter("x").value == 1


def test_name_cannot_change_type():
    registry = MetricsRegistry()
    registry.inc("n")
    with pytest.raises(TypeError):
        registry.gauge("n")


def test_concurrent_increments_are_not_lost():
    registry = MetricsRegistry()

    def bump():
        for _ in range(1000):
            registry.inc("n")

    threads = [threading.Thread(target=bump) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert registry.counter("n").value == 4000


def test_global_registry_is_a_process_singleton():
    assert global_registry() is global_registry()
    assert isinstance(global_registry(), MetricsRegistry)
