"""Runlog recording, JSONL round-trip, numpy sanitization, run diffing."""

import json

import numpy as np

from repro.observe import RunLog, diff_runs, jsonable


def test_events_get_sequence_numbers_and_kind():
    log = RunLog(run_id="r1")
    log.record("a", x=1)
    log.record("b", y=2)
    assert [e["seq"] for e in log.events] == [0, 1]
    assert [e["kind"] for e in log.events] == ["a", "b"]
    assert all(e["run_id"] == "r1" for e in log.events)


def test_jsonable_converts_numpy_types():
    out = jsonable({
        "i": np.int64(3), "f": np.float32(1.5), "b": np.bool_(True),
        "arr": np.array([1, 2]), "nested": [np.float64(0.25)],
    })
    assert out == {"i": 3, "f": 1.5, "b": True, "arr": [1, 2],
                   "nested": [0.25]}
    json.dumps(out)  # must be JSON-serializable


def test_jsonl_write_through_and_round_trip(tmp_path):
    path = tmp_path / "runs" / "log.jsonl"
    log = RunLog(path, run_id="rt")
    log.record("importance.run", method="loo", seed=7,
               scores=np.array([0.1, 0.2]))
    log.record("cleaning.round", round=np.int64(0), score=np.float64(0.9))

    lines = path.read_text().strip().splitlines()
    assert len(lines) == 2
    assert json.loads(lines[0])["method"] == "loo"

    loaded = RunLog.load(path)
    assert loaded.run_id == "rt"
    assert loaded.events == log.events


def test_write_dumps_in_memory_log(tmp_path):
    log = RunLog(run_id="m")
    log.record("x", value=1)
    out = log.write(tmp_path / "dump.jsonl")
    assert RunLog.load(out).events == log.events


def test_iter_events_filters_by_kind():
    log = RunLog()
    log.record("a", n=1)
    log.record("b", n=2)
    log.record("a", n=3)
    assert [e["n"] for e in log.iter_events("a")] == [1, 3]
    assert log.kinds() == {"a": 2, "b": 1}


def test_diff_identical_runs_is_empty():
    a, b = RunLog(run_id="a"), RunLog(run_id="b")
    for log in (a, b):
        log.record("importance.run", method="shapley_mc", seed=0,
                   data_fingerprint="abc")
    assert diff_runs(a, b) == []


def test_diff_reports_changed_fields_and_extra_events():
    a, b = RunLog(), RunLog()
    a.record("importance.run", method="shapley_mc", seed=0)
    b.record("importance.run", method="shapley_mc", seed=1)
    b.record("cleaning.round", round=0)
    lines = diff_runs(a, b)
    assert any("seed: 0 != 1" in line for line in lines)
    assert any("only in B: cleaning.round" in line for line in lines)


def test_new_runlog_truncates_existing_file(tmp_path):
    path = tmp_path / "log.jsonl"
    path.write_text('{"seq": 0, "kind": "stale"}\n')
    log = RunLog(path)
    log.record("fresh")
    events = [json.loads(l) for l in path.read_text().strip().splitlines()]
    assert [e["kind"] for e in events] == ["fresh"]
