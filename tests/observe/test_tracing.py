"""Span nesting, timing, cache deltas, and error status."""

import threading
import time

import pytest

from repro.observe import Tracer
from repro.runtime import FingerprintCache


def test_span_records_wall_and_cpu_time():
    tracer = Tracer()
    with tracer.span("work"):
        time.sleep(0.02)
    (root,) = tracer.roots
    assert root.wall_seconds >= 0.015
    assert root.cpu_seconds >= 0.0
    assert root.status == "ok"


def test_spans_nest_into_a_tree():
    tracer = Tracer()
    with tracer.span("outer"):
        with tracer.span("middle"):
            with tracer.span("leaf_a"):
                pass
        with tracer.span("leaf_b"):
            pass
    (outer,) = tracer.roots
    assert [c.name for c in outer.children] == ["middle", "leaf_b"]
    assert [c.name for c in outer.children[0].children] == ["leaf_a"]


def test_sibling_roots_in_finish_order():
    tracer = Tracer()
    with tracer.span("first"):
        pass
    with tracer.span("second"):
        pass
    assert [s.name for s in tracer.roots] == ["first", "second"]


def test_child_time_contained_in_parent():
    tracer = Tracer()
    with tracer.span("outer"):
        with tracer.span("inner"):
            time.sleep(0.01)
    (outer,) = tracer.roots
    (inner,) = outer.children
    assert outer.wall_seconds >= inner.wall_seconds


def test_span_attrs_and_set():
    tracer = Tracer()
    with tracer.span("stage", backend="process", workers=4) as span:
        span.set(tasks=100)
    (root,) = tracer.roots
    assert root.attrs == {"backend": "process", "workers": 4, "tasks": 100}


def test_error_inside_span_marks_status_and_reraises():
    tracer = Tracer()
    with pytest.raises(ValueError):
        with tracer.span("boom"):
            raise ValueError("x")
    (root,) = tracer.roots
    assert root.status == "error"
    assert root.wall_seconds >= 0.0


def test_cache_delta_attribution():
    tracer = Tracer()
    cache = FingerprintCache()
    cache.put("warm", 1.0)
    with tracer.span("stage", cache=cache):
        cache.get("warm")       # hit
        cache.get("cold")       # miss
        cache.put("cold", 2.0)
    (root,) = tracer.roots
    assert root.cache == {"hits": 1, "misses": 1, "puts": 1, "hit_rate": 0.5}


def test_cache_delta_excludes_traffic_outside_span():
    tracer = Tracer()
    cache = FingerprintCache()
    cache.put("a", 1.0)
    cache.get("a")
    cache.get("nope")
    with tracer.span("stage", cache=cache):
        pass
    (root,) = tracer.roots
    assert root.cache == {"hits": 0, "misses": 0, "puts": 0, "hit_rate": 0.0}


def test_snapshot_and_render():
    tracer = Tracer()
    with tracer.span("outer", backend="serial"):
        with tracer.span("inner"):
            pass
    snap = tracer.snapshot()
    assert snap[0]["name"] == "outer"
    assert snap[0]["children"][0]["name"] == "inner"
    text = tracer.render()
    assert "outer" in text and "inner" in text and "backend=serial" in text


def test_threads_keep_independent_stacks():
    tracer = Tracer()
    done = threading.Event()

    def worker():
        with tracer.span("thread_root"):
            done.wait(1.0)

    thread = threading.Thread(target=worker)
    with tracer.span("main_root"):
        thread.start()
        done.set()
        thread.join()
    names = sorted(s.name for s in tracer.roots)
    # The worker's span is not a child of main's: it has its own stack.
    assert names == ["main_root", "thread_root"]
    for root in tracer.roots:
        assert root.children == []


def test_reset_drops_roots():
    tracer = Tracer()
    with tracer.span("x"):
        pass
    tracer.reset()
    assert tracer.roots == []
    assert tracer.total_seconds() == 0.0
