"""Observer facade, export formats, null-observer semantics + overhead."""

import time

import pytest

from repro.core.exceptions import ValidationError
from repro.observe import (
    NULL_OBSERVER,
    NullObserver,
    Observer,
    export_dict,
    render_text,
    resolve_observer,
)


def _populated_observer() -> Observer:
    obs = Observer(run_id="test-run")
    with obs.span("outer", backend="serial"):
        with obs.span("inner"):
            pass
    obs.count("utility.evaluations", 7)
    obs.gauge("cache.hit_rate", 0.5)
    obs.observe_value("round_seconds", 1.5)
    obs.event("importance.run", method="loo", seed=None)
    return obs


def test_resolve_observer_normalization():
    assert resolve_observer(None) is NULL_OBSERVER
    obs = Observer()
    assert resolve_observer(obs) is obs
    assert resolve_observer(NULL_OBSERVER) is NULL_OBSERVER
    with pytest.raises(ValidationError):
        resolve_observer("verbose")


def test_export_dict_shape():
    data = _populated_observer().as_dict()
    assert data["run_id"] == "test-run"
    assert data["spans"][0]["name"] == "outer"
    assert data["spans"][0]["children"][0]["name"] == "inner"
    assert data["metrics"]["utility.evaluations"] == 7
    assert data["metrics"]["cache.hit_rate"] == 0.5
    assert data["metrics"]["round_seconds"]["count"] == 1
    assert data["events"][0]["kind"] == "importance.run"
    assert export_dict(NULL_OBSERVER)["spans"] == []


def test_text_report_contents():
    report = _populated_observer().report()
    assert "test-run" in report
    assert "outer" in report and "inner" in report
    assert "utility.evaluations" in report and "7" in report
    assert "importance.run" in report
    assert "nothing recorded" in render_text(NULL_OBSERVER)


def test_write_report(tmp_path):
    path = tmp_path / "reports" / "run.txt"
    _populated_observer().write_report(path)
    assert "utility.evaluations" in path.read_text()


def test_reset_clears_all_three_signals():
    obs = _populated_observer()
    obs.reset()
    data = obs.as_dict()
    assert data["spans"] == [] and data["metrics"] == {} \
        and data["events"] == []


def test_null_observer_is_inert():
    null = NullObserver()
    with null.span("anything", cache=object(), backend="process") as span:
        span.set(tasks=5)
    null.event("kind", big_payload=list(range(1000)))
    null.count("n", 3)
    null.gauge("g", 1.0)
    null.observe_value("h", 2.0)
    assert null.enabled is False
    assert null.as_dict()["spans"] == []
    assert "nothing recorded" in null.report()


def test_null_span_is_reused_not_allocated():
    spans = {id(NULL_OBSERVER.span("a")) for _ in range(10)}
    assert len(spans) == 1


def test_noop_overhead_bound():
    """The no-op path must stay negligible: the wired layers call the
    observer once per *batch*, so even a microsecond-scale bound leaves
    orders of magnitude of headroom against the <3% benchmark budget."""
    null = NULL_OBSERVER
    n = 20_000
    start = time.perf_counter()
    for _ in range(n):
        with null.span("stage", backend="serial", workers=1, tasks=10):
            pass
        null.count("runtime.tasks", 10)
    per_call = (time.perf_counter() - start) / n
    # Generous CI-safe bound: 50 microseconds per span+count pair.
    assert per_call < 50e-6


def test_observers_have_unique_run_ids():
    assert Observer().run_id != Observer().run_id
