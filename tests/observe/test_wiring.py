"""Wiring: the instrumented layers emit the expected spans/metrics/events
— and observation never changes the computed results."""

import numpy as np
import pytest

from repro.cleaning import CleaningOracle, IterativeCleaner
from repro.datasets import make_blobs, make_hiring_tables
from repro.importance import (
    BetaShapley,
    DataBanzhaf,
    MonteCarloShapley,
    Utility,
    leave_one_out,
)
from repro.ml import KNeighborsClassifier, LogisticRegression
from repro.observe import Observer, RunLog, diff_runs
from repro.runtime import FingerprintCache, Runtime
from repro.unlearning import ShardedUnlearner
from repro.uncertain import cpclean_greedy


@pytest.fixture()
def game(blobs_split):
    X_train, y_train, X_valid, y_valid = blobs_split
    def make(runtime=None):
        return Utility(KNeighborsClassifier(3), X_train[:24], y_train[:24],
                       X_valid, y_valid, runtime=runtime)
    return make


def test_shapley_mc_emits_span_metrics_and_event(game):
    obs = Observer(run_id="w")
    estimator = MonteCarloShapley(n_permutations=4, seed=0, observer=obs)
    values = estimator.score(game())

    (root,) = obs.tracer.roots
    assert root.name == "shapley_mc"
    assert root.attrs["players"] == 24
    assert root.wall_seconds > 0

    metrics = obs.metrics.snapshot()
    assert metrics["importance.permutations"] == 4
    assert metrics["utility.evaluations"] > 0

    (event,) = obs.runlog.events
    assert event["kind"] == "importance.run"
    assert event["method"] == "shapley_mc"
    assert event["params"]["n_permutations"] == 4
    assert event["seed"] == 0
    assert len(event["data_fingerprint"]) == 64
    assert event["permutations_used"] == 4
    assert event["score_min"] <= event["score_mean"] <= event["score_max"]
    assert np.isclose(event["score_mean"], float(np.mean(values)))


def test_observed_scores_match_unobserved(game):
    plain = MonteCarloShapley(n_permutations=4, seed=0).score(game())
    observed = MonteCarloShapley(n_permutations=4, seed=0,
                                 observer=Observer()).score(game())
    np.testing.assert_array_equal(plain, observed)


def test_identical_runs_have_empty_provenance_diff(game):
    logs = []
    for _ in range(2):
        obs = Observer()
        MonteCarloShapley(n_permutations=3, seed=5, observer=obs).score(game())
        logs.append(obs.runlog)
    assert diff_runs(*logs) == []


def test_seed_change_shows_up_in_provenance_diff(game):
    logs = []
    for seed in (0, 1):
        obs = Observer()
        MonteCarloShapley(n_permutations=3, seed=seed,
                          observer=obs).score(game())
        logs.append(obs.runlog)
    assert any("seed" in line for line in diff_runs(*logs))


@pytest.mark.parametrize("method,build", [
    ("banzhaf", lambda obs: DataBanzhaf(n_samples=8, seed=0, observer=obs)),
    ("beta_shapley", lambda obs: BetaShapley(n_permutations=3, seed=0,
                                             observer=obs)),
])
def test_other_estimators_emit_importance_run(game, method, build):
    obs = Observer()
    build(obs).score(game())
    (event,) = obs.runlog.events
    assert event["kind"] == "importance.run"
    assert event["method"] == method
    assert obs.tracer.roots[0].name == method
    assert obs.metrics.snapshot()["utility.evaluations"] > 0


def test_leave_one_out_emits_event(game):
    obs = Observer()
    leave_one_out(game(), observer=obs)
    (event,) = obs.runlog.events
    assert event["method"] == "leave_one_out"
    assert event["utility_calls"] > 0


def test_runtime_map_spans_nest_under_estimator_span(game):
    obs = Observer()
    with Runtime(backend="serial", cache=FingerprintCache(),
                 observer=obs) as runtime:
        MonteCarloShapley(n_permutations=4, seed=0,
                          observer=obs).score(game(runtime))
    (root,) = obs.tracer.roots
    assert root.name == "shapley_mc"
    child_names = {c.name for c in root.children}
    assert "runtime.shapley_mc" in child_names
    runtime_span = next(c for c in root.children
                        if c.name == "runtime.shapley_mc")
    assert runtime_span.attrs["backend"] == "serial"
    assert runtime_span.attrs["tasks"] == 4
    assert root.cache is not None  # fingerprint-cache delta attached
    assert obs.metrics.snapshot()["runtime.tasks"] >= 4


def test_iterative_cleaner_emits_round_events(hiring_tables):
    letters, _, _ = hiring_tables
    from repro.core.api import _encode, default_letter_encoder, \
        inject_labelerrors

    train = letters.take(range(60))
    valid = letters.take(range(60, 100))
    dirty, _ = inject_labelerrors(train, fraction=0.2)

    def encode(frame):
        X, y, _, _ = _encode(frame)
        return X, y

    Xv, yv, _, _ = _encode(valid)
    obs = Observer(run_id="clean")
    cleaner = IterativeCleaner(
        LogisticRegression(max_iter=50), "knn_shapley",
        CleaningOracle(train), encode=encode, batch=5, seed=0, observer=obs)
    result = cleaner.run(dirty, Xv, yv, n_rounds=2)

    round_events = list(obs.runlog.iter_events("cleaning.round"))
    assert [e["round"] for e in round_events] == [0, 1]
    assert all(len(e["cleaned_row_ids"]) == 5 for e in round_events)
    assert [e["score"] for e in round_events] == result.scores[1:]

    (run_event,) = obs.runlog.iter_events("cleaning.run")
    assert run_event["rounds"] == 2
    assert run_event["initial"] == result.initial
    assert run_event["final"] == result.final
    assert run_event["cleaned_row_ids"] == result.cleaned_ids

    assert obs.metrics.snapshot()["cleaning.rows_cleaned"] == 10

    (root,) = obs.tracer.roots
    assert root.name == "cleaning.run"
    assert [c.name for c in root.children] == ["cleaning.round"] * 2


def test_cpclean_greedy_emits_events():
    rng = np.random.default_rng(3)
    X_clean, y = make_blobs(24, n_features=2, seed=3)
    X_dirty = X_clean.copy()
    holes = rng.choice(len(X_dirty), size=4, replace=False)
    X_dirty[holes, 0] = np.nan
    X_test, _ = make_blobs(10, n_features=2, seed=4)

    obs = Observer()
    result = cpclean_greedy(X_dirty, y, X_clean, X_test, k=3,
                            max_cleaned=2, observer=obs)

    rounds = list(obs.runlog.iter_events("cpclean.round"))
    assert len(rounds) == result["n_cleaned"]
    assert [e["row"] for e in rounds] == result["cleaned_rows"]
    (run_event,) = obs.runlog.iter_events("cpclean.run")
    assert run_event["n_cleaned"] == result["n_cleaned"]
    metrics = obs.metrics.snapshot()
    if result["n_cleaned"]:
        assert metrics["cpclean.rows_cleaned"] == result["n_cleaned"]
        assert metrics["cpclean.candidate_evals"] > 0
    assert obs.tracer.roots[0].name == "cpclean.greedy"


def test_sharded_unlearner_counts_requests(blobs):
    X, y = blobs
    obs = Observer()
    unlearner = ShardedUnlearner(KNeighborsClassifier(3), n_shards=4,
                                 seed=0, observer=obs).fit(X, y)
    unlearner.unlearn([0, 1, 2])
    unlearner.unlearn([0])     # idempotent: already deleted

    metrics = obs.metrics.snapshot()
    assert metrics["unlearning.requests"] == 2
    assert metrics["unlearning.rows_deleted"] == 3

    (fit_event,) = obs.runlog.iter_events("unlearning.fit")
    assert fit_event["n_shards"] == 4
    events = list(obs.runlog.iter_events("unlearning.unlearn"))
    assert events[0]["n_deleted"] == 3
    assert events[1]["n_deleted"] == 0
    assert events[1]["shards_retrained"] == []
    span_names = [s.name for s in obs.tracer.roots]
    assert span_names == ["sharded.fit", "sharded.unlearn",
                          "sharded.unlearn"]


def test_runlog_jsonl_written_during_wired_run(game, tmp_path):
    path = tmp_path / "run.jsonl"
    obs = Observer(log_path=path)
    MonteCarloShapley(n_permutations=3, seed=0, observer=obs).score(game())
    loaded = RunLog.load(path)
    assert diff_runs(obs.runlog, loaded) == []
