"""Unit tests for rule-based error detectors."""

import numpy as np
import pytest

from repro.core.exceptions import ValidationError
from repro.dataframe import DataFrame
from repro.datasets import make_cancer_registry
from repro.errors.detectors import (
    detect_duplicates,
    detect_inconsistent_strings,
    detect_invalid_categories,
    detect_missing,
    detect_out_of_range,
    detect_outliers_zscore,
)


@pytest.fixture()
def frame():
    return DataFrame({
        "age": [30.0, -1.0, 45.0, 200.0, None],
        "city": ["berlin", "Berlin", " tokyo", "tokyo", "boston"],
        "code": ["A", "B", "ZZZ", "A", "B"],
    })


class TestDetectors:
    def test_detect_missing(self, frame):
        assert detect_missing(frame, ["age"]) == {int(frame.row_ids[4])}

    def test_detect_out_of_range(self, frame):
        suspicious = detect_out_of_range(frame, column="age", low=0,
                                         high=120)
        assert suspicious == {int(frame.row_ids[1]), int(frame.row_ids[3])}

    def test_out_of_range_needs_a_bound(self, frame):
        with pytest.raises(ValidationError):
            detect_out_of_range(frame, column="age")

    def test_detect_invalid_categories(self, frame):
        suspicious = detect_invalid_categories(frame, column="code",
                                               domain={"A", "B"})
        assert suspicious == {int(frame.row_ids[2])}

    def test_detect_outliers_zscore(self):
        values = [10.0] * 20 + [10.5] * 20 + [1000.0]
        frame = DataFrame({"v": values})
        suspicious = detect_outliers_zscore(frame, column="v", threshold=4.0)
        assert suspicious == {int(frame.row_ids[-1])}

    def test_outlier_threshold_validated(self, frame):
        with pytest.raises(ValidationError):
            detect_outliers_zscore(frame, column="age", threshold=0.0)

    def test_detect_duplicates_flags_all_copies(self):
        frame = DataFrame({"a": [1, 2, 1, 3], "b": ["x", "y", "x", "z"]})
        suspicious = detect_duplicates(frame)
        assert suspicious == {int(frame.row_ids[0]), int(frame.row_ids[2])}

    def test_detect_inconsistent_strings(self, frame):
        suspicious = detect_inconsistent_strings(frame, column="city")
        expected = {int(frame.row_ids[i]) for i in (0, 1, 2, 3)}
        assert suspicious == expected

    def test_inconsistent_strings_numeric_rejected(self, frame):
        with pytest.raises(ValidationError):
            detect_inconsistent_strings(frame, column="age")


class TestDetectorsOnCancerRegistry:
    """The Figure-1 scenario: rule detectors find the seeded error types."""

    def test_detectors_recover_seeded_errors(self):
        df, log = make_cancer_registry(300, error_fraction=0.1, seed=7)
        truth = {
            "missing": {rid for rid, _, kind in log if kind == "missing"},
            "invalid_age": {rid for rid, _, kind in log
                            if kind == "invalid_age"},
            "wrong_code": {rid for rid, _, kind in log
                           if kind == "wrong_code"},
        }
        assert detect_missing(df, ["sex"]) == truth["missing"]
        assert detect_out_of_range(df, column="age", low=0) == \
            truth["invalid_age"]
        found_codes = detect_invalid_categories(
            df, column="diagnosis", domain={"SKCM", "BRCA", "CRC", "LUAD"})
        assert found_codes == truth["wrong_code"]
