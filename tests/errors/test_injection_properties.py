"""Property-based tests for error-injection invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataframe import DataFrame
from repro.errors import inject_label_errors, inject_missing, inject_missing_array


@st.composite
def labelled_frame(draw):
    n = draw(st.integers(10, 60))
    seed = draw(st.integers(0, 10**6))
    rng = np.random.default_rng(seed)
    labels = [str(v) for v in rng.integers(0, 3, n)]
    # Guarantee at least two classes.
    labels[0], labels[1] = "0", "1"
    return DataFrame({
        "label": labels,
        "value": rng.normal(0, 1, n),
    })


@given(labelled_frame(), st.floats(0.05, 0.6), st.integers(0, 1000))
@settings(max_examples=40, deadline=None)
def test_label_injection_count_and_locations(frame, fraction, seed):
    dirty, report = inject_label_errors(frame, column="label",
                                        fraction=fraction, seed=seed)
    expected = int(round(fraction * len(frame)))
    assert len(report) == expected
    # Every reported cell really differs; every unreported cell matches.
    touched = report.row_ids()
    for i in range(len(frame)):
        rid = int(frame.row_ids[i])
        if rid in touched:
            assert dirty["label"].get(i) != frame["label"].get(i)
        else:
            assert dirty["label"].get(i) == frame["label"].get(i)


@given(labelled_frame(), st.floats(0.05, 0.5), st.integers(0, 1000),
       st.sampled_from(["MCAR", "MNAR"]))
@settings(max_examples=40, deadline=None)
def test_missing_injection_erases_exact_fraction(frame, fraction, seed,
                                                 mechanism):
    dirty, report = inject_missing(frame, column="value", fraction=fraction,
                                   mechanism=mechanism, seed=seed)
    expected = int(round(fraction * len(frame)))
    assert dirty["value"].null_count() == expected
    assert len(report) == expected
    # Originals recorded in the report reconstruct the clean column.
    originals = report.originals_for("value")
    for rid, value in originals.items():
        position = int(frame.positions_of([rid])[0])
        assert frame["value"].get(position) == value


@given(st.integers(10, 50), st.integers(1, 4), st.floats(0.05, 0.5),
       st.integers(0, 1000))
@settings(max_examples=40, deadline=None)
def test_missing_array_mask_is_truthful(n, d, fraction, seed):
    rng = np.random.default_rng(seed)
    X = rng.normal(0, 1, (n, d))
    X_dirty, mask = inject_missing_array(X, fraction=fraction, seed=seed)
    np.testing.assert_array_equal(np.isnan(X_dirty), mask)
    # Untouched cells are bit-identical.
    np.testing.assert_array_equal(X_dirty[~mask], X[~mask])
