"""Unit tests for distribution-level injectors."""

import numpy as np
import pytest

from repro.core.exceptions import ValidationError
from repro.dataframe import DataFrame
from repro.errors import (
    inject_duplicates,
    inject_inconsistencies,
    inject_out_of_distribution,
    inject_selection_bias,
)


@pytest.fixture()
def frame():
    rng = np.random.default_rng(8)
    return DataFrame({
        "value": rng.normal(0, 1, 60),
        "group": (["a"] * 30 + ["b"] * 30),
        "city": ["new york", "berlin", "tokyo"] * 20,
    })


class TestOutOfDistribution:
    def test_appends_rows(self, frame):
        dirty, report = inject_out_of_distribution(
            frame, numeric_columns=["value"], fraction=0.1, seed=0)
        assert len(dirty) == 66
        assert len(report.row_ids()) == 6

    def test_new_rows_are_far_out(self, frame):
        dirty, report = inject_out_of_distribution(
            frame, numeric_columns=["value"], fraction=0.1, shift=8.0, seed=1)
        ood_positions = dirty.positions_of(sorted(report.row_ids()))
        original = frame["value"].cast(float).to_numpy()
        for p in ood_positions:
            assert abs(dirty["value"].get(int(p))) > \
                abs(original).max()

    def test_zero_fraction_is_noop(self, frame):
        dirty, report = inject_out_of_distribution(
            frame, numeric_columns=["value"], fraction=0.0)
        assert len(dirty) == len(frame)
        assert len(report) == 0


class TestSelectionBias:
    def test_drops_only_disfavored_group(self, frame):
        biased, dropped = inject_selection_bias(
            frame, column="group", disfavored_value="b",
            drop_fraction=0.5, seed=0)
        assert len(dropped) == 15
        counts = biased["group"].value_counts()
        assert counts["a"] == 30
        assert counts["b"] == 15

    def test_unknown_value_rejected(self, frame):
        with pytest.raises(ValidationError):
            inject_selection_bias(frame, column="group",
                                  disfavored_value="zzz")


class TestDuplicates:
    def test_appends_copies_with_fresh_ids(self, frame):
        dirty, report = inject_duplicates(frame, fraction=0.1, seed=0)
        assert len(dirty) == 66
        duplicate_ids = report.row_ids()
        assert duplicate_ids.isdisjoint(set(frame.row_ids.tolist()))

    def test_duplicates_match_their_source(self, frame):
        dirty, report = inject_duplicates(frame, fraction=0.1, seed=1)
        for error in report.errors:
            dup_pos = int(dirty.positions_of([error.row_id])[0])
            src_pos = int(frame.positions_of([error.original])[0])
            assert dirty.row(dup_pos) == frame.row(src_pos)


class TestInconsistencies:
    def test_mangled_strings_normalize_back(self, frame):
        dirty, report = inject_inconsistencies(frame, column="city",
                                               fraction=0.3, seed=0)
        assert len(report) == 18
        for error in report.errors:
            assert error.corrupted != error.original
            assert " ".join(str(error.corrupted).lower().split()) == \
                " ".join(str(error.original).lower().split())

    def test_numeric_column_rejected(self, frame):
        with pytest.raises(ValidationError):
            inject_inconsistencies(frame, column="value")

    def test_fuzzy_join_recovers_from_inconsistencies(self, frame):
        dirty, _ = inject_inconsistencies(frame, column="city",
                                          fraction=0.5, seed=1)
        lookup = DataFrame({"city": ["new york", "berlin", "tokyo"],
                            "country": ["us", "de", "jp"]})
        exact = dirty.join(lookup, on="city")
        fuzzy = dirty.fuzzy_join(lookup, on="city")
        assert len(fuzzy) == len(frame)
        assert len(exact) < len(frame)
