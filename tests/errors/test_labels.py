"""Unit tests for label-error injection."""

import numpy as np
import pytest

from repro.core.exceptions import ValidationError
from repro.dataframe import DataFrame
from repro.errors import inject_label_errors, inject_label_errors_array


@pytest.fixture()
def frame():
    return DataFrame({"label": ["a"] * 10 + ["b"] * 10, "x": list(range(20))})


class TestInjectLabelErrors:
    def test_fraction_of_rows_flipped(self, frame):
        dirty, report = inject_label_errors(frame, column="label",
                                            fraction=0.2, seed=0)
        assert len(report) == 4
        # flipped cells actually differ
        for error in report.errors:
            position = int(dirty.positions_of([error.row_id])[0])
            assert dirty["label"].get(position) == error.corrupted
            assert error.corrupted != error.original

    def test_original_frame_untouched(self, frame):
        inject_label_errors(frame, column="label", fraction=0.5, seed=1)
        assert frame["label"].to_list() == ["a"] * 10 + ["b"] * 10

    def test_flips_always_change_class(self, frame):
        dirty, report = inject_label_errors(frame, column="label",
                                            fraction=1.0, seed=2)
        assert all(e.original != e.corrupted for e in report.errors)

    def test_class_conditional_only_touches_target_class(self, frame):
        dirty, report = inject_label_errors(
            frame, column="label", class_conditional={"a": 0.5}, seed=3)
        assert len(report) == 5
        assert all(e.original == "a" for e in report.errors)

    def test_seed_reproducible(self, frame):
        _, r1 = inject_label_errors(frame, column="label", fraction=0.3, seed=7)
        _, r2 = inject_label_errors(frame, column="label", fraction=0.3, seed=7)
        assert r1.row_ids() == r2.row_ids()

    def test_single_class_rejected(self):
        frame = DataFrame({"label": ["a", "a"]})
        with pytest.raises(ValidationError):
            inject_label_errors(frame, column="label", fraction=0.5)

    def test_invalid_fraction_rejected(self, frame):
        with pytest.raises(ValidationError):
            inject_label_errors(frame, column="label", fraction=1.5)


class TestArrayVariant:
    def test_returns_sorted_indices(self):
        y = np.array([0, 1] * 20)
        y_dirty, flipped = inject_label_errors_array(y, fraction=0.25, seed=0)
        assert len(flipped) == 10
        assert np.all(np.diff(flipped) > 0)
        assert np.all(y_dirty[flipped] != y[flipped])

    def test_untouched_elsewhere(self):
        y = np.array([0, 1, 2] * 10)
        y_dirty, flipped = inject_label_errors_array(y, fraction=0.1, seed=1)
        untouched = np.setdiff1d(np.arange(len(y)), flipped)
        np.testing.assert_array_equal(y_dirty[untouched], y[untouched])
