"""Unit tests for feature-noise injectors."""

import numpy as np
import pytest

from repro.core.exceptions import ValidationError
from repro.dataframe import DataFrame
from repro.errors import inject_feature_noise, inject_outliers, inject_scaling_errors


@pytest.fixture()
def frame():
    rng = np.random.default_rng(5)
    return DataFrame({"value": rng.normal(10, 2, 100),
                      "name": [f"r{i}" for i in range(100)]})


class TestFeatureNoise:
    def test_touches_exact_fraction(self, frame):
        dirty, report = inject_feature_noise(frame, column="value",
                                             fraction=0.2, seed=0)
        assert len(report) == 20

    def test_corrupted_values_differ(self, frame):
        dirty, report = inject_feature_noise(frame, column="value",
                                             fraction=0.1, scale=2.0, seed=1)
        for error in report.errors:
            assert error.corrupted != error.original

    def test_untouched_cells_identical(self, frame):
        dirty, report = inject_feature_noise(frame, column="value",
                                             fraction=0.1, seed=2)
        touched = report.row_ids()
        for i in range(len(frame)):
            if int(frame.row_ids[i]) not in touched:
                assert dirty["value"].get(i) == frame["value"].get(i)

    def test_string_column_rejected(self, frame):
        with pytest.raises(ValidationError):
            inject_feature_noise(frame, column="name")


class TestScalingErrors:
    def test_factor_applied(self, frame):
        dirty, report = inject_scaling_errors(frame, column="value",
                                              fraction=0.1, factor=100.0,
                                              seed=0)
        for error in report.errors:
            assert error.corrupted == pytest.approx(error.original * 100.0)

    def test_identity_factor_rejected(self, frame):
        with pytest.raises(ValidationError):
            inject_scaling_errors(frame, column="value", factor=1.0)


class TestOutliers:
    def test_outliers_are_extreme(self, frame):
        dirty, report = inject_outliers(frame, column="value", fraction=0.05,
                                        magnitude=6.0, seed=0)
        values = frame["value"].cast(float).to_numpy()
        mean, std = values.mean(), values.std()
        for error in report.errors:
            assert abs(error.corrupted - mean) >= 5.5 * std

    def test_report_kind(self, frame):
        _, report = inject_outliers(frame, column="value", seed=1)
        assert all(e.kind == "outlier" for e in report.errors)
