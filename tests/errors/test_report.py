"""Unit tests for the error report bookkeeping."""

from repro.errors import CellError, ErrorReport


class TestErrorReport:
    def test_add_and_len(self):
        report = ErrorReport()
        report.add(3, "label", "label_flip", original="a", corrupted="b")
        assert len(report) == 1
        assert report.errors[0] == CellError(3, "label", "label_flip", "a", "b")

    def test_row_ids_dedup(self):
        report = ErrorReport()
        report.add(1, "a", "noise")
        report.add(1, "b", "missing_MCAR")
        report.add(2, "a", "noise")
        assert report.row_ids() == {1, 2}

    def test_row_ids_filtered_by_kind(self):
        report = ErrorReport()
        report.add(1, "a", "noise")
        report.add(2, "a", "missing_MCAR")
        assert report.row_ids("noise") == {1}

    def test_extend_merges(self):
        a = ErrorReport()
        a.add(1, "x", "noise")
        b = ErrorReport()
        b.add(2, "x", "noise")
        a.extend(b)
        assert a.row_ids() == {1, 2}

    def test_originals_for_column(self):
        report = ErrorReport()
        report.add(5, "label", "label_flip", original="pos", corrupted="neg")
        report.add(6, "other", "noise", original=1.0)
        assert report.originals_for("label") == {5: "pos"}

    def test_detection_scores(self):
        report = ErrorReport()
        for rid in (1, 2, 3, 4):
            report.add(rid, "label", "label_flip")
        scores = report.detection_scores({2, 3, 99})
        assert scores["hits"] == 2
        assert scores["recall"] == 0.5
        assert scores["precision"] == 2 / 3

    def test_detection_scores_empty_flagged(self):
        report = ErrorReport()
        report.add(1, "a", "noise")
        scores = report.detection_scores(set())
        assert scores["precision"] == 0.0
        assert scores["recall"] == 0.0
