"""Unit tests for missing-value injection mechanisms."""

import numpy as np
import pytest

from repro.core.exceptions import ValidationError
from repro.dataframe import DataFrame
from repro.errors import inject_missing, inject_missing_array


@pytest.fixture()
def frame():
    rng = np.random.default_rng(0)
    return DataFrame({
        "value": rng.normal(0, 1, 100),
        "driver": rng.normal(0, 1, 100),
        "name": [f"r{i}" for i in range(100)],
    })


class TestInjectMissing:
    def test_mcar_erases_exact_fraction(self, frame):
        dirty, report = inject_missing(frame, column="value", fraction=0.2,
                                       seed=0)
        assert dirty["value"].null_count() == 20
        assert len(report) == 20
        assert all(e.kind == "missing_MCAR" for e in report.errors)

    def test_report_keeps_originals(self, frame):
        dirty, report = inject_missing(frame, column="value", fraction=0.1,
                                       seed=1)
        originals = report.originals_for("value")
        for row_id, value in originals.items():
            position = int(frame.positions_of([row_id])[0])
            assert frame["value"].get(position) == value

    def test_mnar_prefers_large_values(self, frame):
        dirty, report = inject_missing(frame, column="value", fraction=0.3,
                                       mechanism="MNAR", seed=2)
        erased = [e.original for e in report.errors]
        kept = [v for v in dirty["value"].to_list() if v is not None]
        assert np.mean(erased) > np.mean(kept)

    def test_mar_follows_conditioning_column(self, frame):
        dirty, report = inject_missing(
            frame, column="value", fraction=0.3, mechanism="MAR",
            conditioning_column="driver", seed=3)
        erased_ids = report.row_ids()
        positions = frame.positions_of(sorted(erased_ids))
        drivers_erased = [frame["driver"].get(int(p)) for p in positions]
        assert np.mean(drivers_erased) > frame["driver"].mean()

    def test_mar_without_conditioning_rejected(self, frame):
        with pytest.raises(ValidationError):
            inject_missing(frame, column="value", mechanism="MAR")

    def test_mnar_on_string_column_rejected(self, frame):
        with pytest.raises(ValidationError):
            inject_missing(frame, column="name", mechanism="MNAR")

    def test_unknown_mechanism_rejected(self, frame):
        with pytest.raises(ValidationError):
            inject_missing(frame, column="value", mechanism="WILD")

    def test_mcar_works_on_string_columns(self, frame):
        dirty, report = inject_missing(frame, column="name", fraction=0.1,
                                       seed=4)
        assert dirty["name"].null_count() == 10


class TestArrayVariant:
    def test_mask_matches_nans(self):
        X = np.random.default_rng(1).normal(0, 1, (50, 3))
        X_dirty, mask = inject_missing_array(X, fraction=0.2, seed=0)
        np.testing.assert_array_equal(np.isnan(X_dirty), mask)

    def test_column_restriction(self):
        X = np.random.default_rng(2).normal(0, 1, (50, 3))
        X_dirty, mask = inject_missing_array(X, fraction=0.3, columns=[1],
                                             seed=1)
        assert not np.isnan(X_dirty[:, 0]).any()
        assert np.isnan(X_dirty[:, 1]).sum() == 15
        assert not np.isnan(X_dirty[:, 2]).any()

    def test_mnar_array(self):
        X = np.random.default_rng(3).normal(0, 1, (100, 1))
        X_dirty, mask = inject_missing_array(X, fraction=0.3,
                                             mechanism="MNAR", seed=2)
        erased = X[mask]
        kept = X_dirty[~np.isnan(X_dirty)]
        assert erased.mean() > kept.mean()
