"""Unit tests for confident learning and AUM."""

import numpy as np
import pytest

from repro.core.exceptions import ValidationError
from repro.importance import aum_scores, confident_learning_scores
from repro.importance.uncertainty import out_of_sample_proba
from repro.ml import LogisticRegression


class TestOutOfSampleProba:
    def test_every_row_gets_probabilities(self, dirty_blobs):
        proba, classes = out_of_sample_proba(
            LogisticRegression(max_iter=60),
            dirty_blobs["X_train"], dirty_blobs["y_dirty"], cv=4, seed=0)
        assert proba.shape == (80, 2)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)


class TestConfidentLearning:
    def test_detects_flipped_labels(self, dirty_blobs):
        scores, flagged = confident_learning_scores(
            LogisticRegression(max_iter=60),
            dirty_blobs["X_train"], dirty_blobs["y_dirty"], cv=4, seed=0)
        worst = set(np.argsort(scores)[:15].tolist())
        flipped = set(dirty_blobs["flipped"].tolist())
        assert len(worst & flipped) / len(flipped) >= 0.75

    def test_flagged_set_has_high_precision(self, dirty_blobs):
        _, flagged = confident_learning_scores(
            LogisticRegression(max_iter=60),
            dirty_blobs["X_train"], dirty_blobs["y_dirty"], cv=4, seed=0)
        flagged_set = set(np.flatnonzero(flagged).tolist())
        flipped = set(dirty_blobs["flipped"].tolist())
        if flagged_set:
            assert len(flagged_set & flipped) / len(flagged_set) >= 0.6

    def test_clean_data_flags_little(self, dirty_blobs):
        _, flagged = confident_learning_scores(
            LogisticRegression(max_iter=60),
            dirty_blobs["X_train"], dirty_blobs["y_clean"], cv=4, seed=0)
        assert flagged.mean() <= 0.1


class TestAUM:
    def test_detects_flipped_labels(self, dirty_blobs):
        scores = aum_scores(dirty_blobs["X_train"], dirty_blobs["y_dirty"],
                            n_epochs=20, seed=0)
        worst = set(np.argsort(scores)[:15].tolist())
        flipped = set(dirty_blobs["flipped"].tolist())
        assert len(worst & flipped) / len(flipped) >= 0.7

    def test_clean_margins_mostly_positive(self, dirty_blobs):
        scores = aum_scores(dirty_blobs["X_train"], dirty_blobs["y_clean"],
                            n_epochs=20, seed=0)
        assert np.mean(scores > 0) >= 0.9

    def test_epochs_validated(self, dirty_blobs):
        with pytest.raises(ValidationError):
            aum_scores(dirty_blobs["X_train"], dirty_blobs["y_dirty"],
                       n_epochs=0)

    def test_deterministic_given_seed(self, dirty_blobs):
        a = aum_scores(dirty_blobs["X_train"], dirty_blobs["y_dirty"],
                       n_epochs=5, seed=3)
        b = aum_scores(dirty_blobs["X_train"], dirty_blobs["y_dirty"],
                       n_epochs=5, seed=3)
        np.testing.assert_array_equal(a, b)
