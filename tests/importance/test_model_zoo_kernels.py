"""Model-zoo kernel coverage: linear Sherman–Morrison, warm-start
continuation, pipeline dispatch, and closed-form KNN-Shapley.

The contract extends ``test_kernels.py`` to the rest of the zoo:

- ``kernel="auto"`` resolves an explicit kernel or a documented fallback
  for **every** estimator class exported by :mod:`repro.ml`.
- The linear/warm-start kernels are bit-identical to the retrain path
  under label-quantized metrics, with replayed direct solves counted
  honestly in ``fallback_retrains``.
- ``MonteCarloShapley(exact=...)`` dispatches the k-NN closed form: the
  values match the sampler in the many-permutation limit (rigorously for
  ``k=1``) and are hex-stable across backends and caches.
"""

import numpy as np
import pytest

from repro.core.exceptions import ValidationError
from repro.datasets import make_blobs
from repro.importance import (
    MonteCarloShapley,
    PipelineCoalitionKernel,
    Utility,
    knn_shapley,
    resolve_kernel,
)
from repro.ml import (
    GaussianNB,
    KNeighborsClassifier,
    LinearRegression,
    LinearSVC,
    LogisticRegression,
    Pipeline,
)
from repro.ml import FunctionTransformer, StandardScaler
from repro.ml import __all__ as ML_EXPORTS
from repro.ml.metrics import accuracy_score
from repro.runtime import BACKENDS, FingerprintCache, Runtime

import repro.ml as ml_module
from repro.ml.base import BaseEstimator


def thresholded_accuracy(y_true, y_pred):
    """Label-quantized regression metric: agreement of thresholded
    predictions. Quantization absorbs ulp-level parameter drift, so the
    Sherman–Morrison kernel's incremental steps score bit-identically."""
    return float(np.mean((np.asarray(y_pred) > 0.5)
                         == (np.asarray(y_true) > 0.5)))


def _double(X):
    return X * 2.0


@pytest.fixture(scope="module")
def game():
    X, y = make_blobs(100, n_features=4, centers=2, cluster_std=1.8, seed=7)
    return {"X_train": X[:70], "y_train": y[:70],
            "X_valid": X[70:], "y_valid": y[70:]}


@pytest.fixture(scope="module")
def regression_game():
    rng = np.random.default_rng(21)
    X = rng.normal(size=(70, 4))
    y = (X @ np.array([1.0, -0.5, 0.25, 0.0])
         + 0.1 * rng.normal(size=70) > 0).astype(float)
    Xv = rng.normal(size=(25, 4))
    yv = (Xv @ np.array([1.0, -0.5, 0.25, 0.0]) > 0).astype(float)
    return {"X_train": X, "y_train": y, "X_valid": Xv, "y_valid": yv}


def _utility(game, model, **kwargs):
    return Utility(model, game["X_train"], game["y_train"],
                   game["X_valid"], game["y_valid"], **kwargs)


def _predictor_classes():
    """Every estimator class repro.ml exports that has fit+predict."""
    classes = []
    for name in ML_EXPORTS:
        obj = getattr(ml_module, name)
        if (isinstance(obj, type) and issubclass(obj, BaseEstimator)
                and "predict" in dir(obj) and "fit" in dir(obj)
                and not any("transform" in base.__dict__
                            for base in obj.__mro__)):
            classes.append(obj)
    return classes


# ---------------------------------------------------------------------------
# Registry coverage: auto-dispatch is total over the zoo
# ---------------------------------------------------------------------------
class TestRegistryCoverage:
    def test_every_predictor_resolves(self, game):
        predictors = _predictor_classes()
        assert len(predictors) >= 7  # the zoo, not an accidental subset
        models = [cls() for cls in predictors if cls is not Pipeline]
        # Pipeline needs steps; it resolves through its inner estimator.
        models.append(Pipeline([("knn", KNeighborsClassifier(3))]))
        assert len(models) >= 8
        for model in models:
            _, info = resolve_kernel(
                model, game["X_train"], game["y_train"], game["X_valid"],
                game["y_valid"], accuracy_score)
            assert info["resolution"] != "unregistered", (
                f"{type(model).__name__} has neither a kernel nor a "
                "documented fallback registration")

    def test_resolution_shapes(self, game):
        args = (game["X_train"], game["y_train"], game["X_valid"],
                game["y_valid"], accuracy_score)
        kernel, info = resolve_kernel(LogisticRegression(), *args)
        assert info["resolution"] == "kernel"
        assert kernel.name == info["kernel"] == "logistic_warm"

        class Unknown(BaseEstimator):
            def fit(self, X, y):
                return self

            def predict(self, X):
                return np.zeros(len(X))

        kernel, info = resolve_kernel(Unknown(), *args)
        assert kernel is None and info["resolution"] == "unregistered"


# ---------------------------------------------------------------------------
# New kernel families: bit-identical under label-quantized metrics
# ---------------------------------------------------------------------------
CLASSIFIERS = {
    "logistic_warm": lambda: LogisticRegression(max_iter=80),
    "linear_svc_warm": lambda: LinearSVC(max_iter=80),
}


class TestNewKernelExactness:
    @pytest.mark.parametrize("name", CLASSIFIERS)
    def test_classifier_walks_bit_identical(self, game, name):
        rng = np.random.default_rng(3)
        perms = [rng.permutation(len(game["y_train"])) for _ in range(3)]
        fast = _utility(game, CLASSIFIERS[name]())
        slow = _utility(game, CLASSIFIERS[name](), kernel="off")
        assert fast.kernel_name == name
        for a, b in zip(fast.walk_permutations(perms),
                        slow.walk_permutations(perms)):
            np.testing.assert_array_equal(a, b)
        assert fast.calls == slow.calls
        # The continuation actually ran: certified steps plus honest
        # cold-replay fallbacks, never zero of the former.
        assert fast.kernel_steps > 0

    @pytest.mark.parametrize("name", CLASSIFIERS)
    def test_classifier_evaluate_bit_identical(self, game, name):
        rng = np.random.default_rng(5)
        n = len(game["y_train"])
        coalitions = [np.array([], dtype=int), np.arange(n)]
        coalitions += [rng.choice(n, size=size, replace=False)
                       for size in rng.integers(3, n, size=6)]
        fast = _utility(game, CLASSIFIERS[name]())
        slow = _utility(game, CLASSIFIERS[name](), kernel="off")
        for a, b in zip(fast.evaluate_many(coalitions),
                        slow.evaluate_many(coalitions)):
            assert float(a).hex() == float(b).hex()
        assert fast.calls == slow.calls
        # Single-coalition evaluations are replayed direct solves and
        # must land in the fallback counter, not masquerade as
        # incremental speedups.
        assert fast.fallback_retrains > 0

    def test_svc_multiclass_coalitions_replicate_majority_fallback(self):
        X, y = make_blobs(60, n_features=3, centers=3, cluster_std=2.0,
                          seed=13)
        game = {"X_train": X[:45], "y_train": y[:45],
                "X_valid": X[45:], "y_valid": y[45:]}
        rng = np.random.default_rng(11)
        perms = [rng.permutation(45) for _ in range(2)]
        fast = _utility(game, LinearSVC(max_iter=60))
        slow = _utility(game, LinearSVC(max_iter=60), kernel="off")
        for a, b in zip(fast.walk_permutations(perms),
                        slow.walk_permutations(perms)):
            np.testing.assert_array_equal(a, b)
        assert fast.calls == slow.calls

    def test_linear_regression_walks_bit_identical(self, regression_game):
        rng = np.random.default_rng(4)
        perms = [rng.permutation(70) for _ in range(3)]
        fast = _utility(regression_game, LinearRegression(alpha=1e-3),
                        metric=thresholded_accuracy)
        slow = _utility(regression_game, LinearRegression(alpha=1e-3),
                        metric=thresholded_accuracy, kernel="off")
        assert fast.kernel_name == "linear"
        for a, b in zip(fast.walk_permutations(perms),
                        slow.walk_permutations(perms)):
            np.testing.assert_array_equal(a, b)
        assert fast.calls == slow.calls
        # Sherman–Morrison steps dominate; warmup/stability replays are
        # visible as fallbacks.
        assert fast.kernel_steps > fast.fallback_retrains > 0

    def test_linear_regression_stability_check_positions_deterministic(
            self, regression_game):
        fast1 = _utility(regression_game, LinearRegression(alpha=1e-3),
                         metric=thresholded_accuracy)
        fast2 = _utility(regression_game, LinearRegression(alpha=1e-3),
                         metric=thresholded_accuracy)
        perm = [np.random.default_rng(9).permutation(70)]
        a = fast1.walk_permutations(perm)[0]
        b = fast2.walk_permutations(perm)[0]
        np.testing.assert_array_equal(a, b)
        assert fast1.fallback_retrains == fast2.fallback_retrains

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_warm_kernel_backend_invariance(self, game, backend):
        rng = np.random.default_rng(6)
        perms = [rng.permutation(len(game["y_train"])) for _ in range(3)]
        reference = _utility(game, LogisticRegression(max_iter=80),
                             kernel="off")
        expected = reference.walk_permutations(perms)
        with Runtime(backend=backend, max_workers=2) as runtime:
            utility = _utility(game, LogisticRegression(max_iter=80),
                               runtime=runtime)
            for a, b in zip(utility.walk_permutations(perms), expected):
                np.testing.assert_array_equal(a, b)
        assert utility.calls == reference.calls


# ---------------------------------------------------------------------------
# Pipeline dispatch (satellite regression test)
# ---------------------------------------------------------------------------
class TestPipelineDispatch:
    def test_pipeline_knn_dispatches_kernel_fast_path(self, game):
        model = Pipeline([
            ("scale", FunctionTransformer(_double, rowwise=True)),
            ("knn", KNeighborsClassifier(3)),
        ])
        utility = _utility(game, model)
        assert isinstance(utility.kernel, PipelineCoalitionKernel)
        assert utility.kernel_name == "pipeline[knn]"
        rng = np.random.default_rng(8)
        perms = [rng.permutation(len(game["y_train"])) for _ in range(2)]
        slow = _utility(game, model, kernel="off")
        for a, b in zip(utility.walk_permutations(perms),
                        slow.walk_permutations(perms)):
            np.testing.assert_array_equal(a, b)
        # The regression this guards: the fast path actually ran — every
        # prefix step was incremental, none fell back to pipeline refits.
        assert utility.kernel_steps == sum(len(p) for p in perms)
        assert utility.fallback_retrains == 0
        assert utility.calls == slow.calls

    def test_pipeline_exact_shapley_delegates(self, game):
        model = Pipeline([
            ("identity", FunctionTransformer()),
            ("knn", KNeighborsClassifier(1)),
        ])
        utility = _utility(game, model)
        exact = MonteCarloShapley(exact=True).score(utility)
        direct = knn_shapley(game["X_train"], game["y_train"],
                             game["X_valid"], game["y_valid"], k=1)
        np.testing.assert_array_equal(
            exact, direct - utility.null_value() / utility.n_players)

    def test_subset_dependent_pipeline_declines(self, game):
        model = Pipeline([
            ("scale", StandardScaler()),  # fitted stats depend on rows
            ("knn", KNeighborsClassifier(3)),
        ])
        utility = _utility(game, model)
        assert utility.kernel is None
        assert utility.kernel_resolution["resolution"] == "declined"


# ---------------------------------------------------------------------------
# Closed-form KNN-Shapley dispatch
# ---------------------------------------------------------------------------
class TestExactShapleyDispatch:
    def test_exact_matches_sampler_limit_k1(self, game):
        """For k=1 the closed form is exactly the sampled game's Shapley
        value; the sampler must converge to it."""
        sub = {"X_train": game["X_train"][:14], "y_train": game["y_train"][:14],
               "X_valid": game["X_valid"], "y_valid": game["y_valid"]}
        utility = _utility(sub, KNeighborsClassifier(1))
        exact = MonteCarloShapley(exact=True).score(utility)
        sampled = MonteCarloShapley(n_permutations=600, truncation_tol=0.0,
                                    seed=17).score(
            _utility(sub, KNeighborsClassifier(1)))
        assert float(np.max(np.abs(exact - sampled))) < 0.02
        # Efficiency: both sum to u(D) - u(empty).
        span = utility.full_value() - utility.null_value()
        assert abs(float(np.sum(exact)) - span) < 1e-9

    def test_exact_hex_stable_across_backends_and_caches(self, game):
        def run(backend, cache):
            with Runtime(backend=backend, max_workers=2,
                         cache=cache) as runtime:
                utility = _utility(game, KNeighborsClassifier(1),
                                   runtime=runtime)
                return [v.hex() for v in
                        MonteCarloShapley(exact=True).score(utility)]

        reference = run("serial", None)
        for backend in BACKENDS:
            for cache in (None, FingerprintCache()):
                assert run(backend, cache) == reference

    def test_exact_skips_sampling_entirely(self, game):
        utility = _utility(game, KNeighborsClassifier(3))
        estimator = MonteCarloShapley(n_permutations=50, exact=True)
        estimator.score(utility)
        assert estimator.n_permutations_used_ == 0
        assert utility.calls == 0  # no walks, no retrains

    def test_exact_true_raises_when_ineligible(self, game):
        with pytest.raises(ValidationError):
            MonteCarloShapley(exact=True).score(
                _utility(game, GaussianNB()))
        with pytest.raises(ValidationError):
            MonteCarloShapley(exact=True).score(
                _utility(game, KNeighborsClassifier(3), kernel="off"))

    def test_exact_auto_falls_back_to_sampling(self, game):
        utility = _utility(game, GaussianNB())
        estimator = MonteCarloShapley(n_permutations=3, seed=2,
                                      exact="auto")
        values = estimator.score(utility)
        assert estimator.n_permutations_used_ == 3
        reference = MonteCarloShapley(n_permutations=3, seed=2).score(
            _utility(game, GaussianNB()))
        np.testing.assert_array_equal(values, reference)

    def test_exact_validates_argument(self):
        with pytest.raises(ValidationError):
            MonteCarloShapley(exact="yes")

    def test_exact_publishes_single_exact_partial(self, game):
        published = []

        class Hook:
            every = 1

            def publish(self, **fields):
                published.append(fields)
                return False

        utility = _utility(game, KNeighborsClassifier(1))
        MonteCarloShapley(exact=True, partial=Hook()).score(utility)
        assert len(published) == 1
        snapshot = published[0]
        assert snapshot["exact"] is True
        assert snapshot["completed"] == snapshot["total"] == 1
        assert not np.any(snapshot["stderr"])
