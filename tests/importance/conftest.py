"""Fixtures for the importance tests: a small dirty dataset where the
corrupted examples are known."""

import numpy as np
import pytest

from repro.datasets import make_blobs
from repro.errors import inject_label_errors_array
from repro.importance import Utility
from repro.ml import LogisticRegression


@pytest.fixture(scope="module")
def dirty_blobs():
    """80 train / 40 valid blobs with 15% label flips on train."""
    X, y = make_blobs(120, n_features=3, centers=2, cluster_std=1.2, seed=3)
    X_train, y_train = X[:80], y[:80]
    X_valid, y_valid = X[80:], y[80:]
    y_dirty, flipped = inject_label_errors_array(y_train, fraction=0.15, seed=7)
    return {
        "X_train": X_train, "y_clean": y_train, "y_dirty": y_dirty,
        "X_valid": X_valid, "y_valid": y_valid, "flipped": flipped,
    }


@pytest.fixture()
def dirty_utility(dirty_blobs):
    return Utility(
        LogisticRegression(max_iter=60),
        dirty_blobs["X_train"], dirty_blobs["y_dirty"],
        dirty_blobs["X_valid"], dirty_blobs["y_valid"],
    )
