"""Unit tests for exact KNN-Shapley, including brute-force verification."""

import itertools

import numpy as np
import pytest

from repro.core.exceptions import ValidationError
from repro.importance import knn_shapley
from repro.importance.knn_shapley import knn_shapley_by_group


def _knn_utility(subset, X_train, y_train, x_val, y_val, k):
    """Jia et al.'s k-NN utility for a single validation point:
    ``(1/K) * sum over the min(K, |S|) nearest of 1[label matches]`` —
    note the division by K even for coalitions smaller than K, and
    utility 0 for the empty coalition."""
    if len(subset) == 0:
        return 0.0
    distances = np.linalg.norm(X_train[subset] - x_val, axis=1)
    order = np.lexsort((subset, distances))[: min(k, len(subset))]
    votes = y_train[np.array(subset)[order]]
    return float(np.sum(votes == y_val)) / k


def _brute_force_shapley(X_train, y_train, x_val, y_val, k):
    n = len(X_train)
    values = np.zeros(n)
    players = list(range(n))
    import math

    for i in players:
        others = [p for p in players if p != i]
        for size in range(n):
            for subset in itertools.combinations(others, size):
                weight = (math.factorial(size) * math.factorial(n - size - 1)
                          / math.factorial(n))
                gain = (_knn_utility(list(subset) + [i], X_train, y_train,
                                     x_val, y_val, k)
                        - _knn_utility(list(subset), X_train, y_train,
                                       x_val, y_val, k))
                values[i] += weight * gain
    return values


class TestExactness:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_matches_brute_force_enumeration(self, k):
        """The closed-form recursion must equal the Shapley definition on
        a tiny instance (n=6, every coalition enumerated)."""
        rng = np.random.default_rng(0)
        X_train = rng.normal(0, 1, (6, 2))
        y_train = np.array([0, 1, 0, 1, 0, 1])
        x_val = rng.normal(0, 1, 2)
        y_val = 1
        expected = _brute_force_shapley(X_train, y_train, x_val, y_val, k)
        actual = knn_shapley(X_train, y_train, x_val[None, :],
                             np.array([y_val]), k=k)
        np.testing.assert_allclose(actual, expected, atol=1e-10)

    def test_efficiency_axiom(self, dirty_blobs):
        """Values sum to u(D) - u(empty): the mean *vote fraction* for the
        true label over validation points (u(empty)=0 in the Jia et al.
        convention). The vote fraction is exactly the k-NN predicted
        probability of the true class."""
        values = knn_shapley(dirty_blobs["X_train"], dirty_blobs["y_dirty"],
                             dirty_blobs["X_valid"], dirty_blobs["y_valid"],
                             k=5)
        from repro.ml import KNeighborsClassifier

        model = KNeighborsClassifier(5).fit(dirty_blobs["X_train"],
                                            dirty_blobs["y_dirty"])
        proba = model.predict_proba(dirty_blobs["X_valid"])
        class_index = {c: i for i, c in enumerate(model.classes_.tolist())}
        cols = [class_index[v] for v in dirty_blobs["y_valid"].tolist()]
        true_class_vote = proba[np.arange(len(cols)), cols].mean()
        assert values.sum() == pytest.approx(true_class_vote, abs=1e-9)


class TestDetection:
    def test_flipped_labels_rank_lowest(self, dirty_blobs):
        values = knn_shapley(dirty_blobs["X_train"], dirty_blobs["y_dirty"],
                             dirty_blobs["X_valid"], dirty_blobs["y_valid"],
                             k=5)
        worst_15 = set(np.argsort(values)[:15].tolist())
        flipped = set(dirty_blobs["flipped"].tolist())
        recall = len(worst_15 & flipped) / len(flipped)
        assert recall >= 0.75

    def test_clean_data_has_mostly_positive_values(self, dirty_blobs):
        values = knn_shapley(dirty_blobs["X_train"], dirty_blobs["y_clean"],
                             dirty_blobs["X_valid"], dirty_blobs["y_valid"],
                             k=5)
        assert np.mean(values > 0) > 0.5


class TestValidationAndGroups:
    def test_k_out_of_range_rejected(self, dirty_blobs):
        with pytest.raises(ValidationError):
            knn_shapley(dirty_blobs["X_train"], dirty_blobs["y_dirty"],
                        dirty_blobs["X_valid"], dirty_blobs["y_valid"], k=0)

    def test_group_aggregation_sums_member_values(self, dirty_blobs):
        values = knn_shapley(dirty_blobs["X_train"], dirty_blobs["y_dirty"],
                             dirty_blobs["X_valid"], dirty_blobs["y_valid"],
                             k=3)
        groups = np.arange(len(values)) % 4
        totals = knn_shapley_by_group(
            dirty_blobs["X_train"], dirty_blobs["y_dirty"],
            dirty_blobs["X_valid"], dirty_blobs["y_valid"],
            groups, k=3)
        for gid in range(4):
            assert totals[gid] == pytest.approx(values[groups == gid].sum())
