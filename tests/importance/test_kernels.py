"""Exactness contract of the incremental coalition kernels.

The kernel path must be indistinguishable from the retrain path in
everything but speed: bit-identical scores on every backend, identical
``calls`` accounting, identical cache keys and convergence — for
arbitrary coalitions including the degenerate ones (empty, single-class,
``|S| < k``).
"""

import numpy as np
import pytest

from repro.core.exceptions import ValidationError
from repro.datasets import make_blobs
from repro.importance import (
    CoalitionKernel,
    GaussianNBCoalitionKernel,
    KNNCoalitionKernel,
    MonteCarloShapley,
    Utility,
    build_kernel,
    detection_report,
    register_kernel,
)
from repro.importance import register_fallback
from repro.importance.kernels import _KERNEL_BUILDERS, _KERNEL_FALLBACKS
from repro.ml import DecisionTreeClassifier, GaussianNB, KNeighborsClassifier
from repro.observe import Observer
from repro.runtime import BACKENDS, FingerprintCache, Runtime

MODELS = {
    "knn": lambda: KNeighborsClassifier(3),
    "gaussian_nb": lambda: GaussianNB(),
}


@pytest.fixture(scope="module")
def game():
    X, y = make_blobs(120, n_features=4, centers=2, cluster_std=1.5, seed=11)
    return {"X_train": X[:80], "y_train": y[:80],
            "X_valid": X[80:], "y_valid": y[80:]}


def _utility(game, model, *, kernel="auto", **kwargs):
    return Utility(model, game["X_train"], game["y_train"],
                   game["X_valid"], game["y_valid"], kernel=kernel, **kwargs)


def _coalitions(game, seed=0):
    """Random coalitions plus every degenerate shape the contract names."""
    rng = np.random.default_rng(seed)
    n = len(game["y_train"])
    one_class = np.flatnonzero(game["y_train"] == game["y_train"][0])[:4]
    coalitions = [
        np.array([], dtype=int),            # empty -> null value
        one_class,                          # single class -> constant
        np.array([3]),                      # |S| < k for k-NN
        np.array([5, 9]),                   # |S| < k for k-NN
        np.array([7, 7, 7]),                # duplicate indices
        np.array([7, 7, 2, 11, 11, 5]),     # duplicates, mixed classes
        np.arange(n),                       # grand coalition
    ]
    coalitions += [rng.choice(n, size=size, replace=False)
                   for size in rng.integers(3, n, size=12)]
    return coalitions


# ---------------------------------------------------------------------------
# Kernel selection
# ---------------------------------------------------------------------------
class TestKernelSelection:
    def test_knn_gets_knn_kernel(self, game):
        utility = _utility(game, KNeighborsClassifier(3))
        assert isinstance(utility.kernel, KNNCoalitionKernel)
        assert utility.kernel_name == "knn"

    def test_gaussian_nb_gets_nb_kernel(self, game):
        utility = _utility(game, GaussianNB())
        assert isinstance(utility.kernel, GaussianNBCoalitionKernel)
        assert utility.kernel_name == "gaussian_nb"

    def test_fallback_registered_model_uses_retrain_path(self, game):
        utility = _utility(game, DecisionTreeClassifier(max_depth=3))
        assert utility.kernel is None
        assert utility.kernel_name is None
        assert utility.kernel_resolution["resolution"] == "fallback"
        assert utility.kernel_resolution["reason"]

    def test_kernel_off_forces_retrain_path(self, game):
        for off in ("off", None, False):
            assert _utility(game, KNeighborsClassifier(3),
                            kernel=off).kernel is None

    def test_invalid_kernel_argument_rejected(self, game):
        with pytest.raises(ValidationError):
            _utility(game, KNeighborsClassifier(3), kernel="fast")

    def test_explicit_kernel_instance_used(self, game):
        kernel = build_kernel(KNeighborsClassifier(3), game["X_train"],
                              game["y_train"], game["X_valid"],
                              game["y_valid"], _utility(game,
                                                        GaussianNB()).metric)
        utility = _utility(game, KNeighborsClassifier(3), kernel=kernel)
        assert utility.kernel is kernel

    def test_register_kernel_validates(self):
        with pytest.raises(ValidationError):
            register_kernel("not a class", lambda *a: None)
        with pytest.raises(ValidationError):
            register_kernel(KNeighborsClassifier, "not callable")

    def test_register_kernel_mro_dispatch(self, game):
        class MyKNN(KNeighborsClassifier):
            pass

        # Subclasses inherit the closest ancestor's kernel (MRO walk) ...
        assert isinstance(_utility(game, MyKNN(3)).kernel,
                          KNNCoalitionKernel)
        # ... unless they opt out with a documented fallback ...
        register_fallback(MyKNN, "subclass overrides predict")
        try:
            utility = _utility(game, MyKNN(3))
            assert utility.kernel is None
            assert utility.kernel_resolution["resolution"] == "fallback"
            # ... and an own builder is the most-derived match again.
            register_kernel(MyKNN,
                            lambda model, *a: KNNCoalitionKernel(model, *a))
            assert isinstance(_utility(game, MyKNN(3)).kernel,
                              KNNCoalitionKernel)
        finally:
            _KERNEL_BUILDERS.pop(MyKNN, None)
            _KERNEL_FALLBACKS.pop(MyKNN, None)

    def test_register_fallback_validates(self):
        with pytest.raises(ValidationError):
            register_fallback("not a class", "reason")
        with pytest.raises(ValidationError):
            register_fallback(KNeighborsClassifier, "")

    def test_builder_may_decline(self, game):
        # Unsupported metric: the builder declines, retrain path handles it.
        utility = _utility(game, KNeighborsClassifier(3, metric="chebyshev"))
        assert utility.kernel is None
        assert utility.kernel_resolution["resolution"] == "declined"


# ---------------------------------------------------------------------------
# Bit-identical values
# ---------------------------------------------------------------------------
class TestExactness:
    @pytest.mark.parametrize("name", MODELS)
    def test_evaluate_many_bit_identical(self, game, name):
        coalitions = _coalitions(game)
        fast = _utility(game, MODELS[name]())
        slow = _utility(game, MODELS[name](), kernel="off")
        for a, b in zip(fast.evaluate_many(coalitions),
                        slow.evaluate_many(coalitions)):
            assert float(a).hex() == float(b).hex()
        assert fast.calls == slow.calls

    @pytest.mark.parametrize("name", MODELS)
    def test_walks_bit_identical(self, game, name):
        rng = np.random.default_rng(2)
        perms = [rng.permutation(len(game["y_train"])) for _ in range(4)]
        fast = _utility(game, MODELS[name]())
        slow = _utility(game, MODELS[name](), kernel="off")
        for a, b in zip(fast.walk_permutations(perms),
                        slow.walk_permutations(perms)):
            np.testing.assert_array_equal(a, b)
        assert fast.calls == slow.calls

    @pytest.mark.parametrize("name", MODELS)
    def test_truncated_walks_bit_identical(self, game, name):
        rng = np.random.default_rng(3)
        perms = [rng.permutation(len(game["y_train"])) for _ in range(3)]
        fast = _utility(game, MODELS[name]())
        slow = _utility(game, MODELS[name](), kernel="off")
        walks_fast = fast.walk_permutations(perms, truncation_tol=0.05)
        walks_slow = slow.walk_permutations(perms, truncation_tol=0.05)
        for a, b in zip(walks_fast, walks_slow):
            np.testing.assert_array_equal(a, b)
        # Truncation decisions are value-driven, so call counts match too.
        assert fast.calls == slow.calls

    @pytest.mark.parametrize("name", MODELS)
    def test_shapley_scores_bit_identical(self, game, name):
        def scores(kernel):
            utility = _utility(game, MODELS[name](), kernel=kernel)
            return MonteCarloShapley(n_permutations=4, seed=5,
                                     truncation_tol=0.01).score(utility)

        np.testing.assert_array_equal(scores("auto"), scores("off"))


# ---------------------------------------------------------------------------
# Backends and caches
# ---------------------------------------------------------------------------
class TestBackendsAndCaches:
    @pytest.mark.parametrize("name", MODELS)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_backend_bit_identical_to_serial_retrain(self, game, name,
                                                     backend):
        coalitions = _coalitions(game, seed=4)
        rng = np.random.default_rng(5)
        perms = [rng.permutation(len(game["y_train"])) for _ in range(3)]
        reference = _utility(game, MODELS[name](), kernel="off")
        expected_values = reference.evaluate_many(coalitions)
        expected_walks = reference.walk_permutations(perms)
        with Runtime(backend=backend, max_workers=2) as runtime:
            utility = _utility(game, MODELS[name](), runtime=runtime)
            np.testing.assert_array_equal(utility.evaluate_many(coalitions),
                                          expected_values)
            for a, b in zip(utility.walk_permutations(perms),
                            expected_walks):
                np.testing.assert_array_equal(a, b)
        assert utility.calls == reference.calls

    @pytest.mark.parametrize("name", MODELS)
    def test_fingerprint_cache_keys_are_path_independent(self, game, name):
        coalitions = _coalitions(game, seed=6)
        cache = FingerprintCache()
        with Runtime(cache=cache) as runtime:
            fast = _utility(game, MODELS[name](), runtime=runtime)
            values = fast.evaluate_many(coalitions)
        with Runtime(cache=cache) as runtime:
            # Retrain-path utility resolves every coalition from the
            # cache entries the kernel path wrote: identical keys.
            slow = _utility(game, MODELS[name](), kernel="off",
                            runtime=runtime, cache=False)
            np.testing.assert_array_equal(slow.evaluate_many(coalitions),
                                          values)
        assert slow.calls == 0


# ---------------------------------------------------------------------------
# Batch dedup (satellite)
# ---------------------------------------------------------------------------
class TestBatchDedup:
    def test_duplicates_evaluated_once_without_memo(self, game):
        utility = _utility(game, KNeighborsClassifier(3), cache=False)
        batch = [[4, 5, 6], [6, 5, 4], [4, 5, 6], [5, 6, 4]]
        values = utility.evaluate_many(batch)
        assert len(set(float(v).hex() for v in values)) == 1
        assert utility.calls == 1  # one evaluation for all four spellings

    def test_multiplicity_not_collapsed(self, game):
        utility = _utility(game, KNeighborsClassifier(3), kernel="off")
        batch = [[4, 4, 5, 6], [4, 5, 6]]
        utility.evaluate_many(batch)
        # [4, 4, 5, 6] and [4, 5, 6] are different coalitions.
        assert utility.calls == 2

    def test_results_in_caller_order(self, game):
        utility = _utility(game, GaussianNB())
        batch = [[10, 11, 12], [1, 2, 3], [10, 11, 12]]
        values = utility.evaluate_many(batch)
        single = [float(utility(c)) for c in ([10, 11, 12], [1, 2, 3])]
        assert float(values[0]).hex() == float(single[0]).hex()
        assert float(values[1]).hex() == float(single[1]).hex()
        assert float(values[2]).hex() == float(single[0]).hex()


# ---------------------------------------------------------------------------
# Counters and observability (satellite)
# ---------------------------------------------------------------------------
class TestCountersAndObservability:
    @staticmethod
    def _mixed_batch(game):
        """Two distinct coalitions guaranteed to contain both classes."""
        a = np.flatnonzero(game["y_train"] == 0)[:3]
        b = np.flatnonzero(game["y_train"] == 1)[:3]
        return [np.concatenate([a, b]), np.concatenate([a[:2], b[:2]])]

    def test_kernel_counters_in_cache_info(self, game):
        utility = _utility(game, KNeighborsClassifier(3))
        utility.evaluate_many(self._mixed_batch(game))
        info = utility.cache_info()["kernel"]
        assert info["name"] == "knn"
        assert info["incremental_steps"] == 2
        assert info["fallback_retrains"] == 0

    def test_fallback_counter_on_retrain_path(self, game):
        utility = _utility(game, DecisionTreeClassifier(max_depth=3))
        utility.evaluate_many(self._mixed_batch(game))
        info = utility.cache_info()["kernel"]
        assert info["name"] is None
        assert info["incremental_steps"] == 0
        assert info["fallback_retrains"] == 2

    def test_observer_sees_kernel_selection_and_counters(self, game):
        observer = Observer()
        with Runtime(observer=observer) as runtime:
            utility = _utility(game, KNeighborsClassifier(3),
                               runtime=runtime)
            utility.evaluate_many(self._mixed_batch(game))
        snapshot = observer.metrics.snapshot()
        assert snapshot["kernel.incremental_steps"] == 2
        assert "kernel.fallback_retrains" not in snapshot
        events = list(observer.runlog.iter_events("utility.kernel"))
        assert len(events) == 1
        assert events[0]["kernel"] == "knn"

    def test_importance_run_event_carries_kernel(self, game):
        observer = Observer()
        utility = _utility(game, GaussianNB())
        MonteCarloShapley(n_permutations=2, seed=1,
                          observer=observer).score(utility)
        event = next(observer.runlog.iter_events("importance.run"))
        assert event["kernel"] == "gaussian_nb"
        assert event["kernel_incremental_steps"] > 0
        assert event["kernel_fallback_retrains"] == 0

    def test_detection_report_surfaces_kernel(self, game):
        utility = _utility(game, KNeighborsClassifier(3))
        values = MonteCarloShapley(n_permutations=2, seed=1).score(utility)
        report = detection_report(values, [0, 1], 5, utility=utility)
        assert report["kernel"] == "knn"
        assert report["kernel_incremental_steps"] > 0
        assert report["kernel_fallback_retrains"] == 0

    def test_base_class_is_abstract(self, game):
        kernel = CoalitionKernel()
        with pytest.raises(NotImplementedError):
            kernel.evaluate(np.array([0]), np.array([0]), np.array([0]))
        with pytest.raises(NotImplementedError):
            kernel.walk_steps(np.array([0]))
