"""Unit tests for the importance evaluation harness."""

import numpy as np
import pytest

from repro.core.exceptions import ValidationError
from repro.importance import cleaning_curve, detection_recall_at_k, rank_lowest
from repro.importance.evaluation import detection_precision_at_k


class TestRanking:
    def test_rank_lowest_orders_ascending(self):
        values = np.array([3.0, -1.0, 2.0])
        np.testing.assert_array_equal(rank_lowest(values), [1, 2, 0])

    def test_ties_broken_by_index(self):
        values = np.array([1.0, 0.0, 0.0])
        np.testing.assert_array_equal(rank_lowest(values), [1, 2, 0])

    def test_top_k(self):
        values = np.arange(10.0)
        np.testing.assert_array_equal(rank_lowest(values, 3), [0, 1, 2])


class TestDetectionMetrics:
    def test_perfect_recall(self):
        values = np.array([-1.0, -2.0, 5.0, 6.0])
        assert detection_recall_at_k(values, [0, 1], 2) == 1.0

    def test_partial_recall(self):
        values = np.array([-1.0, 5.0, -2.0, 6.0])
        assert detection_recall_at_k(values, [0, 3], 2) == 0.5

    def test_precision(self):
        values = np.array([-1.0, -2.0, 5.0, 6.0])
        assert detection_precision_at_k(values, [0], 2) == 0.5

    def test_empty_corrupted_rejected(self):
        with pytest.raises(ValidationError):
            detection_recall_at_k(np.zeros(3), [], 1)


class TestCleaningCurve:
    def test_curve_length_and_monotone_cleaning(self):
        """Simulated setting: quality = fraction of cleaned points; each
        round cleans `batch` lowest-valued points."""
        state = {"cleaned": set()}
        values = np.arange(10.0)

        def clean_step(indices):
            state["cleaned"].update(int(i) for i in indices)

        def evaluate():
            return len(state["cleaned"]) / 10.0

        curve = cleaning_curve(values, clean_step=clean_step,
                               evaluate=evaluate, n_rounds=3, batch=2)
        assert curve == [0.0, 0.2, 0.4, 0.6]

    def test_lowest_cleaned_first(self):
        cleaned_order = []
        values = np.array([5.0, 1.0, 3.0])
        cleaning_curve(values,
                       clean_step=lambda idx: cleaned_order.extend(idx),
                       evaluate=lambda: 0.0, n_rounds=3, batch=1)
        assert [int(i) for i in cleaned_order] == [1, 2, 0]

    def test_invalid_params_rejected(self):
        with pytest.raises(ValidationError):
            cleaning_curve(np.zeros(3), clean_step=lambda i: None,
                           evaluate=lambda: 0.0, n_rounds=0, batch=1)
