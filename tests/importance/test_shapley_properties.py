"""Property-based tests for KNN-Shapley axioms (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.importance import knn_shapley
from repro.ml import KNeighborsClassifier


@st.composite
def classification_data(draw):
    n_train = draw(st.integers(8, 25))
    n_valid = draw(st.integers(2, 8))
    d = draw(st.integers(1, 3))
    seed = draw(st.integers(0, 10**6))
    rng = np.random.default_rng(seed)
    X_train = rng.normal(0, 1, (n_train, d))
    y_train = rng.integers(0, 2, n_train)
    # Guarantee both classes exist.
    y_train[0], y_train[1] = 0, 1
    X_valid = rng.normal(0, 1, (n_valid, d))
    y_valid = rng.integers(0, 2, n_valid)
    k = draw(st.integers(1, min(5, n_train)))
    return X_train, y_train, X_valid, y_valid, k


@given(classification_data())
@settings(max_examples=40, deadline=None)
def test_efficiency_axiom(data):
    """Sum of values equals the mean true-class vote fraction — u(D) in
    the Jia et al. formulation (u(empty) = 0)."""
    X_train, y_train, X_valid, y_valid, k = data
    values = knn_shapley(X_train, y_train, X_valid, y_valid, k=k)
    model = KNeighborsClassifier(k).fit(X_train, y_train)
    proba = model.predict_proba(X_valid)
    index = {c: i for i, c in enumerate(model.classes_.tolist())}
    votes = []
    for row, label in enumerate(y_valid.tolist()):
        votes.append(proba[row, index[label]] if label in index else 0.0)
    assert values.sum() == pytest.approx(float(np.mean(votes)), abs=1e-9)


@given(classification_data())
@settings(max_examples=40, deadline=None)
def test_duplicate_players_get_equal_values(data):
    """Symmetry axiom: two identical training points (same features, same
    label) must receive identical Shapley values."""
    X_train, y_train, X_valid, y_valid, k = data
    X_dup = np.vstack([X_train, X_train[:1]])
    y_dup = np.concatenate([y_train, y_train[:1]])
    values = knn_shapley(X_dup, y_dup, X_valid, y_valid, k=k)
    assert values[0] == pytest.approx(values[-1], abs=1e-9)


@given(classification_data())
@settings(max_examples=40, deadline=None)
def test_validation_additivity(data):
    """Linearity over validation points: the value for the full validation
    set is the average of per-point values."""
    X_train, y_train, X_valid, y_valid, k = data
    total = knn_shapley(X_train, y_train, X_valid, y_valid, k=k)
    per_point = np.zeros_like(total)
    for i in range(len(X_valid)):
        per_point += knn_shapley(X_train, y_train, X_valid[i:i + 1],
                                 y_valid[i:i + 1], k=k)
    np.testing.assert_allclose(total, per_point / len(X_valid), atol=1e-9)


@given(classification_data())
@settings(max_examples=30, deadline=None)
def test_label_flip_never_helps_own_value(data):
    """Flipping one training point's label to disagree with every
    validation point it influences can only lower (or keep) its value."""
    X_train, y_train, X_valid, y_valid, k = data
    values_before = knn_shapley(X_train, y_train, X_valid, y_valid, k=k)
    # Make point 0 agree with all validation labels, then flip it.
    if len(np.unique(y_valid)) != 1:
        return  # property only clean when validation is single-class
    y_agree = y_train.copy()
    y_agree[0] = y_valid[0]
    if len(np.unique(y_agree)) < 2:
        return
    agree_values = knn_shapley(X_train, y_agree, X_valid, y_valid, k=k)
    y_flip = y_agree.copy()
    y_flip[0] = 1 - y_valid[0]
    if len(np.unique(y_flip)) < 2:
        return
    flip_values = knn_shapley(X_train, y_flip, X_valid, y_valid, k=k)
    assert flip_values[0] <= agree_values[0] + 1e-9
