"""Anytime (``partial=``) hook tests across the importance methods:
publishing is bit-neutral, CIs shrink, early stop returns the running
estimate, and a stopped job resumes to the exact full-run result."""

import numpy as np
import pytest

from repro.core.exceptions import ValidationError
from repro.datasets import make_blobs
from repro.importance import (
    BetaShapley,
    DataBanzhaf,
    MonteCarloShapley,
    Utility,
    leave_one_out,
)
from repro.importance.base import clt_stderr, resolve_partial
from repro.ml import KNeighborsClassifier


def hexes(values):
    return [float(v).hex() for v in values]


def make_utility():
    X, y = make_blobs(40, n_features=3, centers=2, seed=2)
    return Utility(KNeighborsClassifier(n_neighbors=3),
                   X[:30], y[:30], X[30:], y[30:])


class Recorder:
    """Minimal ``partial=`` hook: records snapshots, stops on demand."""

    def __init__(self, every=1, stop_at=None):
        self.every = every
        self.stop_at = stop_at
        self.snaps = []

    def publish(self, **fields):
        self.snaps.append(fields)
        return self.stop_at is not None \
            and fields["completed"] >= self.stop_at


RUNNERS = {
    "shapley_mc": lambda u, **kw: MonteCarloShapley(
        n_permutations=6, seed=0, **kw).score(u),
    "banzhaf": lambda u, **kw: DataBanzhaf(
        n_samples=8, seed=0, **kw).score(u),
    "beta_shapley": lambda u, **kw: BetaShapley(
        n_permutations=6, seed=0, **kw).score(u),
    "loo": lambda u, **kw: leave_one_out(u, **kw),
}
TOTALS = {"shapley_mc": 6, "banzhaf": 8, "beta_shapley": 6, "loo": 30}


@pytest.mark.parametrize("method", sorted(RUNNERS))
class TestPublishContract:
    def test_partial_publishing_is_bit_neutral(self, method):
        plain = RUNNERS[method](make_utility())
        recorder = Recorder(every=1)
        observed = RUNNERS[method](make_utility(), partial=recorder)
        assert hexes(observed) == hexes(plain)

    def test_snapshots_progress_to_total(self, method):
        recorder = Recorder(every=1)
        RUNNERS[method](make_utility(), partial=recorder)
        completed = [s["completed"] for s in recorder.snaps]
        assert completed == sorted(completed)
        assert completed[0] > 0
        assert completed[-1] == TOTALS[method]
        for snap in recorder.snaps:
            assert snap["method"] in ("leave_one_out", method)
            assert len(snap["values"]) == 30
            assert len(snap["stderr"]) == 30

    def test_early_stop_returns_current_estimate(self, method):
        stop_at = 3 if method != "banzhaf" else 4
        recorder = Recorder(every=1, stop_at=stop_at)
        result = RUNNERS[method](make_utility(), partial=recorder)
        last = recorder.snaps[-1]
        assert last["completed"] == stop_at
        finite = np.isfinite(result)
        np.testing.assert_array_equal(
            np.asarray(result)[finite],
            np.asarray(last["values"])[finite])

    def test_early_stop_then_resume_is_exact(self, method, tmp_path):
        full_utility = make_utility()
        full = RUNNERS[method](full_utility)
        store = tmp_path / method
        stop_at = 3 if method != "banzhaf" else 4
        RUNNERS[method](make_utility(), checkpoint=store,
                        partial=Recorder(every=1, stop_at=stop_at))
        resumed_utility = make_utility()
        resumed = RUNNERS[method](resumed_utility, checkpoint=store,
                                  resume_from=store)
        assert hexes(resumed) == hexes(full)
        # resume restores the interrupted run's call accounting, so the
        # two-leg total matches one uninterrupted run exactly
        assert resumed_utility.calls == full_utility.calls


class TestConfidenceIntervals:
    def test_stderr_shrinks_with_sample_count(self):
        recorder = Recorder(every=1)
        MonteCarloShapley(n_permutations=40, seed=1,
                          partial=recorder).score(make_utility())

        def mean_stderr(completed):
            snap = next(s for s in recorder.snaps
                        if s["completed"] == completed)
            return float(np.mean(snap["stderr"]))

        assert mean_stderr(1) == np.inf  # one sample: spread unknowable
        assert mean_stderr(4) > mean_stderr(16) > mean_stderr(40)

    def test_loo_stderr_mask_and_nan_tail(self):
        recorder = Recorder(every=1, stop_at=10)
        result = leave_one_out(make_utility(), partial=recorder)
        assert np.isfinite(result[:10]).all()
        assert np.isnan(result[10:]).all()
        last = recorder.snaps[-1]
        stderr = np.asarray(last["stderr"])
        assert (stderr[:10] == 0.0).all()       # computed: exact
        assert np.isinf(stderr[10:]).all()      # pending: unknowable
        assert np.isnan(np.asarray(last["values"])[10:]).all()

    def test_clt_stderr_matches_manual_computation(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(size=(25, 4))
        sums = samples.sum(axis=0)
        sumsqs = (samples ** 2).sum(axis=0)
        got = clt_stderr(sums, sumsqs, 25)
        want = samples.std(axis=0, ddof=1) / np.sqrt(25)
        np.testing.assert_allclose(got, want)

    def test_clt_stderr_is_inf_below_two_samples(self):
        for count in (0, 1):
            assert np.isinf(clt_stderr(np.zeros(3), np.zeros(3),
                                       count)).all()


class TestResolvePartial:
    def test_none_passes_through(self):
        assert resolve_partial(None) is None

    def test_object_without_publish_rejected(self):
        with pytest.raises(ValidationError):
            resolve_partial(object())

    def test_duck_typed_hook_accepted(self):
        recorder = Recorder()
        assert resolve_partial(recorder) is recorder
