"""Unit tests for gradient-similarity values."""

import numpy as np
import pytest

from repro.core.exceptions import ValidationError
from repro.importance.gradient_similarity import gradient_similarity_scores
from repro.ml import KNeighborsClassifier, LogisticRegression


class TestGradientSimilarity:
    def test_flipped_labels_rank_lowest(self, dirty_blobs):
        model = LogisticRegression().fit(dirty_blobs["X_train"],
                                         dirty_blobs["y_dirty"])
        scores = gradient_similarity_scores(
            model, dirty_blobs["X_train"], dirty_blobs["y_dirty"],
            dirty_blobs["X_valid"], dirty_blobs["y_valid"])
        worst = set(np.argsort(scores)[:15].tolist())
        flipped = set(dirty_blobs["flipped"].tolist())
        assert len(worst & flipped) / len(flipped) >= 0.7

    def test_agrees_with_influence_on_the_worst(self, dirty_blobs):
        """First-order and curvature-aware scores should overlap heavily
        in their bottom sets (the Hessian mostly rescales here)."""
        from repro.importance import influence_scores

        model = LogisticRegression().fit(dirty_blobs["X_train"],
                                         dirty_blobs["y_dirty"])
        args = (model, dirty_blobs["X_train"], dirty_blobs["y_dirty"],
                dirty_blobs["X_valid"], dirty_blobs["y_valid"])
        gradient = gradient_similarity_scores(*args)
        influence = influence_scores(*args)
        worst_gradient = set(np.argsort(gradient)[:15].tolist())
        worst_influence = set(np.argsort(influence)[:15].tolist())
        assert len(worst_gradient & worst_influence) >= 10

    def test_normalized_variant_also_detects(self, dirty_blobs):
        model = LogisticRegression().fit(dirty_blobs["X_train"],
                                         dirty_blobs["y_dirty"])
        scores = gradient_similarity_scores(
            model, dirty_blobs["X_train"], dirty_blobs["y_dirty"],
            dirty_blobs["X_valid"], dirty_blobs["y_valid"], normalize=True)
        worst = set(np.argsort(scores)[:15].tolist())
        flipped = set(dirty_blobs["flipped"].tolist())
        assert len(worst & flipped) / len(flipped) >= 0.6

    def test_unfitted_rejected(self, dirty_blobs):
        with pytest.raises(ValidationError):
            gradient_similarity_scores(
                LogisticRegression(), dirty_blobs["X_train"],
                dirty_blobs["y_dirty"], dirty_blobs["X_valid"],
                dirty_blobs["y_valid"])

    def test_wrong_model_rejected(self, dirty_blobs):
        model = KNeighborsClassifier(3).fit(dirty_blobs["X_train"],
                                            dirty_blobs["y_dirty"])
        with pytest.raises(ValidationError):
            gradient_similarity_scores(
                model, dirty_blobs["X_train"], dirty_blobs["y_dirty"],
                dirty_blobs["X_valid"], dirty_blobs["y_valid"])
