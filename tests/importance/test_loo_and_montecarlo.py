"""Unit tests for LOO, Monte-Carlo Shapley, Banzhaf, and Beta Shapley."""

import numpy as np
import pytest

from repro.core.exceptions import ValidationError
from repro.importance import (
    BetaShapley,
    DataBanzhaf,
    MonteCarloShapley,
    Utility,
    leave_one_out,
)
from repro.importance.beta_shapley import beta_size_weights
from repro.ml import KNeighborsClassifier


def _knn_utility(dirty_blobs):
    return Utility(KNeighborsClassifier(3),
                   dirty_blobs["X_train"], dirty_blobs["y_dirty"],
                   dirty_blobs["X_valid"], dirty_blobs["y_valid"])


class TestLeaveOneOut:
    def test_one_value_per_player(self, dirty_utility):
        values = leave_one_out(dirty_utility)
        assert values.shape == (dirty_utility.n_players,)

    def test_definition_holds_per_point(self, dirty_utility):
        values = leave_one_out(dirty_utility)
        n = dirty_utility.n_players
        full = dirty_utility.full_value()
        for i in (0, n // 2, n - 1):
            without = dirty_utility(np.delete(np.arange(n), i))
            assert values[i] == pytest.approx(full - without)


class TestMonteCarloShapley:
    def test_converges_towards_knn_ranking(self, dirty_blobs):
        """With enough permutations, MC Shapley should rank a decent share
        of the flipped points at the bottom."""
        utility = _knn_utility(dirty_blobs)
        values = MonteCarloShapley(n_permutations=25, truncation_tol=0.02,
                                   seed=0).score(utility)
        worst = set(np.argsort(values)[:20].tolist())
        flipped = set(dirty_blobs["flipped"].tolist())
        assert len(worst & flipped) / len(flipped) >= 0.4

    def test_truncation_reduces_trainings(self, dirty_blobs):
        utility_full = _knn_utility(dirty_blobs)
        MonteCarloShapley(n_permutations=3, truncation_tol=0.0,
                          seed=1).score(utility_full)
        utility_truncated = _knn_utility(dirty_blobs)
        MonteCarloShapley(n_permutations=3, truncation_tol=0.05,
                          seed=1).score(utility_truncated)
        assert utility_truncated.calls < utility_full.calls

    def test_convergence_early_stop(self, dirty_blobs):
        utility = _knn_utility(dirty_blobs)
        estimator = MonteCarloShapley(n_permutations=50, truncation_tol=0.05,
                                      convergence_tol=0.5,
                                      convergence_window=3, seed=2)
        estimator.score(utility)
        assert estimator.n_permutations_used_ < 50

    def test_seed_reproducible(self, dirty_blobs):
        a = MonteCarloShapley(n_permutations=4, seed=9).score(
            _knn_utility(dirty_blobs))
        b = MonteCarloShapley(n_permutations=4, seed=9).score(
            _knn_utility(dirty_blobs))
        np.testing.assert_array_equal(a, b)

    def test_invalid_params_rejected(self):
        with pytest.raises(ValidationError):
            MonteCarloShapley(n_permutations=0)
        with pytest.raises(ValidationError):
            MonteCarloShapley(truncation_tol=-1.0)


class TestDataBanzhaf:
    def test_detects_flipped_labels(self, dirty_blobs):
        utility = _knn_utility(dirty_blobs)
        values = DataBanzhaf(n_samples=150, seed=0).score(utility)
        worst = set(np.argsort(values)[:20].tolist())
        flipped = set(dirty_blobs["flipped"].tolist())
        assert len(worst & flipped) / len(flipped) >= 0.4

    def test_msr_reuses_every_sample(self, dirty_blobs):
        """MSR does exactly n_samples trainings regardless of n_players."""
        utility = _knn_utility(dirty_blobs)
        DataBanzhaf(n_samples=40, seed=1).score(utility)
        assert utility.calls <= 40

    def test_minimum_samples_validated(self):
        with pytest.raises(ValidationError):
            DataBanzhaf(n_samples=1)


class TestBetaShapley:
    def test_size_weights_sum_to_one(self):
        for alpha, beta in [(1, 1), (16, 1), (1, 16), (4, 4)]:
            weights = beta_size_weights(30, alpha, beta)
            assert weights.sum() == pytest.approx(1.0)

    def test_uniform_weights_recover_shapley(self):
        """Beta(1,1) size distribution is uniform over coalition sizes."""
        weights = beta_size_weights(25, 1.0, 1.0)
        np.testing.assert_allclose(weights, 1.0 / 25, atol=1e-12)

    def test_beta16_1_emphasizes_small_coalitions(self):
        weights = beta_size_weights(40, 16.0, 1.0)
        assert weights[0] > weights[-1]
        assert np.argmax(weights) < 5

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValidationError):
            beta_size_weights(10, 0.0, 1.0)

    def test_detects_flipped_labels(self, dirty_blobs):
        utility = _knn_utility(dirty_blobs)
        values = BetaShapley(alpha=16, beta=1, n_permutations=10,
                             seed=0).score(utility)
        worst = set(np.argsort(values)[:20].tolist())
        flipped = set(dirty_blobs["flipped"].tolist())
        assert len(worst & flipped) / len(flipped) >= 0.4
