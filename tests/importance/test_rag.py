"""Unit tests for retrieval-augmented data importance."""

import numpy as np
import pytest

from repro.core.exceptions import NotFittedError, ValidationError
from repro.importance.rag import RetrievalAugmentedClassifier, rag_corpus_importance

POSITIVE_DOCS = [
    "excellent outstanding superb quality work praised by everyone",
    "brilliant reliable dependable trustworthy and inspiring results",
    "exceeded expectations with remarkable initiative and great skill",
    "wonderful collaboration fantastic delivery and strong leadership",
]
NEGATIVE_DOCS = [
    "terrible careless sloppy mistakes and disappointing failures",
    "missed deadlines unreliable unprepared and frustrating to manage",
    "poor judgment costly rework and serious concerns raised",
    "undermined the project with friction and defensive behaviour",
]


@pytest.fixture(scope="module")
def corpus_model():
    corpus = POSITIVE_DOCS + NEGATIVE_DOCS
    labels = ["pos"] * len(POSITIVE_DOCS) + ["neg"] * len(NEGATIVE_DOCS)
    return RetrievalAugmentedClassifier(k=3).fit(corpus, labels), corpus, labels


class TestRetrievalAugmentedClassifier:
    def test_retrieves_topically_similar_docs(self, corpus_model):
        model, corpus, labels = corpus_model
        retrieved = model.retrieve(["superb excellent outstanding quality"])
        retrieved_labels = {labels[i] for i in retrieved[0]}
        assert "pos" in retrieved_labels

    def test_classifies_sentiment_queries(self, corpus_model):
        model, _, _ = corpus_model
        queries = ["brilliant superb reliable work",
                   "sloppy careless disappointing mistakes"]
        predictions = model.predict(queries)
        assert predictions[0] == "pos"
        assert predictions[1] == "neg"

    def test_k_larger_than_corpus_rejected(self):
        with pytest.raises(ValidationError):
            RetrievalAugmentedClassifier(k=10).fit(["a", "b"], ["x", "y"])

    def test_unfitted_rejected(self):
        with pytest.raises(NotFittedError):
            RetrievalAugmentedClassifier(k=1).predict(["q"])

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(ValidationError):
            RetrievalAugmentedClassifier(k=1).fit(["a"], ["x", "y"])


class TestRagCorpusImportance:
    def test_one_value_per_document(self, corpus_model):
        model, corpus, _ = corpus_model
        queries = ["excellent work", "terrible failure"]
        values = rag_corpus_importance(model, queries, ["pos", "neg"])
        assert values.shape == (len(corpus),)

    def test_poisoned_document_ranks_among_the_worst(self):
        """A mislabeled corpus entry (negative text labelled pos) must
        land in the bottom of the importance ranking, and be valued below
        every correctly-labelled document it competes with on the
        negative queries."""
        corpus = POSITIVE_DOCS + NEGATIVE_DOCS + [
            "terrible sloppy careless disappointing poor failure mistakes"
        ]
        labels = (["pos"] * len(POSITIVE_DOCS)
                  + ["neg"] * len(NEGATIVE_DOCS)
                  + ["pos"])  # poisoned label
        model = RetrievalAugmentedClassifier(k=3).fit(corpus, labels)
        queries = [
            "sloppy careless failure disappointing",
            "terrible mistakes poor judgment",
            "careless sloppy poor failure",
            "disappointing terrible mistakes everywhere",
            "superb brilliant excellent results",
            "outstanding dependable quality work",
        ]
        query_labels = ["neg", "neg", "neg", "neg", "pos", "pos"]
        values = rag_corpus_importance(model, queries, query_labels)
        poisoned = len(corpus) - 1
        bottom3 = set(np.argsort(values)[:3].tolist())
        assert poisoned in bottom3
        # Strictly below every correctly-labelled negative document.
        negative_docs = range(len(POSITIVE_DOCS), len(corpus) - 1)
        assert all(values[poisoned] < values[i] for i in negative_docs)

    def test_pruning_lowest_improves_accuracy(self):
        corpus = POSITIVE_DOCS + NEGATIVE_DOCS + [
            "terrible sloppy careless disappointing poor failure mistakes",
            "unreliable frustrating serious concerns and costly rework",
        ]
        labels = (["pos"] * len(POSITIVE_DOCS)
                  + ["neg"] * len(NEGATIVE_DOCS)
                  + ["pos", "pos"])  # two poisoned entries
        queries = [
            "sloppy careless failure disappointing work",
            "terrible mistakes poor judgment and concerns",
            "unreliable frustrating costly rework everywhere",
            "superb brilliant excellent results delivered",
            "outstanding dependable quality collaboration",
        ]
        query_labels = ["neg", "neg", "neg", "pos", "pos"]
        model = RetrievalAugmentedClassifier(k=3).fit(corpus, labels)
        before = model.score(queries, query_labels)
        values = rag_corpus_importance(model, queries, query_labels)
        keep = np.argsort(values)[2:]  # prune the 2 lowest-valued docs
        pruned = RetrievalAugmentedClassifier(k=3).fit(
            [corpus[i] for i in keep],
            [labels[i] for i in keep])
        after = pruned.score(queries, query_labels)
        assert after >= before
