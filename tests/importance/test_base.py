"""Unit tests for the coalition utility function."""

import numpy as np
import pytest

from repro.core.exceptions import ValidationError
from repro.importance import Utility
from repro.ml import KNeighborsClassifier, LogisticRegression


class TestUtility:
    def test_full_coalition_equals_direct_training(self, dirty_blobs):
        u = Utility(LogisticRegression(max_iter=60),
                    dirty_blobs["X_train"], dirty_blobs["y_dirty"],
                    dirty_blobs["X_valid"], dirty_blobs["y_valid"])
        model = LogisticRegression(max_iter=60).fit(
            dirty_blobs["X_train"], dirty_blobs["y_dirty"])
        direct = float(np.mean(
            model.predict(dirty_blobs["X_valid"]) == dirty_blobs["y_valid"]))
        assert u.full_value() == pytest.approx(direct)

    def test_null_value_is_majority_class_accuracy(self, dirty_blobs):
        u = Utility(LogisticRegression(),
                    dirty_blobs["X_train"], dirty_blobs["y_dirty"],
                    dirty_blobs["X_valid"], dirty_blobs["y_valid"])
        majority_rate = max(np.mean(dirty_blobs["y_valid"] == c)
                            for c in np.unique(dirty_blobs["y_valid"]))
        assert u.null_value() == pytest.approx(majority_rate)

    def test_empty_subset_uses_null_value(self, dirty_utility):
        assert dirty_utility(np.array([], dtype=int)) == \
            dirty_utility.null_value()

    def test_single_class_subset_is_constant_predictor(self, dirty_blobs):
        u = Utility(LogisticRegression(),
                    dirty_blobs["X_train"], dirty_blobs["y_dirty"],
                    dirty_blobs["X_valid"], dirty_blobs["y_valid"])
        members = np.flatnonzero(dirty_blobs["y_dirty"] == 0)[:3]
        expected = float(np.mean(dirty_blobs["y_valid"] == 0))
        assert u(members) == pytest.approx(expected)

    def test_cache_avoids_retraining(self, dirty_utility):
        subset = np.arange(10)
        dirty_utility(subset)
        calls_before = dirty_utility.calls
        dirty_utility(subset[::-1].copy())  # same set, different order
        assert dirty_utility.calls == calls_before

    def test_2d_subset_rejected(self, dirty_utility):
        with pytest.raises(ValidationError):
            dirty_utility(np.zeros((2, 2), dtype=int))

    def test_custom_metric(self, dirty_blobs):
        from repro.ml.metrics import f1_score

        u = Utility(KNeighborsClassifier(3),
                    dirty_blobs["X_train"], dirty_blobs["y_dirty"],
                    dirty_blobs["X_valid"], dirty_blobs["y_valid"],
                    metric=f1_score)
        value = u.full_value()
        assert 0.0 <= value <= 1.0
