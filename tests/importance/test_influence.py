"""Unit tests for influence functions."""

import numpy as np
import pytest

from repro.core.exceptions import ValidationError
from repro.importance import influence_scores
from repro.ml import KNeighborsClassifier, LogisticRegression


class TestInfluenceScores:
    def test_flipped_labels_get_lowest_scores(self, dirty_blobs):
        model = LogisticRegression().fit(dirty_blobs["X_train"],
                                         dirty_blobs["y_dirty"])
        scores = influence_scores(model, dirty_blobs["X_train"],
                                  dirty_blobs["y_dirty"],
                                  dirty_blobs["X_valid"],
                                  dirty_blobs["y_valid"])
        worst = set(np.argsort(scores)[:15].tolist())
        flipped = set(dirty_blobs["flipped"].tolist())
        assert len(worst & flipped) / len(flipped) >= 0.75

    def test_matches_loo_direction_on_clean_data(self, dirty_blobs):
        """Influence approximates LOO: the sign agreement between the two
        rankings should be well above chance."""
        from repro.importance import Utility, leave_one_out
        from repro.ml.metrics import log_loss

        X, y = dirty_blobs["X_train"], dirty_blobs["y_dirty"]
        Xv, yv = dirty_blobs["X_valid"], dirty_blobs["y_valid"]
        model = LogisticRegression().fit(X, y)
        scores = influence_scores(model, X, y, Xv, yv)

        def neg_log_loss_metric(y_true, y_pred):  # utility: higher better
            return float(np.mean(y_true == y_pred))

        utility = Utility(LogisticRegression(max_iter=60), X, y, Xv, yv,
                          metric=neg_log_loss_metric)
        loo = leave_one_out(utility)
        # Compare bottom-20 overlap.
        worst_influence = set(np.argsort(scores)[:20].tolist())
        worst_loo = set(np.argsort(loo)[:20].tolist())
        assert len(worst_influence & worst_loo) >= 8

    def test_unfitted_model_rejected(self, dirty_blobs):
        with pytest.raises(ValidationError):
            influence_scores(LogisticRegression(), dirty_blobs["X_train"],
                             dirty_blobs["y_dirty"], dirty_blobs["X_valid"],
                             dirty_blobs["y_valid"])

    def test_wrong_model_type_rejected(self, dirty_blobs):
        model = KNeighborsClassifier(3).fit(dirty_blobs["X_train"],
                                            dirty_blobs["y_dirty"])
        with pytest.raises(ValidationError):
            influence_scores(model, dirty_blobs["X_train"],
                             dirty_blobs["y_dirty"], dirty_blobs["X_valid"],
                             dirty_blobs["y_valid"])

    def test_multiclass_rejected(self):
        from repro.datasets import make_blobs

        X, y = make_blobs(90, centers=3, seed=0)
        model = LogisticRegression().fit(X, y)
        with pytest.raises(ValidationError):
            influence_scores(model, X, y, X, y)
