"""Unit tests for the random forest."""

import numpy as np
import pytest

from repro.core.exceptions import ValidationError
from repro.datasets import make_blobs, make_moons
from repro.ml import DecisionTreeClassifier, RandomForestClassifier


class TestRandomForest:
    def test_learns_nonlinear_boundary(self):
        X, y = make_moons(400, noise=0.15, seed=0)
        model = RandomForestClassifier(n_estimators=15, max_depth=6,
                                       seed=0).fit(X[:300], y[:300])
        assert model.score(X[300:], y[300:]) >= 0.85

    def test_beats_single_shallow_tree_on_moons(self):
        X, y = make_moons(400, noise=0.2, seed=1)
        tree = DecisionTreeClassifier(max_depth=3).fit(X[:300], y[:300])
        forest = RandomForestClassifier(n_estimators=25, max_depth=3,
                                        max_features="all",
                                        seed=0).fit(X[:300], y[:300])
        assert forest.score(X[300:], y[300:]) >= \
            tree.score(X[300:], y[300:]) - 0.02

    def test_proba_rows_sum_to_one(self):
        X, y = make_blobs(100, centers=3, seed=2)
        proba = RandomForestClassifier(n_estimators=8,
                                       seed=0).fit(X, y).predict_proba(X)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_deterministic_given_seed(self):
        X, y = make_blobs(80, seed=3)
        a = RandomForestClassifier(n_estimators=5, seed=7).fit(X, y).predict(X)
        b = RandomForestClassifier(n_estimators=5, seed=7).fit(X, y).predict(X)
        np.testing.assert_array_equal(a, b)

    def test_max_features_validated(self):
        X, y = make_blobs(40, n_features=3, seed=4)
        with pytest.raises(ValidationError):
            RandomForestClassifier(max_features=10).fit(X, y)

    def test_works_inside_utility(self):
        """Model-agnosticism: the importance machinery accepts forests."""
        from repro.importance import Utility, leave_one_out

        X, y = make_blobs(40, seed=5)
        utility = Utility(RandomForestClassifier(n_estimators=3, seed=0),
                          X[:30], y[:30], X[30:], y[30:])
        values = leave_one_out(utility)
        assert values.shape == (30,)
