"""Unit tests for the k-NN classifier and pairwise distances."""

import numpy as np
import pytest

from repro.core.exceptions import ValidationError
from repro.ml import KNeighborsClassifier
from repro.ml.neighbors import pairwise_distances


class TestPairwiseDistances:
    def test_euclidean_matches_numpy(self, rng):
        A = rng.standard_normal((10, 4))
        B = rng.standard_normal((7, 4))
        expected = np.linalg.norm(A[:, None, :] - B[None, :, :], axis=2)
        np.testing.assert_allclose(
            pairwise_distances(A, B), expected, atol=1e-9)

    def test_manhattan(self):
        A = np.array([[0.0, 0.0]])
        B = np.array([[1.0, 2.0]])
        assert pairwise_distances(A, B, "manhattan")[0, 0] == 3.0

    def test_cosine_of_identical_vector_is_zero(self):
        A = np.array([[1.0, 2.0]])
        assert pairwise_distances(A, A, "cosine")[0, 0] == pytest.approx(0.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            pairwise_distances(np.ones((2, 3)), np.ones((2, 4)))

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValidationError):
            pairwise_distances(np.ones((1, 1)), np.ones((1, 1)), "hamming")


class TestKNeighborsClassifier:
    def test_1nn_memorizes_training_data(self, blobs):
        X, y = blobs
        model = KNeighborsClassifier(n_neighbors=1).fit(X, y)
        assert model.score(X, y) == 1.0

    def test_kneighbors_sorted_by_distance(self, blobs):
        X, y = blobs
        model = KNeighborsClassifier(n_neighbors=5).fit(X, y)
        distances, _ = model.kneighbors(X[:3])
        assert np.all(np.diff(distances, axis=1) >= 0)

    def test_deterministic_tie_breaking_by_index(self):
        X = np.array([[0.0], [1.0], [1.0]])
        y = np.array([0, 1, 0])
        model = KNeighborsClassifier(n_neighbors=2).fit(X, y)
        _, indices = model.kneighbors(np.array([[1.0]]))
        assert indices[0].tolist() == [1, 2]

    def test_proba_is_vote_fraction(self):
        X = np.array([[0.0], [0.1], [0.2], [5.0]])
        y = np.array([0, 0, 1, 1])
        model = KNeighborsClassifier(n_neighbors=3).fit(X, y)
        proba = model.predict_proba(np.array([[0.0]]))
        np.testing.assert_allclose(proba[0], [2 / 3, 1 / 3])

    def test_k_larger_than_train_rejected(self):
        with pytest.raises(ValidationError):
            KNeighborsClassifier(n_neighbors=10).fit(
                np.ones((3, 1)), np.array([0, 1, 0]))

    def test_generalizes_on_blobs(self, blobs_split):
        X_train, y_train, X_test, y_test = blobs_split
        model = KNeighborsClassifier(n_neighbors=5).fit(X_train, y_train)
        assert model.score(X_test, y_test) >= 0.9


class TestManhattanChunking:
    def test_chunked_output_identical_to_broadcast(self, rng, monkeypatch):
        from repro.ml import neighbors

        A = rng.standard_normal((37, 5))
        B = rng.standard_normal((11, 5))
        expected = np.abs(A[:, None, :] - B[None, :, :]).sum(axis=2)
        # Force many tiny chunks: every boundary must still be exact.
        monkeypatch.setattr(neighbors, "_MANHATTAN_CHUNK_ELEMENTS", 1)
        chunked = pairwise_distances(A, B, metric="manhattan")
        np.testing.assert_array_equal(chunked, expected)

    def test_single_chunk_path_unchanged(self, rng):
        A = rng.standard_normal((8, 3))
        B = rng.standard_normal((6, 3))
        expected = np.abs(A[:, None, :] - B[None, :, :]).sum(axis=2)
        np.testing.assert_array_equal(
            pairwise_distances(A, B, metric="manhattan"), expected)


class TestPartialFit:
    def test_partial_fit_equals_batch_fit(self, rng):
        X = rng.standard_normal((30, 3))
        y = rng.integers(0, 3, size=30)
        batch = KNeighborsClassifier(n_neighbors=3).fit(X, y)
        grown = KNeighborsClassifier(n_neighbors=3).fit(X[:10], y[:10])
        grown.partial_fit(X[10:20], y[10:20]).partial_fit(X[20:], y[20:])
        queries = rng.standard_normal((12, 3))
        np.testing.assert_array_equal(batch.predict(queries),
                                      grown.predict(queries))
        np.testing.assert_array_equal(batch.classes_, grown.classes_)

    def test_partial_fit_on_unfitted_is_fit(self, rng):
        X = rng.standard_normal((12, 2))
        y = rng.integers(0, 2, size=12)
        model = KNeighborsClassifier(n_neighbors=3).partial_fit(X, y)
        np.testing.assert_array_equal(model.predict(X[:4]),
                                      KNeighborsClassifier(3).fit(
                                          X, y).predict(X[:4]))

    def test_partial_fit_feature_mismatch_rejected(self, rng):
        X = rng.standard_normal((10, 2))
        y = rng.integers(0, 2, size=10)
        model = KNeighborsClassifier(n_neighbors=2).fit(X, y)
        with pytest.raises(ValidationError):
            model.partial_fit(rng.standard_normal((4, 3)),
                              np.array([0, 1, 0, 1]))
