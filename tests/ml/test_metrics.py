"""Unit tests for quality metrics."""

import numpy as np
import pytest

from repro.core.exceptions import ValidationError
from repro.ml import (
    accuracy_score,
    confusion_matrix,
    f1_score,
    log_loss,
    precision_score,
    prediction_entropy,
    recall_score,
    roc_auc_score,
)
from repro.ml.metrics import balanced_accuracy_score


class TestAccuracy:
    def test_perfect(self):
        assert accuracy_score([1, 0, 1], [1, 0, 1]) == 1.0

    def test_fraction(self):
        assert accuracy_score([1, 0, 1, 0], [1, 1, 1, 1]) == 0.5

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            accuracy_score([], [])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            accuracy_score([1], [1, 2])


class TestConfusionMatrix:
    def test_binary_counts(self):
        matrix = confusion_matrix([1, 1, 0, 0], [1, 0, 0, 1])
        np.testing.assert_array_equal(matrix, [[1, 1], [1, 1]])

    def test_explicit_label_order(self):
        matrix = confusion_matrix(["b", "a"], ["b", "a"], labels=["b", "a"])
        np.testing.assert_array_equal(matrix, [[1, 0], [0, 1]])

    def test_trace_equals_correct_count(self):
        y_true = [0, 1, 2, 2, 1]
        y_pred = [0, 1, 1, 2, 0]
        assert confusion_matrix(y_true, y_pred).trace() == 3


class TestPrecisionRecallF1:
    def test_known_values(self):
        y_true = [1, 1, 1, 0, 0]
        y_pred = [1, 1, 0, 1, 0]
        assert precision_score(y_true, y_pred, positive=1) == pytest.approx(2 / 3)
        assert recall_score(y_true, y_pred, positive=1) == pytest.approx(2 / 3)
        assert f1_score(y_true, y_pred, positive=1) == pytest.approx(2 / 3)

    def test_no_positive_predictions_gives_zero_precision(self):
        assert precision_score([1, 1], [0, 0], positive=1) == 0.0

    def test_f1_zero_when_nothing_found(self):
        assert f1_score([1, 0], [0, 0], positive=1) == 0.0

    def test_default_positive_is_larger_label(self):
        assert recall_score([0, 1], [0, 1]) == 1.0


class TestLogLoss:
    def test_confident_correct_is_near_zero(self):
        loss = log_loss([1], [[0.01, 0.99]], classes=[0, 1])
        assert loss == pytest.approx(-np.log(0.99))

    def test_uniform_is_log_k(self):
        loss = log_loss([0, 1], [[0.5, 0.5], [0.5, 0.5]], classes=[0, 1])
        assert loss == pytest.approx(np.log(2))

    def test_unknown_label_rejected(self):
        with pytest.raises(ValidationError):
            log_loss([2], [[0.5, 0.5]], classes=[0, 1])


class TestRocAuc:
    def test_perfect_ranking(self):
        assert roc_auc_score([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == 1.0

    def test_reversed_ranking(self):
        assert roc_auc_score([0, 0, 1, 1], [0.9, 0.8, 0.2, 0.1]) == 0.0

    def test_ties_give_half_credit(self):
        assert roc_auc_score([0, 1], [0.5, 0.5]) == 0.5

    def test_single_class_rejected(self):
        with pytest.raises(ValidationError):
            roc_auc_score([1, 1], [0.1, 0.2])


class TestEntropyAndBalance:
    def test_deterministic_predictions_have_zero_entropy(self):
        assert prediction_entropy([[1.0, 0.0], [0.0, 1.0]]) == pytest.approx(
            0.0, abs=1e-9)

    def test_uniform_predictions_have_max_entropy(self):
        assert prediction_entropy([[0.5, 0.5]]) == pytest.approx(1.0)

    def test_balanced_accuracy_on_imbalanced_data(self):
        y_true = [0] * 90 + [1] * 10
        y_pred = [0] * 100  # majority-class dummy
        assert accuracy_score(y_true, y_pred) == 0.9
        assert balanced_accuracy_score(y_true, y_pred) == 0.5
