"""Unit tests for Pipeline, ColumnTransformer, FeatureUnion."""

import numpy as np
import pytest

from repro.core.exceptions import SchemaError, ValidationError
from repro.dataframe import DataFrame
from repro.ml import (
    ColumnTransformer,
    FeatureUnion,
    FunctionTransformer,
    KNeighborsClassifier,
    LogisticRegression,
    OneHotEncoder,
    Pipeline,
    SimpleImputer,
    StandardScaler,
    clone,
)


class TestPipeline:
    def test_transform_then_predict(self, blobs_split):
        X_train, y_train, X_test, y_test = blobs_split
        pipe = Pipeline([
            ("scale", StandardScaler()),
            ("model", LogisticRegression()),
        ]).fit(X_train, y_train)
        assert pipe.score(X_test, y_test) >= 0.9

    def test_transformer_only_pipeline(self, rng):
        X = rng.standard_normal((10, 2))
        pipe = Pipeline([
            ("scale", StandardScaler()),
            ("double", FunctionTransformer(lambda Z: Z * 2)),
        ])
        Z = pipe.fit_transform(X)
        assert Z.std() == pytest.approx(2.0, abs=0.3)

    def test_duplicate_step_names_rejected(self):
        with pytest.raises(ValidationError):
            Pipeline([("a", StandardScaler()), ("a", StandardScaler())])

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValidationError):
            Pipeline([])

    def test_intermediate_non_transformer_rejected(self, blobs):
        X, y = blobs
        pipe = Pipeline([("model", LogisticRegression()),
                         ("scale", StandardScaler())])
        with pytest.raises(ValidationError):
            pipe.fit(X, y)

    def test_classes_exposed(self, blobs):
        X, y = blobs
        pipe = Pipeline([("m", KNeighborsClassifier(3))]).fit(X, y)
        np.testing.assert_array_equal(pipe.classes_, [0, 1])

    def test_clone_is_recursive(self, blobs):
        X, y = blobs
        pipe = Pipeline([("s", StandardScaler()),
                         ("m", LogisticRegression(C=3.0))])
        pipe.fit(X, y)
        copy = clone(pipe)
        assert copy.steps[1][1].C == 3.0
        assert not hasattr(copy.steps[0][1], "mean_")


class TestColumnTransformer:
    @pytest.fixture()
    def frame(self):
        return DataFrame({
            "num1": [1.0, 2.0, None, 4.0],
            "num2": [10.0, 20.0, 30.0, 40.0],
            "cat": ["a", "b", "a", "b"],
        })

    def test_mixed_blocks(self, frame):
        ct = ColumnTransformer([
            ("nums", Pipeline([("imp", SimpleImputer()),
                               ("sc", StandardScaler())]), ["num1", "num2"]),
            ("cats", OneHotEncoder(), "cat"),
        ])
        Z = ct.fit_transform(frame)
        assert Z.shape == (4, 4)
        assert np.all(np.isfinite(Z))

    def test_passthrough(self, frame):
        ct = ColumnTransformer([("keep", "passthrough", ["num2"])])
        Z = ct.fit_transform(frame)
        np.testing.assert_allclose(Z.ravel(), [10, 20, 30, 40])

    def test_drop(self, frame):
        ct = ColumnTransformer([
            ("keep", "passthrough", ["num2"]),
            ("gone", "drop", ["num1"]),
        ])
        assert ct.fit_transform(frame).shape == (4, 1)

    def test_all_dropped_rejected(self, frame):
        ct = ColumnTransformer([("gone", "drop", ["num1"])])
        ct.fit(frame)
        with pytest.raises(ValidationError):
            ct.transform(frame)

    def test_missing_column_raises_schema_error(self, frame):
        ct = ColumnTransformer([("x", "passthrough", ["nope"])])
        with pytest.raises(SchemaError):
            ct.fit(frame)

    def test_row_alignment_preserved(self, frame):
        """Output row i must correspond to input row i (provenance
        passes through encoding by position)."""
        ct = ColumnTransformer([("keep", "passthrough", ["num2"])])
        Z = ct.fit_transform(frame)
        assert Z[2, 0] == 30.0

    def test_accepts_plain_arrays(self, rng):
        X = rng.standard_normal((6, 2))
        ct = ColumnTransformer([("sc", StandardScaler(), [0, 1])])
        assert ct.fit_transform(X).shape == (6, 2)


class TestFeatureUnion:
    def test_concatenates_outputs(self, rng):
        X = rng.standard_normal((5, 2))
        union = FeatureUnion([
            ("identity", FunctionTransformer()),
            ("double", FunctionTransformer(lambda Z: Z * 2)),
        ])
        Z = union.fit_transform(X)
        assert Z.shape == (5, 4)
        np.testing.assert_allclose(Z[:, 2:], X * 2)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            FeatureUnion([])
