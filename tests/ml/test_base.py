"""Unit tests for the estimator protocol (params, clone, fitted state)."""

import numpy as np
import pytest

from repro.core.exceptions import NotFittedError
from repro.ml import LogisticRegression, Pipeline, StandardScaler, clone, is_fitted
from repro.ml.base import BaseEstimator, check_fitted


class TestParams:
    def test_get_params_reflects_init(self):
        model = LogisticRegression(C=2.0, max_iter=50)
        params = model.get_params()
        assert params["C"] == 2.0
        assert params["max_iter"] == 50

    def test_set_params_roundtrip(self):
        model = LogisticRegression()
        model.set_params(C=9.0)
        assert model.C == 9.0

    def test_set_unknown_param_rejected(self):
        with pytest.raises(ValueError):
            LogisticRegression().set_params(bogus=1)

    def test_repr_lists_params(self):
        text = repr(LogisticRegression(C=3.0))
        assert "LogisticRegression" in text and "C=3.0" in text


class TestClone:
    def test_clone_copies_params_not_state(self, blobs):
        X, y = blobs
        model = LogisticRegression(C=4.0).fit(X, y)
        copy = clone(model)
        assert copy.C == 4.0
        assert not is_fitted(copy)
        assert is_fitted(model)

    def test_clone_non_estimator_passthrough(self):
        assert clone("passthrough") == "passthrough"
        assert clone(3.5) == 3.5

    def test_clone_lists_and_tuples_recursively(self):
        cloned = clone([LogisticRegression(C=7.0), "drop"])
        assert cloned[0].C == 7.0
        assert cloned[1] == "drop"

    def test_clone_nested_pipeline(self):
        pipe = Pipeline([("s", StandardScaler()),
                         ("m", LogisticRegression(C=5.0))])
        copy = clone(pipe)
        assert copy.steps[0][1] is not pipe.steps[0][1]
        assert copy.steps[1][1].C == 5.0


class TestFittedState:
    def test_is_fitted_detects_trailing_underscore(self):
        class Dummy(BaseEstimator):
            def __init__(self):
                pass

        model = Dummy()
        assert not is_fitted(model)
        model.weights_ = np.zeros(3)
        assert is_fitted(model)

    def test_private_attributes_do_not_count(self):
        class Dummy(BaseEstimator):
            def __init__(self):
                self._cache = {}

        assert not is_fitted(Dummy())

    def test_check_fitted_raises(self):
        with pytest.raises(NotFittedError):
            check_fitted(LogisticRegression())
