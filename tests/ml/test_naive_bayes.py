"""Unit tests for Gaussian naive Bayes."""

import numpy as np
import pytest

from repro.datasets import make_blobs
from repro.ml import GaussianNB


class TestGaussianNB:
    def test_separable_blobs(self, blobs_split):
        X_train, y_train, X_test, y_test = blobs_split
        model = GaussianNB().fit(X_train, y_train)
        assert model.score(X_test, y_test) >= 0.9

    def test_class_priors_match_frequencies(self):
        X = np.vstack([np.zeros((30, 1)), np.ones((10, 1))])
        y = np.array([0] * 30 + [1] * 10)
        model = GaussianNB().fit(X, y)
        np.testing.assert_allclose(model.class_prior_, [0.75, 0.25])

    def test_per_class_means_estimated(self):
        X = np.vstack([np.full((20, 1), -3.0), np.full((20, 1), 3.0)])
        y = np.array([0] * 20 + [1] * 20)
        model = GaussianNB().fit(X, y)
        np.testing.assert_allclose(model.theta_.ravel(), [-3.0, 3.0])

    def test_proba_sums_to_one(self, blobs):
        X, y = blobs
        proba = GaussianNB().fit(X, y).predict_proba(X)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_var_smoothing_handles_constant_features(self):
        X = np.column_stack([np.ones(20), np.arange(20.0)])
        y = np.array([0] * 10 + [1] * 10)
        model = GaussianNB().fit(X, y)  # must not divide by zero
        assert model.score(X, y) == pytest.approx(1.0)

    def test_multiclass(self):
        X, y = make_blobs(150, centers=4, cluster_std=0.5, seed=9)
        model = GaussianNB().fit(X, y)
        assert model.score(X, y) >= 0.9
