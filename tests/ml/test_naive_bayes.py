"""Unit tests for Gaussian naive Bayes."""

import numpy as np
import pytest

from repro.datasets import make_blobs
from repro.ml import GaussianNB


class TestGaussianNB:
    def test_separable_blobs(self, blobs_split):
        X_train, y_train, X_test, y_test = blobs_split
        model = GaussianNB().fit(X_train, y_train)
        assert model.score(X_test, y_test) >= 0.9

    def test_class_priors_match_frequencies(self):
        X = np.vstack([np.zeros((30, 1)), np.ones((10, 1))])
        y = np.array([0] * 30 + [1] * 10)
        model = GaussianNB().fit(X, y)
        np.testing.assert_allclose(model.class_prior_, [0.75, 0.25])

    def test_per_class_means_estimated(self):
        X = np.vstack([np.full((20, 1), -3.0), np.full((20, 1), 3.0)])
        y = np.array([0] * 20 + [1] * 20)
        model = GaussianNB().fit(X, y)
        np.testing.assert_allclose(model.theta_.ravel(), [-3.0, 3.0])

    def test_proba_sums_to_one(self, blobs):
        X, y = blobs
        proba = GaussianNB().fit(X, y).predict_proba(X)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_var_smoothing_handles_constant_features(self):
        X = np.column_stack([np.ones(20), np.arange(20.0)])
        y = np.array([0] * 10 + [1] * 10)
        model = GaussianNB().fit(X, y)  # must not divide by zero
        assert model.score(X, y) == pytest.approx(1.0)

    def test_multiclass(self):
        X, y = make_blobs(150, centers=4, cluster_std=0.5, seed=9)
        model = GaussianNB().fit(X, y)
        assert model.score(X, y) >= 0.9

    def test_vectorized_jll_bit_identical_to_per_class_loop(self):
        """The broadcast/chunked ``_joint_log_likelihood`` must reproduce
        the original per-class loop bit for bit (same contiguous-axis
        reductions, same elementwise arithmetic)."""
        X, y = make_blobs(200, n_features=5, centers=3, seed=12)
        model = GaussianNB().fit(X, y)
        jll = model._joint_log_likelihood(X)
        reference = np.zeros((len(X), len(model.classes_)))
        for c in range(len(model.classes_)):
            log_det = np.sum(np.log(2.0 * np.pi * model.var_[c]))
            quad = np.sum((X - model.theta_[c]) ** 2 / model.var_[c], axis=1)
            reference[:, c] = np.log(model.class_prior_[c] + 1e-12) \
                - 0.5 * (log_det + quad)
        np.testing.assert_array_equal(jll, reference)

    def test_vectorized_jll_chunking_is_seamless(self):
        """Chunk boundaries (chunk < n_rows) must not change results."""
        X, y = make_blobs(64, n_features=3, centers=2, seed=13)
        model = GaussianNB().fit(X, y)
        whole = model._joint_log_likelihood(X)
        stitched = np.vstack([model._joint_log_likelihood(X[i:i + 7])
                              for i in range(0, len(X), 7)])
        np.testing.assert_array_equal(whole, stitched)


class TestPartialFit:
    def test_partial_fit_matches_batch_fit(self):
        X, y = make_blobs(90, n_features=3, centers=3, seed=4)
        batch = GaussianNB().fit(X, y)
        grown = GaussianNB().partial_fit(X[:30], y[:30])
        grown.partial_fit(X[30:60], y[30:60]).partial_fit(X[60:], y[60:])
        np.testing.assert_allclose(grown.theta_, batch.theta_, atol=1e-10)
        np.testing.assert_allclose(grown.var_, batch.var_, atol=1e-10)
        np.testing.assert_allclose(grown.class_prior_, batch.class_prior_)
        np.testing.assert_array_equal(grown.predict(X), batch.predict(X))

    def test_fit_then_partial_fit_continues(self):
        X, y = make_blobs(80, n_features=2, centers=2, seed=5)
        grown = GaussianNB().fit(X[:40], y[:40]).partial_fit(X[40:], y[40:])
        batch = GaussianNB().fit(X, y)
        np.testing.assert_allclose(grown.theta_, batch.theta_, atol=1e-10)
        np.testing.assert_allclose(grown.var_, batch.var_, atol=1e-10)

    def test_new_classes_widen_statistics(self):
        X, y = make_blobs(120, n_features=2, centers=3, seed=6)
        first = y < 2
        grown = GaussianNB().partial_fit(X[first], y[first])
        assert len(grown.classes_) == 2
        grown.partial_fit(X[~first], y[~first])
        assert len(grown.classes_) == 3
        batch = GaussianNB().fit(X, y)
        np.testing.assert_allclose(grown.theta_, batch.theta_, atol=1e-10)
        np.testing.assert_array_equal(grown.predict(X), batch.predict(X))

    def test_feature_mismatch_rejected(self):
        from repro.core.exceptions import ValidationError

        X, y = make_blobs(30, n_features=2, centers=2, seed=7)
        model = GaussianNB().fit(X, y)
        with pytest.raises(ValidationError):
            model.partial_fit(np.ones((4, 3)), np.array([0, 1, 0, 1]))
