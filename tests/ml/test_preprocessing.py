"""Unit tests for preprocessing transformers."""

import numpy as np
import pytest

from repro.core.exceptions import NotFittedError, ValidationError
from repro.ml import (
    FunctionTransformer,
    KNNImputer,
    LabelEncoder,
    MinMaxScaler,
    OneHotEncoder,
    SimpleImputer,
    StandardScaler,
)


class TestStandardScaler:
    def test_zero_mean_unit_variance(self, rng):
        X = rng.normal(5.0, 3.0, (100, 2))
        Z = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(Z.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(Z.std(axis=0), 1.0, atol=1e-9)

    def test_constant_column_passes_through(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        Z = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(Z[:, 0], 0.0)

    def test_inverse_transform_roundtrip(self, rng):
        X = rng.normal(0, 2, (20, 3))
        scaler = StandardScaler().fit(X)
        np.testing.assert_allclose(
            scaler.inverse_transform(scaler.transform(X)), X, atol=1e-9)

    def test_nan_aware_statistics(self):
        X = np.array([[1.0], [np.nan], [3.0]])
        scaler = StandardScaler().fit(X)
        assert scaler.mean_[0] == 2.0

    def test_transform_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(np.ones((2, 2)))


class TestMinMaxScaler:
    def test_maps_to_unit_interval(self, rng):
        X = rng.uniform(-5, 5, (50, 2))
        Z = MinMaxScaler().fit_transform(X)
        assert Z.min() == pytest.approx(0.0)
        assert Z.max() == pytest.approx(1.0)

    def test_custom_range(self):
        X = np.array([[0.0], [10.0]])
        Z = MinMaxScaler(feature_range=(-1, 1)).fit_transform(X)
        np.testing.assert_allclose(Z.ravel(), [-1.0, 1.0])

    def test_invalid_range_rejected(self):
        with pytest.raises(ValidationError):
            MinMaxScaler(feature_range=(1, 0)).fit(np.ones((2, 1)))


class TestOneHotEncoder:
    def test_basic_encoding(self):
        X = np.array([["a"], ["b"], ["a"]], dtype=object)
        Z = OneHotEncoder().fit_transform(X)
        np.testing.assert_array_equal(Z, [[1, 0], [0, 1], [1, 0]])

    def test_unknown_category_ignored(self):
        enc = OneHotEncoder().fit(np.array([["a"]], dtype=object))
        Z = enc.transform(np.array([["zzz"]], dtype=object))
        np.testing.assert_array_equal(Z, [[0]])

    def test_unknown_category_error_mode(self):
        enc = OneHotEncoder(handle_unknown="error").fit(
            np.array([["a"]], dtype=object))
        with pytest.raises(ValidationError):
            enc.transform(np.array([["zzz"]], dtype=object))

    def test_none_becomes_null_category(self):
        X = np.array([["a"], [None]], dtype=object)
        enc = OneHotEncoder().fit(X)
        assert "<null>" in enc.categories_[0]

    def test_multi_column(self):
        X = np.array([["a", "x"], ["b", "y"]], dtype=object)
        Z = OneHotEncoder().fit_transform(X)
        assert Z.shape == (2, 4)

    def test_feature_names(self):
        enc = OneHotEncoder().fit(np.array([["a"], ["b"]], dtype=object))
        assert enc.feature_names(["col"]) == ["col=a", "col=b"]


class TestSimpleImputer:
    def test_mean(self):
        X = np.array([[1.0], [np.nan], [3.0]])
        Z = SimpleImputer("mean").fit_transform(X)
        assert Z[1, 0] == 2.0

    def test_median(self):
        X = np.array([[1.0], [np.nan], [2.0], [100.0]])
        Z = SimpleImputer("median").fit_transform(X)
        assert Z[1, 0] == 2.0

    def test_most_frequent(self):
        X = np.array([[1.0], [1.0], [2.0], [np.nan]])
        Z = SimpleImputer("most_frequent").fit_transform(X)
        assert Z[3, 0] == 1.0

    def test_constant(self):
        X = np.array([[np.nan]])
        Z = SimpleImputer("constant", fill_value=-7.0).fit_transform(X)
        assert Z[0, 0] == -7.0

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValidationError):
            SimpleImputer("magic")

    def test_no_missing_is_identity(self, rng):
        X = rng.standard_normal((10, 3))
        np.testing.assert_array_equal(SimpleImputer().fit_transform(X), X)


class TestKNNImputer:
    def test_uses_nearest_donor(self):
        X = np.array([
            [0.0, 0.0],
            [0.1, 0.2],
            [10.0, 10.0],
            [0.05, np.nan],
        ])
        Z = KNNImputer(n_neighbors=2).fit_transform(X)
        assert Z[3, 1] == pytest.approx(0.1)  # mean of rows 0 and 1

    def test_complete_rows_untouched(self, rng):
        X = rng.standard_normal((15, 2))
        X[3, 0] = np.nan
        Z = KNNImputer(n_neighbors=3).fit_transform(X)
        np.testing.assert_array_equal(np.delete(Z, 3, axis=0),
                                      np.delete(X, 3, axis=0))

    def test_all_imputed_values_finite(self, rng):
        X = rng.standard_normal((30, 3))
        X[rng.uniform(size=X.shape) < 0.2] = np.nan
        Z = KNNImputer().fit_transform(X)
        assert np.all(np.isfinite(Z))


class TestLabelEncoder:
    def test_roundtrip(self):
        enc = LabelEncoder().fit(["b", "a", "b"])
        codes = enc.transform(["a", "b"])
        np.testing.assert_array_equal(codes, [0, 1])
        np.testing.assert_array_equal(enc.inverse_transform(codes), ["a", "b"])

    def test_unseen_label_rejected(self):
        enc = LabelEncoder().fit(["a"])
        with pytest.raises(ValidationError):
            enc.transform(["q"])


class TestFunctionTransformer:
    def test_applies_function(self):
        ft = FunctionTransformer(lambda X: X * 2)
        np.testing.assert_array_equal(
            ft.fit_transform(np.ones((2, 2))), np.full((2, 2), 2.0))

    def test_identity_by_default(self):
        X = np.ones((2, 2))
        assert FunctionTransformer().fit_transform(X) is X
