"""Unit tests for splitting and cross-validation."""

import numpy as np
import pytest

from repro.core.exceptions import ValidationError
from repro.ml import KFold, KNeighborsClassifier, cross_val_score, train_test_split


class TestTrainTestSplit:
    def test_sizes(self, blobs):
        X, y = blobs
        X_train, X_test, y_train, y_test = train_test_split(
            X, y, test_size=0.25, seed=0)
        assert len(X_test) == 30
        assert len(X_train) == 90
        assert len(y_train) == 90

    def test_disjoint_and_complete(self, blobs):
        X, y = blobs
        X_train, X_test = train_test_split(X, test_size=0.3, seed=1)
        assert len(X_train) + len(X_test) == len(X)

    def test_seed_reproducible(self, blobs):
        X, y = blobs
        a = train_test_split(X, y, test_size=0.2, seed=5)
        b = train_test_split(X, y, test_size=0.2, seed=5)
        np.testing.assert_array_equal(a[1], b[1])

    def test_stratified_preserves_proportions(self):
        y = np.array([0] * 80 + [1] * 20)
        X = np.arange(100.0)[:, None]
        _, _, _, y_test = train_test_split(X, y, test_size=0.25, seed=2,
                                           stratify=y)
        assert np.mean(y_test == 1) == pytest.approx(0.2, abs=0.05)

    def test_degenerate_test_size_rejected(self, blobs):
        X, y = blobs
        with pytest.raises(ValidationError):
            train_test_split(X, y, test_size=1.0)


class TestKFold:
    def test_folds_partition_data(self):
        X = np.arange(23.0)[:, None]
        seen = []
        for train_idx, test_idx in KFold(5, seed=0).split(X):
            assert set(train_idx).isdisjoint(test_idx)
            seen.extend(test_idx.tolist())
        assert sorted(seen) == list(range(23))

    def test_too_few_rows_rejected(self):
        with pytest.raises(ValidationError):
            list(KFold(5).split(np.ones((3, 1))))

    def test_n_splits_minimum(self):
        with pytest.raises(ValidationError):
            KFold(1)


class TestCrossValScore:
    def test_scores_shape_and_range(self, blobs):
        X, y = blobs
        scores = cross_val_score(KNeighborsClassifier(3), X, y, cv=4, seed=0)
        assert scores.shape == (4,)
        assert np.all((scores >= 0) & (scores <= 1))

    def test_good_model_scores_high(self, blobs):
        X, y = blobs
        scores = cross_val_score(KNeighborsClassifier(3), X, y, cv=4, seed=0)
        assert scores.mean() >= 0.9
