"""Unit tests for linear models."""

import numpy as np
import pytest

from repro.core.exceptions import NotFittedError, ValidationError
from repro.datasets import make_blobs, make_linear_separable
from repro.ml import LinearRegression, LinearSVC, LogisticRegression


class TestLogisticRegression:
    def test_separable_data_fits_perfectly(self):
        X, y, _ = make_linear_separable(100, n_features=4, seed=0)
        model = LogisticRegression(C=10.0).fit(X, y)
        assert model.score(X, y) >= 0.98

    def test_predict_proba_rows_sum_to_one(self, blobs):
        X, y = blobs
        proba = LogisticRegression().fit(X, y).predict_proba(X)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_multiclass(self):
        X, y = make_blobs(150, n_features=3, centers=3, cluster_std=0.8, seed=1)
        model = LogisticRegression().fit(X, y)
        assert model.score(X, y) >= 0.9
        assert model.predict_proba(X).shape == (150, 3)

    def test_string_labels_roundtrip(self, blobs):
        X, y = blobs
        labels = np.where(y == 0, "neg", "pos")
        model = LogisticRegression().fit(X, labels)
        assert set(model.predict(X)) <= {"neg", "pos"}

    def test_stronger_regularization_shrinks_weights(self, blobs):
        X, y = blobs
        big_c = LogisticRegression(C=100.0).fit(X, y)
        small_c = LogisticRegression(C=0.001).fit(X, y)
        assert np.linalg.norm(small_c.coef_) < np.linalg.norm(big_c.coef_)

    def test_sample_weight_zero_removes_points(self, blobs):
        X, y = blobs
        # Zero-weighting the second half must equal training on the first.
        weights = np.ones(len(y))
        weights[60:] = 0.0
        weighted = LogisticRegression().fit(X, y, sample_weight=weights)
        subset = LogisticRegression().fit(X[:60], y[:60])
        np.testing.assert_allclose(weighted.coef_, subset.coef_, atol=1e-3)

    def test_predict_before_fit_raises(self, blobs):
        with pytest.raises(NotFittedError):
            LogisticRegression().predict(blobs[0])

    def test_single_class_rejected(self):
        with pytest.raises(ValidationError):
            LogisticRegression().fit([[1.0], [2.0]], [1, 1])

    def test_nan_features_rejected(self):
        with pytest.raises(ValidationError):
            LogisticRegression().fit([[np.nan], [1.0]], [0, 1])


class TestWarmStart:
    def test_logistic_warm_start_matches_cold_solution(self, blobs):
        X, y = blobs
        cold = LogisticRegression(C=2.0).fit(X, y)
        warm = LogisticRegression(C=2.0, warm_start=True).fit(X, y)
        # First warm fit has no previous solution: identical start,
        # identical solve.
        np.testing.assert_array_equal(warm.coef_, cold.coef_)
        # Refit on the same data continues from the optimum — few extra
        # iterations, same solution up to the solver tolerance.
        warm.fit(X, y)
        assert warm.n_iter_ <= cold.n_iter_
        np.testing.assert_allclose(warm.coef_, cold.coef_, atol=1e-4)
        assert warm.grad_norm_ <= warm.tol * 10

    def test_logistic_warm_start_ignored_on_class_change(self, blobs):
        X, y = blobs
        warm = LogisticRegression(warm_start=True).fit(X, y)
        X3, y3 = make_blobs(90, n_features=X.shape[1], centers=3, seed=6)
        # Class set changed: the stale coefficients cannot seed the new
        # shape, so fit falls back to the zero start (and must not raise).
        warm.fit(X3, y3)
        assert warm.coef_.shape == (3, X.shape[1])

    def test_svc_warm_start_matches_cold_solution(self, blobs):
        X, y = blobs
        cold = LinearSVC(C=0.5).fit(X, y)
        warm = LinearSVC(C=0.5, warm_start=True).fit(X, y)
        np.testing.assert_array_equal(warm.coef_, cold.coef_)
        warm.fit(X, y)
        assert warm.n_iter_ <= cold.n_iter_
        np.testing.assert_allclose(warm.coef_, cold.coef_, atol=1e-4)

    def test_warm_start_default_off_is_unchanged(self, blobs):
        X, y = blobs
        first = LogisticRegression().fit(X, y)
        refit = LogisticRegression().fit(X, y)
        np.testing.assert_array_equal(first.coef_, refit.coef_)
        assert first.n_iter_ == refit.n_iter_


class TestLinearRegression:
    def test_recovers_exact_linear_relationship(self, rng):
        X = rng.standard_normal((80, 3))
        w = np.array([2.0, -1.0, 0.5])
        y = X @ w + 3.0
        model = LinearRegression().fit(X, y)
        np.testing.assert_allclose(model.coef_, w, atol=1e-8)
        assert model.intercept_ == pytest.approx(3.0, abs=1e-8)

    def test_r2_score_is_one_for_exact_fit(self, rng):
        X = rng.standard_normal((50, 2))
        y = X[:, 0] * 2
        assert LinearRegression().fit(X, y).score(X, y) == pytest.approx(1.0)

    def test_ridge_shrinks_towards_zero(self, rng):
        X = rng.standard_normal((40, 2))
        y = X[:, 0]
        plain = LinearRegression().fit(X, y)
        ridge = LinearRegression(alpha=100.0).fit(X, y)
        assert np.linalg.norm(ridge.coef_) < np.linalg.norm(plain.coef_)

    def test_intercept_not_regularized(self, rng):
        X = rng.standard_normal((60, 1))
        y = np.full(60, 10.0)
        model = LinearRegression(alpha=1000.0).fit(X, y)
        assert model.intercept_ == pytest.approx(10.0, abs=0.2)

    def test_sample_weights(self, rng):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0.0, 1.0, 2.0, 100.0])
        weights = np.array([1.0, 1.0, 1.0, 0.0])
        model = LinearRegression().fit(X, y, sample_weight=weights)
        assert model.predict(np.array([[4.0]]))[0] == pytest.approx(4.0, abs=1e-6)


class TestLinearSVC:
    def test_separable_data(self):
        X, y, _ = make_linear_separable(100, n_features=3, seed=2)
        model = LinearSVC(C=10.0).fit(X, y)
        assert model.score(X, y) >= 0.98

    def test_decision_function_sign_matches_prediction(self, blobs):
        X, y = blobs
        model = LinearSVC().fit(X, y)
        scores = model.decision_function(X)
        preds = model.predict(X)
        assert np.all((scores > 0) == (preds == model.classes_[1]))

    def test_multiclass_rejected(self):
        X, y = make_blobs(60, centers=3, seed=3)
        with pytest.raises(ValidationError):
            LinearSVC().fit(X, y)

    def test_clone_roundtrip_params(self):
        from repro.ml import clone

        model = LinearSVC(C=2.5, max_iter=77)
        copy = clone(model)
        assert copy.C == 2.5 and copy.max_iter == 77
        assert not hasattr(copy, "coef_")
