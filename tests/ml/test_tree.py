"""Unit tests for the decision tree."""

import numpy as np
import pytest

from repro.core.exceptions import ValidationError
from repro.datasets import make_blobs, make_moons
from repro.ml import DecisionTreeClassifier


class TestDecisionTree:
    def test_memorizes_unbounded(self, blobs):
        X, y = blobs
        model = DecisionTreeClassifier().fit(X, y)
        assert model.score(X, y) == 1.0

    def test_max_depth_respected(self, blobs):
        X, y = blobs
        model = DecisionTreeClassifier(max_depth=2).fit(X, y)
        assert model.depth() <= 2

    def test_depth_zero_tree_is_single_leaf(self, blobs):
        X, y = blobs
        model = DecisionTreeClassifier(max_depth=0).fit(X, y)
        assert model.n_leaves() == 1

    def test_xor_pattern_needs_depth_two(self):
        X = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=float)
        X = np.repeat(X, 10, axis=0)
        y = (X[:, 0] != X[:, 1]).astype(int)
        shallow = DecisionTreeClassifier(max_depth=1).fit(X, y)
        deep = DecisionTreeClassifier(max_depth=2).fit(X, y)
        assert shallow.score(X, y) < deep.score(X, y)
        assert deep.score(X, y) == 1.0

    def test_nonlinear_moons(self):
        X, y = make_moons(300, noise=0.1, seed=4)
        model = DecisionTreeClassifier(max_depth=6).fit(X[:200], y[:200])
        assert model.score(X[200:], y[200:]) >= 0.85

    def test_predict_proba_from_leaf_counts(self):
        X = np.array([[0.0], [0.0], [10.0]])
        y = np.array([0, 1, 1])
        model = DecisionTreeClassifier(max_depth=1).fit(X, y)
        proba = model.predict_proba(np.array([[0.0]]))
        np.testing.assert_allclose(proba[0], [0.5, 0.5])

    def test_min_impurity_decrease_prunes(self, blobs):
        X, y = blobs
        strict = DecisionTreeClassifier(min_impurity_decrease=0.4).fit(X, y)
        loose = DecisionTreeClassifier().fit(X, y)
        assert strict.n_leaves() <= loose.n_leaves()

    def test_min_samples_split_validated(self, blobs):
        X, y = blobs
        with pytest.raises(ValidationError):
            DecisionTreeClassifier(min_samples_split=1).fit(X, y)

    def test_multiclass(self):
        X, y = make_blobs(120, centers=3, cluster_std=0.6, seed=5)
        model = DecisionTreeClassifier(max_depth=5).fit(X, y)
        assert model.score(X, y) >= 0.95

    def test_constant_features_yield_single_leaf(self):
        X = np.ones((10, 2))
        y = np.array([0, 1] * 5)
        model = DecisionTreeClassifier().fit(X, y)
        assert model.n_leaves() == 1
