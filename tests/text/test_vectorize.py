"""Unit tests for the text vectorizers."""

import numpy as np
import pytest

from repro.core.exceptions import ValidationError
from repro.text import HashingVectorizer, SentenceEmbedder, TfidfVectorizer


class TestHashingVectorizer:
    def test_deterministic_across_instances(self):
        texts = ["alpha beta gamma", "delta epsilon"]
        a = HashingVectorizer(n_features=64).fit(texts).transform(texts)
        b = HashingVectorizer(n_features=64).fit(texts).transform(texts)
        np.testing.assert_array_equal(a, b)

    def test_l2_normalized_rows(self):
        Z = HashingVectorizer(norm="l2").fit_transform(["some words here"])
        assert np.linalg.norm(Z[0]) == pytest.approx(1.0)

    def test_empty_text_is_zero_vector(self):
        Z = HashingVectorizer().fit_transform([""])
        assert np.all(Z == 0)

    def test_none_treated_as_empty(self):
        Z = HashingVectorizer().fit_transform([None])
        assert np.all(Z == 0)

    def test_same_text_same_vector(self):
        Z = HashingVectorizer().fit_transform(["repeat me", "repeat me"])
        np.testing.assert_array_equal(Z[0], Z[1])

    def test_bigrams_add_features(self):
        uni = HashingVectorizer(ngram_range=(1, 1), norm=None)
        bi = HashingVectorizer(ngram_range=(1, 2), norm=None)
        text = ["one two three"]
        assert np.abs(bi.fit_transform(text)).sum() > \
            np.abs(uni.fit_transform(text)).sum()

    def test_unknown_norm_rejected(self):
        with pytest.raises(ValidationError):
            HashingVectorizer(norm="l3").fit_transform(["x"])


class TestTfidfVectorizer:
    def test_vocabulary_built_from_corpus(self):
        vec = TfidfVectorizer().fit(["apple banana", "apple cherry"])
        assert "apple" in vec.vocabulary_
        assert "banana" in vec.vocabulary_

    def test_rare_words_weigh_more(self):
        corpus = ["common rare"] + ["common boring"] * 9
        vec = TfidfVectorizer(drop_stopwords=False).fit(corpus)
        Z = vec.transform(["common rare"])
        rare_col = vec.vocabulary_["rare"]
        common_col = vec.vocabulary_["common"]
        assert Z[0, rare_col] > Z[0, common_col]

    def test_max_features_truncates(self):
        vec = TfidfVectorizer(max_features=2).fit(
            ["a b c d e aaa bbb ccc"] * 3)
        assert len(vec.vocabulary_) == 2

    def test_min_df_filters(self):
        vec = TfidfVectorizer(min_df=2, drop_stopwords=False).fit(
            ["once", "twice twice-more", "twice twice-more"])
        assert "once" not in vec.vocabulary_

    def test_unseen_words_ignored(self):
        vec = TfidfVectorizer().fit(["known words"])
        Z = vec.transform(["totally novel input"])
        assert np.all(Z == 0)


class TestSentenceEmbedder:
    def test_output_shape_and_normalization(self):
        emb = SentenceEmbedder(dim=16).fit(["a sentence"])
        Z = emb.transform(["first text", "second text"])
        assert Z.shape == (2, 16)
        np.testing.assert_allclose(np.linalg.norm(Z, axis=1), 1.0, atol=1e-9)

    def test_similar_texts_closer_than_different(self):
        emb = SentenceEmbedder(dim=64).fit(["init"])
        Z = emb.transform([
            "excellent outstanding superb work quality",
            "excellent outstanding superb work effort",
            "terrible failure disappointing sloppy mess",
        ])
        sim_close = Z[0] @ Z[1]
        sim_far = Z[0] @ Z[2]
        assert sim_close > sim_far

    def test_seed_controls_projection(self):
        a = SentenceEmbedder(dim=8, seed=1).fit(["x"]).transform(["hello"])
        b = SentenceEmbedder(dim=8, seed=2).fit(["x"]).transform(["hello"])
        assert not np.allclose(a, b)

    def test_column_input_accepted(self):
        from repro.dataframe import Column

        emb = SentenceEmbedder(dim=8).fit(Column(["a", "b"]))
        Z = emb.transform(Column(["some text", None]))
        assert Z.shape == (2, 8)
