"""Unit tests for tokenization."""

from repro.text import tokenize
from repro.text.tokenize import STOPWORDS


class TestTokenize:
    def test_basic_split(self):
        assert tokenize("Hello, world!") == ["hello", "world"]

    def test_preserves_apostrophes_and_digits(self):
        assert tokenize("don't stop 42") == ["don't", "stop", "42"]

    def test_none_yields_empty(self):
        assert tokenize(None) == []

    def test_case_preserved_when_disabled(self):
        assert tokenize("Hello World", lowercase=False) == ["Hello", "World"]
        assert tokenize("Hello World", lowercase=True) == ["hello", "world"]

    def test_stopwords_removed(self):
        tokens = tokenize("the cat and the dog", drop_stopwords=True)
        assert tokens == ["cat", "dog"]

    def test_stopword_list_is_lowercase(self):
        assert all(w == w.lower() for w in STOPWORDS)
