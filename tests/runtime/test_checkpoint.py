"""Durable checkpoint/resume: store semantics, corruption handling,
loop wiring, and the kill-the-driver acceptance scenarios.

The subprocess tests share one driver script (written to ``tmp_path``)
so the model/strategy callables fingerprint identically across the
killed run, the reference run, and the resumed run.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.exceptions import ValidationError
from repro.datasets import make_blobs
from repro.importance import MonteCarloShapley, Utility, leave_one_out
from repro.importance.banzhaf import DataBanzhaf
from repro.importance.beta_shapley import BetaShapley
from repro.ml import LogisticRegression
from repro.observe import Observer
from repro.runtime import (
    CHECKPOINT_SCHEMA,
    CheckpointStore,
    Checkpointable,
    FingerprintCache,
    LoopCheckpointer,
    Runtime,
    resolve_checkpoint_store,
)

SRC = str(Path(__file__).resolve().parents[2] / "src")


# --------------------------------------------------------------------------
# store semantics
# --------------------------------------------------------------------------

class TestCheckpointStore:
    def test_write_load_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        record = store.write("demo", {"completed": 3, "x": [1.5.hex()]})
        assert record.seq == 0
        loaded = store.load_latest("demo")
        assert loaded.payload == {"completed": 3, "x": [1.5.hex()]}
        assert loaded.seq == 0

    def test_newest_record_wins(self, tmp_path):
        store = CheckpointStore(tmp_path)
        for i in range(3):
            store.write("demo", {"completed": i})
        assert store.load_latest("demo").payload["completed"] == 2

    def test_prunes_to_keep(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=2)
        for i in range(5):
            store.write("demo", {"completed": i})
        assert len(store) == 2
        assert store.load_latest("demo").payload["completed"] == 4

    def test_kind_filter(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.write("a", {"completed": 1})
        store.write("b", {"completed": 2})
        assert store.load_latest("a").payload["completed"] == 1
        assert store.load_latest("b").payload["completed"] == 2

    def test_clear(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.write("demo", {"completed": 1})
        store.clear()
        assert len(store) == 0
        assert store.load_latest("demo") is None

    def test_numpy_payload_coerced(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.write("demo", {"completed": np.int64(2),
                             "ids": np.arange(3)})
        payload = store.load_latest("demo").payload
        assert payload["completed"] == 2
        assert payload["ids"] == [0, 1, 2]

    def test_invalid_keep_rejected(self, tmp_path):
        with pytest.raises(ValidationError):
            CheckpointStore(tmp_path, keep=0)

    def test_resolve(self, tmp_path):
        assert resolve_checkpoint_store(None) is None
        assert resolve_checkpoint_store(False) is None
        store = resolve_checkpoint_store(tmp_path)
        assert isinstance(store, CheckpointStore)
        assert resolve_checkpoint_store(store) is store
        with pytest.raises(ValidationError):
            resolve_checkpoint_store(42)


class TestCorruptionHandling:
    def _store_with_records(self, tmp_path, n=3):
        store = CheckpointStore(tmp_path, keep=n)
        for i in range(n):
            store.write("demo", {"completed": i})
        return store

    def test_truncated_record_falls_back(self, tmp_path):
        store = self._store_with_records(tmp_path)
        newest = store.record_paths()[-1]
        newest.write_bytes(newest.read_bytes()[: len(newest.read_bytes()) // 2])
        obs = Observer()
        record = store.load_latest("demo", observer=obs)
        assert record.payload["completed"] == 1  # last good record
        metrics = obs.as_dict()["metrics"]
        assert metrics["checkpoint.corrupt_records"] == 1
        events = [e for e in obs.as_dict()["events"]
                  if e["kind"] == "executor.checkpoint_corrupt"]
        assert len(events) == 1
        assert events[0]["path"] == str(newest)

    def test_hash_mismatch_detected(self, tmp_path):
        store = self._store_with_records(tmp_path)
        newest = store.record_paths()[-1]
        envelope = json.loads(newest.read_text())
        envelope["payload"] = json.dumps({"completed": 999})  # tampered
        newest.write_text(json.dumps(envelope))
        assert store.load_latest("demo").payload["completed"] == 1

    def test_unknown_schema_skipped(self, tmp_path):
        store = self._store_with_records(tmp_path)
        newest = store.record_paths()[-1]
        envelope = json.loads(newest.read_text())
        envelope["schema"] = CHECKPOINT_SCHEMA + 1
        newest.write_text(json.dumps(envelope))
        assert store.load_latest("demo").payload["completed"] == 1

    def test_all_corrupt_returns_none(self, tmp_path):
        store = self._store_with_records(tmp_path)
        for path in store.record_paths():
            path.write_text("not json at all")
        obs = Observer()
        assert store.load_latest("demo", observer=obs) is None
        assert obs.as_dict()["metrics"]["checkpoint.corrupt_records"] == 3


# --------------------------------------------------------------------------
# the loop driver
# --------------------------------------------------------------------------

class TestLoopCheckpointer:
    def test_cadence(self, tmp_path):
        ckpt = LoopCheckpointer(tmp_path, kind="demo", identity="id",
                                every=3)
        state = {"completed": 0}
        ckpt.arm(lambda: dict(state))
        for i in range(1, 8):
            state["completed"] = i
            ckpt.maybe_flush(i)
        # first flush at 1 (nothing flushed yet), then 4, then 7
        assert ckpt.store.load_latest("demo").payload["completed"] == 7
        assert len(ckpt.store) == 3

    def test_flush_dedups_unchanged_state(self, tmp_path):
        ckpt = LoopCheckpointer(tmp_path, kind="demo", identity="id")
        ckpt.arm(lambda: {"completed": 5})
        ckpt.flush()
        ckpt.flush()
        assert len(ckpt.store) == 1

    def test_identity_mismatch_rejected(self, tmp_path):
        ckpt = LoopCheckpointer(tmp_path, kind="demo", identity="job-a")
        ckpt.arm(lambda: {"completed": 1})
        ckpt.flush()
        other = LoopCheckpointer(None, kind="demo", identity="job-b",
                                 resume_from=tmp_path)
        with pytest.raises(ValidationError, match="different job"):
            other.resume()

    def test_resume_accounting(self, tmp_path):
        obs = Observer()
        ckpt = LoopCheckpointer(tmp_path, kind="demo", identity="id")
        ckpt.arm(lambda: {"completed": 4})
        ckpt.flush()
        resumed = LoopCheckpointer(None, kind="demo", identity="id",
                                   observer=obs, resume_from=tmp_path)
        payload = resumed.resume()
        assert payload["completed"] == 4
        resumed.record_skipped(completed=4, total=10)
        data = obs.as_dict()
        assert data["metrics"]["checkpoint.restores"] == 1
        events = [e for e in data["events"]
                  if e["kind"] == "checkpoint.resume"]
        assert events[0]["completed"] == 4 and events[0]["total"] == 10

    def test_invalid_cadence_rejected(self, tmp_path):
        with pytest.raises(ValidationError):
            LoopCheckpointer(tmp_path, kind="demo", identity="id", every=0)

    def test_protocol_is_runtime_checkable(self):
        class Loop:
            checkpoint_kind = "demo"

            def checkpoint_state(self):
                return {"completed": 0}

            def restore_state(self, state):
                pass

        assert isinstance(Loop(), Checkpointable)
        assert not isinstance(object(), Checkpointable)


# --------------------------------------------------------------------------
# estimator wiring (in-process, fast)
# --------------------------------------------------------------------------

def _utility(blobs_split, backend="serial"):
    X_train, y_train, X_valid, y_valid = blobs_split
    return Utility(LogisticRegression(max_iter=40), X_train[:24],
                   y_train[:24], X_valid, y_valid,
                   runtime=Runtime(backend=backend,
                                   cache=FingerprintCache()))


def _keep_only_oldest(path):
    store = CheckpointStore(path)
    for record in store.record_paths()[1:]:
        record.unlink()


class TestEstimatorResume:
    """Partial resume (newest records deleted to simulate a mid-run
    kill) reproduces the uninterrupted run hex-exactly: scores, call
    counts, and cache keys."""

    def _compare(self, blobs_split, make_estimator, tmp_path):
        ref_utility = _utility(blobs_split)
        ref = make_estimator().score(ref_utility)

        full_utility = _utility(blobs_split)
        full = make_estimator(checkpoint=tmp_path).score(full_utility)
        assert np.array_equal(ref, full)

        _keep_only_oldest(tmp_path)
        resumed_utility = _utility(blobs_split)
        resumed = make_estimator(resume_from=tmp_path).score(resumed_utility)
        assert [v.hex() for v in resumed] == [v.hex() for v in ref]
        assert resumed_utility.calls == ref_utility.calls
        assert sorted(resumed_utility.runtime.cache.keys()) == \
            sorted(ref_utility.runtime.cache.keys())

    def test_shapley_mc(self, blobs_split, tmp_path):
        def make(**kw):
            return MonteCarloShapley(n_permutations=6, seed=11,
                                     checkpoint_every=2, **kw)
        self._compare(blobs_split, make, tmp_path)

    def test_shapley_mc_with_convergence(self, blobs_split, tmp_path):
        def make(**kw):
            return MonteCarloShapley(n_permutations=8, seed=11,
                                     convergence_tol=1e-6,
                                     convergence_window=2,
                                     checkpoint_every=2, **kw)
        self._compare(blobs_split, make, tmp_path)

    def test_banzhaf(self, blobs_split, tmp_path):
        def make(**kw):
            return DataBanzhaf(n_samples=12, seed=5, checkpoint_every=4,
                               **kw)
        self._compare(blobs_split, make, tmp_path)

    def test_beta_shapley(self, blobs_split, tmp_path):
        def make(**kw):
            return BetaShapley(n_permutations=6, seed=9,
                               checkpoint_every=2, **kw)
        self._compare(blobs_split, make, tmp_path)

    def test_loo(self, blobs_split, tmp_path):
        ref_utility = _utility(blobs_split)
        ref = leave_one_out(ref_utility)
        full_utility = _utility(blobs_split)
        leave_one_out(full_utility, checkpoint=tmp_path, checkpoint_every=8)
        _keep_only_oldest(tmp_path)
        resumed_utility = _utility(blobs_split)
        resumed = leave_one_out(resumed_utility, resume_from=tmp_path)
        assert [v.hex() for v in resumed] == [v.hex() for v in ref]
        assert resumed_utility.calls == ref_utility.calls

    def test_resume_across_backends(self, blobs_split, tmp_path):
        """A serial run's checkpoint resumed on thread and process
        backends yields hex-identical scores and call counts."""
        ref_utility = _utility(blobs_split)
        ref = MonteCarloShapley(n_permutations=6, seed=11).score(ref_utility)
        _utility(blobs_split)  # noqa: F841 - symmetry with _compare
        full_utility = _utility(blobs_split)
        MonteCarloShapley(n_permutations=6, seed=11, checkpoint=tmp_path,
                          checkpoint_every=2).score(full_utility)
        _keep_only_oldest(tmp_path)
        for backend in ("thread", "process"):
            utility = _utility(blobs_split, backend=backend)
            try:
                resumed = MonteCarloShapley(
                    n_permutations=6, seed=11,
                    resume_from=tmp_path).score(utility)
                assert [v.hex() for v in resumed] == [v.hex() for v in ref]
                assert utility.calls == ref_utility.calls
            finally:
                utility.runtime.close()

    def test_resume_with_changed_fault_policy(self, blobs_split, tmp_path):
        ref_utility = _utility(blobs_split)
        ref = MonteCarloShapley(n_permutations=6, seed=11).score(ref_utility)
        full_utility = _utility(blobs_split)
        MonteCarloShapley(n_permutations=6, seed=11, checkpoint=tmp_path,
                          checkpoint_every=2).score(full_utility)
        _keep_only_oldest(tmp_path)
        X_train, y_train, X_valid, y_valid = blobs_split
        utility = Utility(
            LogisticRegression(max_iter=40), X_train[:24], y_train[:24],
            X_valid, y_valid,
            runtime=Runtime(cache=FingerprintCache(),
                            faults={"retries": 4,
                                    "on_worker_failure": "serial"}))
        resumed = MonteCarloShapley(n_permutations=6, seed=11,
                                    resume_from=tmp_path).score(utility)
        assert [v.hex() for v in resumed] == [v.hex() for v in ref]

    def test_corrupt_checkpoint_falls_back(self, blobs_split, tmp_path):
        ref_utility = _utility(blobs_split)
        ref = MonteCarloShapley(n_permutations=6, seed=11).score(ref_utility)
        full_utility = _utility(blobs_split)
        MonteCarloShapley(n_permutations=6, seed=11, checkpoint=tmp_path,
                          checkpoint_every=2).score(full_utility)
        store = CheckpointStore(tmp_path)
        newest = store.record_paths()[-1]
        newest.write_bytes(newest.read_bytes()[:40])  # torn write
        obs = Observer()
        utility = _utility(blobs_split)
        resumed = MonteCarloShapley(n_permutations=6, seed=11,
                                    resume_from=tmp_path,
                                    observer=obs).score(utility)
        assert [v.hex() for v in resumed] == [v.hex() for v in ref]
        assert utility.calls == ref_utility.calls
        metrics = obs.as_dict()["metrics"]
        assert metrics["checkpoint.corrupt_records"] == 1
        assert metrics["checkpoint.restores"] == 1

    def test_checkpoint_requires_integer_seed(self, tmp_path):
        with pytest.raises(ValidationError, match="integer seed"):
            MonteCarloShapley(n_permutations=4, checkpoint=tmp_path)
        with pytest.raises(ValidationError, match="integer seed"):
            DataBanzhaf(n_samples=4, seed=None, resume_from=tmp_path)

    def test_identity_mismatch_between_jobs(self, blobs_split, tmp_path):
        utility = _utility(blobs_split)
        MonteCarloShapley(n_permutations=4, seed=11,
                          checkpoint=tmp_path).score(utility)
        other = _utility(blobs_split)
        with pytest.raises(ValidationError, match="different job"):
            MonteCarloShapley(n_permutations=4, seed=12,
                              resume_from=tmp_path).score(other)

    def test_observer_write_accounting(self, blobs_split, tmp_path):
        obs = Observer()
        utility = _utility(blobs_split)
        MonteCarloShapley(n_permutations=6, seed=11, checkpoint=tmp_path,
                          checkpoint_every=2, observer=obs).score(utility)
        metrics = obs.as_dict()["metrics"]
        assert metrics["checkpoint.writes"] == 3
        assert metrics["checkpoint.bytes"] > 0


# --------------------------------------------------------------------------
# kill-the-driver acceptance tests
# --------------------------------------------------------------------------

_DRIVER = '''\
"""Checkpoint kill/resume driver (modes: ref | run | resume)."""
import json
import sys
import time

import numpy as np

from repro.datasets import make_blobs
from repro.importance import MonteCarloShapley, Utility
from repro.ml import LogisticRegression
from repro.observe import Observer
from repro.runtime import FingerprintCache, Runtime


class SlowModel(LogisticRegression):
    """Fit slowed down so the parent can SIGKILL mid-run; subclass (not
    wrapper) so the fingerprint is stable across driver invocations."""

    def fit(self, X, y):
        time.sleep(0.03)
        return super().fit(X, y)


def build_utility(backend, faults=None):
    X, y = make_blobs(48, n_features=3, centers=2, seed=7)
    runtime = Runtime(backend=backend, cache=FingerprintCache(),
                      faults=faults)
    return Utility(SlowModel(max_iter=40), X[:32], y[:32], X[32:], y[32:],
                   runtime=runtime)


def main():
    mode, backend, store_dir, out_path = sys.argv[1:5]
    changed_faults = {"retries": 3, "on_worker_failure": "serial"} \\
        if "changed-faults" in sys.argv else None
    obs = Observer()
    utility = build_utility(backend, faults=changed_faults)
    kwargs = {}
    if mode == "run":
        kwargs["checkpoint"] = store_dir
    elif mode == "resume":
        kwargs["resume_from"] = store_dir
    estimator = MonteCarloShapley(n_permutations=10, seed=13,
                                  checkpoint_every=1, observer=obs,
                                  **kwargs)
    values = estimator.score(utility)
    data = obs.as_dict()
    resume_events = [e for e in data["events"]
                     if e["kind"] == "checkpoint.resume"]
    out = {
        "scores": [v.hex() for v in values],
        "calls": utility.calls,
        "cache_keys": sorted(utility.runtime.cache.keys()),
        "restores": data["metrics"].get("checkpoint.restores", 0),
        "skipped": resume_events[0]["completed"] if resume_events else 0,
    }
    with open(out_path, "w") as handle:
        json.dump(out, handle)
    utility.runtime.close()


if __name__ == "__main__":
    main()
'''


def _write_driver(tmp_path) -> Path:
    driver = tmp_path / "driver.py"
    driver.write_text(_DRIVER)
    return driver


def _run_driver(driver, *args, timeout=120):
    env = dict(os.environ, PYTHONPATH=SRC)
    subprocess.run([sys.executable, str(driver), *args], check=True,
                   timeout=timeout, env=env, cwd=driver.parent)


def _wait_for_records(store_dir: Path, n: int, process, timeout=60.0):
    deadline = time.monotonic() + timeout
    store = CheckpointStore(store_dir)
    while time.monotonic() < deadline:
        if len(store.record_paths()) >= n:
            return
        if process.poll() is not None:
            raise AssertionError(
                f"driver exited early with {process.returncode}")
        time.sleep(0.02)
    raise AssertionError(f"no {n} checkpoint records within {timeout}s")


@pytest.mark.slow
class TestKillAndResume:
    def _reference(self, driver, tmp_path) -> dict:
        out = tmp_path / "ref.json"
        _run_driver(driver, "ref", "serial", str(tmp_path / "unused"),
                    str(out))
        return json.loads(out.read_text())

    def _killed_store(self, driver, tmp_path, sig) -> Path:
        store_dir = tmp_path / "store"
        env = dict(os.environ, PYTHONPATH=SRC)
        process = subprocess.Popen(
            [sys.executable, str(driver), "run", "serial", str(store_dir),
             str(tmp_path / "never.json")], env=env, cwd=tmp_path)
        try:
            _wait_for_records(store_dir, 2, process)
            process.send_signal(sig)
            process.wait(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()
        assert process.returncode != 0
        assert not (tmp_path / "never.json").exists()
        return store_dir

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_sigkill_resume_is_hex_identical(self, tmp_path, backend):
        """ISSUE acceptance: SIGKILL the driver mid-shapley_mc, resume
        on every backend, require hex-identical scores, call counts,
        and cache keys — with the skipped work visible in the run log."""
        driver = _write_driver(tmp_path)
        ref = self._reference(driver, tmp_path)
        store_dir = self._killed_store(driver, tmp_path, signal.SIGKILL)

        out = tmp_path / f"resume-{backend}.json"
        _run_driver(driver, "resume", backend, str(store_dir), str(out))
        resumed = json.loads(out.read_text())
        assert resumed["scores"] == ref["scores"]
        assert resumed["calls"] == ref["calls"]
        assert resumed["cache_keys"] == ref["cache_keys"]
        assert resumed["restores"] == 1
        assert 0 < resumed["skipped"] < 10

    def test_sigterm_flushes_final_checkpoint_and_resumes(self, tmp_path):
        driver = _write_driver(tmp_path)
        ref = self._reference(driver, tmp_path)
        store_dir = self._killed_store(driver, tmp_path, signal.SIGTERM)
        out = tmp_path / "resume.json"
        _run_driver(driver, "resume", "serial", str(store_dir), str(out))
        resumed = json.loads(out.read_text())
        assert resumed["scores"] == ref["scores"]
        assert resumed["calls"] == ref["calls"]
        assert resumed["restores"] == 1

    def test_resume_with_changed_fault_policy_subprocess(self, tmp_path):
        driver = _write_driver(tmp_path)
        ref = self._reference(driver, tmp_path)
        store_dir = self._killed_store(driver, tmp_path, signal.SIGKILL)
        out = tmp_path / "resume.json"
        _run_driver(driver, "resume", "serial", str(store_dir), str(out),
                    "changed-faults")
        resumed = json.loads(out.read_text())
        assert resumed["scores"] == ref["scores"]
        assert resumed["calls"] == ref["calls"]


class TestSharedStoreConcurrency:
    """Two resuming workers sharing one store must never crash each
    other: keep-N pruning tolerates already-deleted records, and a file
    that vanishes between listing and reading is skipped silently (it
    was pruned, not corrupted)."""

    def test_vanished_record_is_not_corrupt(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=5)
        for i in range(3):
            store.write("demo", {"completed": i})
        reader = CheckpointStore(tmp_path, keep=5)
        newest = reader.record_paths()[-1]
        newest.unlink()  # concurrent worker pruned it under us
        observer = Observer(run_id="shared")
        record = reader.load_latest("demo", observer=observer)
        assert record is not None
        assert record.payload["completed"] == 1
        metrics = observer.as_dict()["metrics"]
        assert "checkpoint.corrupt_records" not in metrics

    def test_prune_tolerates_missing_files(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=1)
        for i in range(4):
            store.write("demo", {"completed": i})
        # empty the directory behind the store's back, then write: the
        # prune pass finds nothing to delete and must not raise
        for path in store.record_paths():
            path.unlink()
        store.write("demo", {"completed": 99})
        assert store.load_latest("demo").payload["completed"] == 99

    def test_two_stores_interleaved_writes(self, tmp_path):
        """Interleaved write+prune from two store handles over one
        directory: both survive, and the newest record wins."""
        a = CheckpointStore(tmp_path, keep=2)
        b = CheckpointStore(tmp_path, keep=2)
        for i in range(10):
            (a if i % 2 == 0 else b).write("demo", {"completed": i})
        assert a.load_latest("demo").payload["completed"] == 9
        assert b.load_latest("demo").payload["completed"] == 9
        assert len(a.record_paths()) <= 3
