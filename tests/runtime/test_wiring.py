"""Runtime wiring of the non-importance compute layers: CPClean's greedy
selector and the iterative cleaner produce identical results with and
without a parallel runtime."""

import numpy as np
import pytest

from repro.cleaning import CleaningOracle, IterativeCleaner
from repro.dataframe import DataFrame
from repro.datasets import make_blobs
from repro.errors import inject_label_errors, inject_missing_array
from repro.ml import LogisticRegression
from repro.runtime import FingerprintCache, Runtime
from repro.uncertain import cpclean_greedy


class TestCPCleanRuntime:
    @pytest.fixture(scope="class")
    def incomplete(self):
        X, y = make_blobs(50, n_features=2, centers=2, cluster_std=1.0,
                          seed=12)
        X_test, _ = make_blobs(15, n_features=2, centers=2, cluster_std=1.0,
                               seed=13)
        X_dirty, _ = inject_missing_array(X, fraction=0.12, columns=[0],
                                          seed=3)
        return {"X": X, "y": y, "X_dirty": X_dirty, "X_test": X_test}

    def test_parallel_rounds_match_inline(self, incomplete):
        inline = cpclean_greedy(incomplete["X_dirty"], incomplete["y"],
                                incomplete["X"], incomplete["X_test"],
                                k=3, max_cleaned=3)
        for backend in ("thread", "process"):
            with Runtime(backend=backend, max_workers=2) as runtime:
                parallel = cpclean_greedy(
                    incomplete["X_dirty"], incomplete["y"], incomplete["X"],
                    incomplete["X_test"], k=3, max_cleaned=3,
                    runtime=runtime)
            assert parallel["cleaned_rows"] == inline["cleaned_rows"]
            assert parallel["certain_fraction"] == \
                inline["certain_fraction"]


class TestIterativeCleanerRuntime:
    @pytest.fixture(scope="class")
    def setting(self):
        X, y = make_blobs(120, n_features=3, centers=2, cluster_std=1.3,
                          seed=19)
        frame = DataFrame({
            "f0": X[:80, 0], "f1": X[:80, 1], "f2": X[:80, 2],
            "label": [str(v) for v in y[:80]],
        })
        dirty, _ = inject_label_errors(frame, column="label", fraction=0.25,
                                       seed=20)
        return {"clean": frame, "dirty": dirty,
                "X_valid": X[80:],
                "y_valid": np.array([str(v) for v in y[80:]])}

    @staticmethod
    def _encode(frame):
        X = frame.select(["f0", "f1", "f2"]).to_numpy()
        y = np.array(frame["label"].to_list())
        return X, y

    @pytest.mark.parametrize("strategy", ["loo", "shapley_mc", "banzhaf"])
    def test_utility_strategies_run_and_track_quality(self, setting,
                                                      strategy):
        with Runtime(backend="serial", cache=FingerprintCache()) as runtime:
            cleaner = IterativeCleaner(
                LogisticRegression(max_iter=60), strategy,
                CleaningOracle(setting["clean"]), encode=self._encode,
                batch=10, seed=0, runtime=runtime)
            result = cleaner.run(setting["dirty"], setting["X_valid"],
                                 setting["y_valid"], n_rounds=2)
        assert result.rounds == 2
        assert len(result.scores) == 3
        assert len(result.cleaned_ids) == 20
        # The runtime saw the strategy's utility evaluations.
        assert runtime.timings.total_seconds() > 0

    def test_runtime_does_not_change_trajectory(self, setting):
        def run(runtime):
            cleaner = IterativeCleaner(
                LogisticRegression(max_iter=60), "loo",
                CleaningOracle(setting["clean"]), encode=self._encode,
                batch=10, seed=0, runtime=runtime)
            return cleaner.run(setting["dirty"], setting["X_valid"],
                               setting["y_valid"], n_rounds=2)

        inline = run(None)
        with Runtime(backend="thread", max_workers=2) as runtime:
            threaded = run(runtime)
        assert inline.scores == threaded.scores
        assert inline.cleaned_ids == threaded.cleaned_ids
