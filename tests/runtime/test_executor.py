"""Unit tests for the executor backends."""

import numpy as np
import pytest

from repro.core.exceptions import ValidationError
from repro.runtime import (
    BACKENDS,
    ProcessExecutor,
    ProgressRecorder,
    SerialExecutor,
    TaskError,
    ThreadExecutor,
    get_executor,
)


def _affine(shared, task):
    scale, offset = shared
    return scale * task + offset


def _failing(shared, task):
    if task == 3:
        raise ValueError("task 3 exploded")
    return task


class TestFactory:
    def test_names_resolve(self):
        for name in BACKENDS:
            executor = get_executor(name)
            assert executor.name == name
            executor.close()

    def test_instance_passes_through(self):
        executor = SerialExecutor()
        assert get_executor(executor) is executor

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValidationError):
            get_executor("gpu")

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValidationError):
            ThreadExecutor(max_workers=0)


@pytest.mark.parametrize("backend", BACKENDS)
class TestMapContract:
    def test_results_in_task_order(self, backend):
        with get_executor(backend, max_workers=2) as executor:
            out = executor.map(_affine, range(23), shared=(2, 1))
        assert out == [2 * i + 1 for i in range(23)]

    def test_empty_task_list(self, backend):
        with get_executor(backend, max_workers=2) as executor:
            assert executor.map(_affine, [], shared=(1, 0)) == []

    def test_chunk_size_does_not_change_results(self, backend):
        with get_executor(backend, max_workers=2) as executor:
            for chunk_size in (1, 4, 100):
                out = executor.map(_affine, range(11), shared=(3, 0),
                                   chunk_size=chunk_size)
                assert out == [3 * i for i in range(11)]

    def test_worker_error_propagates(self, backend):
        # A deterministic task failure exhausts its retry budget and
        # surfaces as a structured TaskError with the original exception
        # chained as __cause__ (see tests/runtime/test_faults.py).
        with get_executor(backend, max_workers=2) as executor:
            with pytest.raises(TaskError, match="task 3 exploded") as info:
                executor.map(_failing, range(6), shared=None, chunk_size=1,
                             faults={"retries": 0})
        assert info.value.chunk_index == 3
        assert isinstance(info.value.__cause__, ValueError)

    def test_progress_events_cover_all_tasks(self, backend):
        recorder = ProgressRecorder()
        with get_executor(backend, max_workers=2) as executor:
            executor.map(_affine, range(10), shared=(1, 0), chunk_size=3,
                         progress=recorder, stage="affine")
        assert recorder.last is not None
        assert recorder.last.completed == 10
        assert recorder.last.total == 10
        assert recorder.last.stage == "affine"
        assert recorder.last.fraction == 1.0


class TestProcessPoolReuse:
    def test_same_shared_reuses_pool(self):
        executor = ProcessExecutor(max_workers=1)
        try:
            executor.map(_affine, range(3), shared=(1, 0))
            first_pool = executor._pool
            executor.map(_affine, range(3), shared=(1, 0))
            assert executor._pool is first_pool
            executor.map(_affine, range(3), shared=(5, 0))
            assert executor._pool is not first_pool
        finally:
            executor.close()

    def test_numpy_shared_state(self):
        data = np.arange(20.0)
        with ProcessExecutor(max_workers=2) as executor:
            out = executor.map(_sum_slice, [(0, 5), (5, 20)], shared=data)
        assert out == [float(data[:5].sum()), float(data[5:].sum())]


def _sum_slice(shared, task):
    lo, hi = task
    return float(shared[lo:hi].sum())
