"""Concurrency regressions for the shared runtime pieces the serving
tier hammers: the fingerprint cache, the warm-pool executor registry,
and the shutdown-flush hooks."""

import signal
import threading

import pytest

from repro.runtime import (
    FingerprintCache,
    ProcessExecutor,
    ThreadExecutor,
    flush_all,
    register_shutdown_flush,
    unregister_shutdown_flush,
)
from repro.runtime.checkpoint import _shutdown_handler


def _affine(shared, task):
    scale, offset = shared
    return scale * task + offset


class TestCacheHammer:
    def test_two_threads_same_keys_with_eviction(self):
        # Small capacity forces constant eviction while both threads
        # read and write the same key space; values are key-determined,
        # so any torn read/write surfaces as a wrong value.
        cache = FingerprintCache(max_items=16)
        errors = []
        barrier = threading.Barrier(2)

        def hammer():
            try:
                barrier.wait()
                for i in range(4000):
                    key = f"k{i % 64}"
                    value = cache.get(key)
                    if value is not None:
                        assert value == float(i % 64)
                    cache.put(key, float(i % 64))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert len(cache) <= 16
        stats = cache.stats
        assert stats.puts == 8000
        assert stats.memory_hits + stats.misses == 8000

    def test_journals_capture_concurrent_puts(self):
        cache = FingerprintCache()
        journal = cache.start_journal()

        def put_range(base):
            for i in range(200):
                cache.put(f"{base}-{i}", float(i))

        threads = [threading.Thread(target=put_range, args=(b,))
                   for b in ("a", "b")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        cache.stop_journal(journal)
        assert len(journal) == 400
        assert {key for key, _ in journal} \
            == {f"{b}-{i}" for b in ("a", "b") for i in range(200)}


class TestExecutorRegistry:
    def test_concurrent_maps_with_distinct_shared_payloads(self):
        # Two threads map with different shared payloads through ONE
        # executor: the warm-pool registry must give each its own pool
        # instead of thrashing a single slot.
        executor = ProcessExecutor(max_workers=1)
        results = {}
        errors = []
        barrier = threading.Barrier(2)

        def run(tag, shared):
            try:
                barrier.wait()
                results[tag] = executor.map(_affine, range(20),
                                            shared=shared)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        try:
            threads = [
                threading.Thread(target=run, args=("x2", (2, 0))),
                threading.Thread(target=run, args=("x3", (3, 1))),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert errors == []
            assert results["x2"] == [2 * i for i in range(20)]
            assert results["x3"] == [3 * i + 1 for i in range(20)]
            assert executor.warm_pools == 2
        finally:
            executor.close()
        assert executor.warm_pools == 0

    def test_idle_pools_evicted_lru_beyond_cap(self):
        executor = ProcessExecutor(max_workers=1, max_warm_pools=2)
        try:
            for offset in range(4):
                out = executor.map(_affine, range(5), shared=(1, offset))
                assert out == [i + offset for i in range(5)]
                assert executor.warm_pools <= 2
        finally:
            executor.close()

    def test_compat_pool_accessors_track_mru(self):
        executor = ProcessExecutor(max_workers=1)
        try:
            assert executor._pool is None
            assert executor._pool_digest is None
            executor.map(_affine, range(3), shared=(1, 0))
            assert executor._pool is not None
            digest_a = executor._pool_digest
            executor.map(_affine, range(3), shared=(1, 7))
            assert executor._pool_digest != digest_a
        finally:
            executor.close()

    def test_thread_executor_concurrent_maps_share_one_pool(self):
        executor = ThreadExecutor(max_workers=2)
        results = {}

        def run(tag, shared):
            results[tag] = executor.map(_affine, range(50),
                                        shared=shared)

        try:
            threads = [threading.Thread(target=run, args=(t, (t, 0)))
                       for t in (1, 2, 3)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            for t in (1, 2, 3):
                assert results[t] == [t * i for i in range(50)]
        finally:
            executor.close()


class TestShutdownFlushHooks:
    def test_flush_all_runs_hooks_signal_free(self):
        calls = []
        handles = [register_shutdown_flush(lambda: calls.append("a")),
                   register_shutdown_flush(lambda: calls.append("b"))]
        try:
            flush_all()
            assert calls == ["a", "b"]
            flush_all()  # safe to call repeatedly
            assert calls == ["a", "b", "a", "b"]
        finally:
            for handle in handles:
                unregister_shutdown_flush(handle)

    def test_failing_hook_does_not_block_the_rest(self):
        calls = []

        def bad():
            raise RuntimeError("flush failed")

        handles = [register_shutdown_flush(bad),
                   register_shutdown_flush(lambda: calls.append("ok"))]
        try:
            flush_all()
            assert calls == ["ok"]
        finally:
            for handle in handles:
                unregister_shutdown_flush(handle)

    def test_worker_thread_registration_does_not_block_main_install(self):
        # Regression: a worker-thread registration arriving first used
        # to leave the hook table non-empty without handlers installed,
        # and a later main-thread registration would then skip install.
        before = signal.getsignal(signal.SIGTERM)
        assert before is not _shutdown_handler
        handles = []

        def register_from_worker():
            handles.append(
                register_shutdown_flush(lambda: None))

        thread = threading.Thread(target=register_from_worker)
        thread.start()
        thread.join()
        try:
            # worker thread cannot install signal handlers
            assert signal.getsignal(signal.SIGTERM) is not _shutdown_handler
            handles.append(register_shutdown_flush(lambda: None))
            assert signal.getsignal(signal.SIGTERM) is _shutdown_handler
        finally:
            for handle in handles:
                unregister_shutdown_flush(handle)
        assert signal.getsignal(signal.SIGTERM) is before
