"""Tests for fingerprinting and the two-tier FingerprintCache."""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.core.exceptions import ValidationError
from repro.ml import KNeighborsClassifier
from repro.runtime import FingerprintCache, fingerprint


class TestFingerprint:
    def test_deterministic(self):
        a = fingerprint(np.arange(10), "accuracy", 3, (1, 2))
        b = fingerprint(np.arange(10), "accuracy", 3, (1, 2))
        assert a == b

    def test_array_content_matters(self):
        assert fingerprint(np.arange(10)) != fingerprint(np.arange(1, 11))

    def test_dtype_and_shape_matter(self):
        assert fingerprint(np.zeros(4, dtype=np.int64)) != \
            fingerprint(np.zeros(4, dtype=np.float64))
        assert fingerprint(np.zeros((2, 2))) != fingerprint(np.zeros(4))

    def test_type_tags_prevent_scalar_collisions(self):
        assert fingerprint(1) != fingerprint(1.0)
        assert fingerprint(1) != fingerprint("1")
        assert fingerprint(True) != fingerprint(1)

    def test_estimator_hashed_by_hyperparameters(self):
        assert fingerprint(KNeighborsClassifier(3)) == \
            fingerprint(KNeighborsClassifier(3))
        assert fingerprint(KNeighborsClassifier(3)) != \
            fingerprint(KNeighborsClassifier(5))

    def test_dict_order_irrelevant(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    def test_callables_by_qualified_name(self):
        from repro.ml.metrics import accuracy_score, f1_score

        assert fingerprint(accuracy_score) != fingerprint(f1_score)


class TestMemoryTier:
    def test_miss_then_hit(self):
        cache = FingerprintCache()
        key = fingerprint("k")
        assert cache.get(key) is None
        cache.put(key, 0.75)
        assert cache.get(key) == 0.75
        assert cache.stats.misses == 1
        assert cache.stats.memory_hits == 1

    def test_hit_is_bitwise_equal(self):
        cache = FingerprintCache()
        value = 0.1 + 0.2  # a float with a messy binary expansion
        key = fingerprint("v")
        cache.put(key, value)
        got = cache.get(key)
        assert got.hex() == value.hex()

    def test_lru_eviction_order(self):
        cache = FingerprintCache(max_items=2)
        k1, k2, k3 = (fingerprint(i) for i in range(3))
        cache.put(k1, 1.0)
        cache.put(k2, 2.0)
        assert cache.get(k1) == 1.0     # touch k1 so k2 becomes LRU
        cache.put(k3, 3.0)              # evicts k2
        assert cache.get(k2) is None
        assert cache.get(k1) == 1.0
        assert cache.get(k3) == 3.0
        assert cache.stats.evictions == 1

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValidationError):
            FingerprintCache(max_items=0)


class TestDiskTier:
    def test_disk_roundtrip_bitwise(self, tmp_path):
        cache = FingerprintCache(disk_dir=tmp_path)
        key = fingerprint("disk")
        value = 1.0 / 3.0
        cache.put(key, value)
        fresh = FingerprintCache(disk_dir=tmp_path)  # cold memory tier
        got = fresh.get(key)
        assert got is not None and got.hex() == value.hex()
        assert fresh.stats.disk_hits == 1

    def test_disk_tier_survives_new_process(self, tmp_path):
        cache = FingerprintCache(disk_dir=tmp_path)
        key = fingerprint("cross-process")
        cache.put(key, 0.8125)
        script = (
            "from repro.runtime import FingerprintCache\n"
            f"cache = FingerprintCache(disk_dir={str(tmp_path)!r})\n"
            f"value = cache.get({key!r})\n"
            "assert value is not None\n"
            "print(float(value).hex())\n"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + \
            env.get("PYTHONPATH", "")
        proc = subprocess.run([sys.executable, "-c", script], env=env,
                              capture_output=True, text=True, timeout=60)
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == (0.8125).hex()

    def test_memory_clear_keeps_disk(self, tmp_path):
        cache = FingerprintCache(disk_dir=tmp_path)
        key = fingerprint("persist")
        cache.put(key, 0.5)
        cache.clear_memory()
        assert len(cache) == 0
        assert cache.get(key) == 0.5
        assert cache.stats.disk_hits == 1

    def test_corrupt_entry_is_miss_and_deleted(self, tmp_path):
        """A disk entry truncated mid-bytes (torn write, bit rot) is a
        miss: the bad file is deleted, ``disk_corrupt`` counted, and the
        next put re-populates the slot cleanly."""
        cache = FingerprintCache(disk_dir=tmp_path)
        key = fingerprint("torn")
        cache.put(key, 1.0 / 3.0)
        path = cache._disk_path(key)
        path.write_bytes(path.read_bytes()[:-2])  # truncate mid-hex
        cache.clear_memory()
        assert cache.get(key) is None
        assert cache.stats.disk_corrupt == 1
        assert cache.stats.misses == 1
        assert not path.exists()
        assert cache.stats.as_dict()["disk_corrupt"] == 1
        # the slot heals on the next put
        cache.put(key, 0.25)
        cache.clear_memory()
        assert cache.get(key) == 0.25

    def test_empty_and_garbage_entries_are_corrupt(self, tmp_path):
        cache = FingerprintCache(disk_dir=tmp_path)
        for i, junk in enumerate([b"", b"not-a-hex-float"]):
            key = fingerprint("junk", i)
            cache.put(key, 1.5)
            cache._disk_path(key).write_bytes(junk)
            cache.clear_memory()
            assert cache.get(key) is None
        assert cache.stats.disk_corrupt == 2

    def test_journal_records_puts(self):
        cache = FingerprintCache()
        cache.put(fingerprint("before"), 0.1)
        journal = cache.start_journal()
        cache.put(fingerprint("during"), 0.2)
        cache.stop_journal(journal)
        cache.put(fingerprint("after"), 0.3)
        assert journal == [(fingerprint("during"), 0.2)]
        assert sorted(cache.keys()) == sorted(
            fingerprint(tag) for tag in ("before", "during", "after"))


class TestDiskPutDegradation:
    """The disk tier is best-effort: put failures (ENOSPC, permissions,
    vanished mount) must never crash the hot loop — they degrade the
    cache to memory-only, counted in ``disk_put_errors``."""

    def test_put_failure_degrades_to_memory_only(self, tmp_path):
        # disk_dir nested under a regular *file*: every mkdir fails with
        # ENOTDIR, the same OSError family as a full disk.
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        cache = FingerprintCache(disk_dir=blocker / "cache")
        keys = [fingerprint("degrade", i) for i in range(6)]
        for i, key in enumerate(keys):  # must not raise
            cache.put(key, float(i))
        assert cache.stats.disk_put_errors == cache._DISK_DEGRADE_AFTER
        assert cache.disk_degraded
        # the memory tier kept every value
        for i, key in enumerate(keys):
            assert cache.get(key) == float(i)
        assert cache.stats.as_dict()["disk_put_errors"] == \
            cache._DISK_DEGRADE_AFTER

    def test_transient_failure_does_not_degrade(self, tmp_path,
                                                monkeypatch):
        cache = FingerprintCache(disk_dir=tmp_path)
        real_replace = os.replace
        boom = {"left": 2}

        def flaky_replace(src, dst):
            if boom["left"] > 0:
                boom["left"] -= 1
                raise OSError(28, "No space left on device")
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", flaky_replace)
        for i in range(5):
            cache.put(fingerprint("transient", i), float(i))
        assert cache.stats.disk_put_errors == 2
        # two failures < the degrade threshold, and the later successes
        # reset the consecutive counter: the tier stays on
        assert not cache.disk_degraded
        cache.clear_memory()
        assert cache.get(fingerprint("transient", 4)) == 4.0
        assert cache.stats.disk_hits == 1

    def test_aggregate_includes_disk_put_errors(self, tmp_path):
        from repro.runtime.cache import aggregate_cache_stats
        blocker = tmp_path / "f"
        blocker.write_text("x")
        cache = FingerprintCache(disk_dir=blocker / "nested")
        cache.put(fingerprint("agg"), 1.0)
        totals = aggregate_cache_stats()
        assert totals["disk_put_errors"] >= 1
