"""Concurrency regression for the global row-id allocator.

``_fresh_row_ids`` hands out ids from a shared counter; the serve tier
constructs frames from many worker threads at once. Without the lock,
two threads can read the same counter value and allocate overlapping id
ranges — which silently corrupts provenance (two distinct source rows
with the same identity). This hammer makes that race deterministic
enough to catch: any overlap across threads is a failure.
"""

import threading

import numpy as np

from repro.dataframe import DataFrame
from repro.dataframe.frame import _fresh_row_ids


class TestFreshRowIds:
    def test_ids_are_unique_across_threads(self):
        n_threads, n_allocs, chunk = 8, 200, 7
        results = [[] for _ in range(n_threads)]
        barrier = threading.Barrier(n_threads)

        def hammer(slot):
            barrier.wait()
            for _ in range(n_allocs):
                results[slot].append(_fresh_row_ids(chunk))

        threads = [threading.Thread(target=hammer, args=(i,))
                   for i in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        all_ids = np.concatenate([ids for slot in results for ids in slot])
        assert len(all_ids) == n_threads * n_allocs * chunk
        assert len(np.unique(all_ids)) == len(all_ids)

    def test_each_allocation_is_contiguous(self):
        ids = _fresh_row_ids(5)
        assert (np.diff(ids) == 1).all()

    def test_frames_built_concurrently_get_disjoint_ids(self):
        n_threads = 6
        frames = [None] * n_threads
        barrier = threading.Barrier(n_threads)

        def build(slot):
            barrier.wait()
            for _ in range(50):
                frames[slot] = DataFrame({"x": list(range(20))})

        threads = [threading.Thread(target=build, args=(i,))
                   for i in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        combined = np.concatenate([f.row_ids for f in frames])
        assert len(np.unique(combined)) == len(combined)
