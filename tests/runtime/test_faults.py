"""Fault-injection suite for the runtime's fault-tolerance layer.

Workers are killed with ``os._exit`` (mimicking an OOM kill / signal),
tasks raise transient and deterministic exceptions, and chunks are made
to overrun their timeouts — the executors must recover per their
:class:`~repro.runtime.FaultPolicy` with **bit-identical results**,
observable counters, and structured :class:`~repro.runtime.TaskError`
attribution when the budget runs out.

Crash fixtures are guarded by the parent pid so a task that kills a
pool worker can never kill the test process, and one-shot crashes claim
a flag file with an atomic rename so exactly one worker dies.
"""

import gc
import os
import threading
import time

import numpy as np
import pytest

from repro.core.exceptions import ValidationError
from repro.ml.base import BaseEstimator
from repro.observe import Observer
from repro.runtime import (
    CancellationToken,
    FaultPolicy,
    JobCancelled,
    ProgressRecorder,
    Runtime,
    SerialExecutor,
    TaskError,
    resolve_fault_policy,
)

_MAIN_PID = os.getpid()


# --- injectable task functions (module-level: picklable) -------------------

def _double(shared, task):
    return task * 2


def _exit_always(shared, task):
    """Kill whichever pool worker runs this (never the test process)."""
    if os.getpid() != _MAIN_PID:
        os._exit(1)
    raise AssertionError("crash task ran in the parent process")


def _worker_only_crash(shared, task):
    """Dies in any worker, computes fine in the parent — exercises the
    on_worker_failure='serial' degradation path."""
    if os.getpid() != _MAIN_PID:
        os._exit(1)
    return task + 1


def _crash_once(shared, task):
    """First worker to claim the flag file dies mid-task; every retry
    (flag already claimed) computes normally."""
    _claim_flag_and_crash(shared)
    return task * 3


def _claim_flag_and_crash(flag) -> None:
    if not flag or os.getpid() == _MAIN_PID:
        return
    try:
        os.rename(flag, flag + ".claimed")
    except OSError:
        return  # someone else claimed it — run normally
    os._exit(1)


def _sleepy(shared, task):
    time.sleep(task)
    return task


def _failing(shared, task):
    if task == 3:
        raise ValueError("task 3 exploded")
    return task


_FLAKY_STATE = {"remaining": 0}


def _flaky(shared, task):
    if task == 5 and _FLAKY_STATE["remaining"] > 0:
        _FLAKY_STATE["remaining"] -= 1
        raise ConnectionError("transient blip")
    return task * 10


class CrashyNearestMean(BaseEstimator):
    """Deterministic nearest-class-mean classifier whose ``fit`` kills
    its worker once (flag-file claimed) — a model training that OOMs
    mid-Shapley, from the executor's point of view."""

    def __init__(self, flag=""):
        self.flag = flag

    def fit(self, X, y):
        _claim_flag_and_crash(self.flag)
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        self.classes_ = np.unique(y)
        self.means_ = np.stack([X[y == c].mean(axis=0)
                                for c in self.classes_])
        return self

    def predict(self, X):
        X = np.asarray(X, dtype=float)
        distances = ((X[:, None, :] - self.means_[None, :, :]) ** 2).sum(-1)
        return self.classes_[np.argmin(distances, axis=1)]


@pytest.fixture()
def crash_flag(tmp_path):
    flag = tmp_path / "crash-flag"
    flag.touch()
    return str(flag)


@pytest.fixture()
def small_game():
    from repro.datasets import make_blobs

    X, y = make_blobs(30, n_features=3, centers=2, seed=0)
    return X[:20], y[:20], X[20:], y[20:]


# --- the seeded bugs: regression tests -------------------------------------

class TestBrokenPoolRebuild:
    def test_second_map_after_broken_pool_succeeds(self):
        # Regression: the executor used to keep its stale _pool_digest
        # after BrokenProcessPool, so every later map() reused the dead
        # pool and failed forever.
        with Runtime(backend="process", max_workers=2,
                     faults={"on_worker_failure": "raise",
                             "backoff": 0.0}) as runtime:
            with pytest.raises(TaskError):
                runtime.map(_exit_always, range(4), stage="crash")
            assert runtime.executor._pool is None
            assert runtime.executor._pool_digest is None
            assert runtime.map(_double, range(4),
                               stage="recovered") == [0, 2, 4, 6]

    def test_repeated_crashes_are_bounded(self):
        # A task that kills every worker it touches cannot rebuild the
        # pool forever: the crash budget trips into a TaskError.
        with Runtime(backend="process", max_workers=2,
                     faults=FaultPolicy(retries=1, backoff=0.0,
                                        max_worker_crashes=2)) as runtime:
            with pytest.raises(TaskError) as info:
                runtime.map(_exit_always, range(3), stage="hopeless")
        assert runtime.executor.fault_stats.worker_crashes == 3
        assert info.value.stage == "hopeless"


class TestChunkResponsiveness:
    def test_10k_serial_tasks_emit_at_least_100_progress_events(self):
        # Regression: auto chunking used ceil(n / 4) for serial, so a
        # 10k-task job polled progress/cancellation only 4 times.
        recorder = ProgressRecorder()
        executor = SerialExecutor()
        results = executor.map(_double, range(10_000), progress=recorder,
                               stage="big-serial")
        assert len(results) == 10_000
        assert len(recorder.events) >= 100
        assert recorder.last.completed == 10_000

    def test_cancellation_noticed_within_one_capped_chunk(self):
        token = CancellationToken()
        seen = []

        def progress(event):
            seen.append(event)
            token.cancel()

        executor = SerialExecutor()
        with pytest.raises(JobCancelled):
            executor.map(_double, range(10_000), progress=progress,
                         cancel=token, stage="abort-early")
        # Aborted after the first chunk, not a quarter of the job.
        assert seen[0].completed <= 64


# --- crash recovery --------------------------------------------------------

class TestWorkerCrashRecovery:
    def test_crash_mid_shapley_recovers_bit_identical(self, crash_flag,
                                                      small_game):
        # Acceptance: a worker killed mid-shapley_mc on the process
        # backend must not change a single bit of the scores, and the
        # recovery must be visible through repro.observe.
        from repro.importance import MonteCarloShapley, Utility

        observer = Observer()
        with Runtime(backend="process", max_workers=2, observer=observer,
                     faults=FaultPolicy(retries=3, backoff=0.0)) as runtime:
            utility = Utility(CrashyNearestMean(flag=crash_flag), *small_game,
                              runtime=runtime)
            estimator = MonteCarloShapley(n_permutations=6,
                                          truncation_tol=0.0, seed=3)
            scores = estimator.score(utility)

        assert os.path.exists(crash_flag + ".claimed"), \
            "the injected crash never fired"
        counters = observer.metrics.snapshot()
        assert counters["executor.worker_crashes"] >= 1
        assert counters["executor.retries"] >= 1
        fault_events = [event for event in observer.runlog.events
                        if event["kind"] == "executor.fault"]
        assert any(event["fault"] == "worker_crash" for event in fault_events)

        # Uninterrupted serial reference run (flag already claimed, and
        # the parent-pid guard makes crashes impossible here anyway).
        serial_utility = Utility(CrashyNearestMean(flag=crash_flag),
                                 *small_game, runtime=None)
        serial_scores = MonteCarloShapley(n_permutations=6,
                                          truncation_tol=0.0,
                                          seed=3).score(serial_utility)
        assert [s.hex() for s in scores] == [s.hex() for s in serial_scores]

    def test_crash_once_map_recovers_all_results(self, crash_flag):
        with Runtime(backend="process", max_workers=2,
                     faults=FaultPolicy(retries=2, backoff=0.0)) as runtime:
            results = runtime.map(_crash_once, range(8), shared=crash_flag,
                                  stage="once")
        assert results == [task * 3 for task in range(8)]
        stats = runtime.executor.fault_stats
        assert stats.worker_crashes == 1
        assert stats.retries >= 1

    def test_degraded_serial_fallback_completes(self):
        observer = Observer()
        with Runtime(backend="process", max_workers=2, observer=observer,
                     on_worker_failure="serial",
                     faults={"backoff": 0.0}) as runtime:
            results = runtime.map(_worker_only_crash, range(6), stage="deg")
        assert results == [task + 1 for task in range(6)]
        stats = runtime.executor.fault_stats
        assert stats.worker_crashes == 1
        assert stats.degraded_runs == 1
        assert observer.metrics.snapshot()["executor.degraded_runs"] == 1

    def test_on_worker_failure_raise_propagates_with_context(self):
        with Runtime(backend="process", max_workers=2,
                     faults={"on_worker_failure": "raise",
                             "backoff": 0.0}) as runtime:
            with pytest.raises(TaskError) as info:
                runtime.map(_exit_always, range(2), stage="fatal")
        assert info.value.stage == "fatal"
        assert info.value.backend == "process"
        assert "Broken" in type(info.value.__cause__).__name__


# --- retries, backoff, cancellation ----------------------------------------

class TestRetries:
    def test_transient_failure_retried_to_success(self):
        _FLAKY_STATE["remaining"] = 2
        with Runtime(backend="thread", max_workers=2,
                     faults=FaultPolicy(retries=3, backoff=0.0)) as runtime:
            results = runtime.map(_flaky, range(8), stage="flaky")
        assert results == [task * 10 for task in range(8)]
        assert runtime.executor.fault_stats.retries == 2

    def test_budget_exhaustion_raises_task_error_with_attribution(self):
        with Runtime(backend="thread", max_workers=2, chunk_size=1,
                     faults=FaultPolicy(retries=1, backoff=0.0)) as runtime:
            with pytest.raises(TaskError, match="task 3 exploded") as info:
                runtime.map(_failing, range(6), stage="doomed")
        error = info.value
        assert error.stage == "doomed"
        assert error.chunk_index == 3
        assert error.attempts == 2  # initial try + one retry
        assert isinstance(error.__cause__, ValueError)

    def test_cancel_during_retry_backoff_raises_jobcancelled(self):
        token = CancellationToken()
        timer = threading.Timer(0.2, token.cancel)
        timer.start()
        started = time.perf_counter()
        try:
            with Runtime(backend="serial", cancel=token,
                         faults=FaultPolicy(retries=5,
                                            backoff=30.0)) as runtime:
                with pytest.raises(JobCancelled):
                    runtime.map(_failing, range(6), stage="cancel-retry")
        finally:
            timer.cancel()
        # Aborted out of the 30 s backoff sleep, not after it.
        assert time.perf_counter() - started < 5.0

    def test_retry_events_observable(self):
        _FLAKY_STATE["remaining"] = 1
        observer = Observer()
        with Runtime(backend="thread", max_workers=2, observer=observer,
                     faults=FaultPolicy(retries=2, backoff=0.0)) as runtime:
            runtime.map(_flaky, range(8), stage="flaky")
        assert observer.metrics.snapshot()["executor.retries"] == 1
        fault_events = [event for event in observer.runlog.events
                        if event["kind"] == "executor.fault"]
        assert fault_events
        assert fault_events[0]["fault"] == "retry"
        assert fault_events[0]["stage"] == "flaky"
        assert "ConnectionError" in fault_events[0]["error"]


class TestTimeouts:
    def test_stuck_chunk_times_out_into_task_error(self):
        with Runtime(backend="process", max_workers=2,
                     faults=FaultPolicy(retries=0, timeout=0.5,
                                        backoff=0.0)) as runtime:
            started = time.perf_counter()
            with pytest.raises(TaskError) as info:
                runtime.map(_sleepy, [30], stage="stuck")
            assert time.perf_counter() - started < 10.0
            assert isinstance(info.value.__cause__, TimeoutError)
            assert runtime.executor.fault_stats.timeouts == 1
            # The killed pool is rebuilt transparently for the next job.
            assert runtime.map(_double, [1, 2], stage="after") == [2, 4]

    def test_timeout_retry_can_succeed(self, tmp_path):
        # First attempt sleeps forever; the resubmitted chunk (flag
        # claimed) returns quickly.
        flag = tmp_path / "slow-flag"
        flag.touch()
        with Runtime(backend="process", max_workers=2,
                     faults=FaultPolicy(retries=1, timeout=1.0,
                                        backoff=0.0)) as runtime:
            results = runtime.map(_slow_once, [7], shared=str(flag),
                                  stage="slow-once")
        assert results == [7]
        assert runtime.executor.fault_stats.timeouts == 1


def _slow_once(shared, task):
    try:
        os.rename(shared, shared + ".claimed")
    except OSError:
        return task
    time.sleep(60)
    return task


# --- policy surface and validation -----------------------------------------

class TestFaultPolicy:
    def test_defaults(self):
        policy = resolve_fault_policy(None)
        assert policy.retries == 1
        assert policy.on_worker_failure == "retry"

    def test_dict_and_override(self):
        policy = resolve_fault_policy({"retries": 4},
                                      on_worker_failure="serial")
        assert policy.retries == 4
        assert policy.on_worker_failure == "serial"

    @pytest.mark.parametrize("bad", [
        {"retries": -1},
        {"backoff": -0.5},
        {"timeout": 0.0},
        {"on_worker_failure": "shrug"},
        {"max_worker_crashes": -2},
        {"no_such_field": 1},
    ])
    def test_invalid_policies_rejected(self, bad):
        with pytest.raises(ValidationError):
            resolve_fault_policy(bad)

    def test_non_policy_rejected(self):
        with pytest.raises(ValidationError):
            resolve_fault_policy(3.14)

    def test_cannot_override_shared_runtime_policy(self, small_game):
        from repro.importance import Utility
        from repro.runtime import resolve_runtime

        with Runtime(backend="serial") as runtime:
            with pytest.raises(ValidationError):
                resolve_runtime(runtime, faults={"retries": 5})
            with pytest.raises(ValidationError):
                Utility(CrashyNearestMean(), *small_game, runtime=runtime,
                        faults={"retries": 5})

    def test_utility_builds_runtime_with_policy(self, small_game):
        from repro.importance import Utility

        with Utility(CrashyNearestMean(), *small_game, runtime="serial",
                     faults={"retries": 7}) as utility:
            assert utility.runtime.faults.retries == 7


# --- executor lifetime (the pool-leak satellite) ----------------------------

class TestExecutorLifetime:
    def test_utility_context_manager_closes_owned_runtime(self, small_game):
        from repro.importance import Utility

        with Utility(CrashyNearestMean(), *small_game,
                     runtime="thread") as utility:
            utility.evaluate_many([np.arange(10), np.arange(5)])
            assert utility.runtime.executor._pool is not None
        assert utility.runtime.executor._pool is None

    def test_utility_leaves_shared_runtime_open(self, small_game):
        from repro.importance import Utility

        with Runtime(backend="thread", max_workers=2) as runtime:
            with Utility(CrashyNearestMean(), *small_game,
                         runtime=runtime) as utility:
                utility.evaluate_many([np.arange(10), np.arange(5)])
            # The caller's runtime survives the utility's exit.
            assert runtime.map(_double, range(3), stage="still-open") \
                == [0, 2, 4]

    def test_garbage_collected_runtime_closes_its_pool(self):
        runtime = Runtime(backend="thread", max_workers=2)
        runtime.map(_double, range(4), stage="warm")
        executor = runtime.executor
        assert executor._pool is not None
        del runtime
        gc.collect()
        assert executor._pool is None

    def test_sharded_unlearner_close_releases_pool(self, small_game):
        from repro.unlearning import ShardedUnlearner

        X_train, y_train, _, _ = small_game
        with ShardedUnlearner(CrashyNearestMean(), n_shards=2, seed=0,
                              runtime="thread") as unlearner:
            unlearner.fit(X_train, y_train)
            assert unlearner.runtime.executor._pool is not None
        assert unlearner.runtime.executor._pool is None
