"""Runtime wiring of Utility: batch evaluation, caching, introspection."""

import numpy as np
import pytest

from repro.datasets import make_blobs
from repro.errors import inject_label_errors_array
from repro.importance import (
    Utility,
    detection_report,
    format_report,
    leave_one_out,
)
from repro.ml import KNeighborsClassifier
from repro.runtime import FingerprintCache, Runtime


@pytest.fixture(scope="module")
def game():
    X, y = make_blobs(70, n_features=3, centers=2, seed=3)
    y_dirty, flipped = inject_label_errors_array(y[:50], fraction=0.2, seed=1)
    return {"X_train": X[:50], "y_train": y_dirty,
            "X_valid": X[50:], "y_valid": y[50:], "flipped": flipped}


def _utility(game, runtime=None, **kwargs):
    return Utility(KNeighborsClassifier(3), game["X_train"], game["y_train"],
                   game["X_valid"], game["y_valid"], runtime=runtime,
                   **kwargs)


class TestEvaluateMany:
    def test_matches_scalar_calls(self, game):
        utility = _utility(game)
        coalitions = [np.arange(10), np.arange(5, 30), np.array([], dtype=int)]
        batch = utility.evaluate_many(coalitions)
        fresh = _utility(game)
        singles = [fresh(c) for c in coalitions]
        np.testing.assert_array_equal(batch, np.asarray(singles))

    def test_duplicates_trained_once(self, game):
        utility = _utility(game)
        subset = np.arange(12)
        values = utility.evaluate_many([subset, subset[::-1].copy(), subset])
        assert utility.calls == 1
        assert values[0] == values[1] == values[2]

    def test_cached_hit_is_bitwise_equal(self, game):
        cache = FingerprintCache()
        with Runtime(backend="serial", cache=cache) as runtime:
            utility = _utility(game, runtime=runtime, cache=False)
            subset = np.arange(20)
            first = utility(subset)
            again = utility(subset)
        assert float(first).hex() == float(again).hex()
        assert cache.stats.hits >= 1
        assert utility.calls == 1

    def test_runtime_cache_shared_between_utilities(self, game):
        cache = FingerprintCache()
        with Runtime(backend="serial", cache=cache) as runtime:
            a = _utility(game, runtime=runtime)
            b = _utility(game, runtime=runtime)
            value_a = a(np.arange(15))
            value_b = b(np.arange(15))
        assert value_a == value_b
        assert a.calls == 1
        assert b.calls == 0  # served from the shared fingerprint cache

    def test_different_games_never_collide(self, game):
        cache = FingerprintCache()
        with Runtime(backend="serial", cache=cache) as runtime:
            knn3 = _utility(game, runtime=runtime)
            knn5 = Utility(KNeighborsClassifier(5), game["X_train"],
                           game["y_train"], game["X_valid"], game["y_valid"],
                           runtime=runtime)
            knn3(np.arange(25))
            knn5(np.arange(25))
        # Same coalition, different model config: both trained.
        assert knn3.calls == 1
        assert knn5.calls == 1

    def test_invalid_runtime_spec_rejected(self, game):
        from repro.core.exceptions import ValidationError

        with pytest.raises(ValidationError):
            _utility(game, runtime=3.14)


class TestIntrospection:
    def test_cache_info_shape(self, game):
        with Runtime(backend="serial", cache=FingerprintCache()) as runtime:
            utility = _utility(game, runtime=runtime)
            leave_one_out(utility)
            info = utility.cache_info()
        assert info["calls"] == utility.calls > 0
        assert info["runtime"]["backend"] == "serial"
        assert "leave_one_out" in info["runtime"]["stages"]
        assert info["runtime"]["cache"]["puts"] > 0

    def test_detection_report_surfaces_runtime_stats(self, game):
        with Runtime(backend="serial", cache=FingerprintCache()) as runtime:
            utility = _utility(game, runtime=runtime)
            values = leave_one_out(utility)
            report = detection_report(values, game["flipped"],
                                      k=len(game["flipped"]),
                                      utility=utility, wall_time=1.25)
        assert 0.0 <= report["recall_at_k"] <= 1.0
        assert 0.0 <= report["precision_at_k"] <= 1.0
        assert report["utility_calls"] == utility.calls
        assert report["backend"] == "serial"
        assert "cache_hit_rate" in report
        assert "leave_one_out" in report["stage_seconds"]
        assert report["wall_time"] == 1.25
        line = format_report(report)
        assert "trainings=" in line and "backend=serial" in line

    def test_stage_timings_accumulate(self, game):
        with Runtime(backend="serial") as runtime:
            utility = _utility(game, runtime=runtime)
            utility.evaluate_many([np.arange(8), np.arange(9), np.arange(10)],
                                  stage="custom.stage")
            stages = runtime.timings.snapshot()
        assert stages["custom.stage"]["tasks"] == 3
        assert stages["custom.stage"]["seconds"] > 0
