"""Tests for the repro.runtime subsystem."""
