"""Backend-equivalence guarantees: serial, thread and process backends
produce *identical* importance scores for a fixed seed.

The setting is a small census slice (the fairness experiments' biased
income data) so the equivalence is exercised on realistic tabular data
rather than toy blobs.
"""

import numpy as np
import pytest

from repro.datasets import make_census
from repro.importance import (
    BetaShapley,
    DataBanzhaf,
    MonteCarloShapley,
    Utility,
    leave_one_out,
)
from repro.ml import KNeighborsClassifier
from repro.runtime import BACKENDS, FingerprintCache, Runtime
from repro.unlearning import ShardedUnlearner
from repro.ml import LogisticRegression

FEATURES = ["age", "education_years", "hours_per_week"]


@pytest.fixture(scope="module")
def census_slice():
    df, _ = make_census(90, bias_fraction=0.3, seed=5)
    X = df.to_numpy(FEATURES).astype(float)
    y = np.asarray(df["income"].to_numpy(), dtype=int)
    return {"X_train": X[:60], "y_train": y[:60],
            "X_valid": X[60:], "y_valid": y[60:]}


def _utility(census_slice, runtime):
    return Utility(KNeighborsClassifier(3),
                   census_slice["X_train"], census_slice["y_train"],
                   census_slice["X_valid"], census_slice["y_valid"],
                   runtime=runtime)


def _scores_per_backend(census_slice, scorer):
    outputs = {}
    for backend in BACKENDS:
        with Runtime(backend=backend, max_workers=2,
                     cache=FingerprintCache()) as runtime:
            outputs[backend] = scorer(_utility(census_slice, runtime))
    return outputs

def _assert_all_identical(outputs):
    reference = outputs["serial"]
    for backend, scores in outputs.items():
        np.testing.assert_array_equal(
            reference, scores,
            err_msg=f"{backend} diverged from serial")


class TestScoreEquivalence:
    def test_monte_carlo_shapley(self, census_slice):
        _assert_all_identical(_scores_per_backend(
            census_slice,
            MonteCarloShapley(n_permutations=4, truncation_tol=0.02,
                              seed=11).score))

    def test_monte_carlo_shapley_with_convergence(self, census_slice):
        _assert_all_identical(_scores_per_backend(
            census_slice,
            MonteCarloShapley(n_permutations=12, truncation_tol=0.05,
                              convergence_tol=0.5, convergence_window=3,
                              seed=1).score))

    def test_banzhaf(self, census_slice):
        _assert_all_identical(_scores_per_backend(
            census_slice, DataBanzhaf(n_samples=24, seed=7).score))

    def test_beta_shapley(self, census_slice):
        _assert_all_identical(_scores_per_backend(
            census_slice,
            BetaShapley(alpha=16, beta=1, n_permutations=3, seed=2).score))

    def test_leave_one_out(self, census_slice):
        _assert_all_identical(_scores_per_backend(census_slice,
                                                  leave_one_out))

    def test_runtime_none_matches_serial_runtime(self, census_slice):
        inline = MonteCarloShapley(n_permutations=4, seed=11).score(
            _utility(census_slice, None))
        with Runtime(backend="serial") as runtime:
            routed = MonteCarloShapley(n_permutations=4, seed=11).score(
                _utility(census_slice, runtime))
        np.testing.assert_array_equal(inline, routed)


class TestShardedEquivalence:
    def test_predictions_identical_across_backends(self, census_slice):
        X = np.vstack([census_slice["X_train"], census_slice["X_valid"]])
        y = np.concatenate([census_slice["y_train"],
                            census_slice["y_valid"]])
        reference = None
        for backend in BACKENDS:
            with Runtime(backend=backend, max_workers=2) as runtime:
                model = ShardedUnlearner(LogisticRegression(max_iter=60),
                                         n_shards=4, seed=0,
                                         runtime=runtime).fit(X, y)
                model.unlearn([0, 5, 17])
                predictions = model.predict(census_slice["X_valid"])
            if reference is None:
                reference = predictions
            else:
                np.testing.assert_array_equal(reference, predictions)


class TestCacheAcrossEstimators:
    def test_shared_cache_skips_repeat_trainings(self, census_slice):
        cache = FingerprintCache()
        with Runtime(backend="serial", cache=cache) as runtime:
            first = _utility(census_slice, runtime)
            a = DataBanzhaf(n_samples=16, seed=3).score(first)
            # A second utility over the *same* game re-uses every value.
            second = _utility(census_slice, runtime)
            b = DataBanzhaf(n_samples=16, seed=3).score(second)
        np.testing.assert_array_equal(a, b)
        assert second.calls == 0
        assert cache.stats.hits >= 16
