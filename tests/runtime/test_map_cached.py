"""Tests for Runtime.map_cached — the variant-batching primitive."""

import numpy as np
import pytest

from repro.runtime import BACKENDS, FingerprintCache, Runtime, fingerprint

CALLS = []


def _square(shared, task):
    # Module-level so the process backend can pickle it. ``CALLS`` only
    # records in-process (serial backend) invocations, which is what the
    # dedup/caching assertions below run on.
    CALLS.append(task)
    return float(task) ** 2 + shared


def _key(task):
    return fingerprint("map_cached-test", task)


class TestMapCached:
    def test_results_match_plain_map(self):
        with Runtime(cache=True) as rt:
            cached = rt.map_cached(_square, [3, 1, 2], key_fn=_key, shared=0.5)
        with Runtime() as rt:
            plain = rt.map(_square, [3, 1, 2], shared=0.5)
        assert cached == plain

    def test_repeated_keys_evaluate_once(self):
        CALLS.clear()
        with Runtime(cache=True) as rt:
            out = rt.map_cached(_square, [4, 4, 4, 2], key_fn=_key, shared=0.0)
        assert out == [16.0, 16.0, 16.0, 4.0]
        assert sorted(CALLS) == [2, 4]

    def test_second_batch_is_free(self):
        cache = FingerprintCache()
        CALLS.clear()
        with Runtime(cache=cache) as rt:
            rt.map_cached(_square, [1, 2, 3], key_fn=_key, shared=0.0)
            first = list(CALLS)
            rt.map_cached(_square, [3, 2, 1, 5], key_fn=_key, shared=0.0)
        assert sorted(first) == [1, 2, 3]
        assert sorted(CALLS) == [1, 2, 3, 5]  # only the new task ran
        assert cache.stats.hits >= 3

    def test_zero_valued_results_still_cache(self):
        CALLS.clear()
        with Runtime(cache=True) as rt:
            assert rt.map_cached(_square, [0], key_fn=_key, shared=0.0) == [0.0]
            assert rt.map_cached(_square, [0], key_fn=_key, shared=0.0) == [0.0]
        assert CALLS == [0]

    def test_without_cache_degrades_to_map(self):
        with Runtime() as rt:
            out = rt.map_cached(_square, [2, 2], key_fn=_key, shared=0.0)
        assert out == [4.0, 4.0]

    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_bitwise_identical_across_backends(self, backend):
        tasks = list(np.linspace(0.1, 2.3, 9)) * 2
        with Runtime(backend="serial", cache=True) as rt:
            want = rt.map_cached(_square, tasks, key_fn=_key, shared=1.0)
        with Runtime(backend=backend, max_workers=2, cache=True) as rt:
            got = rt.map_cached(_square, tasks, key_fn=_key, shared=1.0)
        assert [float(v).hex() for v in got] == [float(v).hex() for v in want]
