"""Cancellation-protocol tests: long scoring jobs abort cleanly."""

import pytest

from repro.runtime import (
    BACKENDS,
    CancellationToken,
    JobCancelled,
    ProgressRecorder,
    Runtime,
    cancel_after,
)


def _slow_square(shared, task):
    return task * task


@pytest.mark.parametrize("backend", BACKENDS)
class TestExecutorCancellation:
    def test_pretripped_token_aborts_before_work(self, backend):
        token = CancellationToken()
        token.cancel()
        with Runtime(backend=backend, max_workers=2,
                     cancel=token) as runtime:
            with pytest.raises(JobCancelled):
                runtime.map(_slow_square, range(50), stage="squares")

    def test_mid_job_cancellation(self, backend):
        token = CancellationToken()
        with Runtime(backend=backend, max_workers=2, cancel=token,
                     progress=cancel_after(token, 2),
                     chunk_size=1) as runtime:
            with pytest.raises(JobCancelled):
                runtime.map(_slow_square, range(200), stage="squares")


class TestEstimatorCancellation:
    def test_shapley_job_aborts_and_reports_partial_cost(self, tiny_game):
        from repro.importance import MonteCarloShapley, Utility
        from repro.ml import KNeighborsClassifier

        token = CancellationToken()
        recorder = ProgressRecorder()

        def progress(event):
            recorder(event)
            if event.completed >= 2:
                token.cancel()

        with Runtime(backend="serial", cancel=token, progress=progress,
                     chunk_size=1) as runtime:
            utility = Utility(KNeighborsClassifier(3), *tiny_game,
                              runtime=runtime)
            estimator = MonteCarloShapley(n_permutations=50,
                                          truncation_tol=0.0, seed=0)
            with pytest.raises(JobCancelled):
                estimator.score(utility)
        # Some work happened before the abort, and it was accounted for.
        assert recorder.last is not None
        assert utility.runtime.timings.total_seconds() >= 0.0


@pytest.fixture()
def tiny_game():
    import numpy as np

    from repro.datasets import make_blobs

    X, y = make_blobs(40, n_features=3, centers=2, seed=0)
    return X[:25], y[:25], X[25:], y[25:]
