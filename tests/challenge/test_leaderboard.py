"""Unit tests for the challenge leaderboard."""

from repro.challenge import Leaderboard


class TestLeaderboard:
    def test_ranks_by_score(self):
        board = Leaderboard(baseline=0.5)
        board.record("alice", 0.8, cleaned=20)
        board.record("bob", 0.9, cleaned=20)
        standings = board.standings()
        assert standings[0].participant == "bob"

    def test_ties_broken_by_fewer_cleaned(self):
        board = Leaderboard()
        board.record("alice", 0.8, cleaned=30)
        board.record("bob", 0.8, cleaned=10)
        assert board.standings()[0].participant == "bob"

    def test_best_entry_per_participant(self):
        board = Leaderboard()
        board.record("alice", 0.6, cleaned=10)
        board.record("alice", 0.9, cleaned=20)
        board.record("alice", 0.7, cleaned=5)
        standings = board.standings()
        assert len(standings) == 1
        assert standings[0].score == 0.9

    def test_winner_empty_board(self):
        assert Leaderboard().winner() is None

    def test_render_contains_baseline_and_markers(self):
        board = Leaderboard(baseline=0.5)
        board.record("alice", 0.8, cleaned=20)
        text = board.render()
        assert "alice" in text
        assert "baseline" in text
        assert "*" in text  # beat-baseline marker
