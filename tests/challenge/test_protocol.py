"""Unit tests for the data-debugging challenge protocol."""

import numpy as np
import pytest

from repro.challenge import make_challenge
from repro.core.exceptions import BudgetExhaustedError, ValidationError


@pytest.fixture(scope="module")
def challenge():
    return make_challenge(n=150, budget=25, seed=31)


class TestMakeChallenge:
    def test_bundle_contents(self, challenge):
        assert len(challenge.train_df) > 0
        assert len(challenge.valid_df) > 0
        assert challenge.n_errors > 0
        assert 0.0 <= challenge.oracle.baseline_score <= 1.0

    def test_train_data_is_actually_dirty(self, challenge):
        """The disclosed error count must reflect real corruptions."""
        assert challenge.n_errors >= 10


class TestChallengeOracle:
    def test_submission_returns_score_and_records_history(self, challenge):
        oracle = challenge.oracle
        rows = challenge.train_df.row_ids[:5]
        score = oracle.submit(rows, participant="tester")
        assert 0.0 <= score <= 1.0
        assert oracle.history[-1]["participant"] == "tester"
        assert oracle.cleaned_count == 5

    def test_repeat_rows_free(self, challenge):
        oracle = challenge.oracle
        rows = challenge.train_df.row_ids[:5]
        before = oracle.cleaned_count
        oracle.submit(rows)
        assert oracle.cleaned_count == before

    def test_budget_enforced_without_partial_application(self):
        challenge = make_challenge(n=100, budget=5, seed=32)
        oracle = challenge.oracle
        with pytest.raises(BudgetExhaustedError):
            oracle.submit(challenge.train_df.row_ids[:10])
        assert oracle.cleaned_count == 0  # nothing applied

    def test_unknown_row_rejected(self, challenge):
        with pytest.raises(ValidationError):
            challenge.oracle.submit([10**9])

    def test_prioritized_cleaning_beats_baseline(self):
        """Cleaning the KNN-Shapley bottom rows should beat the dirty
        baseline on the hidden test set."""
        import repro as nde

        challenge = make_challenge(n=250, budget=40, seed=33)
        values = nde.knn_shapley_values(challenge.train_df,
                                        validation=challenge.valid_df)
        worst = challenge.train_df.row_ids[np.argsort(values)[:40]]
        score = challenge.oracle.submit(worst, participant="shapley")
        assert score >= challenge.oracle.baseline_score - 0.02
