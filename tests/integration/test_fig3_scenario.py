"""Integration test: the Figure-3 pipeline-debugging scenario.

Builds the letters + side-tables pipeline of the paper, injects label
errors into the *source* table, computes Datascope importances via
provenance, and verifies that removing the worst source rows improves
downstream accuracy (the paper reports +0.027)."""

import numpy as np
import pytest

import repro as nde
from repro.datasets import make_hiring_tables
from repro.errors import inject_label_errors
from repro.ml import (
    ColumnTransformer,
    LogisticRegression,
    OneHotEncoder,
    Pipeline,
    SimpleImputer,
    StandardScaler,
)
from repro.pipelines import (
    DataPipeline,
    datascope_importance,
    remove_and_evaluate,
    show_query_plan,
    source,
)
from repro.pipelines.datascope import rank_source_rows
from repro.text import SentenceEmbedder


@pytest.fixture(scope="module")
def scenario():
    letters, jobs, social = make_hiring_tables(320, seed=41)
    train, valid = letters.split([0.75, 0.25], seed=42)
    dirty, report = inject_label_errors(train, column="sentiment",
                                        fraction=0.15, seed=43)
    encoder = ColumnTransformer([
        ("text", SentenceEmbedder(dim=32), "letter_text"),
        ("num", Pipeline([("imp", SimpleImputer()),
                          ("sc", StandardScaler())]),
         ["years_experience", "employer_rating"]),
        ("deg", OneHotEncoder(), "degree"),
        ("tw", "passthrough", "has_twitter"),
    ])
    plan = (source("train_df")
            .join(source("jobdetail_df"), on="job_id")
            .join(source("social_df"), on="person_id")
            .map_column("has_twitter",
                        lambda r: 1.0 if r["twitter"] is not None else 0.0)
            .drop(["person_id", "job_id", "twitter", "sector", "seniority",
                   "salary_band", "followers", "linkedin_connections"])
            .encode(encoder, label="sentiment"))
    sources = {"train_df": dirty, "jobdetail_df": jobs, "social_df": social}
    pipeline = DataPipeline(plan)
    result = pipeline.run(sources, provenance=True)
    X_valid, y_valid = result.apply(dict(sources, train_df=valid))
    return {"plan": plan, "pipeline": pipeline, "sources": sources,
            "result": result, "valid": valid, "X_valid": X_valid,
            "y_valid": y_valid, "report": report}


class TestFigure3Scenario:
    def test_query_plan_rendering(self, scenario):
        text = show_query_plan(scenario["plan"])
        for fragment in ("Source(train_df)", "Source(jobdetail_df)",
                         "Source(social_df)", "Join", "Encode"):
            assert fragment in text

    def test_provenance_connects_output_to_sources(self, scenario):
        provenance = scenario["result"].provenance
        assert set(provenance.sources()) == {
            "train_df", "jobdetail_df", "social_df"}

    def test_datascope_finds_source_errors(self, scenario):
        importances = datascope_importance(
            scenario["result"], source="train_df",
            X_valid=scenario["X_valid"], y_valid=scenario["y_valid"])
        worst = rank_source_rows(importances, 36)
        flipped = scenario["report"].row_ids()
        hits = len(set(worst) & flipped)
        assert hits / 36 >= 0.3  # ~2x the 15% base rate

    def test_prioritized_removal_beats_random_removal(self, scenario):
        """Removing the Datascope-worst source rows must beat removing the
        same number of random rows (averaged over seeds) — the actionable
        claim behind Figure 3's +0.027."""
        importances = datascope_importance(
            scenario["result"], source="train_df",
            X_valid=scenario["X_valid"], y_valid=scenario["y_valid"], k=20)
        worst = rank_source_rows(importances, 36)
        prioritized = remove_and_evaluate(
            scenario["pipeline"], scenario["sources"], source="train_df",
            row_ids=worst, model=LogisticRegression(max_iter=80),
            valid_frame=scenario["valid"])

        train = scenario["sources"]["train_df"]
        random_deltas = []
        for seed in range(3):
            rng = np.random.default_rng(seed)
            random_rows = rng.choice(train.row_ids, size=36, replace=False)
            outcome = remove_and_evaluate(
                scenario["pipeline"], scenario["sources"], source="train_df",
                row_ids=random_rows, model=LogisticRegression(max_iter=80),
                valid_frame=scenario["valid"])
            random_deltas.append(outcome["delta"])
        assert prioritized["delta"] >= np.mean(random_deltas) - 0.01
