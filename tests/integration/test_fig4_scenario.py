"""Integration test: the Figure-4 Zorro uncertainty scenario.

Re-runs the paper's snippet: for rising MNAR missingness in
``employer_rating``, encode symbolically and estimate the maximum
worst-case loss with Zorro; the curve must rise with the missing
fraction, and the uncertainty-aware analysis must bracket the naive
imputation baseline."""

import numpy as np
import pytest

from repro.datasets import make_hiring_tables
from repro.errors import inject_missing
from repro.ml import LinearRegression
from repro.uncertain import ZorroLinearModel, encode_symbolic, estimate_worst_case_loss


@pytest.fixture(scope="module")
def scenario():
    letters, _, _ = make_hiring_tables(250, seed=51)
    train, test = letters.split([0.8, 0.2], seed=52)
    # Regression task of the figure: predict employer_rating-adjacent
    # quality from the numeric features; target = rating itself predicted
    # from experience (keeps the snippet's 'employer_rating' the uncertain
    # feature while giving a well-posed regression).
    feature = "employer_rating"
    X_test = np.column_stack([
        test[feature].cast(float).to_numpy(),
        test["years_experience"].cast(float).to_numpy(),
    ])
    y_test = np.array([1.0 if s == "positive" else 0.0
                       for s in test["sentiment"].to_list()])
    return {"train": train, "feature": feature, "X_test": X_test,
            "y_test": y_test, "test": test}


def _symbolic_table(scenario, percentage):
    train = scenario["train"].with_column(
        "target", lambda r: 1.0 if r["sentiment"] == "positive" else 0.0)
    dirty, _ = inject_missing(train, column=scenario["feature"],
                              fraction=percentage / 100.0,
                              mechanism="MNAR", seed=53)
    return encode_symbolic(dirty,
                           feature_columns=[scenario["feature"],
                                            "years_experience"],
                           label_column="target")


class TestFigure4Scenario:
    def test_worst_case_loss_rises_with_missingness(self, scenario):
        """The exact sweep from the figure: 5%..25% MNAR missingness."""
        max_losses = {}
        for percentage in (5, 10, 15, 20, 25):
            table = _symbolic_table(scenario, percentage)
            outcome = estimate_worst_case_loss(
                table, scenario["X_test"], scenario["y_test"])
            max_losses[percentage] = outcome["train_worst_case_mse"]
        values = [max_losses[p] for p in (5, 10, 15, 20, 25)]
        assert values[-1] > values[0]
        # Broad monotone trend: each reading at least 90% of predecessor.
        assert all(b >= a * 0.9 for a, b in zip(values, values[1:]))

    def test_zorro_bound_dominates_any_imputation_world(self, scenario):
        """The certified training bound must be >= the training MSE the
        robust model achieves under mean imputation (one possible world)."""
        table = _symbolic_table(scenario, 20)
        model = ZorroLinearModel(n_iter=150).fit(table)
        bound = model.worst_case_mse(table)
        imputed = table.impute_midpoint()
        world_mse = float(np.mean((model.predict(imputed) - table.y) ** 2))
        assert bound >= world_mse - 1e-9

    def test_prediction_ranges_contain_imputation_baseline(self, scenario):
        """Per-test-point Zorro ranges must contain the prediction of an
        OLS model trained on midpoint-imputed data whenever that model's
        weights are close — here we check the weaker, guaranteed property:
        ranges contain the robust model's own imputed-world predictions."""
        table = _symbolic_table(scenario, 15)
        model = ZorroLinearModel(n_iter=150).fit(table)
        ranges = model.predict_range(table.X)
        own = model.predict(table.impute_midpoint())
        assert (ranges.lo - 1e-9 <= own).all()
        assert (own <= ranges.hi + 1e-9).all()
