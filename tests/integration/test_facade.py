"""Integration tests for the nde.* facade (the paper's snippet API)."""

import numpy as np
import pytest

import repro as nde
from repro.datasets import make_hiring_tables


class TestFigure4Facade:
    @pytest.fixture(scope="class")
    def frames(self):
        letters, _, _ = make_hiring_tables(150, seed=9)
        train = letters.with_column(
            "target", lambda r: 1.0 if r["sentiment"] == "positive" else 0.0)
        return train, train.take(range(25))

    def test_encode_symbolic_injects_requested_missingness(self, frames):
        train, _ = frames
        table = nde.encode_symbolic(train,
                                    uncertain_feature="employer_rating",
                                    missing_percentage=20,
                                    missingness="MNAR")
        rating_column = table.columns.index("employer_rating")
        missing = table.missing_mask[:, rating_column].sum()
        assert missing == round(0.2 * len(train))
        assert "person_id" not in table.columns  # ids excluded

    def test_estimate_with_zorro_accepts_test_frame(self, frames):
        train, test = frames
        table = nde.encode_symbolic(train,
                                    uncertain_feature="employer_rating",
                                    missing_percentage=10)
        loss = nde.estimate_with_zorro(table, test)
        assert loss > 0

    def test_estimate_with_zorro_matrix_requires_labels(self, frames):
        train, test = frames
        table = nde.encode_symbolic(train,
                                    uncertain_feature="employer_rating",
                                    missing_percentage=10)
        X_test = test.select(table.columns).to_numpy()
        with pytest.raises(ValueError):
            nde.estimate_with_zorro(table, X_test)

    def test_visualize_uncertainty_prints_bars(self, capsys):
        nde.visualize_uncertainty({5: 0.1, 25: 0.3}, "employer_rating")
        out = capsys.readouterr().out
        assert "employer_rating" in out
        assert "#" in out
        assert "25%" in out

    def test_full_figure4_loop(self, frames):
        """The paper's loop, verbatim shape: losses rise with missingness."""
        train, test = frames
        max_losses = {}
        for percentage in (5, 25):
            table = nde.encode_symbolic(
                train, uncertain_feature="employer_rating",
                missing_percentage=percentage, missingness="MNAR")
            max_losses[percentage] = nde.estimate_with_zorro(table, test)
        assert max_losses[25] > max_losses[5]
