"""Integration test: the full Figure-2 hands-on scenario.

Runs the paper's code snippet end to end — load letters, inject label
errors, measure degraded accuracy, rank by KNN-Shapley, clean the lowest
tuples through the oracle, and verify the documented dynamics.
"""

import numpy as np
import pytest

import repro as nde
from repro.cleaning import CleaningOracle


@pytest.fixture(scope="module")
def scenario():
    train_df, valid_df, test_df = nde.load_recommendation_letters(400, seed=0)
    train_df_err, report = nde.inject_labelerrors(train_df, fraction=0.12,
                                                  seed=100)
    return {"train": train_df, "dirty": train_df_err, "valid": valid_df,
            "report": report}


class TestFigure2Scenario:
    def test_errors_hurt_relative_to_truth(self, scenario):
        acc_truth = nde.evaluate_model(scenario["train"],
                                       validation=scenario["valid"])
        acc_dirty = nde.evaluate_model(scenario["dirty"],
                                       validation=scenario["valid"])
        assert acc_dirty <= acc_truth + 0.01

    def test_importance_finds_injected_errors(self, scenario):
        importances = nde.knn_shapley_values(scenario["dirty"],
                                             validation=scenario["valid"],
                                             k=10)
        lowest = scenario["dirty"].row_ids[np.argsort(importances)[:48]]
        detection = scenario["report"].detection_scores(lowest)
        # Clearly better than the 12% base rate of random flagging.
        assert detection["precision"] >= 0.2
        assert detection["recall"] >= 0.25

    def test_prioritized_cleaning_recovers_accuracy(self, scenario):
        """The paper's headline: 0.76 -> 0.79 after cleaning the bottom
        tuples. We assert the direction (and see EXPERIMENTS.md for the
        measured numbers, which land within a point of the paper's)."""
        acc_dirty = nde.evaluate_model(scenario["dirty"],
                                       validation=scenario["valid"])
        importances = nde.knn_shapley_values(scenario["dirty"],
                                             validation=scenario["valid"],
                                             k=10)
        lowest = scenario["dirty"].row_ids[np.argsort(importances)[:48]]
        oracle = CleaningOracle(scenario["train"])
        cleaned = oracle.clean(scenario["dirty"], lowest)
        acc_cleaned = nde.evaluate_model(cleaned,
                                         validation=scenario["valid"])
        assert acc_cleaned >= acc_dirty

    def test_pretty_print_runs(self, scenario, capsys):
        nde.pretty_print(scenario["dirty"].head(3))
        out = capsys.readouterr().out
        assert "letter_text" in out
