"""Cross-module integration: challenge with pipeline-based strategies,
iterative cleaning over a pipeline, and mixed error types."""

import numpy as np
import pytest

import repro as nde
from repro.challenge import Leaderboard, make_challenge
from repro.cleaning import CleaningOracle, IterativeCleaner
from repro.datasets import make_hiring_tables
from repro.errors import inject_label_errors, inject_missing
from repro.importance import confident_learning_scores
from repro.ml import KNeighborsClassifier, LogisticRegression


class TestChallengeWithLeaderboard:
    def test_full_challenge_round(self):
        challenge = make_challenge(n=200, budget=30, seed=61)
        board = Leaderboard(baseline=challenge.oracle.baseline_score)

        values = nde.knn_shapley_values(challenge.train_df,
                                        validation=challenge.valid_df)
        worst = challenge.train_df.row_ids[np.argsort(values)[:30]]
        score = challenge.oracle.submit(worst, participant="shapley")
        board.record("shapley", score, challenge.oracle.cleaned_count)

        standings = board.standings()
        assert standings[0].participant == "shapley"
        assert "shapley" in board.render()


class TestIterativeCleaningOverFacade:
    def test_iterative_cleaner_on_letters(self):
        train, valid, _ = nde.load_recommendation_letters(250, seed=62)
        dirty, _ = nde.inject_labelerrors(train, fraction=0.2, seed=63)

        encoder_state = {}

        def encode(frame):
            from repro.core.api import default_letter_encoder
            from repro.ml.base import clone

            encoder = clone(default_letter_encoder())
            features = [c for c in frame.columns if c != "sentiment"]
            X = encoder.fit_transform(frame.select(features))
            encoder_state["encoder"] = encoder
            encoder_state["features"] = features
            return X, np.array(frame["sentiment"].to_list())

        X_dummy, _ = encode(dirty)
        X_valid = encoder_state["encoder"].transform(
            valid.select(encoder_state["features"]))
        y_valid = np.array(valid["sentiment"].to_list())

        oracle = CleaningOracle(train)
        cleaner = IterativeCleaner(LogisticRegression(max_iter=80),
                                   "knn_shapley", oracle, encode=encode,
                                   batch=15)
        result = cleaner.run(dirty, X_valid, y_valid, n_rounds=2)
        assert len(result.scores) == 3
        assert result.final >= result.initial - 0.05


class TestMixedErrorTypes:
    def test_stacked_injections_tracked_in_one_report(self):
        letters, _, _ = make_hiring_tables(120, seed=64)
        dirty, report = inject_label_errors(letters, column="sentiment",
                                            fraction=0.1, seed=65)
        dirty, missing_report = inject_missing(dirty,
                                               column="employer_rating",
                                               fraction=0.1, seed=66)
        report.extend(missing_report)
        kinds = {e.kind for e in report.errors}
        assert kinds == {"label_flip", "missing_MCAR"}
        assert len(report.row_ids()) >= 20

    def test_confident_learning_agrees_with_shapley_on_worst(self):
        """Two independent detectors should overlap on the worst tuples —
        the cross-validation the tutorial encourages."""
        train, valid, _ = nde.load_recommendation_letters(300, seed=67)
        dirty, report = nde.inject_labelerrors(train, fraction=0.15, seed=68)

        shapley = nde.knn_shapley_values(dirty, validation=valid)

        from repro.core.api import default_letter_encoder
        from repro.ml.base import clone

        encoder = clone(default_letter_encoder())
        features = [c for c in dirty.columns if c != "sentiment"]
        X = encoder.fit_transform(dirty.select(features))
        y = np.array(dirty["sentiment"].to_list())
        cl_scores, _ = confident_learning_scores(
            LogisticRegression(max_iter=60), X, y, cv=4, seed=0)

        worst_shapley = set(np.argsort(shapley)[:30].tolist())
        worst_cl = set(np.argsort(cl_scores)[:30].tolist())
        assert len(worst_shapley & worst_cl) >= 8
