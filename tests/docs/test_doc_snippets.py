"""Execute every ``python`` code block in docs/ against the current API.

Each document's blocks run **in order, verbatim, in one shared
namespace** — exactly how a reader would type them — so any API drift
(renamed function, changed signature, wrong default) fails the suite
with the document name and block line number.

Two accommodations keep this a smoke test rather than a benchmark:

- The namespace is pre-seeded with the context the prose assumes
  (``my_encode_fn``, encoded validation arrays, toy ``X_train`` ...),
  mirroring the surrounding narrative.
- Dataset loaders are monkeypatched to produce *smaller* tables of the
  same schema, so retraining-heavy walkthrough blocks finish in seconds.
  Blocks still execute unmodified.

Blocks that are illustrative pseudo-code (API signatures, sample output)
must be fenced as ````text```` in the docs — only ````python```` fences
are executed.
"""

from pathlib import Path

import numpy as np
import pytest

DOCS_DIR = Path(__file__).resolve().parents[2] / "docs"

#: Rows for the shrunken tutorial tables (full docs use 300).
SMALL_N = 120


def extract_python_blocks(path: Path) -> list[tuple[int, str]]:
    """``(first_line_number, source)`` for every ```python fence."""
    blocks: list[tuple[int, str]] = []
    buf: list[str] | None = None
    start = 0
    for i, line in enumerate(path.read_text(encoding="utf-8").splitlines()):
        stripped = line.strip()
        if buf is None and stripped.startswith("```python"):
            buf, start = [], i + 2
        elif buf is not None and stripped.startswith("```"):
            blocks.append((start, "\n".join(buf)))
            buf = None
        elif buf is not None:
            buf.append(line)
    assert buf is None, f"unterminated code fence in {path.name}"
    return blocks


def run_document(path: Path, namespace: dict) -> int:
    """Exec each block; failures carry ``<doc>:L<line>`` filenames."""
    blocks = extract_python_blocks(path)
    assert blocks, f"{path.name} contains no python blocks"
    for lineno, source in blocks:
        code = compile(source, f"{path.name}:L{lineno}", "exec")
        exec(code, namespace)  # noqa: S102 - executing our own docs
    return len(blocks)


@pytest.fixture()
def sandbox_cwd(tmp_path, monkeypatch):
    """Docs write relative paths (cache dirs, runlogs); keep them in tmp."""
    monkeypatch.chdir(tmp_path)
    return tmp_path


@pytest.fixture()
def small_hiring_data(monkeypatch):
    """Shrink the tutorial loaders; schema and split logic unchanged."""
    import repro
    from repro.datasets import hiring

    def small_letters(n: int = SMALL_N, **kwargs):
        return hiring.load_recommendation_letters(min(n, SMALL_N), **kwargs)

    def small_side(n: int = SMALL_N, **kwargs):
        return hiring.load_sidedata(min(n, SMALL_N), **kwargs)

    monkeypatch.setattr(repro, "load_recommendation_letters", small_letters)
    monkeypatch.setattr(repro, "load_sidedata", small_side)


def _blob_namespace() -> dict:
    """The toy arrays RUNTIME.md / OBSERVABILITY.md snippets reference."""
    from repro.datasets import make_blobs

    X, y = make_blobs(80, n_features=3, seed=0)
    return {"X_train": X[:56], "y_train": y[:56],
            "X_valid": X[56:], "y_valid": y[56:]}


def _tutorial_namespace() -> dict:
    """The context TUTORIAL.md prose assumes before its first block."""
    import repro as nde
    from repro.core.api import _encode

    train_df, valid_df, _ = nde.load_recommendation_letters()
    _, _, encoder, feature_columns = _encode(train_df)

    def my_encode_fn(frame):
        X, y, _, _ = _encode(frame)
        return X, y

    X_valid = encoder.transform(valid_df.select(feature_columns))
    y_valid = np.array(valid_df["sentiment"].to_list())
    return {"my_encode_fn": my_encode_fn,
            "X_valid": X_valid, "y_valid": y_valid}


def test_runtime_md_snippets(sandbox_cwd):
    n_blocks = run_document(DOCS_DIR / "RUNTIME.md", _blob_namespace())
    assert n_blocks >= 3


def test_observability_md_snippets(sandbox_cwd):
    n_blocks = run_document(DOCS_DIR / "OBSERVABILITY.md", _blob_namespace())
    assert n_blocks >= 3


def test_performance_md_snippets(sandbox_cwd):
    n_blocks = run_document(DOCS_DIR / "PERFORMANCE.md", _blob_namespace())
    assert n_blocks >= 4


def test_serving_md_snippets(sandbox_cwd):
    n_blocks = run_document(DOCS_DIR / "SERVING.md", _blob_namespace())
    assert n_blocks >= 6


def test_tutorial_md_snippets(sandbox_cwd, small_hiring_data):
    n_blocks = run_document(DOCS_DIR / "TUTORIAL.md", _tutorial_namespace())
    assert n_blocks >= 8


def test_dataframe_md_snippets(sandbox_cwd):
    # The data-layer contract doc is self-contained: no seeded context.
    n_blocks = run_document(DOCS_DIR / "DATAFRAME.md", {})
    assert n_blocks >= 9


def test_data_md_snippets(sandbox_cwd):
    # Self-contained: builds its own arrays and shard directories.
    n_blocks = run_document(DOCS_DIR / "DATA.md", {})
    assert n_blocks >= 9


def test_pipeline_debugger_md_snippets(sandbox_cwd):
    # Self-contained: declares its own variants, data, and corpus entry.
    n_blocks = run_document(DOCS_DIR / "PIPELINE_DEBUGGER.md", {})
    assert n_blocks >= 6
