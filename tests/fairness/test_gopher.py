"""Unit tests for Gopher-style fairness explanations."""

import numpy as np
import pytest

from repro.core.exceptions import ValidationError
from repro.datasets import make_census
from repro.fairness import GopherExplainer, equalized_odds_difference
from repro.ml import ColumnTransformer, LogisticRegression, OneHotEncoder


@pytest.fixture(scope="module")
def biased_setting():
    df, biased_ids = make_census(500, bias_fraction=0.5, seed=13)
    train, valid = df.split([0.7, 0.3], seed=14)
    encoder = ColumnTransformer([
        ("num", "passthrough", ["age", "education_years", "hours_per_week"]),
        ("grp", OneHotEncoder(), "group"),
    ])
    X_train = encoder.fit_transform(train)
    X_valid = encoder.transform(valid)
    return {
        "train": train, "X_train": X_train, "X_valid": X_valid,
        "y_valid": np.array(valid["income"].to_list()),
        "groups_valid": np.array(valid["group"].to_list()),
        "biased_ids": set(int(r) for r in biased_ids),
    }


@pytest.fixture(scope="module")
def explanations(biased_setting):
    explainer = GopherExplainer(LogisticRegression(max_iter=60),
                                equalized_odds_difference,
                                max_depth=2, min_support=0.02,
                                max_support=0.5, n_bins=2)
    return explainer.explain(
        biased_setting["train"],
        feature_matrix=biased_setting["X_train"],
        label_column="income", group_column="group",
        X_valid=biased_setting["X_valid"],
        y_valid=biased_setting["y_valid"],
        groups_valid=biased_setting["groups_valid"], top_k=5)


class TestGopherExplainer:
    def test_returns_ranked_explanations(self, explanations):
        assert 1 <= len(explanations) <= 5
        biases = [e.bias_after for e in explanations]
        assert biases == sorted(biases)

    def test_best_explanation_reduces_bias(self, explanations):
        best = explanations[0]
        assert best.bias_after < best.bias_before

    def test_best_explanation_targets_the_biased_group(self, explanations):
        """The injected bias lives in groupB's labels, so the top
        explanation should mention the group column."""
        top_predicates = " ".join(" ".join(e.predicates)
                                  for e in explanations[:3])
        assert "group" in top_predicates

    def test_responsibility_computation(self, explanations):
        best = explanations[0]
        expected = (best.bias_before - best.bias_after) / best.bias_before
        assert best.responsibility == pytest.approx(expected)

    def test_describe_is_readable(self, explanations):
        text = explanations[0].describe()
        assert "remove [" in text and "bias" in text

    def test_depth_validated(self):
        with pytest.raises(ValidationError):
            GopherExplainer(LogisticRegression(), equalized_odds_difference,
                            max_depth=3)

    def test_misaligned_features_rejected(self, biased_setting):
        explainer = GopherExplainer(LogisticRegression(),
                                    equalized_odds_difference)
        with pytest.raises(ValidationError):
            explainer.explain(
                biased_setting["train"],
                feature_matrix=biased_setting["X_train"][:10],
                label_column="income", group_column="group",
                X_valid=biased_setting["X_valid"],
                y_valid=biased_setting["y_valid"],
                groups_valid=biased_setting["groups_valid"])
