"""Unit tests for label-bias reweighting."""

import numpy as np
import pytest

from repro.core.exceptions import ValidationError
from repro.datasets import make_census
from repro.fairness import reweigh_for_parity
from repro.ml import ColumnTransformer, LogisticRegression, OneHotEncoder


@pytest.fixture(scope="module")
def biased_arrays():
    # Group is part of the feature encoding, so the model can (and, under
    # the corrupted labels, will) use it — producing the clear selection
    # gap the reweighting is supposed to cancel.
    df, _ = make_census(500, bias_fraction=0.8, seed=17)
    encoder = ColumnTransformer([
        ("num", "passthrough", ["age", "education_years", "hours_per_week"]),
        ("grp", OneHotEncoder(), "group"),
    ])
    X = encoder.fit_transform(df)
    y = np.array(df["income"].to_list())
    groups = np.array(df["group"].to_list())
    return X, y, groups


class TestReweighForParity:
    def test_violation_shrinks(self, biased_arrays):
        X, y, groups = biased_arrays
        outcome = reweigh_for_parity(LogisticRegression(max_iter=60),
                                     X, y, groups, n_rounds=8, step=2.0)
        violations = outcome["violations"]
        assert violations[-1] < violations[0]

    def test_weights_mean_preserved(self, biased_arrays):
        X, y, groups = biased_arrays
        outcome = reweigh_for_parity(LogisticRegression(max_iter=60),
                                     X, y, groups, n_rounds=4)
        assert outcome["weights"].mean() == pytest.approx(1.0)

    def test_final_model_usable(self, biased_arrays):
        X, y, groups = biased_arrays
        outcome = reweigh_for_parity(LogisticRegression(max_iter=60),
                                     X, y, groups, n_rounds=3)
        predictions = outcome["model"].predict(X)
        assert predictions.shape == y.shape

    def test_three_groups_rejected(self, biased_arrays):
        X, y, _ = biased_arrays
        groups = np.array(["a", "b", "c"] * (len(y) // 3 + 1))[:len(y)]
        with pytest.raises(ValidationError):
            reweigh_for_parity(LogisticRegression(), X, y, groups)
