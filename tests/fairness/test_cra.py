"""Unit tests for consistent range approximation."""

import numpy as np
import pytest

from repro.core.exceptions import ValidationError
from repro.fairness.cra import (
    certify,
    demographic_parity_range,
    selection_rate_range,
)


class TestSelectionRateRange:
    def test_no_missing_is_point(self):
        r = selection_rate_range(3, 10, 0)
        assert r.lo == r.hi == pytest.approx(0.3)

    def test_missing_widens_both_directions(self):
        r = selection_rate_range(3, 10, 5)
        assert r.lo == pytest.approx(3 / 15)
        assert r.hi == pytest.approx(8 / 15)

    def test_contains_truth_for_any_completion(self):
        """Property: the true rate of any completed population lies in
        the range."""
        rng = np.random.default_rng(0)
        for _ in range(50):
            n_obs = int(rng.integers(1, 30))
            n_pos = int(rng.integers(0, n_obs + 1))
            missing = int(rng.integers(0, 10))
            hidden_pos = int(rng.integers(0, missing + 1))
            truth = (n_pos + hidden_pos) / (n_obs + missing)
            r = selection_rate_range(n_pos, n_obs, missing)
            assert r.lo - 1e-12 <= truth <= r.hi + 1e-12

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValidationError):
            selection_rate_range(5, 3, 0)
        with pytest.raises(ValidationError):
            selection_rate_range(1, 3, -1)


class TestDemographicParityRange:
    @pytest.fixture()
    def observed(self):
        y_pred = np.array([1, 1, 1, 0, 1, 0, 0, 0])
        groups = np.array(["a"] * 4 + ["b"] * 4)
        return y_pred, groups  # rates: a=0.75, b=0.25, gap 0.5

    def test_point_estimate_without_missingness(self, observed):
        y_pred, groups = observed
        result = demographic_parity_range(y_pred, groups)
        assert result["gap_lo"] == result["gap_hi"] == \
            pytest.approx(result["observed_gap"]) == pytest.approx(0.5)

    def test_missingness_widens_range(self, observed):
        y_pred, groups = observed
        result = demographic_parity_range(y_pred, groups,
                                          max_missing={"b": 4})
        assert result["gap_lo"] < 0.5 < result["gap_hi"]

    def test_overlapping_ranges_allow_zero_gap(self, observed):
        y_pred, groups = observed
        result = demographic_parity_range(y_pred, groups,
                                          max_missing={"a": 8, "b": 8})
        assert result["gap_lo"] == 0.0

    def test_three_groups_rejected(self):
        with pytest.raises(ValidationError):
            demographic_parity_range([1, 0, 1], ["a", "b", "c"])


class TestCertify:
    def test_certified_fair(self):
        assert certify({"gap_lo": 0.0, "gap_hi": 0.05}, 0.1) == "fair"

    def test_certified_unfair(self):
        assert certify({"gap_lo": 0.3, "gap_hi": 0.6}, 0.1) == "unfair"

    def test_unknown_when_range_straddles(self):
        assert certify({"gap_lo": 0.05, "gap_hi": 0.4}, 0.1) == "unknown"

    def test_bias_budget_flips_verdict_to_unknown(self):
        """The CRA story: a dataset that looks fair point-wise cannot be
        *certified* fair once selection bias is admitted."""
        y_pred = np.array([1, 0] * 10)
        groups = np.array((["a", "a", "b", "b"] * 5))
        clean = demographic_parity_range(y_pred, groups)
        biased = demographic_parity_range(y_pred, groups,
                                          max_missing={"b": 15})
        assert certify(clean, 0.1) == "fair"
        assert certify(biased, 0.1) == "unknown"

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValidationError):
            certify({"gap_lo": 0.0, "gap_hi": 0.1}, -0.5)
