"""Unit tests for fairness metrics."""

import numpy as np
import pytest

from repro.core.exceptions import ValidationError
from repro.fairness import (
    demographic_parity_difference,
    equalized_odds_difference,
    group_rates,
    predictive_parity_difference,
)


class TestGroupRates:
    def test_per_group_statistics(self):
        y_true = np.array([1, 1, 0, 0, 1, 0])
        y_pred = np.array([1, 0, 0, 1, 1, 1])
        groups = np.array(["a", "a", "a", "b", "b", "b"])
        rates = group_rates(y_true, y_pred, groups, positive=1)
        assert rates["a"]["selection_rate"] == pytest.approx(1 / 3)
        assert rates["a"]["tpr"] == pytest.approx(1 / 2)
        assert rates["b"]["tpr"] == pytest.approx(1.0)
        assert rates["b"]["fpr"] == pytest.approx(1.0)

    def test_three_groups_rejected(self):
        with pytest.raises(ValidationError):
            group_rates([1, 0, 1], [1, 0, 1], ["a", "b", "c"])


class TestParityMetrics:
    def test_demographic_parity_zero_when_equal(self):
        y_pred = np.array([1, 0, 1, 0])
        groups = np.array(["a", "a", "b", "b"])
        assert demographic_parity_difference(y_pred, groups) == 0.0

    def test_demographic_parity_maximal_gap(self):
        y_pred = np.array([1, 1, 0, 0])
        groups = np.array(["a", "a", "b", "b"])
        assert demographic_parity_difference(y_pred, groups) == 1.0

    def test_equalized_odds_fair_classifier(self):
        y_true = np.array([1, 0, 1, 0])
        y_pred = y_true.copy()  # perfect predictions are trivially fair
        groups = np.array(["a", "a", "b", "b"])
        assert equalized_odds_difference(y_true, y_pred, groups) == 0.0

    def test_equalized_odds_detects_tpr_gap(self):
        y_true = np.array([1, 1, 1, 1])
        y_pred = np.array([1, 1, 0, 0])
        groups = np.array(["a", "a", "b", "b"])
        assert equalized_odds_difference(y_true, y_pred, groups) == 1.0

    def test_predictive_parity(self):
        y_true = np.array([1, 0, 1, 1])
        y_pred = np.array([1, 1, 1, 1])
        groups = np.array(["a", "a", "b", "b"])
        # PPV(a) = 0.5, PPV(b) = 1.0
        assert predictive_parity_difference(y_true, y_pred, groups) == \
            pytest.approx(0.5)

    def test_predictive_parity_undefined_without_positives(self):
        y_true = np.array([1, 0, 1, 0])
        y_pred = np.array([0, 0, 1, 1])
        groups = np.array(["a", "a", "b", "b"])
        with pytest.raises(ValidationError):
            predictive_parity_difference(y_true, y_pred, groups)
