"""Distribution-level error injectors: out-of-distribution rows, selection
bias, duplicates and representational inconsistencies."""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ValidationError
from repro.core.rng import ensure_rng
from repro.core.validation import check_fraction
from repro.dataframe.column import Column
from repro.dataframe.frame import DataFrame, concat_rows
from repro.errors.report import ErrorReport


def inject_out_of_distribution(frame: DataFrame, *, numeric_columns: list[str],
                               fraction: float = 0.05, shift: float = 8.0,
                               seed=None):
    """Append synthetic rows drawn far outside the observed numeric range.

    Non-numeric columns of the new rows are sampled from the existing
    values, so the rows look plausible until the numeric features are
    inspected. Returns ``(corrupted_frame, report)``; the report flags the
    appended rows with kind ``out_of_distribution``.
    """
    check_fraction(fraction, name="fraction")
    rng = ensure_rng(seed)
    n_new = int(round(fraction * len(frame)))
    if n_new == 0:
        return frame.copy(), ErrorReport()
    records = []
    for _ in range(n_new):
        template = frame.row(int(rng.integers(0, len(frame))))
        for column in numeric_columns:
            col = frame[column]
            if col.dtype.kind not in ("f", "i", "b"):
                raise ValidationError(f"column {column!r} must be numeric")
            values = col.cast(float).to_numpy()
            mean, std = np.nanmean(values), max(np.nanstd(values), 1e-9)
            sign = 1.0 if rng.uniform() < 0.5 else -1.0
            template[column] = float(mean + sign * shift * std)
        records.append(template)
    new_rows = DataFrame.from_records(records, columns=frame.columns)
    corrupted = concat_rows([frame.copy(), new_rows])
    report = ErrorReport()
    for rid in new_rows.row_ids:
        report.add(rid, "*", "out_of_distribution")
    return corrupted, report


def inject_selection_bias(frame: DataFrame, *, column: str, disfavored_value,
                          drop_fraction: float = 0.5, seed=None):
    """Under-sample rows carrying ``disfavored_value`` in ``column`` —
    the representation-bias setting (Figure 1's "biased" race column).

    Returns ``(biased_frame, dropped_row_ids)``.
    """
    check_fraction(drop_fraction, name="drop_fraction")
    rng = ensure_rng(seed)
    col = frame[column]
    members = np.flatnonzero(col == disfavored_value)
    if len(members) == 0:
        raise ValidationError(
            f"no rows have {column!r} == {disfavored_value!r}"
        )
    n_drop = int(round(drop_fraction * len(members)))
    dropped = rng.choice(members, size=n_drop, replace=False) if n_drop else \
        np.array([], dtype=int)
    dropped_ids = frame.row_ids[dropped].copy()
    keep = np.ones(len(frame), dtype=bool)
    keep[dropped] = False
    return frame.take(keep), dropped_ids


def inject_duplicates(frame: DataFrame, *, fraction: float = 0.05, seed=None):
    """Append near-duplicate copies of randomly chosen rows.

    Duplicates get fresh row ids; the report maps each duplicate to kind
    ``duplicate`` (original id recorded in the ``original`` field).
    """
    check_fraction(fraction, name="fraction")
    rng = ensure_rng(seed)
    n_new = int(round(fraction * len(frame)))
    if n_new == 0:
        return frame.copy(), ErrorReport()
    chosen = rng.choice(len(frame), size=n_new, replace=True)
    dup_rows = DataFrame.from_records(
        [frame.row(int(i)) for i in chosen], columns=frame.columns
    )
    corrupted = concat_rows([frame.copy(), dup_rows])
    report = ErrorReport()
    for rid, src in zip(dup_rows.row_ids, chosen):
        report.add(rid, "*", "duplicate", original=int(frame.row_ids[int(src)]))
    return corrupted, report


def inject_inconsistencies(frame: DataFrame, *, column: str,
                           fraction: float = 0.1, seed=None):
    """Perturb string representations (casing, padding) without changing
    meaning — the errors fuzzy joins are meant to survive."""
    check_fraction(fraction, name="fraction")
    col = frame[column]
    if col.dtype.kind not in ("U", "O"):
        raise ValidationError(f"column {column!r} must be a string column")
    rng = ensure_rng(seed)
    valid = np.flatnonzero(~col.is_null())
    n = int(round(fraction * len(frame)))
    n = min(n, len(valid))
    positions = rng.choice(valid, size=n, replace=False)
    transforms = [str.upper, str.title, lambda s: f"  {s}", lambda s: f"{s}  ",
                  lambda s: s.replace(" ", "  ")]
    # Scatter into a copied backing array rather than rebuilding the
    # column from a Python list; only the chosen positions are touched.
    values = col.values.astype(object)
    report = ErrorReport()
    for p in positions:
        original = values[int(p)]
        transform = transforms[int(rng.integers(0, len(transforms)))]
        mangled = transform(original)
        report.add(frame.row_ids[p], column, "inconsistency",
                   original=original, corrupted=mangled)
        values[int(p)] = mangled
    corrupted = frame.copy()
    corrupted[column] = Column._from_arrays(values, col.mask.copy())
    return corrupted, report
