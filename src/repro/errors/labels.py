"""Label-error injection (Figure 2: ``nde.inject_labelerrors``)."""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ValidationError
from repro.core.rng import ensure_rng
from repro.core.validation import check_fraction
from repro.dataframe.frame import DataFrame
from repro.errors.report import ErrorReport


def _flip_targets(labels: np.ndarray, positions: np.ndarray, classes: list,
                  rng: np.random.Generator) -> list:
    """For each position, pick a wrong class uniformly at random."""
    flipped = []
    for p in positions:
        current = labels[p]
        alternatives = [c for c in classes if c != current]
        flipped.append(alternatives[int(rng.integers(0, len(alternatives)))])
    return flipped


def inject_label_errors(frame: DataFrame, *, column: str, fraction: float = 0.1,
                        class_conditional: dict | None = None, seed=None):
    """Flip a fraction of label cells to a different class.

    Parameters
    ----------
    frame:
        Training data (unchanged; a corrupted copy is returned).
    column:
        Label column name.
    fraction:
        Fraction of rows to corrupt (uniformly at random).
    class_conditional:
        Optional ``{class_value: fraction}`` mapping for asymmetric noise
        (e.g. flip only positives — the label-*bias* setting of
        references [36, 89]). Overrides ``fraction``.
    seed:
        RNG seed.

    Returns
    -------
    (corrupted_frame, report):
        The corrupted copy and the ground-truth :class:`ErrorReport`.
    """
    rng = ensure_rng(seed)
    labels = frame[column]
    if labels.null_count():
        raise ValidationError(f"label column {column!r} already has nulls")
    values = labels.to_list()
    classes = labels.unique()
    if len(classes) < 2:
        raise ValidationError("need at least two classes to flip labels")

    if class_conditional is not None:
        positions = []
        for cls, frac in class_conditional.items():
            check_fraction(frac, name=f"fraction for class {cls!r}")
            members = [i for i, v in enumerate(values) if v == cls]
            n_flip = int(round(frac * len(members)))
            positions.extend(rng.choice(members, size=n_flip, replace=False).tolist()
                             if n_flip else [])
        positions = np.array(sorted(positions), dtype=int)
    else:
        check_fraction(fraction, name="fraction")
        n_flip = int(round(fraction * len(frame)))
        positions = rng.choice(len(frame), size=n_flip, replace=False)

    flipped = _flip_targets(np.array(values, dtype=object), positions, classes, rng)
    report = ErrorReport()
    out_values = list(values)
    for p, new in zip(positions, flipped):
        report.add(frame.row_ids[p], column, "label_flip",
                   original=values[p], corrupted=new)
        out_values[int(p)] = new
    corrupted = frame.copy()
    corrupted[column] = out_values
    return corrupted, report


def inject_label_errors_array(y, *, fraction: float = 0.1, seed=None):
    """Vector variant for numpy workflows.

    Returns ``(y_corrupted, flipped_indices)``.
    """
    check_fraction(fraction, name="fraction")
    y = np.asarray(y).copy()
    classes = np.unique(y)
    if len(classes) < 2:
        raise ValidationError("need at least two classes to flip labels")
    rng = ensure_rng(seed)
    n_flip = int(round(fraction * len(y)))
    positions = rng.choice(len(y), size=n_flip, replace=False)
    for p in positions:
        alternatives = classes[classes != y[p]]
        y[p] = alternatives[int(rng.integers(0, len(alternatives)))]
    return y, np.sort(positions)
