"""Synthetic data-error injection (Section 3.1: "inject synthetic noise").

Every injector takes a clean :class:`repro.dataframe.DataFrame` (or numpy
arrays for the vector variants), corrupts a controlled fraction of it, and
returns the corrupted data together with an :class:`ErrorReport` recording
exactly which cells were touched. The report is the ground truth against
which error-*detection* methods (:mod:`repro.importance`) are scored.
"""

from repro.errors.detectors import (
    detect_duplicates,
    detect_inconsistent_strings,
    detect_invalid_categories,
    detect_missing,
    detect_out_of_range,
    detect_outliers_zscore,
)
from repro.errors.distribution import (
    inject_duplicates,
    inject_inconsistencies,
    inject_out_of_distribution,
    inject_selection_bias,
)
from repro.errors.labels import inject_label_errors, inject_label_errors_array
from repro.errors.missing import inject_missing, inject_missing_array
from repro.errors.noise import inject_feature_noise, inject_outliers, inject_scaling_errors
from repro.errors.report import CellError, ErrorReport

__all__ = [
    "CellError",
    "ErrorReport",
    "inject_label_errors",
    "inject_label_errors_array",
    "inject_missing",
    "inject_missing_array",
    "inject_feature_noise",
    "inject_outliers",
    "inject_scaling_errors",
    "inject_out_of_distribution",
    "inject_selection_bias",
    "inject_duplicates",
    "inject_inconsistencies",
    "detect_missing",
    "detect_out_of_range",
    "detect_invalid_categories",
    "detect_outliers_zscore",
    "detect_duplicates",
    "detect_inconsistent_strings",
]
