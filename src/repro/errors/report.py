"""Ground-truth error bookkeeping shared by all injectors."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class CellError:
    """One corrupted cell: where, what kind, and the before/after values."""

    row_id: int
    column: str
    kind: str
    original: object = None
    corrupted: object = None


@dataclass
class ErrorReport:
    """The full record of an injection pass.

    Detection methods are evaluated against this: a flagged row counts as
    a hit if its id appears in :meth:`row_ids`.
    """

    errors: list[CellError] = field(default_factory=list)

    def add(self, row_id: int, column: str, kind: str,
            original=None, corrupted=None) -> None:
        self.errors.append(CellError(int(row_id), column, kind, original, corrupted))

    def extend(self, other: "ErrorReport") -> "ErrorReport":
        """Merge another report into this one (for stacked injections)."""
        self.errors.extend(other.errors)
        return self

    def __len__(self) -> int:
        return len(self.errors)

    def row_ids(self, kind: str | None = None) -> set[int]:
        """Distinct corrupted row ids, optionally filtered by error kind."""
        return {
            e.row_id for e in self.errors if kind is None or e.kind == kind
        }

    def by_column(self) -> dict[str, list[CellError]]:
        grouped: dict[str, list[CellError]] = {}
        for e in self.errors:
            grouped.setdefault(e.column, []).append(e)
        return grouped

    def originals_for(self, column: str) -> dict[int, object]:
        """row_id -> clean value, for use by a cleaning oracle."""
        return {e.row_id: e.original for e in self.errors if e.column == column}

    def detection_scores(self, flagged_row_ids) -> dict[str, float]:
        """Precision/recall of a flagged-row set against the ground truth."""
        flagged = {int(r) for r in np.atleast_1d(np.asarray(list(flagged_row_ids)))} \
            if not isinstance(flagged_row_ids, set) else {int(r) for r in flagged_row_ids}
        truth = self.row_ids()
        hits = len(flagged & truth)
        precision = hits / len(flagged) if flagged else 0.0
        recall = hits / len(truth) if truth else 0.0
        return {"precision": precision, "recall": recall, "hits": hits,
                "flagged": len(flagged), "corrupted": len(truth)}
