"""Rule-based error detectors — the classical complement to importance.

Data importance finds errors by their downstream *impact*; these
detectors find them by their *form* (Figure 1's invalid / missing /
inconsistent cells), with no model in the loop. Each detector returns the
set of suspicious row ids, so detector output plugs directly into the
cleaning oracles and detection-score machinery.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ValidationError
from repro.dataframe.frame import DataFrame


def detect_missing(frame: DataFrame, columns: list[str] | None = None) -> set[int]:
    """Row ids with a null in any of the given columns."""
    columns = columns or frame.columns
    suspicious: set[int] = set()
    for name in columns:
        mask = frame[name].is_null()
        suspicious.update(int(r) for r in frame.row_ids[mask])
    return suspicious


def detect_out_of_range(frame: DataFrame, *, column: str, low=None,
                        high=None) -> set[int]:
    """Row ids violating a domain constraint (e.g. ``age >= 0``)."""
    if low is None and high is None:
        raise ValidationError("provide at least one of low/high")
    col = frame[column]
    if col.dtype.kind not in ("f", "i", "b"):
        raise ValidationError(f"column {column!r} must be numeric")
    values = col.cast(float).to_numpy()
    bad = np.zeros(len(frame), dtype=bool)
    observed = ~np.isnan(values)
    if low is not None:
        bad |= observed & (values < low)
    if high is not None:
        bad |= observed & (values > high)
    return {int(r) for r in frame.row_ids[bad]}


def detect_invalid_categories(frame: DataFrame, *, column: str,
                              domain) -> set[int]:
    """Row ids whose category is outside the allowed ``domain``
    (Figure 1's "SKCX" typo for "SKCM")."""
    domain = set(domain)
    col = frame[column]
    bad = [i for i in range(len(frame))
           if col.get(i) is not None and col.get(i) not in domain]
    return {int(frame.row_ids[i]) for i in bad}


def detect_outliers_zscore(frame: DataFrame, *, column: str,
                           threshold: float = 4.0) -> set[int]:
    """Row ids whose value lies more than ``threshold`` robust z-scores
    from the median (robust: median/MAD, so the outliers themselves do
    not mask the estimate)."""
    if threshold <= 0:
        raise ValidationError("threshold must be positive")
    col = frame[column]
    if col.dtype.kind not in ("f", "i", "b"):
        raise ValidationError(f"column {column!r} must be numeric")
    values = col.cast(float).to_numpy()
    observed = ~np.isnan(values)
    median = np.median(values[observed])
    mad = np.median(np.abs(values[observed] - median))
    scale = 1.4826 * mad if mad > 0 else max(np.std(values[observed]), 1e-9)
    z = np.abs(values - median) / scale
    bad = observed & (z > threshold)
    return {int(r) for r in frame.row_ids[bad]}


def detect_duplicates(frame: DataFrame,
                      columns: list[str] | None = None) -> set[int]:
    """Row ids of every row whose selected-column tuple appears more than
    once (all copies are flagged; dedup policy is the caller's)."""
    columns = columns or frame.columns
    seen: dict[tuple, list[int]] = {}
    for i in range(len(frame)):
        key = tuple(frame[c].get(i) for c in columns)
        seen.setdefault(key, []).append(i)
    suspicious: set[int] = set()
    for positions in seen.values():
        if len(positions) > 1:
            suspicious.update(int(frame.row_ids[p]) for p in positions)
    return suspicious


def detect_inconsistent_strings(frame: DataFrame, *, column: str) -> set[int]:
    """Row ids whose string differs from another row only by casing or
    whitespace — the representational inconsistencies fuzzy joins paper
    over but exact joins silently drop."""
    col = frame[column]
    if col.dtype.kind not in ("U", "O"):
        raise ValidationError(f"column {column!r} must be a string column")
    groups: dict[str, list[int]] = {}
    for i in range(len(frame)):
        value = col.get(i)
        if value is None:
            continue
        normalized = " ".join(str(value).lower().split())
        groups.setdefault(normalized, []).append(i)
    suspicious: set[int] = set()
    for positions in groups.values():
        spellings = {col.get(p) for p in positions}
        if len(spellings) > 1:
            suspicious.update(int(frame.row_ids[p]) for p in positions)
    return suspicious
