"""Feature-noise injectors: gaussian noise, unit/scaling errors, outliers."""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ValidationError
from repro.core.rng import ensure_rng
from repro.core.validation import check_fraction
from repro.dataframe.frame import DataFrame
from repro.errors.report import ErrorReport


def _numeric_column(frame: DataFrame, column: str) -> np.ndarray:
    col = frame[column]
    if col.dtype.kind not in ("f", "i", "b"):
        raise ValidationError(f"column {column!r} must be numeric, is {col.dtype}")
    return col.cast(float).to_numpy()


def _choose_rows(frame: DataFrame, column: str, fraction: float, rng):
    check_fraction(fraction, name="fraction")
    valid = np.flatnonzero(~frame[column].is_null())
    n = int(round(fraction * len(frame)))
    if n > len(valid):
        raise ValidationError(f"cannot corrupt {n} cells; only {len(valid)} non-null")
    return rng.choice(valid, size=n, replace=False)


def inject_feature_noise(frame: DataFrame, *, column: str, fraction: float = 0.1,
                         scale: float = 1.0, seed=None):
    """Add gaussian noise (``scale`` × column std) to a fraction of cells."""
    rng = ensure_rng(seed)
    positions = _choose_rows(frame, column, fraction, rng)
    values = _numeric_column(frame, column)
    std = np.nanstd(values)
    std = std if std > 0 else 1.0
    report = ErrorReport()
    out = values.copy()
    for p in positions:
        noisy = float(out[p] + rng.normal(0.0, scale * std))
        report.add(frame.row_ids[p], column, "gaussian_noise",
                   original=float(values[p]), corrupted=noisy)
        out[p] = noisy
    corrupted = frame.copy()
    corrupted[column] = out
    return corrupted, report


def inject_scaling_errors(frame: DataFrame, *, column: str, fraction: float = 0.1,
                          factor: float = 100.0, seed=None):
    """Multiply a fraction of cells by ``factor`` — the classic unit error
    (metres vs centimetres, dollars vs cents)."""
    if factor == 1.0:
        raise ValidationError("factor=1.0 would inject no error")
    rng = ensure_rng(seed)
    positions = _choose_rows(frame, column, fraction, rng)
    values = _numeric_column(frame, column)
    report = ErrorReport()
    out = values.copy()
    for p in positions:
        scaled = float(out[p] * factor)
        report.add(frame.row_ids[p], column, "scaling_error",
                   original=float(values[p]), corrupted=scaled)
        out[p] = scaled
    corrupted = frame.copy()
    corrupted[column] = out
    return corrupted, report


def inject_outliers(frame: DataFrame, *, column: str, fraction: float = 0.05,
                    magnitude: float = 6.0, seed=None):
    """Replace a fraction of cells with extreme values
    (mean ± ``magnitude`` standard deviations, random sign)."""
    rng = ensure_rng(seed)
    positions = _choose_rows(frame, column, fraction, rng)
    values = _numeric_column(frame, column)
    mean, std = np.nanmean(values), np.nanstd(values)
    std = std if std > 0 else 1.0
    report = ErrorReport()
    out = values.copy()
    for p in positions:
        sign = 1.0 if rng.uniform() < 0.5 else -1.0
        extreme = float(mean + sign * magnitude * std * rng.uniform(1.0, 1.5))
        report.add(frame.row_ids[p], column, "outlier",
                   original=float(values[p]), corrupted=extreme)
        out[p] = extreme
    corrupted = frame.copy()
    corrupted[column] = out
    return corrupted, report
