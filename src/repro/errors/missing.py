"""Missing-value injection under the three classical mechanisms.

Figure 4 of the paper parameterizes Zorro's experiment by
``missingness="MNAR"``; we support all three mechanisms:

- **MCAR** — cells go missing uniformly at random.
- **MAR** — missingness probability depends on an *observed* conditioning
  column (rows with larger conditioning values are likelier to lose the
  target cell).
- **MNAR** — missingness depends on the *value being erased itself*
  (larger values are likelier to disappear), the hardest mechanism because
  imputation from observed data is biased by construction.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ValidationError
from repro.core.rng import ensure_rng
from repro.core.validation import check_fraction
from repro.dataframe.frame import DataFrame
from repro.errors.report import ErrorReport

_MECHANISMS = ("MCAR", "MAR", "MNAR")


def _select_positions(values: np.ndarray, n_missing: int, mechanism: str,
                      conditioning: np.ndarray | None,
                      rng: np.random.Generator) -> np.ndarray:
    n = len(values)
    if mechanism == "MCAR":
        return rng.choice(n, size=n_missing, replace=False)
    driver = values if mechanism == "MNAR" else conditioning
    ranks = np.argsort(np.argsort(driver, kind="stable")).astype(float)
    weights = ranks + 1.0  # linear-in-rank propensity: larger -> likelier
    weights = weights / weights.sum()
    return rng.choice(n, size=n_missing, replace=False, p=weights)


def inject_missing(frame: DataFrame, *, column: str, fraction: float = 0.1,
                   mechanism: str = "MCAR", conditioning_column: str | None = None,
                   seed=None):
    """Erase a fraction of one column's cells.

    Returns ``(corrupted_frame, report)``.
    """
    check_fraction(fraction, name="fraction")
    if mechanism not in _MECHANISMS:
        raise ValidationError(f"mechanism must be one of {_MECHANISMS}, got {mechanism!r}")
    if mechanism == "MAR" and conditioning_column is None:
        raise ValidationError("MAR requires conditioning_column")
    col = frame[column]
    already = col.is_null()
    candidates = np.flatnonzero(~already)
    n_missing = int(round(fraction * len(frame)))
    if n_missing > len(candidates):
        raise ValidationError(
            f"cannot erase {n_missing} cells; only {len(candidates)} non-null"
        )
    rng = ensure_rng(seed)

    values_numeric = col.cast(float).to_numpy()[candidates] \
        if col.dtype.kind in ("f", "i", "b") else None
    if mechanism == "MNAR" and values_numeric is None:
        raise ValidationError("MNAR requires a numeric target column")
    conditioning = None
    if mechanism == "MAR":
        cond_col = frame[conditioning_column]
        if cond_col.dtype.kind not in ("f", "i", "b"):
            raise ValidationError("conditioning column must be numeric")
        conditioning = cond_col.cast(float).to_numpy()[candidates]
        if np.isnan(conditioning).any():
            raise ValidationError("conditioning column must be fully observed")

    chosen_local = _select_positions(
        values_numeric if values_numeric is not None else np.zeros(len(candidates)),
        n_missing, mechanism, conditioning, rng,
    )
    positions = candidates[chosen_local]

    report = ErrorReport()
    items = col.to_list()
    for p in positions:
        report.add(frame.row_ids[p], column, f"missing_{mechanism}",
                   original=items[int(p)], corrupted=None)
        items[int(p)] = None
    corrupted = frame.copy()
    corrupted[column] = items
    return corrupted, report


def inject_missing_array(X, *, fraction: float = 0.1, mechanism: str = "MCAR",
                         columns=None, seed=None):
    """Matrix variant: NaN-out a fraction of cells in selected columns.

    Returns ``(X_corrupted, missing_mask)`` where the mask marks injected
    NaNs.
    """
    check_fraction(fraction, name="fraction")
    if mechanism not in _MECHANISMS:
        raise ValidationError(f"mechanism must be one of {_MECHANISMS}, got {mechanism!r}")
    X = np.asarray(X, dtype=float).copy()
    if X.ndim != 2:
        raise ValidationError("X must be 2-dimensional")
    rng = ensure_rng(seed)
    columns = range(X.shape[1]) if columns is None else columns
    mask = np.zeros(X.shape, dtype=bool)
    for j in columns:
        candidates = np.flatnonzero(~np.isnan(X[:, j]))
        n_missing = int(round(fraction * X.shape[0]))
        if n_missing == 0 or len(candidates) == 0:
            continue
        n_missing = min(n_missing, len(candidates))
        if mechanism == "MCAR":
            chosen = rng.choice(candidates, size=n_missing, replace=False)
        else:
            driver_col = X[candidates, j] if mechanism == "MNAR" else \
                np.nan_to_num(X[candidates, (j + 1) % X.shape[1]])
            chosen = candidates[_select_positions(
                driver_col, n_missing, "MNAR", None, rng
            )]
        X[chosen, j] = np.nan
        mask[chosen, j] = True
    return X, mask
