"""Approximate unlearning for logistic regression via a Newton step.

Removing training point ``z`` from the empirical risk perturbs the
optimum by (first order) ``Δθ = H⁻¹ ∇L(z, θ̂) / (n - 1)`` — the same
machinery as influence functions (ref [41]), pointed at deletion instead
of diagnosis. The update costs one Hessian solve; no retraining, no data
access beyond the deleted point itself.

This connects the survey's two threads exactly as §2.4 suggests:
debugging methods *find* the points whose removal helps, the unlearner
*applies* those removals at interactive latency, and
:meth:`InfluenceUnlearner.fidelity` quantifies how far the approximate
parameters drift from exact retraining.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import NotFittedError, ValidationError
from repro.core.validation import check_X_y
from repro.ml.linear import LogisticRegression


def _augment(X: np.ndarray) -> np.ndarray:
    return np.column_stack([X, np.ones(len(X))])


class InfluenceUnlearner:
    """One-step Newton deletion for binary logistic regression.

    Parameters
    ----------
    C:
        Inverse regularization of the underlying model.
    damping:
        Ridge added to the Hessian before solving.
    """

    def __init__(self, C: float = 1.0, damping: float = 1e-4):
        self.C = C
        self.damping = damping

    def fit(self, X, y) -> "InfluenceUnlearner":
        X, y = check_X_y(X, y)
        self._X = X.copy()
        self._alive = np.ones(len(X), dtype=bool)
        model = LogisticRegression(C=self.C)
        model.fit(X, y)
        self.classes_ = model.classes_
        self._t = (y == self.classes_[1]).astype(float)
        # Collapse the symmetric softmax parameterization to one vector.
        w = model.coef_[1] - model.coef_[0]
        b = float(model.intercept_[1] - model.intercept_[0])
        self.theta_ = np.concatenate([w, [b]])
        return self

    # ------------------------------------------------------------------
    def _hessian(self) -> np.ndarray:
        Xa = _augment(self._X[self._alive])
        p = 1.0 / (1.0 + np.exp(-Xa @ self.theta_))
        weights = p * (1.0 - p)
        n = len(Xa)
        lam = 1.0 / (max(self.C, 1e-12) * n)
        return (Xa * weights[:, None]).T @ Xa / n + \
            (lam + self.damping) * np.eye(Xa.shape[1])

    def unlearn(self, indices) -> "InfluenceUnlearner":
        """Remove points (by original position) with one Newton update."""
        if not hasattr(self, "theta_"):
            raise NotFittedError("fit before unlearning")
        indices = np.atleast_1d(np.asarray(indices, dtype=int))
        if np.any((indices < 0) | (indices >= len(self._X))):
            raise ValidationError("unlearn index out of range")
        fresh = [i for i in indices if self._alive[i]]
        if not fresh:
            return self
        hessian = self._hessian()
        n_alive = int(self._alive.sum())
        Xa = _augment(self._X[fresh])
        p = 1.0 / (1.0 + np.exp(-Xa @ self.theta_))
        grads = (p - self._t[fresh])[:, None] * Xa
        total_grad = grads.sum(axis=0)
        # Removing the points shifts the optimum along +H^-1 grad / (n-m).
        self.theta_ = self.theta_ + np.linalg.solve(
            hessian, total_grad) / max(n_alive - len(fresh), 1)
        self._alive[fresh] = False
        return self

    @property
    def n_alive(self) -> int:
        return int(self._alive.sum())

    # ------------------------------------------------------------------
    def decision_function(self, X) -> np.ndarray:
        if not hasattr(self, "theta_"):
            raise NotFittedError("fit before predicting")
        return _augment(np.asarray(X, dtype=float)) @ self.theta_

    def predict(self, X) -> np.ndarray:
        return self.classes_[(self.decision_function(X) > 0).astype(int)]

    def score(self, X, y) -> float:
        from repro.ml.metrics import accuracy_score

        return accuracy_score(y, self.predict(X))

    def fidelity(self, y) -> dict:
        """Compare against exact retraining on the remaining data.

        Returns parameter distance and prediction agreement on the
        remaining training points — the certification a deployment would
        monitor to decide when to fall back to a full retrain.
        """
        y = np.asarray(y)
        remaining = self._alive
        exact = LogisticRegression(C=self.C)
        exact.fit(self._X[remaining], y[remaining])
        w = exact.coef_[1] - exact.coef_[0]
        b = float(exact.intercept_[1] - exact.intercept_[0])
        theta_exact = np.concatenate([w, [b]])
        agreement = float(np.mean(
            self.predict(self._X[remaining]) ==
            exact.predict(self._X[remaining])))
        return {
            "parameter_distance": float(
                np.linalg.norm(self.theta_ - theta_exact)),
            "prediction_agreement": agreement,
        }
