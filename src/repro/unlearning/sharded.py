"""Exact sharded unlearning (SISA-style; HedgeCut's trees in ref [17]
follow the same retrain-a-small-part principle).

Training data is partitioned into disjoint shards, one model per shard;
prediction is the ensemble majority vote. Deleting examples retrains only
the affected shards, so unlearning latency is ~``1/n_shards`` of a full
retrain while remaining *exact*: the post-deletion ensemble is identical
to one trained from scratch on the remaining data (same shard
assignment).
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import NotFittedError, ValidationError
from repro.core.rng import ensure_rng
from repro.core.validation import check_X_y
from repro.ml.base import clone


def _fit_shard_task(shared, members):
    """Train one shard member model (or ``None`` for a degenerate shard).

    ``shared`` is ``(model_prototype, X, y)`` — constant across fit and
    every subsequent unlearn call, so a process runtime keeps one warm
    worker pool for the unlearner's whole lifetime.
    """
    model, X, y = shared
    if len(members) == 0 or len(np.unique(y[members])) < 2:
        return None  # degenerate shard abstains
    fitted = clone(model)
    fitted.fit(X[members], y[members])
    return fitted


class ShardedUnlearner:
    """Shard-ensemble classifier with exact deletion.

    Parameters
    ----------
    model:
        Unfitted estimator prototype (one clone per shard).
    n_shards:
        Number of disjoint shards; higher = faster deletion, weaker
        individual members.
    seed:
        Seed for the random shard assignment.
    runtime:
        Optional :class:`repro.runtime.Runtime` (or backend name): shard
        trainings — during ``fit`` and when ``unlearn`` touches several
        shards — run in parallel. Shards are disjoint, so the ensemble is
        identical on every backend.
    observer:
        Optional :class:`repro.observe.Observer`: spans ``sharded.fit``
        and ``sharded.unlearn``, counts unlearn requests / deleted rows /
        shard retrains, and logs per-call provenance events.
    """

    def __init__(self, model, n_shards: int = 5, seed=0, runtime=None,
                 observer=None):
        from repro.observe.observer import resolve_observer
        from repro.runtime.runtime import Runtime, resolve_runtime

        if n_shards < 1:
            raise ValidationError("n_shards must be >= 1")
        self.model = model
        self.n_shards = n_shards
        self.seed = seed
        self.runtime = resolve_runtime(runtime)
        self._owns_runtime = (self.runtime is not None
                              and not isinstance(runtime, Runtime))
        self.observer = resolve_observer(observer)

    def close(self) -> None:
        """Release the worker pool of a runtime this unlearner built for
        itself (``runtime="thread"`` / ``"process"``); a caller-provided
        :class:`~repro.runtime.Runtime` is left to its owner."""
        if self._owns_runtime and self.runtime is not None:
            self.runtime.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def fit(self, X, y) -> "ShardedUnlearner":
        X, y = check_X_y(X, y)
        if len(X) < self.n_shards * 2:
            raise ValidationError(
                f"{len(X)} rows cannot fill {self.n_shards} shards"
            )
        self._X = X.copy()
        self._y = y.copy()
        self._alive = np.ones(len(X), dtype=bool)
        rng = ensure_rng(self.seed)
        self._shard_of = rng.integers(0, self.n_shards, size=len(X))
        self.models_ = [None] * self.n_shards
        self.retrain_counter_ = 0
        with self.observer.span("sharded.fit", rows=len(X),
                                shards=self.n_shards):
            self._train_shards(range(self.n_shards))
        if self.observer.enabled:
            self.observer.event("unlearning.fit", n_rows=len(X),
                                n_shards=self.n_shards, seed=self.seed)
        return self

    def _train_shard(self, shard: int) -> None:
        self._train_shards([shard])

    def _train_shards(self, shards) -> None:
        shards = list(shards)
        member_lists = [
            np.flatnonzero((self._shard_of == shard) & self._alive)
            for shard in shards
        ]
        shared = (self.model, self._X, self._y)
        if self.runtime is not None and len(shards) > 1:
            fitted = self.runtime.map(_fit_shard_task, member_lists,
                                      shared=shared, stage="sharded.train")
        else:
            fitted = [_fit_shard_task(shared, members)
                      for members in member_lists]
        for shard, model in zip(shards, fitted):
            self.models_[shard] = model
            if model is not None:
                self.retrain_counter_ += 1

    # ------------------------------------------------------------------
    def unlearn(self, indices) -> "ShardedUnlearner":
        """Delete training rows (by position) and retrain only their
        shards. Idempotent for already-deleted rows."""
        if not hasattr(self, "models_"):
            raise NotFittedError("fit before unlearning")
        indices = np.atleast_1d(np.asarray(indices, dtype=int))
        if np.any((indices < 0) | (indices >= len(self._X))):
            raise ValidationError("unlearn index out of range")
        touched = set()
        deleted = 0
        for i in indices:
            if self._alive[i]:
                self._alive[i] = False
                deleted += 1
                touched.add(int(self._shard_of[i]))
        with self.observer.span("sharded.unlearn", rows=deleted,
                                shards=len(touched)):
            self._train_shards(sorted(touched))
        if self.observer.enabled:
            self.observer.count("unlearning.requests")
            self.observer.count("unlearning.rows_deleted", deleted)
            self.observer.count("unlearning.shard_retrains", len(touched))
            self.observer.event(
                "unlearning.unlearn", n_requested=len(indices),
                n_deleted=deleted, shards_retrained=sorted(touched),
                n_alive=self.n_alive)
        return self

    @property
    def n_alive(self) -> int:
        return int(self._alive.sum())

    # ------------------------------------------------------------------
    def predict(self, X) -> np.ndarray:
        if not hasattr(self, "models_"):
            raise NotFittedError("fit before predicting")
        X = np.asarray(X, dtype=float)
        votes = [m.predict(X) for m in self.models_ if m is not None]
        if not votes:
            raise ValidationError("every shard is degenerate; cannot predict")
        stacked = np.stack(votes)
        out = []
        for column in stacked.T:
            values, counts = np.unique(column, return_counts=True)
            out.append(values[np.argmax(counts)])
        return np.array(out)

    def score(self, X, y) -> float:
        from repro.ml.metrics import accuracy_score

        return accuracy_score(y, self.predict(X))
