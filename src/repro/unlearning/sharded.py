"""Exact sharded unlearning (SISA-style; HedgeCut's trees in ref [17]
follow the same retrain-a-small-part principle).

Training data is partitioned into disjoint shards, one model per shard;
prediction is the ensemble majority vote. Deleting examples retrains only
the affected shards, so unlearning latency is ~``1/n_shards`` of a full
retrain while remaining *exact*: the post-deletion ensemble is identical
to one trained from scratch on the remaining data (same shard
assignment).
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import NotFittedError, ValidationError
from repro.core.rng import ensure_rng
from repro.core.validation import check_X_y
from repro.ml.base import clone


class ShardedUnlearner:
    """Shard-ensemble classifier with exact deletion.

    Parameters
    ----------
    model:
        Unfitted estimator prototype (one clone per shard).
    n_shards:
        Number of disjoint shards; higher = faster deletion, weaker
        individual members.
    seed:
        Seed for the random shard assignment.
    """

    def __init__(self, model, n_shards: int = 5, seed=0):
        if n_shards < 1:
            raise ValidationError("n_shards must be >= 1")
        self.model = model
        self.n_shards = n_shards
        self.seed = seed

    def fit(self, X, y) -> "ShardedUnlearner":
        X, y = check_X_y(X, y)
        if len(X) < self.n_shards * 2:
            raise ValidationError(
                f"{len(X)} rows cannot fill {self.n_shards} shards"
            )
        self._X = X.copy()
        self._y = y.copy()
        self._alive = np.ones(len(X), dtype=bool)
        rng = ensure_rng(self.seed)
        self._shard_of = rng.integers(0, self.n_shards, size=len(X))
        self.models_ = [None] * self.n_shards
        self.retrain_counter_ = 0
        for shard in range(self.n_shards):
            self._train_shard(shard)
        return self

    def _train_shard(self, shard: int) -> None:
        members = np.flatnonzero((self._shard_of == shard) & self._alive)
        if len(members) == 0 or len(np.unique(self._y[members])) < 2:
            self.models_[shard] = None  # degenerate shard abstains
            return
        fitted = clone(self.model)
        fitted.fit(self._X[members], self._y[members])
        self.models_[shard] = fitted
        self.retrain_counter_ += 1

    # ------------------------------------------------------------------
    def unlearn(self, indices) -> "ShardedUnlearner":
        """Delete training rows (by position) and retrain only their
        shards. Idempotent for already-deleted rows."""
        if not hasattr(self, "models_"):
            raise NotFittedError("fit before unlearning")
        indices = np.atleast_1d(np.asarray(indices, dtype=int))
        if np.any((indices < 0) | (indices >= len(self._X))):
            raise ValidationError("unlearn index out of range")
        touched = set()
        for i in indices:
            if self._alive[i]:
                self._alive[i] = False
                touched.add(int(self._shard_of[i]))
        for shard in sorted(touched):
            self._train_shard(shard)
        return self

    @property
    def n_alive(self) -> int:
        return int(self._alive.sum())

    # ------------------------------------------------------------------
    def predict(self, X) -> np.ndarray:
        if not hasattr(self, "models_"):
            raise NotFittedError("fit before predicting")
        X = np.asarray(X, dtype=float)
        votes = [m.predict(X) for m in self.models_ if m is not None]
        if not votes:
            raise ValidationError("every shard is degenerate; cannot predict")
        stacked = np.stack(votes)
        out = []
        for column in stacked.T:
            values, counts = np.unique(column, return_counts=True)
            out.append(values[np.argmax(counts)])
        return np.array(out)

    def score(self, X, y) -> float:
        from repro.ml.metrics import accuracy_score

        return accuracy_score(y, self.predict(X))
