"""Exact sharded unlearning (SISA-style; HedgeCut's trees in ref [17]
follow the same retrain-a-small-part principle).

Training data is partitioned into disjoint shards, one model per shard;
prediction is the ensemble majority vote. Deleting examples retrains only
the affected shards, so unlearning latency is ~``1/n_shards`` of a full
retrain while remaining *exact*: the post-deletion ensemble is identical
to one trained from scratch on the remaining data (same shard
assignment).

The same partition structure is what makes SISA out-of-core for free:
:meth:`ShardedUnlearner.fit_sharded` maps each shard of a
:class:`repro.data.ShardedDataset` to one SISA shard, streams the
initial pass through the fault-tolerant reading service, and reloads
only the touched shards from disk on ``unlearn`` — with an ensemble
identical to the in-memory ``fit(X, y, assignment=...)`` path.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import NotFittedError, ValidationError
from repro.core.rng import ensure_rng
from repro.core.validation import check_X_y
from repro.ml.base import clone


def _fit_members(model, X, y, members):
    """Train one shard member model (or ``None`` for a degenerate shard)."""
    if len(members) == 0 or len(np.unique(y[members])) < 2:
        return None  # degenerate shard abstains
    fitted = clone(model)
    fitted.fit(X[members], y[members])
    return fitted


def _fit_shard_task(shared, members):
    """In-memory shard training task.

    ``shared`` is ``(model_prototype, X, y)`` — constant across fit and
    every subsequent unlearn call, so a process runtime keeps one warm
    worker pool for the unlearner's whole lifetime.
    """
    model, X, y = shared
    return _fit_members(model, X, y, members)


def _fit_shard_from_disk_task(shared, task):
    """Out-of-core shard training task: load exactly one data shard
    (checksum-verified) and fit on its surviving rows.

    ``shared`` is ``(model_prototype, dataset_path, features, label)`` —
    a path, not arrays, so the process backend ships no training data;
    each worker holds one shard resident at a time.
    """
    from repro.data.shards import ShardedDataset

    model, path, features, label = shared
    shard, members_local = task
    arrays = ShardedDataset(path).load_shard(shard)
    return _fit_members(model, arrays[features], arrays[label],
                        np.asarray(members_local, dtype=int))


class ShardedUnlearner:
    """Shard-ensemble classifier with exact deletion.

    Parameters
    ----------
    model:
        Unfitted estimator prototype (one clone per shard).
    n_shards:
        Number of disjoint shards; higher = faster deletion, weaker
        individual members.
    seed:
        Seed for the random shard assignment.
    runtime:
        Optional :class:`repro.runtime.Runtime` (or backend name): shard
        trainings — during ``fit`` and when ``unlearn`` touches several
        shards — run in parallel. Shards are disjoint, so the ensemble is
        identical on every backend.
    observer:
        Optional :class:`repro.observe.Observer`: spans ``sharded.fit``
        and ``sharded.unlearn``, counts unlearn requests / deleted rows /
        shard retrains, and logs per-call provenance events.
    checkpoint / resume_from:
        Durable deletion log: a snapshot (deleted row positions +
        retrain counter) is written after ``fit`` and after every
        ``unlearn`` call. A killed session resumed via ``resume_from=``
        re-applies the recorded deletions before the initial shard
        training — exactness of SISA sharding makes the rebuilt
        ensemble identical to the interrupted one — and restores the
        retrain counter. Requires an integer ``seed`` (the shard
        assignment must be regenerable).
    """

    def __init__(self, model, n_shards: int = 5, seed=0, runtime=None,
                 observer=None, checkpoint=None, resume_from=None):
        from repro.importance.base import require_checkpoint_seed
        from repro.observe.observer import resolve_observer
        from repro.runtime.runtime import Runtime, resolve_runtime

        if n_shards < 1:
            raise ValidationError("n_shards must be >= 1")
        self.model = model
        self.n_shards = n_shards
        self.seed = seed
        self.runtime = resolve_runtime(runtime)
        self._owns_runtime = (self.runtime is not None
                              and not isinstance(runtime, Runtime))
        self.observer = resolve_observer(observer)
        self.checkpoint = checkpoint
        self.resume_from = resume_from
        self._ckpt = None
        if checkpoint is not None or resume_from is not None:
            require_checkpoint_seed(seed, "ShardedUnlearner")

    def close(self) -> None:
        """Release the worker pool of a runtime this unlearner built for
        itself (``runtime="thread"`` / ``"process"``); a caller-provided
        :class:`~repro.runtime.Runtime` is left to its owner."""
        if self._owns_runtime and self.runtime is not None:
            self.runtime.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def _open_checkpointer(self, *data_identity):
        """Build the deletion-log checkpointer once ``fit`` knows the
        data (the identity fingerprint covers model, sharding params,
        seed, and the training data — the arrays themselves in memory
        mode, the shard checksums + explicit assignment otherwise)."""
        from repro.runtime.cache import fingerprint
        from repro.runtime.checkpoint import LoopCheckpointer

        identity = fingerprint("checkpoint.unlearning.sharded",
                               self.n_shards, int(self.seed), self.model,
                               *data_identity)
        return LoopCheckpointer(self.checkpoint, kind="unlearning.sharded",
                                identity=identity, every=1,
                                observer=self.observer,
                                resume_from=self.resume_from)

    def _snapshot(self) -> None:
        """Persist the deletion log (one record per fit/unlearn call)."""
        if self._ckpt is None or not self._ckpt.active:
            return
        self._unlearn_calls += 1
        self._ckpt.arm(lambda: {
            "completed": self._unlearn_calls,
            "deleted": [int(i) for i in np.flatnonzero(~self._alive)],
            "retrain_counter": int(self.retrain_counter_)})
        self._ckpt.flush()

    def fit(self, X, y, assignment=None) -> "ShardedUnlearner":
        """Train the shard ensemble on in-memory arrays.

        ``assignment`` (optional) fixes each row's shard explicitly
        instead of drawing the assignment from ``seed`` — the bridge to
        :meth:`fit_sharded`, whose contiguous data-shard layout can be
        reproduced in memory for equivalence checks.
        """
        X, y = check_X_y(X, y)
        if len(X) < self.n_shards * 2:
            raise ValidationError(
                f"{len(X)} rows cannot fill {self.n_shards} shards"
            )
        if assignment is None:
            rng = ensure_rng(self.seed)
            self._shard_of = rng.integers(0, self.n_shards, size=len(X))
        else:
            assignment = np.asarray(assignment, dtype=int)
            if assignment.shape != (len(X),):
                raise ValidationError(
                    f"assignment must have one shard id per row "
                    f"({len(X)}); got shape {assignment.shape}")
            if np.any((assignment < 0) | (assignment >= self.n_shards)):
                raise ValidationError(
                    f"assignment shard ids must be in [0, {self.n_shards})")
            self._shard_of = assignment.copy()
        self._X = X.copy()
        self._y = y.copy()
        self._dataset = None
        self._n_rows = len(X)
        self._alive = np.ones(len(X), dtype=bool)
        self.models_ = [None] * self.n_shards
        self.retrain_counter_ = 0
        self._unlearn_calls = 0
        restored = None
        if self.checkpoint is not None or self.resume_from is not None:
            self._ckpt = self._open_checkpointer(
                X, y, None if assignment is None else self._shard_of)
            restored = self._ckpt.resume()
        if restored is not None:
            # Re-apply the recorded deletions *before* the initial shard
            # training: SISA exactness means training the shards once on
            # the surviving rows reproduces the interrupted ensemble.
            deleted = [int(i) for i in restored["deleted"]]
            self._alive[deleted] = False
            self._ckpt.record_skipped(
                completed=int(restored["completed"]),
                method="unlearning.sharded", n_deleted=len(deleted))
        with self.observer.span("sharded.fit", rows=len(X),
                                shards=self.n_shards):
            self._train_shards(range(self.n_shards))
        if restored is not None:
            self.retrain_counter_ = int(restored["retrain_counter"])
            self._unlearn_calls = int(restored["completed"]) - 1
        if self.observer.enabled:
            self.observer.event("unlearning.fit", n_rows=len(X),
                                n_shards=self.n_shards, seed=self.seed)
        self._snapshot()
        return self

    def fit_sharded(self, dataset, *, features: str = "X",
                    label: str = "y", reader: dict | None = None
                    ) -> "ShardedUnlearner":
        """Train out of core: each data shard *is* one SISA shard.

        ``dataset`` is a :class:`repro.data.ShardedDataset` (or its
        path); ``n_shards`` is adopted from it. The initial pass streams
        through the fault-tolerant reading service (``reader=`` takes
        :class:`~repro.data.ShardReader` kwargs — ``workers``,
        ``faults``, ``on_corrupt`` ...), fitting one member per shard as
        batches arrive; the training arrays are never held whole in
        memory, and later ``unlearn`` calls reload only the touched
        shards from disk. The ensemble is identical to
        ``fit(X, y, assignment=contiguous)`` on the concatenated
        arrays — shard reads are bit-exact, so out-of-core changes
        nothing about the models.
        """
        from repro.data.reader import ShardReader
        from repro.data.shards import resolve_dataset

        dataset = resolve_dataset(dataset, observer=self.observer)
        self.n_shards = dataset.n_shards
        n_rows = dataset.n_rows
        if n_rows < self.n_shards * 2:
            raise ValidationError(
                f"{n_rows} rows cannot fill {self.n_shards} shards")
        rows = [info.rows for info in dataset.shards]
        self._shard_of = np.repeat(np.arange(self.n_shards), rows)
        self._offsets = np.concatenate([[0], np.cumsum(rows)[:-1]])
        self._X = self._y = None
        self._dataset = dataset
        self._features = features
        self._label = label
        self._n_rows = n_rows
        self._alive = np.ones(n_rows, dtype=bool)
        self.models_ = [None] * self.n_shards
        self.retrain_counter_ = 0
        self._unlearn_calls = 0
        restored = None
        if self.checkpoint is not None or self.resume_from is not None:
            self._ckpt = self._open_checkpointer(
                [info.sha256 for info in dataset.shards], features, label)
            restored = self._ckpt.resume()
        if restored is not None:
            deleted = [int(i) for i in restored["deleted"]]
            self._alive[deleted] = False
            self._ckpt.record_skipped(
                completed=int(restored["completed"]),
                method="unlearning.sharded", n_deleted=len(deleted))
        with self.observer.span("sharded.fit", rows=n_rows,
                                shards=self.n_shards):
            with ShardReader(dataset, observer=self.observer,
                             **(reader or {})) as batches:
                for batch in batches:
                    members = np.flatnonzero(
                        self._alive[batch.offset:batch.offset + batch.rows])
                    model = _fit_members(self.model, batch[features],
                                         batch[label], members)
                    self.models_[batch.index] = model
                    if model is not None:
                        self.retrain_counter_ += 1
        if restored is not None:
            self.retrain_counter_ = int(restored["retrain_counter"])
            self._unlearn_calls = int(restored["completed"]) - 1
        if self.observer.enabled:
            self.observer.event("unlearning.fit", n_rows=n_rows,
                                n_shards=self.n_shards, seed=self.seed,
                                dataset=str(dataset.path))
        self._snapshot()
        return self

    def _train_shard(self, shard: int) -> None:
        self._train_shards([shard])

    def _train_shards(self, shards) -> None:
        shards = list(shards)
        if getattr(self, "_dataset", None) is not None:
            self._train_shards_from_disk(shards)
            return
        member_lists = [
            np.flatnonzero((self._shard_of == shard) & self._alive)
            for shard in shards
        ]
        shared = (self.model, self._X, self._y)
        if self.runtime is not None and len(shards) > 1:
            fitted = self.runtime.map(_fit_shard_task, member_lists,
                                      shared=shared, stage="sharded.train")
        else:
            fitted = [_fit_shard_task(shared, members)
                      for members in member_lists]
        for shard, model in zip(shards, fitted):
            self.models_[shard] = model
            if model is not None:
                self.retrain_counter_ += 1

    def _train_shards_from_disk(self, shards) -> None:
        """Out-of-core retrain: each task reloads exactly one
        checksum-verified data shard, so memory stays bounded by
        (workers × one shard) no matter how big the dataset is."""
        tasks = []
        for shard in shards:
            start = int(self._offsets[shard])
            stop = start + self._dataset.shards[shard].rows
            tasks.append((int(shard),
                          np.flatnonzero(self._alive[start:stop])))
        shared = (self.model, str(self._dataset.path),
                  self._features, self._label)
        if self.runtime is not None and len(tasks) > 1:
            fitted = self.runtime.map(_fit_shard_from_disk_task, tasks,
                                      shared=shared, stage="sharded.train")
        else:
            fitted = [_fit_shard_from_disk_task(shared, task)
                      for task in tasks]
        for (shard, _), model in zip(tasks, fitted):
            self.models_[shard] = model
            if model is not None:
                self.retrain_counter_ += 1

    # ------------------------------------------------------------------
    def unlearn(self, indices) -> "ShardedUnlearner":
        """Delete training rows (by position) and retrain only their
        shards. Idempotent for already-deleted rows."""
        if not hasattr(self, "models_"):
            raise NotFittedError("fit before unlearning")
        indices = np.atleast_1d(np.asarray(indices, dtype=int))
        if np.any((indices < 0) | (indices >= self._n_rows)):
            raise ValidationError("unlearn index out of range")
        touched = set()
        deleted = 0
        for i in indices:
            if self._alive[i]:
                self._alive[i] = False
                deleted += 1
                touched.add(int(self._shard_of[i]))
        with self.observer.span("sharded.unlearn", rows=deleted,
                                shards=len(touched)):
            self._train_shards(sorted(touched))
        if self.observer.enabled:
            self.observer.count("unlearning.requests")
            self.observer.count("unlearning.rows_deleted", deleted)
            self.observer.count("unlearning.shard_retrains", len(touched))
            self.observer.event(
                "unlearning.unlearn", n_requested=len(indices),
                n_deleted=deleted, shards_retrained=sorted(touched),
                n_alive=self.n_alive)
        self._snapshot()
        return self

    @property
    def n_alive(self) -> int:
        return int(self._alive.sum())

    # ------------------------------------------------------------------
    def predict(self, X) -> np.ndarray:
        if not hasattr(self, "models_"):
            raise NotFittedError("fit before predicting")
        X = np.asarray(X, dtype=float)
        votes = [m.predict(X) for m in self.models_ if m is not None]
        if not votes:
            raise ValidationError("every shard is degenerate; cannot predict")
        stacked = np.stack(votes)
        out = []
        for column in stacked.T:
            values, counts = np.unique(column, return_counts=True)
            out.append(values[np.argmax(counts)])
        return np.array(out)

    def score(self, X, y) -> float:
        from repro.ml.metrics import accuracy_score

        return accuracy_score(y, self.predict(X))
