"""Low-latency machine unlearning (the §2.4 connection of the paper).

The survey's open-challenges section links data debugging to machine
unlearning: debugging identifies harmful points, unlearning removes their
influence *fast* — "data-driven applications that forget critical data
fast" (refs [17, 75]). Two complementary mechanisms:

- :class:`ShardedUnlearner` — SISA/HedgeCut-style *exact* unlearning:
  train an ensemble over disjoint shards; deleting a point retrains only
  its shard, an ~n_shards-fold latency win over full retraining with a
  bit-for-bit exactness guarantee.
- :class:`InfluenceUnlearner` — *approximate* unlearning for logistic
  regression: a one-shot Newton step removes a point's first-order
  influence from the fitted parameters without touching the data; paired
  with a fidelity check against exact retraining.
"""

from repro.unlearning.influence_unlearner import InfluenceUnlearner
from repro.unlearning.sharded import ShardedUnlearner

__all__ = ["ShardedUnlearner", "InfluenceUnlearner"]
