"""Fault tolerance for the execution backends.

A Shapley run is thousands of model trainings fanned out through
:mod:`repro.runtime`; at that scale workers die (OOM kills, signals),
tasks hit transient errors, and a single failure must not lose a
20-minute permutation walk. This module defines the policy and the
vocabulary the executors speak when things go wrong:

- :class:`FaultPolicy` — how a job reacts to failures: per-chunk bounded
  retries with deterministic linear backoff, an optional per-chunk
  timeout, and the ``on_worker_failure`` strategy applied when a process
  pool itself dies (``"retry"`` rebuilds the pool and resubmits only the
  lost chunks; ``"serial"`` degrades the rest of the job to the parent
  process; ``"raise"`` propagates immediately).
- :class:`TaskError` — the structured exception executors raise once a
  chunk's budget is exhausted, carrying stage / chunk / backend / attempt
  attribution with the original exception chained as ``__cause__``.
- :class:`FaultEvent` / :class:`FaultStats` — the per-incident records
  and cumulative counters that feed ``repro.observe`` (the
  ``executor.retries`` / ``executor.worker_crashes`` /
  ``executor.timeouts`` / ``executor.degraded_runs`` metrics).

Recovery never changes results: tasks are pure functions of their
arguments and every RNG stream is spawned before submission, so a
resubmitted chunk recomputes exactly the values the lost worker would
have produced (see :mod:`repro.runtime.executor` on backend invariance).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

from repro.core.exceptions import ReproError, ValidationError
from repro.runtime.progress import JobCancelled

__all__ = [
    "DEFAULT_FAULT_POLICY",
    "FaultEvent",
    "FaultPolicy",
    "FaultStats",
    "TaskError",
    "resolve_fault_policy",
]

#: Strategies for surviving the death of the worker pool itself.
WORKER_FAILURE_MODES = ("retry", "serial", "raise")


class TaskError(ReproError, RuntimeError):
    """A chunk of tasks failed after exhausting its fault budget.

    Carries enough attribution to debug a parallel job without digging
    through worker logs: the stage label, the failed chunk's index, the
    backend it ran on, and how many attempts were made. The original
    exception (or :class:`TimeoutError`, or the pool's
    ``BrokenProcessPool``) is chained as ``__cause__``.
    """

    def __init__(self, *, stage: str, chunk_index: int, backend: str,
                 attempts: int, cause: BaseException):
        self.stage = stage
        self.chunk_index = chunk_index
        self.backend = backend
        self.attempts = attempts
        super().__init__(
            f"stage {stage!r} chunk {chunk_index} failed on the "
            f"{backend!r} backend after {attempts} attempt(s): {cause!r}")


@dataclass(frozen=True)
class FaultPolicy:
    """How an executor reacts to task failures, crashes, and timeouts.

    Attributes
    ----------
    retries:
        Per-chunk budget of *additional* attempts after a task exception
        or chunk timeout. ``0`` fails fast on the first error.
    backoff:
        Base seconds of the deterministic linear backoff: attempt ``k``
        of a chunk waits ``backoff * k`` before resubmission. The wait is
        cancel-aware — a tripped :class:`~repro.runtime.CancellationToken`
        raises :class:`~repro.runtime.JobCancelled` immediately.
    timeout:
        Optional per-chunk wall-clock limit in seconds, enforced by the
        pooled backends. A timed-out chunk consumes one retry; on the
        process backend the stuck worker is killed and the pool rebuilt
        (thread workers cannot be interrupted — the future is abandoned
        and the chunk resubmitted). Ignored by the serial backend, which
        cannot preempt itself.
    on_worker_failure:
        Strategy when the process pool itself breaks (a worker died):
        ``"retry"`` (default) rebuilds the pool and resubmits only the
        chunks that were lost; ``"serial"`` finishes every remaining
        chunk inline in the parent process (graceful degradation);
        ``"raise"`` propagates a :class:`TaskError` immediately.
    max_worker_crashes:
        Bound on pool rebuilds within one ``map`` call under
        ``on_worker_failure="retry"`` — a chunk that keeps killing its
        worker cannot rebuild forever.
    """

    retries: int = 1
    backoff: float = 0.05
    timeout: float | None = None
    on_worker_failure: str = "retry"
    max_worker_crashes: int = 3

    def __post_init__(self):
        if self.retries < 0:
            raise ValidationError("retries must be >= 0")
        if self.backoff < 0:
            raise ValidationError("backoff must be >= 0 seconds")
        if self.timeout is not None and self.timeout <= 0:
            raise ValidationError("timeout must be > 0 seconds (or None)")
        if self.on_worker_failure not in WORKER_FAILURE_MODES:
            raise ValidationError(
                f"on_worker_failure must be one of {WORKER_FAILURE_MODES} "
                f"— got {self.on_worker_failure!r}")
        if self.max_worker_crashes < 0:
            raise ValidationError("max_worker_crashes must be >= 0")


#: The policy used when callers pass ``faults=None``: one retry with a
#: 50 ms backoff, no timeout, crash recovery via pool rebuild.
DEFAULT_FAULT_POLICY = FaultPolicy()


def resolve_fault_policy(faults, *, on_worker_failure: str | None = None
                         ) -> FaultPolicy:
    """Normalize the ``faults=`` argument executors and runtimes accept.

    ``None`` becomes :data:`DEFAULT_FAULT_POLICY`, a dict is expanded to
    ``FaultPolicy(**faults)``, and a :class:`FaultPolicy` passes through.
    ``on_worker_failure`` (when given) overrides that single field — the
    convenience shortcut ``Runtime(on_worker_failure="serial")`` uses.
    """
    if faults is None:
        policy = DEFAULT_FAULT_POLICY
    elif isinstance(faults, FaultPolicy):
        policy = faults
    elif isinstance(faults, dict):
        try:
            policy = FaultPolicy(**faults)
        except TypeError as error:
            raise ValidationError(
                f"invalid FaultPolicy field in {sorted(faults)}: {error}"
            ) from error
    else:
        raise ValidationError(
            "faults must be None, a dict of FaultPolicy fields, or a "
            f"FaultPolicy — got {type(faults).__name__}")
    if on_worker_failure is not None:
        policy = replace(policy, on_worker_failure=on_worker_failure)
    return policy


@dataclass(frozen=True)
class FaultEvent:
    """One fault-handling incident inside an executor ``map`` call.

    Attributes
    ----------
    kind:
        ``"retry"`` (a chunk resubmitted after a task exception or a
        crash), ``"worker_crash"`` (the pool died), ``"timeout"`` (a
        chunk exceeded the per-chunk limit), or ``"degraded"`` (the job
        fell back to serial in-parent execution).
    stage / chunk_index / attempt:
        Attribution: which job, which chunk, which attempt.
    error:
        ``repr`` of the triggering exception.
    elapsed:
        Seconds since the ``map`` call started.
    """

    kind: str
    stage: str
    chunk_index: int
    attempt: int
    error: str
    elapsed: float


@dataclass
class FaultStats:
    """Cumulative fault counters an executor keeps across ``map`` calls.

    Mirrored as the ``executor.*`` metrics when a
    :class:`repro.observe.Observer` is attached; always available via
    ``executor.fault_stats`` / ``Runtime.stats()["faults"]`` so tests
    and reports can see recovery activity without an observer.
    """

    retries: int = 0
    worker_crashes: int = 0
    timeouts: int = 0
    degraded_runs: int = 0
    last_events: list = field(default_factory=list)

    #: Bound on the retained event tail (attribution for reports).
    MAX_EVENTS = 50

    def record(self, event: FaultEvent) -> None:
        if event.kind == "retry":
            self.retries += 1
        elif event.kind == "worker_crash":
            self.worker_crashes += 1
        elif event.kind == "timeout":
            self.timeouts += 1
        elif event.kind == "degraded":
            self.degraded_runs += 1
        self.last_events.append(event)
        if len(self.last_events) > self.MAX_EVENTS:
            del self.last_events[:-self.MAX_EVENTS]

    def as_dict(self) -> dict:
        return {
            "retries": self.retries,
            "worker_crashes": self.worker_crashes,
            "timeouts": self.timeouts,
            "degraded_runs": self.degraded_runs,
        }


def backoff_wait(seconds: float, cancel, stage: str) -> None:
    """Sleep out one deterministic backoff step, honouring cancellation.

    With a token attached the wait uses ``CancellationToken.wait`` so a
    cancel-during-retry aborts immediately with
    :class:`~repro.runtime.JobCancelled` instead of sleeping the backoff
    out.
    """
    if cancel is not None:
        cancel.raise_if_cancelled(stage)
    if seconds <= 0:
        return
    if cancel is None:
        time.sleep(seconds)
    elif cancel.wait(seconds):
        raise JobCancelled(f"{stage} cancelled by caller")
