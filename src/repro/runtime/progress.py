"""Progress reporting and cooperative cancellation for long-running jobs.

Scoring a coalition game means thousands of model trainings; users need
to see progress and be able to abort. Both concerns use the same
lightweight protocol: executors emit :class:`ProgressEvent` records to a
``progress`` callable after every completed chunk, and poll a
:class:`CancellationToken` between chunk submissions. Cancellation is
*cooperative* — an in-flight model training finishes, but no new chunk is
dispatched once the token trips, and the job raises :class:`JobCancelled`
after the remaining in-flight chunks drain. The fault-tolerance layer
(:mod:`repro.runtime.faults`) speaks the same protocol: retry backoff
waits are cancel-aware via :meth:`CancellationToken.wait`, so a job can
be aborted even while it is sleeping between attempts.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.core.exceptions import ReproError


class JobCancelled(ReproError, RuntimeError):
    """Raised by an executor when its cancellation token was tripped."""


@dataclass(frozen=True)
class ProgressEvent:
    """One progress tick, emitted after each completed chunk.

    Attributes
    ----------
    stage:
        Logical name of the running job (e.g. ``"shapley_mc"``).
    completed / total:
        Tasks finished so far and the job's task count.
    elapsed:
        Seconds since the job started.
    """

    stage: str
    completed: int
    total: int
    elapsed: float

    @property
    def fraction(self) -> float:
        return self.completed / self.total if self.total else 1.0


class CancellationToken:
    """Thread-safe one-way abort switch shared between caller and job."""

    def __init__(self):
        self._event = threading.Event()

    def cancel(self) -> None:
        """Trip the token; every job polling it aborts at its next chunk
        boundary."""
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def wait(self, timeout: float) -> bool:
        """Block up to ``timeout`` seconds; ``True`` when the token
        tripped. Lets retry backoff sleeps abort immediately on
        cancellation instead of sleeping the backoff out."""
        return self._event.wait(timeout)

    def raise_if_cancelled(self, stage: str = "job") -> None:
        if self.cancelled:
            raise JobCancelled(f"{stage} cancelled by caller")


@dataclass
class ProgressRecorder:
    """A ``progress`` callable that keeps every event — handy in tests and
    for rendering a trailing progress line."""

    events: list[ProgressEvent] = field(default_factory=list)

    def __call__(self, event: ProgressEvent) -> None:
        self.events.append(event)

    @property
    def last(self) -> ProgressEvent | None:
        return self.events[-1] if self.events else None


def cancel_after(token: CancellationToken, n_events: int):
    """Build a ``progress`` hook that trips ``token`` after ``n_events``
    ticks — the canonical way to abort a job partway through."""
    counter = {"seen": 0}

    def hook(event: ProgressEvent) -> None:
        counter["seen"] += 1
        if counter["seen"] >= n_events:
            token.cancel()

    return hook


class StageTimer:
    """Accumulates wall-time per named stage (thread-safe)."""

    def __init__(self):
        self._lock = threading.Lock()
        self._seconds: dict[str, float] = {}
        self._tasks: dict[str, int] = {}

    def add(self, stage: str, seconds: float, tasks: int = 0) -> None:
        with self._lock:
            self._seconds[stage] = self._seconds.get(stage, 0.0) + seconds
            self._tasks[stage] = self._tasks.get(stage, 0) + tasks

    def snapshot(self) -> dict:
        with self._lock:
            return {
                stage: {"seconds": self._seconds[stage],
                        "tasks": self._tasks.get(stage, 0)}
                for stage in self._seconds
            }

    def total_seconds(self) -> float:
        with self._lock:
            return sum(self._seconds.values())


class _Stopwatch:
    """Context manager measuring one job for a :class:`StageTimer`.

    A job that raises (cancellation, worker error) still charges its
    elapsed seconds — that time was spent — but not its task count,
    since the tasks did not all complete.
    """

    def __init__(self, timer: StageTimer | None, stage: str, tasks: int):
        self.timer = timer
        self.stage = stage
        self.tasks = tasks

    def __enter__(self):
        self.started = time.perf_counter()
        return self

    def __exit__(self, exc_type, *exc):
        if self.timer is not None:
            self.timer.add(self.stage, time.perf_counter() - self.started,
                           self.tasks if exc_type is None else 0)
        return False
