"""Fingerprint-keyed memoization of utility evaluations.

A coalition value ``u(S)`` is fully determined by (model configuration,
coalition indices, training/validation data, metric). Hashing those into
a stable hexadecimal *fingerprint* lets every estimator — and every
repeat run — share one memo table instead of the per-``Utility`` dict
cache each estimator used to rebuild from scratch.

Two tiers:

- **memory** — an LRU :class:`collections.OrderedDict`, bounded by
  ``max_items``.
- **disk** (optional) — one tiny file per entry under ``disk_dir``;
  values are stored as ``float.hex()`` so a hit is *bitwise* identical
  to the original computation, and the tier survives process restarts.

All traffic is counted (:class:`CacheStats`) so hit-rates can be
surfaced in evaluation reports and benchmark output.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.exceptions import ValidationError

_MISSING = object()
_CORRUPT = object()


# --- stable fingerprinting -------------------------------------------------

def _update_hash(h, part) -> None:
    """Feed one object into the hash with explicit type tags so that e.g.
    the int 1, the float 1.0 and the string "1" never collide."""
    if part is None:
        h.update(b"\x00N")
    elif isinstance(part, np.ndarray):
        arr = np.ascontiguousarray(part)
        h.update(b"\x00A")
        h.update(str(arr.dtype).encode())
        h.update(str(arr.shape).encode())
        h.update(arr.tobytes())
    elif isinstance(part, (bool, np.bool_)):
        h.update(b"\x00B" + (b"1" if part else b"0"))
    elif isinstance(part, (int, np.integer)):
        h.update(b"\x00I" + str(int(part)).encode())
    elif isinstance(part, (float, np.floating)):
        h.update(b"\x00F" + float(part).hex().encode())
    elif isinstance(part, str):
        h.update(b"\x00S" + part.encode())
    elif isinstance(part, bytes):
        h.update(b"\x00Y" + part)
    elif isinstance(part, (list, tuple)):
        h.update(b"\x00L" + str(len(part)).encode())
        for item in part:
            _update_hash(h, item)
    elif isinstance(part, (dict,)):
        h.update(b"\x00D")
        for key in sorted(part, key=repr):
            _update_hash(h, key)
            _update_hash(h, part[key])
    elif isinstance(part, (set, frozenset)):
        h.update(b"\x00T")
        for item in sorted(part, key=repr):
            _update_hash(h, item)
    elif callable(part):
        h.update(b"\x00C" + f"{getattr(part, '__module__', '?')}."
                            f"{getattr(part, '__qualname__', repr(part))}".encode())
    elif hasattr(part, "get_params"):  # estimator prototype
        h.update(b"\x00E" + type(part).__name__.encode())
        _update_hash(h, part.get_params())
    else:
        h.update(b"\x00R" + repr(part).encode())


def fingerprint(*parts) -> str:
    """Stable SHA-256 hex digest of a heterogeneous tuple of parts.

    Supports numpy arrays (dtype + shape + bytes), scalars, strings,
    containers, callables (by qualified name) and estimators (by class +
    hyperparameters). Deterministic across processes and sessions.
    """
    h = hashlib.sha256()
    for part in parts:
        _update_hash(h, part)
    return h.hexdigest()


def data_fingerprint(*arrays) -> str:
    """Fingerprint of a dataset (convenience alias used by ``Utility``)."""
    return fingerprint(*arrays)


# --- the cache -------------------------------------------------------------

@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one :class:`FingerprintCache`."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    disk_corrupt: int = 0
    disk_put_errors: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {"memory_hits": self.memory_hits, "disk_hits": self.disk_hits,
                "misses": self.misses, "puts": self.puts,
                "evictions": self.evictions,
                "disk_corrupt": self.disk_corrupt,
                "disk_put_errors": self.disk_put_errors,
                "hit_rate": self.hit_rate}


# Registry of live caches so benchmark harnesses can print a global
# summary without threading cache handles through every call site.
_LIVE_CACHES: "weakref.WeakSet[FingerprintCache]" = weakref.WeakSet()


def aggregate_cache_stats() -> dict:
    """Summed counters over every cache still alive in this process."""
    total = CacheStats()
    for cache in list(_LIVE_CACHES):
        stats = cache.stats
        total.memory_hits += stats.memory_hits
        total.disk_hits += stats.disk_hits
        total.misses += stats.misses
        total.puts += stats.puts
        total.evictions += stats.evictions
        total.disk_corrupt += stats.disk_corrupt
        total.disk_put_errors += stats.disk_put_errors
    return total.as_dict()


class FingerprintCache:
    """Two-tier (memory LRU + optional disk) memo table for floats.

    Parameters
    ----------
    max_items:
        Capacity of the in-memory LRU tier.
    disk_dir:
        Directory for the persistent tier; created on demand. ``None``
        disables the disk tier.

    The disk tier is strictly best-effort: a put that fails with any
    ``OSError`` (disk full, permissions, vanished mount) is counted in
    ``stats.disk_put_errors`` and the value stays memory-cached; after
    several consecutive failures the tier is switched off for the rest
    of the process (:attr:`disk_degraded`) instead of hammering a full
    disk from inside the hot loop. Reads keep working either way.
    """

    def __init__(self, max_items: int = 100_000,
                 disk_dir: str | os.PathLike | None = None):
        if max_items < 1:
            raise ValidationError("max_items must be >= 1")
        self.max_items = max_items
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        self._memory: OrderedDict[str, float] = OrderedDict()
        self._lock = threading.Lock()
        self._journals: list[list] = []
        self._disk_put_failures = 0
        self._disk_degraded = False
        self.stats = CacheStats()
        _LIVE_CACHES.add(self)

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def keys(self) -> list[str]:
        """Keys currently resident in the memory tier (LRU order)."""
        with self._lock:
            return list(self._memory.keys())

    @property
    def disk_degraded(self) -> bool:
        """True once repeated put failures switched the disk tier off
        (the cache keeps running memory-only)."""
        return self._disk_degraded

    # -- put journals ------------------------------------------------------
    def start_journal(self) -> list:
        """Begin recording every :meth:`put` as a ``(key, value)`` pair.

        Checkpointed loops journal the cache during a run so a resumed
        session can replay the exact entries the interrupted one
        produced — making the resumed cache contents (keys *and* bitwise
        values) identical to an uninterrupted run's. Returns the journal
        list; pass it to :meth:`stop_journal` when done.
        """
        journal: list = []
        with self._lock:
            self._journals.append(journal)
        return journal

    def stop_journal(self, journal: list) -> list:
        """Stop recording into ``journal`` (returns it for convenience)."""
        with self._lock:
            try:
                self._journals.remove(journal)
            except ValueError:
                pass
        return journal

    # -- disk tier ---------------------------------------------------------
    def _disk_path(self, key: str) -> Path:
        # Two-level fan-out keeps directories small at millions of entries.
        return self.disk_dir / key[:2] / f"{key}.fpv"

    def _disk_read(self, key: str):
        if self.disk_dir is None:
            return _MISSING
        path = self._disk_path(key)
        try:
            text = path.read_text(encoding="ascii").strip()
        except FileNotFoundError:
            return _MISSING
        except (OSError, ValueError):
            # Unreadable or non-ASCII garbage (a torn write, bit rot):
            # drop the entry so the next put can heal it.
            return self._discard_corrupt(path)
        if not text:
            return self._discard_corrupt(path)  # truncated to empty
        try:
            return float.fromhex(text)
        except ValueError:
            return self._discard_corrupt(path)  # truncated/garbled hex

    @staticmethod
    def _discard_corrupt(path: Path):
        try:
            path.unlink()
        except OSError:
            pass
        return _CORRUPT

    # Consecutive put failures before the disk tier is switched off for
    # the rest of the process (a full or read-only disk won't recover by
    # itself, and each further attempt costs a syscall round trip).
    _DISK_DEGRADE_AFTER = 3

    def _disk_write(self, key: str, value: float) -> None:
        if self.disk_dir is None or self._disk_degraded:
            return
        # Best-effort tier: an ENOSPC/EACCES/... anywhere in the publish
        # sequence (mkdir included) must degrade the cache to
        # memory-only, never crash the run mid-loop.
        tmp = None
        try:
            path = self._disk_path(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            # Atomic publish: readers never observe a half-written entry.
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            with os.fdopen(fd, "w", encoding="ascii") as handle:
                handle.write(float(value).hex())
            os.replace(tmp, path)
        except OSError:
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
            with self._lock:
                self.stats.disk_put_errors += 1
                self._disk_put_failures += 1
                if self._disk_put_failures >= self._DISK_DEGRADE_AFTER:
                    self._disk_degraded = True
        else:
            with self._lock:
                self._disk_put_failures = 0

    # -- public API --------------------------------------------------------
    def get(self, key: str):
        """Return the cached float for ``key`` or ``None`` on a miss."""
        with self._lock:
            if key in self._memory:
                self._memory.move_to_end(key)
                self.stats.memory_hits += 1
                return self._memory[key]
        value = self._disk_read(key)
        with self._lock:
            if value is _CORRUPT:
                # A corrupt disk entry is a miss: it was deleted above so
                # the caller's recomputed value re-populates it cleanly.
                self.stats.disk_corrupt += 1
                self.stats.misses += 1
                return None
            if value is not _MISSING:
                self.stats.disk_hits += 1
                self._store_memory(key, value)
                return value
            self.stats.misses += 1
            return None

    def put(self, key: str, value: float) -> None:
        value = float(value)
        with self._lock:
            self.stats.puts += 1
            self._store_memory(key, value)
            for journal in self._journals:
                journal.append((key, value))
        self._disk_write(key, value)

    def _store_memory(self, key: str, value: float) -> None:
        # caller holds the lock
        self._memory[key] = value
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_items:
            self._memory.popitem(last=False)
            self.stats.evictions += 1

    def clear_memory(self) -> None:
        """Drop the memory tier (the disk tier, if any, is untouched)."""
        with self._lock:
            self._memory.clear()
