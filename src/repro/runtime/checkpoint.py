"""Durable checkpoint/resume for long-running debugging sessions.

A Shapley importance sweep, an iterative-cleaning session, or a CPClean
greedy selection is hours of pure, deterministic work — exactly the kind
of job that dies to an OOM kill, preemption, or an impatient Ctrl-C.
:mod:`repro.runtime.faults` (PR 4) made those jobs survive *worker*
death; this module makes them survive *driver* death: the loop snapshots
its completed units (permutations, coalitions, rounds) into a
:class:`CheckpointStore`, and a fresh process pointed at the store with
``resume_from=`` replays the snapshot and continues — producing
hex-identical scores, call counts, and fingerprint-cache keys to an
uninterrupted run, on any backend.

Three layers:

- :class:`CheckpointStore` — a crash-safe, append-only record store.
  Every record is one file, published atomically (temp file + ``fsync``
  + ``os.replace``) and self-verifying (schema version + SHA-256 content
  hash). A truncated or garbled record is *detected*, surfaced as an
  ``executor.checkpoint_corrupt`` runlog event, and skipped in favour of
  the last good record — never a crash.
- :class:`Checkpointable` — the protocol a resumable loop speaks:
  ``checkpoint_kind`` names the payload schema, ``checkpoint_state()``
  snapshots completed work, ``restore_state()`` replays a snapshot.
- :class:`LoopCheckpointer` — the driver the wired loops
  (``shapley_mc``, ``banzhaf``, ``beta_shapley``, ``loo``,
  ``IterativeCleaner``, ``cpclean_greedy``, ``ShardedUnlearner``) embed:
  cadence control (``checkpoint_every``), identity verification on
  resume (the record must describe the *same* job — params, seed, data
  fingerprint), a registered SIGTERM/SIGINT flush so an interrupted
  session persists its final state before exiting, and the
  ``checkpoint.writes`` / ``checkpoint.bytes`` / ``checkpoint.restores``
  observer accounting.

Floats are serialized as ``float.hex()`` throughout, so a resumed run's
restored marginals/scores are *bitwise* identical to the originals.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import tempfile
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Protocol, runtime_checkable

from repro.core.exceptions import ValidationError
from repro.observe.observer import resolve_observer
from repro.observe.runlog import jsonable

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CheckpointRecord",
    "CheckpointStore",
    "Checkpointable",
    "LoopCheckpointer",
    "flush_all",
    "flush_on_shutdown",
    "register_shutdown_flush",
    "resolve_checkpoint_store",
    "unregister_shutdown_flush",
]

#: Schema version stamped on every record; bumped when a payload layout
#: changes incompatibly. The loader treats an unknown version exactly
#: like a corrupt record: skip it, fall back to the last good one.
CHECKPOINT_SCHEMA = 1

_RECORD_PREFIX = "ckpt-"
_RECORD_SUFFIX = ".json"

#: Sentinel: a record file listed but gone by read time — a concurrent
#: worker pruned it. Distinct from ``None`` (corrupt) so shared-store
#: races never inflate the ``checkpoint.corrupt_records`` counter.
_VANISHED = object()


@dataclass(frozen=True)
class CheckpointRecord:
    """One verified checkpoint: sequence number, kind, decoded payload."""

    seq: int
    kind: str
    payload: dict
    path: Path


@runtime_checkable
class Checkpointable(Protocol):
    """What a resumable loop exposes to the checkpoint machinery.

    ``checkpoint_kind`` names the payload schema (e.g.
    ``"importance.shapley_mc"``); :meth:`checkpoint_state` returns a
    JSON-serializable snapshot of completed work (floats as
    ``float.hex()`` strings so restoration is bitwise exact);
    :meth:`restore_state` replays such a snapshot into a fresh loop.
    The wired loops implement this implicitly via small internal state
    holders — the protocol documents the contract for custom loops.
    """

    checkpoint_kind: str

    def checkpoint_state(self) -> dict:
        """Snapshot completed work as a JSON-serializable dict."""
        ...

    def restore_state(self, state: dict) -> None:
        """Replay a snapshot produced by :meth:`checkpoint_state`."""
        ...


class CheckpointStore:
    """Durable, crash-safe record store backing ``checkpoint=``.

    Parameters
    ----------
    path:
        Directory the records live in; created on demand. One store ==
        one resumable job (records carry a ``kind`` so a mismatched
        store is detected, not silently resumed).
    keep:
        Newest records retained per :meth:`write`; older ones are
        pruned. ``keep >= 2`` means a record corrupted *after* landing
        on disk still leaves a good predecessor to fall back to.
    observer:
        Default :class:`repro.observe.Observer` for write/restore
        accounting; individual calls may override it.

    Every record is published atomically — written to a temp file in the
    same directory, flushed and fsynced, then ``os.replace``d into its
    final name — so a reader (or a resumed run) never observes a
    half-written record. Each record embeds a SHA-256 hash of its
    payload and the schema version; :meth:`load_latest` verifies both
    and falls back past corrupt records instead of crashing.
    """

    def __init__(self, path: str | os.PathLike, *, keep: int = 3,
                 observer=None):
        if keep < 1:
            raise ValidationError("keep must be >= 1")
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self.keep = keep
        self.observer = resolve_observer(observer)
        self._lock = threading.Lock()

    # -- record files ------------------------------------------------------
    def record_paths(self) -> list[Path]:
        """Record files in sequence order (oldest first)."""
        return sorted(self.path.glob(f"{_RECORD_PREFIX}*{_RECORD_SUFFIX}"))

    def __len__(self) -> int:
        return len(self.record_paths())

    def _next_seq(self) -> int:
        paths = self.record_paths()
        if not paths:
            return 0
        stem = paths[-1].name[len(_RECORD_PREFIX):-len(_RECORD_SUFFIX)]
        try:
            return int(stem) + 1
        except ValueError:
            return len(paths)

    # -- write -------------------------------------------------------------
    def write(self, kind: str, payload: dict, *,
              observer=None) -> CheckpointRecord:
        """Atomically publish one record; prunes beyond ``keep``.

        The payload is JSON-serialized (numpy scalars/arrays coerced via
        :func:`repro.observe.jsonable`), content-hashed, and wrapped in
        a schema-versioned envelope. The temp-write + fsync +
        ``os.replace`` sequence guarantees a crash mid-write leaves the
        previous record intact and never a half-record under the final
        name.
        """
        observer = self.observer if observer is None \
            else resolve_observer(observer)
        payload = jsonable(payload)
        payload_json = json.dumps(payload, sort_keys=True)
        with self._lock:
            seq = self._next_seq()
            envelope = {
                "schema": CHECKPOINT_SCHEMA,
                "seq": seq,
                "kind": kind,
                "sha256": hashlib.sha256(payload_json.encode()).hexdigest(),
                "payload": payload_json,
            }
            text = json.dumps(envelope)
            final = self.path / f"{_RECORD_PREFIX}{seq:08d}{_RECORD_SUFFIX}"
            fd, tmp = tempfile.mkstemp(dir=self.path, suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    handle.write(text)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp, final)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            self._fsync_dir()
            self._prune()
        if observer.enabled:
            observer.count("checkpoint.writes")
            observer.count("checkpoint.bytes", len(text))
        return CheckpointRecord(seq=seq, kind=kind, payload=payload,
                                path=final)

    def _fsync_dir(self) -> None:
        # Make the rename itself durable; best-effort (not all platforms
        # allow opening a directory).
        try:
            dir_fd = os.open(self.path, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(dir_fd)
        except OSError:
            pass
        finally:
            os.close(dir_fd)

    def _prune(self) -> None:
        # Two resuming workers may share one store; whoever prunes
        # second finds the stale record already gone. missing_ok (plus
        # the OSError net for everything else) makes that a no-op
        # instead of a crash.
        paths = self.record_paths()
        for stale in paths[:-self.keep] if self.keep else paths:
            try:
                stale.unlink(missing_ok=True)
            except OSError:
                pass

    # -- read --------------------------------------------------------------
    def _load(self, path: Path) -> CheckpointRecord | None:
        """Decode and verify one record file; ``None`` when corrupt,
        :data:`_VANISHED` when the file disappeared between listing and
        reading (a concurrent worker's prune — not corruption)."""
        try:
            envelope = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return _VANISHED
        except (OSError, ValueError):
            return None
        if not isinstance(envelope, dict) \
                or envelope.get("schema") != CHECKPOINT_SCHEMA:
            return None
        payload_json = envelope.get("payload")
        if not isinstance(payload_json, str):
            return None
        digest = hashlib.sha256(payload_json.encode()).hexdigest()
        if digest != envelope.get("sha256"):
            return None
        try:
            payload = json.loads(payload_json)
        except ValueError:
            return None
        return CheckpointRecord(seq=int(envelope.get("seq", 0)),
                                kind=str(envelope.get("kind", "")),
                                payload=payload, path=path)

    def load_latest(self, kind: str | None = None, *,
                    observer=None) -> CheckpointRecord | None:
        """Newest verified record (optionally of one ``kind``).

        Records failing verification — unreadable, truncated, hash
        mismatch, unknown schema — are each surfaced as an
        ``executor.checkpoint_corrupt`` runlog event plus a
        ``checkpoint.corrupt_records`` counter bump, then skipped: the
        newest *good* record wins. Returns ``None`` when no good record
        exists.
        """
        observer = self.observer if observer is None \
            else resolve_observer(observer)
        for path in reversed(self.record_paths()):
            record = self._load(path)
            if record is _VANISHED:
                continue  # concurrently pruned, not corrupt
            if record is None:
                if observer.enabled:
                    observer.count("checkpoint.corrupt_records")
                    observer.event("executor.checkpoint_corrupt",
                                   fault="checkpoint_corrupt",
                                   path=str(path), store=str(self.path))
                continue
            if kind is not None and record.kind != kind:
                continue
            return record
        return None

    def clear(self) -> None:
        """Delete every record (a finished job's store can be reused)."""
        for path in self.record_paths():
            try:
                path.unlink()
            except OSError:
                pass

    def __repr__(self) -> str:
        return f"CheckpointStore({str(self.path)!r}, records={len(self)})"


def resolve_checkpoint_store(store, *, observer=None) -> CheckpointStore | None:
    """Normalize the ``checkpoint=`` / ``resume_from=`` argument.

    ``None``/``False`` disable checkpointing; a path builds a store at
    that directory; a :class:`CheckpointStore` passes through.
    """
    if store is None or store is False:
        return None
    if isinstance(store, CheckpointStore):
        return store
    if isinstance(store, (str, os.PathLike)):
        return CheckpointStore(store, observer=observer)
    raise ValidationError(
        "checkpoint/resume_from must be None, a directory path, or a "
        f"CheckpointStore — got {type(store).__name__}")


# --- graceful-shutdown flush hooks -----------------------------------------
#
# A loop with an active checkpoint registers a zero-argument flush
# callable here for the duration of its run. The first registration (in
# the main thread) installs SIGTERM/SIGINT handlers; on signal, every
# registered flush runs *first* (persisting final checkpoints), then the
# live runtimes' worker pools are torn down, and finally the previous
# handler semantics apply (KeyboardInterrupt for SIGINT, termination for
# SIGTERM) — so a flushed checkpoint never races pool teardown, even on
# exit paths where ``weakref.finalize``'s atexit integration never runs.

_FLUSH_LOCK = threading.Lock()
_FLUSH_HOOKS: dict[int, object] = {}
_FLUSH_COUNTER = 0
_PREVIOUS_HANDLERS: dict[int, object] = {}
_SHUTDOWN_SIGNALS = (signal.SIGTERM, signal.SIGINT)


def _run_flush_hooks() -> None:
    for hook in list(_FLUSH_HOOKS.values()):
        try:
            hook()
        except Exception:
            # A failing flush must not mask the shutdown (or prevent the
            # remaining hooks from flushing their own checkpoints).
            pass


def _shutdown_handler(signum, frame) -> None:
    """Flush checkpoints, release pools, then honour the signal."""
    from repro.runtime.runtime import close_all_runtimes

    _run_flush_hooks()
    # Pools after checkpoints: the flush above must never race teardown.
    close_all_runtimes(wait=False)
    previous = _PREVIOUS_HANDLERS.get(signum, signal.SIG_DFL)
    _uninstall_handlers()
    if callable(previous):
        previous(signum, frame)
    elif previous != signal.SIG_IGN:
        # Default disposition: re-deliver so the exit status is the
        # conventional "killed by signal" one.
        os.kill(os.getpid(), signum)


_HANDLERS_INSTALLED = False


def _install_handlers() -> None:
    # signal.signal only works from the main thread; a loop running on a
    # worker thread simply skips the hook (its checkpoints still flush
    # at every cadence boundary — and :func:`flush_all` covers embedded
    # drains). Installation is retried on every registration until it
    # succeeds, so a worker-thread registration arriving *first* (the
    # server case: jobs run on worker threads before the main thread
    # ever registers) does not permanently block a later main-thread
    # registration from installing the handlers.
    global _HANDLERS_INSTALLED
    if _HANDLERS_INSTALLED:
        return
    for signum in _SHUTDOWN_SIGNALS:
        try:
            _PREVIOUS_HANDLERS[signum] = signal.signal(signum,
                                                       _shutdown_handler)
        except ValueError:
            _PREVIOUS_HANDLERS.clear()
            return
    _HANDLERS_INSTALLED = True


def _uninstall_handlers() -> None:
    global _HANDLERS_INSTALLED
    for signum, previous in list(_PREVIOUS_HANDLERS.items()):
        try:
            if signal.getsignal(signum) is _shutdown_handler:
                signal.signal(signum, previous)
        except ValueError:
            pass
    _PREVIOUS_HANDLERS.clear()
    _HANDLERS_INSTALLED = False


def register_shutdown_flush(flush) -> int:
    """Register a zero-arg flush callable to run on SIGTERM/SIGINT.

    Returns a handle for :func:`unregister_shutdown_flush`. Handler
    installation is attempted on every registration until one succeeds
    (only the main thread can install; worker-thread registrations
    still record their hooks for :func:`flush_all` and for a handler a
    later main-thread registration installs). The last removal restores
    the previous handlers.
    """
    global _FLUSH_COUNTER
    with _FLUSH_LOCK:
        handle = _FLUSH_COUNTER
        _FLUSH_COUNTER += 1
        _install_handlers()
        _FLUSH_HOOKS[handle] = flush
    return handle


def flush_all() -> None:
    """Run every registered shutdown-flush hook now (signal-free).

    The embedded-server drain path: :meth:`repro.serve.Server.drain`
    calls this *before* tearing down worker pools, so every armed
    :class:`LoopCheckpointer` — including ones running on worker
    threads, where signal handlers cannot be installed — persists its
    final snapshot without double-registering or re-entering the signal
    machinery. Safe to call at any time; hooks that fail are skipped.
    """
    _run_flush_hooks()


def unregister_shutdown_flush(handle: int) -> None:
    """Remove a flush hook; restores signal handlers when none remain."""
    with _FLUSH_LOCK:
        _FLUSH_HOOKS.pop(handle, None)
        if not _FLUSH_HOOKS:
            _uninstall_handlers()


class flush_on_shutdown:
    """Context manager form of :func:`register_shutdown_flush`."""

    def __init__(self, flush):
        self._flush = flush
        self._handle: int | None = None

    def __enter__(self):
        self._handle = register_shutdown_flush(self._flush)
        return self

    def __exit__(self, *exc):
        if self._handle is not None:
            unregister_shutdown_flush(self._handle)
            self._handle = None
        return False


# --- the loop driver --------------------------------------------------------

class LoopCheckpointer:
    """Checkpoint cadence + resume + signal flush for one resumable loop.

    Parameters
    ----------
    checkpoint:
        Store (or directory path) new snapshots are written to; ``None``
        disables writing.
    kind:
        Record kind — the payload schema the loop writes (e.g.
        ``"importance.shapley_mc"``).
    identity:
        Fingerprint of everything that determines the loop's results
        (method, params, seed, data). Stamped into every payload and
        verified on resume: a record describing a *different* job raises
        :class:`~repro.core.exceptions.ValidationError` instead of
        silently producing wrong numbers. Execution policy (backend,
        workers, :class:`~repro.runtime.FaultPolicy`) is deliberately
        *not* part of the identity — a job may be resumed on any backend
        under any policy.
    every:
        Cadence in completed work units (permutations / coalitions /
        rounds) between snapshots. The final signal-flush ignores the
        cadence.
    observer:
        Observer fed the ``checkpoint.*`` counters and the
        ``checkpoint.resume`` runlog event.
    resume_from:
        Store (or path) to resume out of; commonly the same directory as
        ``checkpoint``. ``None`` starts fresh.

    Use :meth:`armed` around the loop body so an interrupting
    SIGTERM/SIGINT flushes the current state before the process exits.
    """

    def __init__(self, checkpoint, *, kind: str, identity: str,
                 every: int = 1, observer=None, resume_from=None):
        if every < 1:
            raise ValidationError("checkpoint_every must be >= 1")
        self.store = resolve_checkpoint_store(checkpoint, observer=observer)
        self.resume_store = resolve_checkpoint_store(resume_from,
                                                     observer=observer)
        self.kind = kind
        self.identity = identity
        self.every = every
        self.observer = resolve_observer(observer)
        self._last_flushed: int | None = None
        self._state_fn = None

    @property
    def active(self) -> bool:
        """True when snapshots are being written."""
        return self.store is not None

    # -- resume ------------------------------------------------------------
    def resume(self) -> dict | None:
        """Load, verify, and account the newest matching snapshot.

        Returns the payload dict (or ``None`` when the resume store is
        absent/empty). Bumps ``checkpoint.restores`` and emits the
        ``checkpoint.resume`` runlog event; the caller adds its
        skipped-work figures via :meth:`record_skipped`.
        """
        if self.resume_store is None:
            return None
        record = self.resume_store.load_latest(self.kind,
                                               observer=self.observer)
        if record is None:
            return None
        payload = record.payload
        if payload.get("identity") != self.identity:
            raise ValidationError(
                f"checkpoint {record.path} was written by a different job "
                f"(kind {self.kind!r}): its identity fingerprint does not "
                "match this loop's parameters/seed/data. Point resume_from= "
                "at the matching store, or clear it to start fresh.")
        self._last_flushed = int(payload.get("completed", 0))
        if self.observer.enabled:
            self.observer.count("checkpoint.restores")
        return payload

    def record_skipped(self, *, completed: int, total: int | None = None,
                       **extra) -> None:
        """Emit the ``checkpoint.resume`` provenance event."""
        if self.observer.enabled:
            self.observer.event("checkpoint.resume",
                                checkpoint_kind=self.kind,
                                completed=completed, total=total,
                                store=str(self.resume_store.path)
                                if self.resume_store else None, **extra)

    # -- write -------------------------------------------------------------
    def arm(self, state_fn) -> None:
        """Set the snapshot provider used by cadence and signal flushes.

        ``state_fn()`` must return the payload dict including a
        ``completed`` count; it is called under the loop's own thread on
        cadence flushes and from the signal handler on shutdown, so it
        must only *read* loop state.
        """
        self._state_fn = state_fn

    def flush(self) -> None:
        """Write one snapshot now (no cadence check)."""
        if self.store is None or self._state_fn is None:
            return
        payload = dict(self._state_fn())
        payload["identity"] = self.identity
        completed = int(payload.get("completed", 0))
        if self._last_flushed is not None \
                and completed == self._last_flushed \
                and len(self.store):
            return  # nothing new since the last snapshot
        self.store.write(self.kind, payload, observer=self.observer)
        self._last_flushed = completed

    def maybe_flush(self, completed: int) -> None:
        """Cadence flush: write when ``every`` new units completed."""
        if self.store is None:
            return
        if self._last_flushed is None \
                or completed - self._last_flushed >= self.every:
            self.flush()

    def armed(self, state_fn) -> flush_on_shutdown:
        """Arm the snapshot provider and return the signal-flush guard.

        Intended as ``with ckpt.armed(state): ...`` around the loop
        body — on SIGTERM/SIGINT the final state is flushed before the
        process exits; on normal exit the hook is removed before the
        loop's runtime/pool teardown, so a flush never races it.
        """
        self.arm(state_fn)
        return flush_on_shutdown(self.flush)
