"""Interchangeable execution backends for coalition-scoring workloads.

An :class:`Executor` runs ``fn(shared, task)`` over a list of tasks and
returns the results *in task order*. Three backends implement the same
contract:

- ``serial`` — plain in-process loop; zero overhead, the default.
- ``thread`` — :class:`~concurrent.futures.ThreadPoolExecutor`; helps
  when the work releases the GIL (numpy linear algebra).
- ``process`` — :class:`~concurrent.futures.ProcessPoolExecutor`; true
  multi-core scaling. ``shared`` (typically the training arrays + model
  prototype) is pickled **once** and installed in every worker by the
  pool initializer, so per-task IPC carries only the small task payloads.

Because backends only change *where* ``fn`` runs — never the task list,
the task order, or any random stream — results are backend-invariant:
callers derive per-task randomness up front (see
:func:`repro.core.rng.spawn_rngs`) and the executor treats tasks as pure
functions.

Tasks are grouped into chunks to amortize submission overhead; progress
hooks fire and cancellation tokens are polled at chunk granularity (see
:mod:`repro.runtime.progress`). Chunks are also the unit of fault
handling (see :mod:`repro.runtime.faults`): a failed or timed-out chunk
is retried within its :class:`~repro.runtime.FaultPolicy` budget, a dead
process pool is rebuilt and only the lost chunks resubmitted, and an
exhausted budget raises a structured
:class:`~repro.runtime.TaskError` — with results bit-identical to an
undisturbed run, because tasks are pure.
"""

from __future__ import annotations

import hashlib
import math
import os
import pickle
import threading
import time
from collections import OrderedDict
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)

from repro.core.exceptions import ValidationError
from repro.runtime.faults import (
    FaultEvent,
    FaultStats,
    TaskError,
    backoff_wait,
    resolve_fault_policy,
)
from repro.runtime.progress import JobCancelled, ProgressEvent

BACKENDS = ("serial", "thread", "process")

#: Chunks never exceed this many tasks, whatever the worker count:
#: progress events and cancellation polls happen at chunk boundaries, so
#: the cap bounds how stale a progress bar (or an ignored cancel) can be.
MAX_CHUNK_SIZE = 64

#: Seconds to wait for in-flight chunks when unwinding after an error —
#: the "drain" that keeps zombie chunks from racing a propagating
#: exception. Broken pools resolve their futures immediately, so this
#: bound only bites when live workers are mid-chunk.
_DRAIN_TIMEOUT = 10.0

#: Placeholder marking a chunk whose results have not been recorded yet.
_UNSET = object()


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _default_chunk_size(n_tasks: int, workers: int) -> int:
    # ~4 chunks per worker balances scheduling slack against per-chunk
    # overhead; the MAX_CHUNK_SIZE cap keeps progress/cancel polling
    # responsive even for huge serial jobs (a 10k-task serial run emits
    # >= 150 progress events instead of 4).
    return max(1, min(math.ceil(n_tasks / max(1, workers * 4)),
                      MAX_CHUNK_SIZE))


class Executor:
    """Backend contract: ordered, chunked fan-out of ``fn(shared, task)``."""

    name = "base"

    def __init__(self, max_workers: int | None = None):
        if max_workers is not None and max_workers < 1:
            raise ValidationError("max_workers must be >= 1")
        self.max_workers = max_workers
        self.fault_stats = FaultStats()

    @property
    def effective_workers(self) -> int:
        return 1

    def map(self, fn, tasks, *, shared=None, chunk_size: int | None = None,
            progress=None, cancel=None, stage: str = "map",
            faults=None, fault_hook=None) -> list:
        """Run ``fn(shared, task)`` for every task; return ordered results.

        Parameters
        ----------
        fn:
            Module-level callable (must be picklable for the process
            backend) taking ``(shared, task)``.
        shared:
            Read-only state shipped to workers once per job.
        chunk_size:
            Tasks per submitted chunk; auto-sized when omitted.
        progress:
            Optional ``callable(ProgressEvent)`` fired per finished chunk.
        cancel:
            Optional :class:`CancellationToken` polled between chunks.
        stage:
            Label used in progress events, fault events, and errors.
        faults:
            :class:`~repro.runtime.FaultPolicy` (or dict of its fields)
            governing retries, timeouts, and crash recovery; the default
            policy retries each chunk once and rebuilds a broken pool.
        fault_hook:
            Optional ``callable(FaultEvent)`` invoked for every fault
            incident — :class:`~repro.runtime.Runtime` uses it to feed
            ``repro.observe`` counters and span events.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        if cancel is not None:
            cancel.raise_if_cancelled(stage)
        if chunk_size is None:
            chunk_size = _default_chunk_size(len(tasks), self.effective_workers)
        chunks = [tasks[i:i + chunk_size]
                  for i in range(0, len(tasks), chunk_size)]
        policy = resolve_fault_policy(faults)
        return self._run_chunks(fn, shared, chunks, len(tasks),
                                progress, cancel, stage, policy, fault_hook)

    def _emit_fault(self, fault_hook, kind: str, stage: str, chunk_index: int,
                    attempt: int, error: BaseException, started: float) -> None:
        event = FaultEvent(kind=kind, stage=stage, chunk_index=chunk_index,
                           attempt=attempt, error=repr(error),
                           elapsed=time.perf_counter() - started)
        self.fault_stats.record(event)
        if fault_hook is not None:
            fault_hook(event)

    def _run_chunks(self, fn, shared, chunks, n_tasks, progress, cancel,
                    stage, policy, fault_hook) -> list:
        raise NotImplementedError

    def close(self, wait: bool = True) -> None:
        """Release pooled workers (no-op for serial).

        ``wait=False`` abandons in-flight chunks instead of joining them
        — the shutdown-path variant used by the checkpoint signal
        handler, where a flushed checkpoint must not block on (or race)
        pool teardown. Safe to call repeatedly and during interpreter
        shutdown.
        """

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


class SerialExecutor(Executor):
    """In-process loop — the reference semantics every backend must match.

    Honours the retry/backoff half of the fault policy (timeouts need
    preemption, which a single-threaded loop cannot do; worker crashes
    cannot happen — there are no workers).
    """

    name = "serial"

    def _run_chunks(self, fn, shared, chunks, n_tasks, progress, cancel,
                    stage, policy, fault_hook) -> list:
        started = time.perf_counter()
        results: list = []
        for idx, chunk in enumerate(chunks):
            if cancel is not None:
                cancel.raise_if_cancelled(stage)
            attempt = 0
            while True:
                try:
                    chunk_results = [fn(shared, task) for task in chunk]
                except JobCancelled:
                    raise
                except Exception as error:
                    attempt += 1
                    if attempt > policy.retries:
                        raise TaskError(stage=stage, chunk_index=idx,
                                        backend=self.name, attempts=attempt,
                                        cause=error) from error
                    self._emit_fault(fault_hook, "retry", stage, idx,
                                     attempt, error, started)
                    backoff_wait(policy.backoff * attempt, cancel, stage)
                else:
                    break
            results.extend(chunk_results)
            if progress is not None:
                progress(ProgressEvent(stage, len(results), n_tasks,
                                       time.perf_counter() - started))
        return results


class _PooledExecutor(Executor):
    """Shared chunk-collection and fault-recovery logic for the thread
    and process backends.

    The collection loop is a small per-chunk state machine: every chunk
    is submitted as one future; a task exception or timeout consumes one
    unit of the chunk's retry budget (with deterministic linear backoff)
    before resubmission; a broken pool triggers the policy's
    ``on_worker_failure`` strategy; and an exhausted budget raises
    :class:`TaskError` *after draining the pool*, so no zombie chunk is
    still running when the exception reaches the caller.
    """

    #: True when a stuck worker can be killed on timeout (process pools);
    #: thread workers cannot be interrupted, so their futures are
    #: abandoned instead.
    _kills_stuck_workers = False

    def _submit(self, fn, shared, chunk):
        """Submit one chunk to the (lazily built) pool; returns a future."""
        raise NotImplementedError

    def _discard_pool(self) -> None:
        """Drop the current pool so the next submission builds a fresh one."""
        raise NotImplementedError

    def _terminate_workers(self) -> None:
        """Forcibly stop pool workers (process backend only)."""

    def _drain(self, pending) -> None:
        for future in pending:
            future.cancel()
        running = {future for future in pending if not future.cancelled()}
        if running:
            wait(running, timeout=_DRAIN_TIMEOUT)

    def _run_chunks(self, fn, shared, chunks, n_tasks, progress, cancel,
                    stage, policy, fault_hook) -> list:
        started = time.perf_counter()
        results: list = [_UNSET] * len(chunks)
        attempts = [0] * len(chunks)
        crashes = 0
        completed_tasks = 0
        pending: set = set()
        chunk_of: dict = {}
        deadline_of: dict = {}
        live: set = set()  # chunk indices with an active future

        def forget(future) -> int:
            pending.discard(future)
            deadline_of.pop(future, None)
            idx = chunk_of.pop(future)
            live.discard(idx)
            return idx

        def forget_all() -> list:
            lost = sorted(chunk_of.values())
            pending.clear()
            chunk_of.clear()
            deadline_of.clear()
            live.clear()
            return lost

        def submit(idx: int) -> None:
            if idx in live:
                return  # already resubmitted by a nested recovery
            try:
                future = self._submit(fn, shared, chunks[idx])
            except BrokenExecutor as error:
                # The pool died between our noticing and this submission;
                # recover (or raise) through the same path as a broken
                # future. Recursion is bounded by max_worker_crashes.
                pool_failure(idx, error)
                return
            chunk_of[future] = idx
            pending.add(future)
            live.add(idx)
            if policy.timeout is not None:
                deadline_of[future] = time.monotonic() + policy.timeout

        def record_success(idx: int, chunk_results) -> None:
            nonlocal completed_tasks
            if results[idx] is not _UNSET:
                return  # duplicate completion after an abandoned timeout
            results[idx] = chunk_results
            completed_tasks += len(chunks[idx])
            if progress is not None:
                progress(ProgressEvent(stage, completed_tasks, n_tasks,
                                       time.perf_counter() - started))

        def unfinished() -> list:
            return [idx for idx, slot in enumerate(results)
                    if slot is _UNSET]

        def task_failure(idx: int, error: BaseException) -> None:
            # One chunk's own failure (task exception or timeout):
            # bounded retry with deterministic linear backoff, then a
            # structured TaskError. Timeouts are counted as incidents
            # whether or not retry budget remains; "retry" records an
            # actual resubmission.
            attempts[idx] += 1
            if isinstance(error, TimeoutError):
                self._emit_fault(fault_hook, "timeout", stage, idx,
                                 attempts[idx], error, started)
            if attempts[idx] > policy.retries:
                raise TaskError(stage=stage, chunk_index=idx,
                                backend=self.name, attempts=attempts[idx],
                                cause=error) from error
            if not isinstance(error, TimeoutError):
                self._emit_fault(fault_hook, "retry", stage, idx,
                                 attempts[idx], error, started)
            backoff_wait(policy.backoff * attempts[idx], cancel, stage)
            submit(idx)

        def pool_failure(idx: int, error: BaseException) -> None:
            # The pool itself died: every in-flight chunk is lost, not
            # just the one whose future surfaced the break.
            nonlocal crashes
            crashes += 1
            forget_all()
            self._discard_pool()
            self._emit_fault(fault_hook, "worker_crash", stage, idx,
                             attempts[idx], error, started)
            if policy.on_worker_failure == "raise" \
                    or crashes > policy.max_worker_crashes:
                raise TaskError(stage=stage, chunk_index=idx,
                                backend=self.name,
                                attempts=attempts[idx] + 1,
                                cause=error) from error
            if policy.on_worker_failure == "serial":
                # Graceful degradation: finish every remaining chunk in
                # the parent process. Bit-identical because tasks are
                # pure; slower, but the job completes.
                self._emit_fault(fault_hook, "degraded", stage, idx,
                                 attempts[idx], error, started)
                for lost_idx in unfinished():
                    if cancel is not None:
                        cancel.raise_if_cancelled(stage)
                    record_success(lost_idx, [fn(shared, task)
                                              for task in chunks[lost_idx]])
                return
            # "retry": rebuild the pool lazily and resubmit only the
            # chunks whose results were lost.
            lost = unfinished()
            for lost_idx in lost:
                self._emit_fault(fault_hook, "retry", stage, lost_idx,
                                 attempts[lost_idx], error, started)
            backoff_wait(policy.backoff * crashes, cancel, stage)
            for lost_idx in lost:
                submit(lost_idx)

        def expire_timeouts() -> None:
            now = time.monotonic()
            expired = [future for future, deadline in deadline_of.items()
                       if deadline < now]
            for future in expired:
                if future not in chunk_of:
                    continue
                idx = forget(future)
                error = TimeoutError(
                    f"chunk {idx} exceeded the per-chunk timeout of "
                    f"{policy.timeout:g}s")
                if not future.cancel() and self._kills_stuck_workers:
                    # Running in a worker we can only stop by killing the
                    # pool; sibling in-flight chunks are collateral and
                    # get resubmitted without consuming their budgets.
                    self._terminate_workers()
                    self._discard_pool()
                    lost = forget_all()
                    task_failure(idx, error)  # raises when budget exhausted
                    for sibling in lost:
                        submit(sibling)
                else:
                    # Never-started chunk, or a thread future we must
                    # abandon (its worker cannot be interrupted; the task
                    # is pure, so a duplicate completion is harmless).
                    task_failure(idx, error)

        try:
            for idx in range(len(chunks)):
                submit(idx)
            while pending:
                done, _ = wait(pending, timeout=0.1,
                               return_when=FIRST_COMPLETED)
                for future in done:
                    if future not in chunk_of:
                        continue  # forgotten by a pool failure/timeout
                    idx = forget(future)
                    try:
                        chunk_results = future.result()
                    except JobCancelled:
                        raise
                    except BrokenExecutor as error:
                        pool_failure(idx, error)
                    except Exception as error:
                        task_failure(idx, error)
                    else:
                        record_success(idx, chunk_results)
                if deadline_of:
                    expire_timeouts()
                if cancel is not None and cancel.cancelled:
                    raise JobCancelled(f"{stage} cancelled by caller")
        except BaseException:
            self._drain(pending)
            raise
        return [result for chunk_results in results
                for result in chunk_results]


def _run_chunk_with_shared(fn, shared, chunk):
    return [fn(shared, task) for task in chunk]


class ThreadExecutor(_PooledExecutor):
    """Thread-pool backend; ``shared`` is passed by reference (same
    process), so it must be treated as read-only by ``fn``.

    Safe under concurrent :meth:`map` callers (a serving tier runs many
    jobs over one executor): pool construction, discard, and close are
    serialized by a lock, so two racing callers share one pool instead
    of leaking a second one.
    """

    name = "thread"

    def __init__(self, max_workers: int | None = None):
        super().__init__(max_workers)
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.RLock()

    @property
    def effective_workers(self) -> int:
        return self.max_workers or _available_cpus()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.effective_workers)
            return self._pool

    def _submit(self, fn, shared, chunk):
        return self._ensure_pool().submit(_run_chunk_with_shared, fn, shared,
                                          chunk)

    def _discard_pool(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def close(self, wait: bool = True) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            try:
                pool.shutdown(wait=wait, cancel_futures=not wait)
            except Exception:  # interpreter/pool teardown already underway
                pass


# --- process backend -------------------------------------------------------
# The shared object is installed once per worker via the pool initializer;
# chunk submissions then reference it through this module-level slot. This
# keeps per-chunk IPC proportional to the chunk, not the dataset.
_WORKER_SHARED = None


def _install_shared(payload: bytes) -> None:
    global _WORKER_SHARED
    _WORKER_SHARED = pickle.loads(payload)


def _run_chunk_in_worker(fn, chunk):
    return [fn(_WORKER_SHARED, task) for task in chunk]


class ProcessExecutor(_PooledExecutor):
    """Process-pool backend with a keyed warm-pool registry.

    Pools are keyed by the SHA-256 of the pickled ``shared`` payload and
    kept warm across :meth:`map` calls, so (a) repeated scoring rounds
    over one utility reuse one pool with zero re-ship cost, and (b)
    **concurrent** :meth:`map` callers with *different* payloads — the
    multi-tenant serving case, many jobs sharing one executor — each get
    their own pool instead of thrashing a single slot (the old
    single-pool design shut the other caller's pool down mid-flight).
    The payload is pickled once per :meth:`map` call, not once per chunk
    submission; per-chunk IPC carries only the chunk.

    Registry maintenance is bounded: at most ``max_warm_pools`` pools
    stay alive, evicting the least-recently-used *idle* pool (one with
    no in-flight map call) first; pools with active callers are never
    evicted. A broken pool is discarded for its own caller only. All
    registry mutation happens under one re-entrant lock.
    """

    name = "process"
    _kills_stuck_workers = True

    def __init__(self, max_workers: int | None = None, *,
                 max_warm_pools: int = 4):
        super().__init__(max_workers)
        if max_warm_pools < 1:
            raise ValidationError("max_warm_pools must be >= 1")
        self.max_warm_pools = max_warm_pools
        self._pools: "OrderedDict[str, ProcessPoolExecutor]" = OrderedDict()
        self._refs: dict[str, int] = {}  # in-flight map calls per digest
        self._registry_lock = threading.RLock()
        self._tls = threading.local()  # current map call's digest+payload

    @property
    def effective_workers(self) -> int:
        return self.max_workers or _available_cpus()

    # -- compatibility views (and handy introspection) ---------------------
    @property
    def _pool(self) -> ProcessPoolExecutor | None:
        """The most-recently-used live pool (``None`` when empty)."""
        with self._registry_lock:
            if not self._pools:
                return None
            return next(reversed(self._pools.values()))

    @property
    def _pool_digest(self) -> str | None:
        """Digest of the most-recently-used live pool."""
        with self._registry_lock:
            if not self._pools:
                return None
            return next(reversed(self._pools))

    @property
    def warm_pools(self) -> int:
        with self._registry_lock:
            return len(self._pools)

    # -- the per-map digest pin --------------------------------------------
    def map(self, fn, tasks, *, shared=None, **kwargs) -> list:
        """Pickle ``shared`` once, pin this call to its pool, fan out."""
        payload = pickle.dumps(shared, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(payload).hexdigest()
        previous = getattr(self._tls, "pin", None)
        self._tls.pin = (digest, payload)
        with self._registry_lock:
            self._refs[digest] = self._refs.get(digest, 0) + 1
        try:
            return super().map(fn, tasks, shared=shared, **kwargs)
        finally:
            with self._registry_lock:
                remaining = self._refs.get(digest, 1) - 1
                if remaining:
                    self._refs[digest] = remaining
                else:
                    self._refs.pop(digest, None)
                self._evict_idle()
            self._tls.pin = previous

    def _current_digest(self) -> str:
        return self._tls.pin[0]

    def _ensure_pool(self) -> ProcessPoolExecutor:
        digest, payload = self._tls.pin
        with self._registry_lock:
            pool = self._pools.get(digest)
            if pool is None:
                pool = ProcessPoolExecutor(
                    max_workers=self.effective_workers,
                    initializer=_install_shared, initargs=(payload,))
                self._pools[digest] = pool
            self._pools.move_to_end(digest)
            self._evict_idle()
            return pool

    def _evict_idle(self) -> None:
        # caller holds the lock; drop LRU pools nobody is mapping over
        # until the registry fits the cap.
        while len(self._pools) > self.max_warm_pools:
            idle = [d for d in self._pools if not self._refs.get(d)]
            if not idle:
                return  # every pool has an active caller; over-cap is OK
            victim = self._pools.pop(idle[0])
            try:
                victim.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass

    def _submit(self, fn, shared, chunk):
        return self._ensure_pool().submit(_run_chunk_in_worker, fn, chunk)

    def _discard_pool(self) -> None:
        # Only the calling map's own pool: a broken pool must not take
        # a healthy concurrent caller's pool down with it.
        with self._registry_lock:
            pool = self._pools.pop(self._current_digest(), None)
        if pool is not None:
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:  # a broken pool may refuse even shutdown
                pass

    def _terminate_workers(self) -> None:
        with self._registry_lock:
            pool = self._pools.get(self._current_digest())
        if pool is None:
            return
        for process in list(getattr(pool, "_processes", {}).values()):
            try:
                process.terminate()
            except Exception:
                pass

    def close(self, wait: bool = True) -> None:
        with self._registry_lock:
            pools = list(self._pools.values())
            self._pools.clear()
            self._refs.clear()
        for pool in pools:
            try:
                pool.shutdown(wait=wait, cancel_futures=not wait)
            except Exception:  # interpreter/pool teardown already underway
                pass


def get_executor(backend, max_workers: int | None = None) -> Executor:
    """Resolve a backend name (or pass through an :class:`Executor`)."""
    if isinstance(backend, Executor):
        return backend
    if backend == "serial":
        return SerialExecutor(max_workers)
    if backend == "thread":
        return ThreadExecutor(max_workers)
    if backend == "process":
        return ProcessExecutor(max_workers)
    raise ValidationError(
        f"unknown backend {backend!r}; expected one of {BACKENDS} "
        "or an Executor instance")
