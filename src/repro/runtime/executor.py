"""Interchangeable execution backends for coalition-scoring workloads.

An :class:`Executor` runs ``fn(shared, task)`` over a list of tasks and
returns the results *in task order*. Three backends implement the same
contract:

- ``serial`` — plain in-process loop; zero overhead, the default.
- ``thread`` — :class:`~concurrent.futures.ThreadPoolExecutor`; helps
  when the work releases the GIL (numpy linear algebra).
- ``process`` — :class:`~concurrent.futures.ProcessPoolExecutor`; true
  multi-core scaling. ``shared`` (typically the training arrays + model
  prototype) is pickled **once** and installed in every worker by the
  pool initializer, so per-task IPC carries only the small task payloads.

Because backends only change *where* ``fn`` runs — never the task list,
the task order, or any random stream — results are backend-invariant:
callers derive per-task randomness up front (see
:func:`repro.core.rng.spawn_rngs`) and the executor treats tasks as pure
functions.

Tasks are grouped into chunks to amortize submission overhead; progress
hooks fire and cancellation tokens are polled at chunk granularity (see
:mod:`repro.runtime.progress`).
"""

from __future__ import annotations

import hashlib
import math
import os
import pickle
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, ThreadPoolExecutor, wait

from repro.core.exceptions import ValidationError
from repro.runtime.progress import JobCancelled, ProgressEvent

BACKENDS = ("serial", "thread", "process")


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _default_chunk_size(n_tasks: int, workers: int) -> int:
    # ~4 chunks per worker balances scheduling slack against per-chunk
    # overhead; serial keeps chunks small so progress/cancel stay responsive.
    return max(1, math.ceil(n_tasks / max(1, workers * 4)))


class Executor:
    """Backend contract: ordered, chunked fan-out of ``fn(shared, task)``."""

    name = "base"

    def __init__(self, max_workers: int | None = None):
        if max_workers is not None and max_workers < 1:
            raise ValidationError("max_workers must be >= 1")
        self.max_workers = max_workers

    @property
    def effective_workers(self) -> int:
        return 1

    def map(self, fn, tasks, *, shared=None, chunk_size: int | None = None,
            progress=None, cancel=None, stage: str = "map") -> list:
        """Run ``fn(shared, task)`` for every task; return ordered results.

        Parameters
        ----------
        fn:
            Module-level callable (must be picklable for the process
            backend) taking ``(shared, task)``.
        shared:
            Read-only state shipped to workers once per job.
        chunk_size:
            Tasks per submitted chunk; auto-sized when omitted.
        progress:
            Optional ``callable(ProgressEvent)`` fired per finished chunk.
        cancel:
            Optional :class:`CancellationToken` polled between chunks.
        stage:
            Label used in progress events and cancellation errors.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        if cancel is not None:
            cancel.raise_if_cancelled(stage)
        if chunk_size is None:
            chunk_size = _default_chunk_size(len(tasks), self.effective_workers)
        chunks = [tasks[i:i + chunk_size]
                  for i in range(0, len(tasks), chunk_size)]
        return self._run_chunks(fn, shared, chunks, len(tasks),
                                progress, cancel, stage)

    def _run_chunks(self, fn, shared, chunks, n_tasks, progress, cancel,
                    stage) -> list:
        raise NotImplementedError

    def close(self) -> None:
        """Release pooled workers (no-op for serial)."""

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


class SerialExecutor(Executor):
    """In-process loop — the reference semantics every backend must match."""

    name = "serial"

    def _run_chunks(self, fn, shared, chunks, n_tasks, progress, cancel,
                    stage) -> list:
        started = time.perf_counter()
        results: list = []
        for chunk in chunks:
            if cancel is not None:
                cancel.raise_if_cancelled(stage)
            results.extend(fn(shared, task) for task in chunk)
            if progress is not None:
                progress(ProgressEvent(stage, len(results), n_tasks,
                                       time.perf_counter() - started))
        return results


class _PooledExecutor(Executor):
    """Shared chunk-collection logic for thread/process backends."""

    def _collect(self, submit, chunks, n_tasks, progress, cancel, stage):
        started = time.perf_counter()
        futures = {submit(chunk): idx for idx, chunk in enumerate(chunks)}
        ordered: list = [None] * len(chunks)
        completed_tasks = 0
        pending = set(futures)
        try:
            while pending:
                done, pending = wait(pending, timeout=0.1,
                                     return_when=FIRST_COMPLETED)
                for future in done:
                    idx = futures[future]
                    ordered[idx] = future.result()
                    completed_tasks += len(chunks[idx])
                    if progress is not None:
                        progress(ProgressEvent(
                            stage, completed_tasks, n_tasks,
                            time.perf_counter() - started))
                if cancel is not None and cancel.cancelled:
                    raise JobCancelled(f"{stage} cancelled by caller")
        except BaseException:
            for future in pending:
                future.cancel()
            raise
        return [result for chunk in ordered for result in chunk]


def _run_chunk_with_shared(fn, shared, chunk):
    return [fn(shared, task) for task in chunk]


class ThreadExecutor(_PooledExecutor):
    """Thread-pool backend; ``shared`` is passed by reference (same
    process), so it must be treated as read-only by ``fn``."""

    name = "thread"

    def __init__(self, max_workers: int | None = None):
        super().__init__(max_workers)
        self._pool: ThreadPoolExecutor | None = None

    @property
    def effective_workers(self) -> int:
        return self.max_workers or _available_cpus()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.effective_workers)
        return self._pool

    def _run_chunks(self, fn, shared, chunks, n_tasks, progress, cancel,
                    stage) -> list:
        pool = self._ensure_pool()
        return self._collect(
            lambda chunk: pool.submit(_run_chunk_with_shared, fn, shared, chunk),
            chunks, n_tasks, progress, cancel, stage)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


# --- process backend -------------------------------------------------------
# The shared object is installed once per worker via the pool initializer;
# chunk submissions then reference it through this module-level slot. This
# keeps per-chunk IPC proportional to the chunk, not the dataset.
_WORKER_SHARED = None


def _install_shared(payload: bytes) -> None:
    global _WORKER_SHARED
    _WORKER_SHARED = pickle.loads(payload)


def _run_chunk_in_worker(fn, chunk):
    return [fn(_WORKER_SHARED, task) for task in chunk]


class ProcessExecutor(_PooledExecutor):
    """Process-pool backend with shared-state shipping.

    The pool is kept alive across :meth:`map` calls as long as ``shared``
    pickles to the same bytes (the common case: many scoring rounds over
    one utility), and is transparently rebuilt when it changes.
    """

    name = "process"

    def __init__(self, max_workers: int | None = None):
        super().__init__(max_workers)
        self._pool: ProcessPoolExecutor | None = None
        self._pool_digest: str | None = None

    @property
    def effective_workers(self) -> int:
        return self.max_workers or _available_cpus()

    def _ensure_pool(self, shared) -> ProcessPoolExecutor:
        payload = pickle.dumps(shared, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(payload).hexdigest()
        if self._pool is not None and digest != self._pool_digest:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.effective_workers,
                initializer=_install_shared, initargs=(payload,))
            self._pool_digest = digest
        return self._pool

    def _run_chunks(self, fn, shared, chunks, n_tasks, progress, cancel,
                    stage) -> list:
        pool = self._ensure_pool(shared)
        return self._collect(
            lambda chunk: pool.submit(_run_chunk_in_worker, fn, chunk),
            chunks, n_tasks, progress, cancel, stage)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._pool_digest = None


def get_executor(backend, max_workers: int | None = None) -> Executor:
    """Resolve a backend name (or pass through an :class:`Executor`)."""
    if isinstance(backend, Executor):
        return backend
    if backend == "serial":
        return SerialExecutor(max_workers)
    if backend == "thread":
        return ThreadExecutor(max_workers)
    if backend == "process":
        return ProcessExecutor(max_workers)
    raise ValidationError(
        f"unknown backend {backend!r}; expected one of {BACKENDS} "
        "or an Executor instance")
