"""Parallel execution runtime with fingerprint-keyed utility caching.

The hot loop of every method family in this repository — Shapley/Banzhaf
permutation sampling, leave-one-out, CPClean world enumeration, iterative
cleaning, sharded unlearning — is "retrain a model on a subset and score
it". This package turns that loop into shared infrastructure:

- :class:`Executor` backends (``serial`` / ``thread`` / ``process``) run
  task batches with identical semantics, so scores are backend-invariant.
- :class:`FingerprintCache` memoizes utility evaluations across
  estimators, runs, and (with a disk tier) processes.
- :mod:`~repro.runtime.progress` provides the progress/cancellation hook
  protocol long-running scoring jobs speak.
- :mod:`~repro.runtime.faults` makes long jobs survive failure:
  :class:`FaultPolicy` controls per-chunk retries/backoff/timeouts and
  broken-pool recovery, and :class:`TaskError` attributes an exhausted
  budget to its stage and chunk.
- :mod:`~repro.runtime.checkpoint` makes long jobs survive *driver*
  death: :class:`CheckpointStore` is a durable, crash-safe snapshot
  store (atomic write-rename, content hash, schema version per record)
  and every long-running loop accepts ``checkpoint=`` / ``resume_from=``
  for bit-identical resumption after a kill.
- :class:`Runtime` bundles them into the single ``runtime=`` handle
  the compute layers accept.

Quick start::

    from repro.runtime import Runtime, FingerprintCache

    rt = Runtime(backend="process", cache=FingerprintCache())
    utility = Utility(model, X, y, Xv, yv, runtime=rt)
    values = MonteCarloShapley(n_permutations=100, seed=0).score(utility)
    print(rt.stats())   # backend, cache hit-rate, wall-time per stage
"""

from repro.runtime.cache import (
    CacheStats,
    FingerprintCache,
    aggregate_cache_stats,
    data_fingerprint,
    fingerprint,
)
from repro.runtime.checkpoint import (
    CHECKPOINT_SCHEMA,
    Checkpointable,
    CheckpointRecord,
    CheckpointStore,
    LoopCheckpointer,
    flush_all,
    flush_on_shutdown,
    register_shutdown_flush,
    resolve_checkpoint_store,
    unregister_shutdown_flush,
)
from repro.runtime.executor import (
    BACKENDS,
    MAX_CHUNK_SIZE,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    get_executor,
)
from repro.runtime.faults import (
    DEFAULT_FAULT_POLICY,
    FaultEvent,
    FaultPolicy,
    FaultStats,
    TaskError,
    resolve_fault_policy,
)
from repro.runtime.progress import (
    CancellationToken,
    JobCancelled,
    ProgressEvent,
    ProgressRecorder,
    StageTimer,
    cancel_after,
)
from repro.runtime.runtime import (
    Runtime,
    aggregate_fault_stats,
    aggregate_stage_timings,
    close_all_runtimes,
    resolve_runtime,
)

__all__ = [
    "BACKENDS",
    "CHECKPOINT_SCHEMA",
    "DEFAULT_FAULT_POLICY",
    "MAX_CHUNK_SIZE",
    "CacheStats",
    "CancellationToken",
    "Checkpointable",
    "CheckpointRecord",
    "CheckpointStore",
    "Executor",
    "FaultEvent",
    "FaultPolicy",
    "FaultStats",
    "FingerprintCache",
    "JobCancelled",
    "LoopCheckpointer",
    "ProcessExecutor",
    "ProgressEvent",
    "ProgressRecorder",
    "Runtime",
    "SerialExecutor",
    "StageTimer",
    "TaskError",
    "ThreadExecutor",
    "aggregate_cache_stats",
    "aggregate_fault_stats",
    "aggregate_stage_timings",
    "cancel_after",
    "close_all_runtimes",
    "data_fingerprint",
    "fingerprint",
    "flush_all",
    "flush_on_shutdown",
    "get_executor",
    "register_shutdown_flush",
    "resolve_checkpoint_store",
    "resolve_fault_policy",
    "resolve_runtime",
    "unregister_shutdown_flush",
]
