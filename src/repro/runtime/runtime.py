"""The :class:`Runtime` facade — executor + cache + hooks in one handle.

Every compute layer (``Utility``, the importance estimators, CPClean,
iterative cleaning, sharded unlearning) takes a ``runtime=`` argument and
submits its batches here instead of looping inline. One object therefore
decides, for a whole experiment, *where* work runs (backend), *what* is
memoized (fingerprint cache), *how* the job reports and aborts
(progress hook / cancellation token), and *how it survives failures*
(the :class:`~repro.runtime.FaultPolicy` applied to every batch) — and
it accumulates wall-time per stage so reports can show where the budget
went.
"""

from __future__ import annotations

import weakref

from repro.core.exceptions import ValidationError
from repro.observe.observer import resolve_observer
from repro.runtime.cache import FingerprintCache
from repro.runtime.executor import Executor, get_executor
from repro.runtime.faults import resolve_fault_policy
from repro.runtime.progress import StageTimer, _Stopwatch

_LIVE_RUNTIMES: "weakref.WeakSet[Runtime]" = weakref.WeakSet()

#: Placeholder marking a key claimed by an in-batch duplicate while its
#: one evaluation is still pending (see :meth:`Runtime.map_cached`).
_PENDING = object()

#: FaultEvent.kind -> the observer counter it increments.
_FAULT_COUNTERS = {
    "retry": "executor.retries",
    "worker_crash": "executor.worker_crashes",
    "timeout": "executor.timeouts",
    "degraded": "executor.degraded_runs",
}


class Runtime:
    """Execution policy for coalition-scoring workloads.

    Parameters
    ----------
    backend:
        ``"serial"`` | ``"thread"`` | ``"process"`` or an
        :class:`~repro.runtime.executor.Executor` instance.
    max_workers:
        Worker count for pooled backends (defaults to the CPU count).
    chunk_size:
        Tasks per submitted chunk; auto-sized when omitted.
    cache:
        ``True`` for a fresh in-memory :class:`FingerprintCache`, an
        existing cache instance (shareable across runtimes), or ``None``
        / ``False`` (the default) to disable cross-call memoization.
    progress:
        ``callable(ProgressEvent)`` fired per completed chunk.
    cancel:
        :class:`~repro.runtime.progress.CancellationToken` polled between
        chunks; tripping it raises ``JobCancelled`` from the running job.
    observer:
        Optional :class:`repro.observe.Observer`. Every :meth:`map` call
        then opens a ``runtime.<stage>`` span carrying backend/worker
        metadata and the fingerprint-cache hit/miss delta for that
        batch, and fault handling feeds the ``executor.retries`` /
        ``executor.worker_crashes`` / ``executor.timeouts`` /
        ``executor.degraded_runs`` counters plus per-incident
        ``executor.fault`` runlog events. Defaults to the shared no-op
        observer (zero overhead).
    faults:
        :class:`~repro.runtime.FaultPolicy` (or a dict of its fields)
        applied to every :meth:`map` call: per-chunk bounded retries
        with deterministic backoff, optional per-chunk timeouts, and
        crash recovery for broken process pools. ``None`` uses the
        default policy (one retry, pool rebuild on worker death).
    on_worker_failure:
        Convenience override of the policy's single most important
        field: ``"retry"`` rebuilds a broken pool and resubmits the
        lost chunks, ``"serial"`` degrades the rest of the job to the
        parent process, ``"raise"`` propagates immediately.

    A runtime built from a backend *name* owns its executor and closes
    it on :meth:`close`, context-manager exit, or garbage collection —
    one-shot runtimes no longer leak warm pools. A runtime handed an
    existing :class:`Executor` leaves its lifetime to the caller.
    """

    def __init__(self, backend="serial", *, max_workers: int | None = None,
                 chunk_size: int | None = None, cache=None, progress=None,
                 cancel=None, observer=None, faults=None,
                 on_worker_failure: str | None = None):
        self.executor = get_executor(backend, max_workers)
        self._owns_executor = not isinstance(backend, Executor)
        # Safety net for one-shot runtimes that are never close()d: the
        # pool is released when the runtime is garbage collected. (The
        # callback is bound to the executor, not to self, so it does not
        # keep the runtime alive.)
        self._finalizer = (weakref.finalize(self, self.executor.close)
                           if self._owns_executor else None)
        if chunk_size is not None and chunk_size < 1:
            raise ValidationError("chunk_size must be >= 1")
        self.chunk_size = chunk_size
        if cache is True:
            cache = FingerprintCache()
        elif cache is False:
            cache = None
        self.cache: FingerprintCache | None = cache
        self.progress = progress
        self.cancel = cancel
        self.observer = resolve_observer(observer)
        self.faults = resolve_fault_policy(faults,
                                           on_worker_failure=on_worker_failure)
        self.timings = StageTimer()
        _LIVE_RUNTIMES.add(self)

    @property
    def backend(self) -> str:
        return self.executor.name

    def _on_fault(self, event) -> None:
        """Feed one executor fault incident into the attached observer:
        the matching ``executor.*`` counter, a replayable
        ``executor.fault`` runlog event, and an entry on the open
        ``runtime.<stage>`` span's ``fault_events`` attribute."""
        observer = self.observer
        observer.count(_FAULT_COUNTERS[event.kind])
        observer.event("executor.fault", fault=event.kind, stage=event.stage,
                       chunk=event.chunk_index, attempt=event.attempt,
                       backend=self.backend, error=event.error,
                       elapsed=event.elapsed)
        span = observer.tracer.current
        if span is not None:
            span.attrs.setdefault("fault_events", []).append(
                {"kind": event.kind, "chunk": event.chunk_index,
                 "attempt": event.attempt})

    def map(self, fn, tasks, *, shared=None, stage: str = "map") -> list:
        """Fan ``fn(shared, task)`` out over the backend; ordered results.

        Wall-time is charged to ``stage`` in :attr:`timings`; failures
        are handled per :attr:`faults`.
        """
        tasks = list(tasks)
        fault_hook = None
        if self.observer.enabled:
            self.observer.count("runtime.tasks", len(tasks))
            fault_hook = self._on_fault
        with self.observer.span(f"runtime.{stage}", cache=self.cache,
                                backend=self.backend,
                                workers=self.executor.effective_workers,
                                tasks=len(tasks)):
            with _Stopwatch(self.timings, stage, len(tasks)):
                return self.executor.map(
                    fn, tasks, shared=shared, chunk_size=self.chunk_size,
                    progress=self.progress, cancel=self.cancel, stage=stage,
                    faults=self.faults, fault_hook=fault_hook)

    def map_cached(self, fn, tasks, *, key_fn, shared=None,
                   stage: str = "map") -> list:
        """:meth:`map` with per-task fingerprint memoization.

        ``key_fn(task)`` names each task in the attached
        :class:`FingerprintCache`; cached tasks are answered without
        touching the executor, duplicate keys within one batch are
        evaluated once, and only the remaining unique misses fan out.
        Results come back in task order, bitwise-identical whether they
        were computed or replayed — this is the variant-batching
        primitive the pipeline-configuration debugger builds its rounds
        on. Without a cache it degrades to plain :meth:`map`.
        """
        tasks = list(tasks)
        if self.cache is None:
            return self.map(fn, tasks, shared=shared, stage=stage)
        keys = [key_fn(task) for task in tasks]
        results: dict[str, float] = {}
        pending: list = []
        pending_keys: list[str] = []
        for key, task in zip(keys, tasks):
            if key in results:
                continue
            value = self.cache.get(key)
            if value is not None:
                results[key] = value
            else:
                results[key] = _PENDING
                pending.append(task)
                pending_keys.append(key)
        if pending:
            computed = self.map(fn, pending, shared=shared, stage=stage)
            for key, value in zip(pending_keys, computed):
                self.cache.put(key, value)
                results[key] = value
        return [results[key] for key in keys]

    def stats(self) -> dict:
        """Snapshot: backend, workers, cache counters, fault counters,
        per-stage timings."""
        return {
            "backend": self.backend,
            "workers": self.executor.effective_workers,
            "cache": self.cache.stats.as_dict() if self.cache else None,
            "faults": self.executor.fault_stats.as_dict(),
            "stages": self.timings.snapshot(),
        }

    def close(self, wait: bool = True) -> None:
        """Release the executor's worker pool. Idempotent; ``wait=False``
        abandons in-flight chunks (the signal-exit teardown path)."""
        self.executor.close(wait=wait)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def __repr__(self) -> str:
        cached = "on" if self.cache is not None else "off"
        return (f"Runtime(backend={self.backend!r}, "
                f"workers={self.executor.effective_workers}, cache={cached})")


def resolve_runtime(runtime, *, faults=None) -> Runtime | None:
    """Normalize the ``runtime=`` argument every compute layer accepts.

    ``None`` stays ``None`` (caller falls back to its inline loop),
    a backend name builds a fresh :class:`Runtime` (with ``faults``
    applied when given), an :class:`Executor` is wrapped, and a
    :class:`Runtime` passes through — in which case ``faults`` must be
    ``None``; a shared runtime's policy belongs to its constructor.
    """
    if runtime is None:
        return None
    if isinstance(runtime, Runtime):
        if faults is not None:
            raise ValidationError(
                "faults= cannot override an existing Runtime's policy; "
                "pass faults= when constructing the Runtime instead")
        return runtime
    if isinstance(runtime, str) or isinstance(runtime, Executor):
        return Runtime(backend=runtime, faults=faults)
    raise ValidationError(
        "runtime must be None, a backend name ('serial'/'thread'/'process'), "
        f"an Executor, or a Runtime — got {type(runtime).__name__}")


def close_all_runtimes(wait: bool = True) -> None:
    """Release every live runtime's worker pool.

    The checkpoint signal handler calls this (with ``wait=False``)
    *after* flushing final checkpoints, covering the signal-exit paths
    where the per-runtime ``weakref.finalize`` safety net never runs —
    a SIGTERM'd session neither reaches atexit nor unwinds ``finally``
    blocks, so without this the pools' children would outlive the
    driver. Ordering matters: checkpoints first, pools second, so a
    flushed checkpoint never races pool teardown.
    """
    for runtime in list(_LIVE_RUNTIMES):
        try:
            runtime.close(wait=wait)
        except Exception:
            pass


def aggregate_stage_timings() -> dict:
    """Merged per-stage wall-time over every live runtime (for reports)."""
    merged: dict[str, dict] = {}
    for runtime in list(_LIVE_RUNTIMES):
        for stage, entry in runtime.timings.snapshot().items():
            slot = merged.setdefault(stage, {"seconds": 0.0, "tasks": 0})
            slot["seconds"] += entry["seconds"]
            slot["tasks"] += entry["tasks"]
    return merged


def aggregate_fault_stats() -> dict:
    """Summed executor fault counters over every live runtime — the
    session-wide "what went wrong and what was recovered" rollup the
    benchmark summary prints."""
    totals = {"retries": 0, "worker_crashes": 0, "timeouts": 0,
              "degraded_runs": 0}
    for runtime in list(_LIVE_RUNTIMES):
        for key, value in runtime.executor.fault_stats.as_dict().items():
            totals[key] += value
    return totals
