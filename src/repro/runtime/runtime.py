"""The :class:`Runtime` facade — executor + cache + hooks in one handle.

Every compute layer (``Utility``, the importance estimators, CPClean,
iterative cleaning, sharded unlearning) takes a ``runtime=`` argument and
submits its batches here instead of looping inline. One object therefore
decides, for a whole experiment, *where* work runs (backend), *what* is
memoized (fingerprint cache), and *how* the job reports and aborts
(progress hook / cancellation token) — and it accumulates wall-time per
stage so reports can show where the budget went.
"""

from __future__ import annotations

import weakref

from repro.core.exceptions import ValidationError
from repro.observe.observer import resolve_observer
from repro.runtime.cache import FingerprintCache
from repro.runtime.executor import Executor, get_executor
from repro.runtime.progress import StageTimer, _Stopwatch

_LIVE_RUNTIMES: "weakref.WeakSet[Runtime]" = weakref.WeakSet()


class Runtime:
    """Execution policy for coalition-scoring workloads.

    Parameters
    ----------
    backend:
        ``"serial"`` | ``"thread"`` | ``"process"`` or an
        :class:`~repro.runtime.executor.Executor` instance.
    max_workers:
        Worker count for pooled backends (defaults to the CPU count).
    chunk_size:
        Tasks per submitted chunk; auto-sized when omitted.
    cache:
        ``True`` for a fresh in-memory :class:`FingerprintCache`, an
        existing cache instance (shareable across runtimes), or ``None``
        / ``False`` (the default) to disable cross-call memoization.
    progress:
        ``callable(ProgressEvent)`` fired per completed chunk.
    cancel:
        :class:`~repro.runtime.progress.CancellationToken` polled between
        chunks; tripping it raises ``JobCancelled`` from the running job.
    observer:
        Optional :class:`repro.observe.Observer`. Every :meth:`map` call
        then opens a ``runtime.<stage>`` span carrying backend/worker
        metadata and the fingerprint-cache hit/miss delta for that
        batch. Defaults to the shared no-op observer (zero overhead).
    """

    def __init__(self, backend="serial", *, max_workers: int | None = None,
                 chunk_size: int | None = None, cache=None, progress=None,
                 cancel=None, observer=None):
        self.executor = get_executor(backend, max_workers)
        if chunk_size is not None and chunk_size < 1:
            raise ValidationError("chunk_size must be >= 1")
        self.chunk_size = chunk_size
        if cache is True:
            cache = FingerprintCache()
        elif cache is False:
            cache = None
        self.cache: FingerprintCache | None = cache
        self.progress = progress
        self.cancel = cancel
        self.observer = resolve_observer(observer)
        self.timings = StageTimer()
        _LIVE_RUNTIMES.add(self)

    @property
    def backend(self) -> str:
        return self.executor.name

    def map(self, fn, tasks, *, shared=None, stage: str = "map") -> list:
        """Fan ``fn(shared, task)`` out over the backend; ordered results.

        Wall-time is charged to ``stage`` in :attr:`timings`.
        """
        tasks = list(tasks)
        if self.observer.enabled:
            self.observer.count("runtime.tasks", len(tasks))
        with self.observer.span(f"runtime.{stage}", cache=self.cache,
                                backend=self.backend,
                                workers=self.executor.effective_workers,
                                tasks=len(tasks)):
            with _Stopwatch(self.timings, stage, len(tasks)):
                return self.executor.map(
                    fn, tasks, shared=shared, chunk_size=self.chunk_size,
                    progress=self.progress, cancel=self.cancel, stage=stage)

    def stats(self) -> dict:
        """Snapshot: backend, workers, cache counters, per-stage timings."""
        return {
            "backend": self.backend,
            "workers": self.executor.effective_workers,
            "cache": self.cache.stats.as_dict() if self.cache else None,
            "stages": self.timings.snapshot(),
        }

    def close(self) -> None:
        self.executor.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def __repr__(self) -> str:
        cached = "on" if self.cache is not None else "off"
        return (f"Runtime(backend={self.backend!r}, "
                f"workers={self.executor.effective_workers}, cache={cached})")


def resolve_runtime(runtime) -> Runtime | None:
    """Normalize the ``runtime=`` argument every compute layer accepts.

    ``None`` stays ``None`` (caller falls back to its inline loop),
    a backend name builds a fresh :class:`Runtime`, an
    :class:`Executor` is wrapped, and a :class:`Runtime` passes through.
    """
    if runtime is None or isinstance(runtime, Runtime):
        return runtime
    if isinstance(runtime, str) or isinstance(runtime, Executor):
        return Runtime(backend=runtime)
    raise ValidationError(
        "runtime must be None, a backend name ('serial'/'thread'/'process'), "
        f"an Executor, or a Runtime — got {type(runtime).__name__}")


def aggregate_stage_timings() -> dict:
    """Merged per-stage wall-time over every live runtime (for reports)."""
    merged: dict[str, dict] = {}
    for runtime in list(_LIVE_RUNTIMES):
        for stage, entry in runtime.timings.snapshot().items():
            slot = merged.setdefault(stage, {"seconds": 0.0, "tasks": 0})
            slot["seconds"] += entry["seconds"]
            slot["tasks"] += entry["tasks"]
    return merged
