"""Group-by aggregation for the dataframe engine.

Group assignment runs through the sort-based kernel
(:func:`repro.dataframe.kernels.group_positions`): per-key factorized
codes combined mixed-radix, one stable argsort, boundary split. The
row-wise tuple-dict loop is retained in
:mod:`repro.dataframe.reference` as the fallback for unsortable key
dtypes and as the differential-test oracle; both produce groups in
first-seen order.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import SchemaError, ValidationError
from repro.dataframe import kernels, reference
from repro.dataframe.kernels import KernelFallback

_AGGREGATES = {
    "count": lambda col: len(col),
    "sum": lambda col: col.sum(),
    "mean": lambda col: col.mean(),
    "std": lambda col: col.std(),
    "min": lambda col: col.min(),
    "max": lambda col: col.max(),
    "mode": lambda col: col.mode(),
    "null_count": lambda col: col.null_count(),
    "nunique": lambda col: len(col.unique()),
}


class GroupBy:
    """Deferred grouping created by :meth:`DataFrame.group_by`.

    Groups are formed over tuples of key values; rows with a null in any
    key column form their own ``None``-keyed groups (SQL-style grouping of
    nulls together per key value).
    """

    def __init__(self, frame, keys: list[str]):
        if not keys:
            raise ValidationError("group_by requires at least one key column")
        missing = [k for k in keys if k not in frame]
        if missing:
            raise SchemaError(f"no columns named {missing}; have {frame.columns}")
        self._frame = frame
        self._keys = keys
        key_columns = [frame[k] for k in keys]
        try:
            firsts, slices = kernels.group_positions(key_columns)
        except KernelFallback:
            firsts, slices = reference.group_positions_rowwise(key_columns)
        self._group_keys = [tuple(col.get(int(i)) for col in key_columns)
                            for i in firsts]
        self._group_positions = slices

    def __len__(self) -> int:
        return len(self._group_keys)

    def groups(self):
        """Iterate ``(key_tuple, sub_frame)`` pairs in first-seen order."""
        for key, positions in zip(self._group_keys, self._group_positions):
            yield key, self._frame.take(positions)

    def sizes(self) -> dict[tuple, int]:
        return {key: len(pos)
                for key, pos in zip(self._group_keys, self._group_positions)}

    def agg(self, **specs):
        """Aggregate into a new frame.

        Each keyword is ``output_name=(column, aggregate)`` where aggregate
        is one of count/sum/mean/std/min/max/mode/null_count/nunique or a
        callable taking a :class:`Column`.

        Example::

            df.group_by("sector").agg(n=("person_id", "count"),
                                      avg_rating=("employer_rating", "mean"))
        """
        from repro.dataframe.frame import DataFrame

        if not specs:
            raise ValidationError("agg requires at least one aggregation spec")
        rows = []
        for key, positions in zip(self._group_keys, self._group_positions):
            row = dict(zip(self._keys, key))
            for out_name, (column, how) in specs.items():
                func = _AGGREGATES.get(how, how) if isinstance(how, str) else how
                if isinstance(how, str) and how not in _AGGREGATES:
                    raise ValidationError(
                        f"unknown aggregate {how!r}; choose from {sorted(_AGGREGATES)}"
                    )
                # Aggregate over just the needed column slice instead of
                # materializing the whole sub-frame.
                value = func(self._frame[column].take(positions))
                row[out_name] = None if value is None else (
                    value.item() if isinstance(value, np.generic) else value
                )
            rows.append(row)
        return DataFrame.from_records(rows)
