"""Vectorized relational kernels for the columnar engine.

Every kernel here is a drop-in replacement for a row-at-a-time loop in
:mod:`repro.dataframe.reference` and must produce **identical** output:
the same positions in the same order, the same null masks, the same
values. The differential test suite
(``tests/dataframe/test_kernels_differential.py``) enforces this on
randomized null-heavy frames, and the benchmark suite measures the gap.

Kernels that rely on sortable key values (``np.unique`` over the key
arrays) detect unsortable inputs — e.g. object columns mixing ints and
strings — and signal the caller to fall back to the retained row-wise
reference implementation by raising :class:`KernelFallback`.
"""

from __future__ import annotations

import numpy as np

from repro.dataframe.column import Column


class KernelFallback(Exception):
    """Raised when a vectorized kernel cannot handle the input dtype mix;
    callers catch it and run the row-wise reference implementation."""


def _expand_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``[arange(s, s + c) for s, c in zip(starts, counts)]``
    without a Python loop."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    step = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    return np.repeat(starts, counts) + step


# ----------------------------------------------------------------------
# Hash join (factorize + searchsorted instead of Python dict probing)
# ----------------------------------------------------------------------
def join_positions(left: Column, right: Column, how: str):
    """Compute ``(left_pos, right_pos)`` for an equality join.

    Semantics mirror the reference loop exactly: output ordered by left
    position; a left row's matches appear in right-frame order; null keys
    never match; in a left join unmatched rows emit ``right_pos == -1``.
    """
    n_left, n_right = len(left), len(right)
    left_valid = ~left.mask
    right_valid = ~right.mask
    lv = left.values[left_valid]
    rv = right.values[right_valid]

    try:
        combined = np.concatenate([lv, rv])
        # Factorize both key sets over their union; inverse codes make
        # equal keys (across dtype promotion, e.g. int vs float) collide.
        _, inverse = np.unique(combined, return_inverse=True)
    except TypeError as exc:  # unsortable mixed-type object keys
        raise KernelFallback(str(exc)) from exc
    lcodes = inverse[: len(lv)]
    rcodes = inverse[len(lv):]

    # Sort right positions by code; stable keeps right-frame order within
    # a key, which is what the dict-append reference produces.
    right_idx = np.flatnonzero(right_valid)
    order = np.argsort(rcodes, kind="stable")
    sorted_ridx = right_idx[order]

    # Codes are dense (0..n_codes-1), so per-code match ranges come from a
    # bincount + cumsum lookup table — a direct gather per left row.
    n_codes = int(inverse.max()) + 1 if len(inverse) else 0
    code_counts = np.bincount(rcodes, minlength=n_codes)
    code_starts = np.cumsum(code_counts) - code_counts
    counts = np.zeros(n_left, dtype=np.int64)
    starts = np.zeros(n_left, dtype=np.int64)
    left_idx = np.flatnonzero(left_valid)
    counts[left_idx] = code_counts[lcodes]
    starts[left_idx] = code_starts[lcodes]

    if how == "inner":
        left_pos = np.repeat(np.arange(n_left, dtype=np.int64), counts)
        right_pos = sorted_ridx[_expand_ranges(starts, counts)]
        return left_pos, right_pos

    # Left join: unmatched left rows emit a single (-1) right position,
    # interleaved in left order with the matched runs.
    out_counts = np.maximum(counts, 1)
    total = int(out_counts.sum())
    left_pos = np.repeat(np.arange(n_left, dtype=np.int64), out_counts)
    right_pos = np.full(total, -1, dtype=np.int64)
    matched = counts > 0
    out_starts = np.cumsum(out_counts) - out_counts
    dst = _expand_ranges(out_starts[matched], counts[matched])
    src = sorted_ridx[_expand_ranges(starts[matched], counts[matched])]
    right_pos[dst] = src
    return left_pos, right_pos


def gather_column(source: Column, positions: np.ndarray) -> Column:
    """Gather ``source`` rows at ``positions``; ``-1`` produces a null.

    Matches what rebuilding the column from Python scalars would give:
    an int column acquiring nulls promotes to float64 backing.
    """
    positions = np.asarray(positions, dtype=np.int64)
    missing = positions < 0
    safe = np.where(missing, 0, positions)
    if len(source) == 0:
        # Gathering from an empty column: every position is a miss.
        values = np.full(len(positions), np.nan)
        return Column._from_arrays(values, np.ones(len(positions), dtype=bool))
    values = source.values[safe]
    mask = source.mask[safe] | missing
    if mask.any() and values.dtype.kind == "i":
        values = values.astype(np.float64)
    return Column._from_arrays(values, mask)


# ----------------------------------------------------------------------
# Group-by (sort-based key codes instead of per-row tuple dicts)
# ----------------------------------------------------------------------
def group_positions(key_columns: list[Column]):
    """Split row positions into groups over tuple keys.

    Returns ``(first_positions, group_slices)`` where ``group_slices`` is
    a list of ascending position arrays, ordered by each group's first
    occurrence — the first-seen order the reference dict produces. Rows
    with a null in a key column group under that null (SQL-style).
    """
    n = len(key_columns[0])
    if n == 0:
        return np.empty(0, dtype=np.int64), []
    combined = np.zeros(n, dtype=np.int64)
    radix = 1
    for col in key_columns:
        valid = ~col.mask
        try:
            _, inverse = np.unique(col.values[valid], return_inverse=True)
        except TypeError as exc:
            raise KernelFallback(str(exc)) from exc
        codes = np.empty(n, dtype=np.int64)
        codes[valid] = inverse
        # Null keys form their own group per column.
        n_codes = int(inverse.max()) + 1 if len(inverse) else 0
        codes[~valid] = n_codes
        radix *= n_codes + 1
        if radix > 2 ** 62:  # mixed-radix code would overflow int64
            raise KernelFallback("group key cardinality too large")
        combined = combined * (n_codes + 1) + codes

    order = np.argsort(combined, kind="stable")
    sorted_codes = combined[order]
    boundaries = np.flatnonzero(np.diff(sorted_codes)) + 1
    slices = np.split(order, boundaries)
    firsts = np.array([s[0] for s in slices], dtype=np.int64)
    by_first_seen = np.argsort(firsts, kind="stable")
    return firsts[by_first_seen], [slices[i] for i in by_first_seen]


# ----------------------------------------------------------------------
# Fuzzy-key resolution (length-banded candidate pruning)
# ----------------------------------------------------------------------
def resolve_fuzzy_keys(left_keys: list[str], right_keys: list[str],
                       max_edit_distance: int,
                       within) -> dict[str, str]:
    """Map unmatched left keys to the *unique* right key within edit
    distance, pruning candidate pairs before running the Levenshtein DP.

    ``within`` is the ``(a, b, limit) -> bool`` distance predicate (kept
    injectable so the reference path and tests share one definition).
    Pruning is provably lossless: a pair is skipped only when a cheap
    lower bound on its edit distance already exceeds the limit —
    length difference, or the character-bag difference
    ``max(len) - |multiset intersection|``.
    """
    right_list = list(right_keys)
    right_set = set(right_list)
    # Character-count matrix over the right keys' alphabet. Column 0 is a
    # shared "not in the right alphabet" slot: every right bag is zero
    # there, so stray left characters correctly add nothing to the
    # multiset intersection.
    alphabet: dict[str, int] = {}
    for key in right_list:
        for ch in key:
            if ch not in alphabet:
                alphabet[ch] = len(alphabet) + 1
    width = len(alphabet) + 1
    bags = np.zeros((len(right_list), width), dtype=np.int32)
    lengths = np.empty(len(right_list), dtype=np.int32)
    for j, key in enumerate(right_list):
        for ch in key:
            bags[j, alphabet[ch]] += 1
        lengths[j] = len(key)

    resolved: dict[str, str] = {}
    left_bag = np.zeros(width, dtype=np.int32)
    for key in left_keys:
        if key in right_set:
            continue
        left_bag[:] = 0
        for ch in key:
            left_bag[alphabet.get(ch, 0)] += 1
        # edit_distance(a, b) >= max(len) - |bag(a) ∩ bag(b)|, and
        # >= |len(a) - len(b)|; both bounds vectorize over all right keys.
        common = np.minimum(bags, left_bag).sum(axis=1)
        bound = np.maximum(lengths, len(key)) - common
        survivors = np.flatnonzero(
            (np.abs(lengths - len(key)) <= max_edit_distance)
            & (bound <= max_edit_distance)
        )
        candidates = []
        for j in survivors:
            if within(key, right_list[j], max_edit_distance):
                candidates.append(right_list[j])
                if len(candidates) > 1:
                    break
        if len(candidates) == 1:
            resolved[key] = candidates[0]
    return resolved


def normalize_keys(column: Column, normalizer) -> Column:
    """Apply a string normalizer over the backing array; nulls stay null.

    Join keys repeat heavily, so the normalizer runs once per *distinct*
    value (factorize, normalize uniques, scatter back) instead of once per
    row; unsortable mixed-type values fall back to a per-row loop.
    """
    values = column.values
    mask = column.mask
    out = np.empty(len(values), dtype=object)
    valid = ~mask

    def _normalize_one(v):
        return normalizer(str(v.item() if isinstance(v, np.generic) else v))

    try:
        uniques, inverse = np.unique(values[valid], return_inverse=True)
    except TypeError:
        for i in np.flatnonzero(valid):
            out[i] = _normalize_one(values[i])
    else:
        normalized = np.array([_normalize_one(u) for u in uniques],
                              dtype=object)
        out[valid] = normalized[inverse] if len(uniques) else []
    if mask.any():
        out[mask] = ""
    return Column._from_arrays(out, mask.copy())
