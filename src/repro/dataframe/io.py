"""Minimal CSV reading/writing for the dataframe engine.

Only what the examples and challenge need: header row, comma separation,
RFC-4180 quoting via the stdlib ``csv`` module, and simple type inference
(int, float, bool, string; empty fields become nulls).
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.dataframe.frame import DataFrame

_BOOL_LITERALS = {"true": True, "false": False, "True": True, "False": False}


def _parse(token: str):
    if token == "":
        return None
    if token in _BOOL_LITERALS:
        return _BOOL_LITERALS[token]
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        pass
    return token


def read_csv(path) -> DataFrame:
    """Load a CSV file with a header row into a :class:`DataFrame`."""
    with open(Path(path), newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        records = [
            {name: _parse(token) for name, token in zip(header, row)}
            for row in reader
        ]
    return DataFrame.from_records(records, columns=header)


def write_csv(frame: DataFrame, path) -> None:
    """Write a :class:`DataFrame` to CSV (nulls become empty fields)."""
    with open(Path(path), "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(frame.columns)
        for row in frame.iter_rows():
            writer.writerow(
                ["" if row[c] is None else row[c] for c in frame.columns]
            )
