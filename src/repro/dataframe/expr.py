"""Expression-based filters: column predicates that compile to masks.

``col("age") > 30`` builds a small expression tree instead of a row UDF;
:meth:`DataFrame.filter` evaluates it against whole columns, so the
predicate runs as a handful of numpy operations rather than a Python
call per row. Expressions compose with ``&`` / ``|`` / ``~``::

    frame.filter((col("sector") == "healthcare") & (col("salary") > 50))

Null semantics match the Column comparison operators they are built
from: a comparison involving a null is False, ``~`` therefore *selects*
null rows of the inverted predicate (use :meth:`ColumnRef.is_null` /
``not_null`` to test nullness explicitly).
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ValidationError


class Expr:
    """A boolean column expression; ``evaluate(frame)`` yields a mask."""

    def evaluate(self, frame) -> np.ndarray:
        raise NotImplementedError

    def __and__(self, other: "Expr") -> "Expr":
        return _BoolOp("&", self, _check_expr(other))

    def __or__(self, other: "Expr") -> "Expr":
        return _BoolOp("|", self, _check_expr(other))

    def __invert__(self) -> "Expr":
        return _Not(self)

    # Guard against `a == b and c` silently collapsing to a scalar.
    def __bool__(self):
        raise ValidationError(
            "expressions are not truthy; combine them with & | ~ "
            "(parenthesized), not `and`/`or`/`not`"
        )

    def describe(self) -> str:
        return repr(self)


def _check_expr(value) -> "Expr":
    if not isinstance(value, Expr):
        raise ValidationError(
            f"expected an expression, got {type(value).__name__}; "
            "did you forget parentheses around a comparison?"
        )
    return value


class ColumnRef(Expr):
    """A named column; comparison operators build predicate expressions.

    A bare ``col(name)`` used as a filter keeps rows whose value is
    truthy and non-null (mirroring ``lambda r: r[name]``).
    """

    def __init__(self, name: str):
        self.name = name

    def evaluate(self, frame) -> np.ndarray:
        column = frame[self.name]
        valid = ~column.mask
        out = np.zeros(len(column), dtype=bool)
        out[valid] = column.values[valid].astype(bool)
        return out

    def __eq__(self, other):  # type: ignore[override]
        return _Comparison("==", self.name, other)

    def __ne__(self, other):  # type: ignore[override]
        return _Comparison("!=", self.name, other)

    def __lt__(self, other):
        return _Comparison("<", self.name, other)

    def __le__(self, other):
        return _Comparison("<=", self.name, other)

    def __gt__(self, other):
        return _Comparison(">", self.name, other)

    def __ge__(self, other):
        return _Comparison(">=", self.name, other)

    def __hash__(self):
        return hash(("ColumnRef", self.name))

    def isin(self, values) -> "Expr":
        return _IsIn(self.name, list(values))

    def is_null(self) -> "Expr":
        return _NullTest(self.name, True)

    def not_null(self) -> "Expr":
        return _NullTest(self.name, False)

    def __repr__(self):
        return f"col({self.name!r})"


def col(name: str) -> ColumnRef:
    """Reference a column by name inside a filter expression."""
    return ColumnRef(name)


class _Comparison(Expr):
    _OPS = {"==", "!=", "<", "<=", ">", ">="}

    def __init__(self, op: str, name: str, operand):
        if op not in self._OPS:
            raise ValidationError(f"unknown comparison {op!r}")
        self.op = op
        self.name = name
        self.operand = operand

    def evaluate(self, frame) -> np.ndarray:
        column = frame[self.name]
        operand = self.operand
        if isinstance(operand, ColumnRef):
            operand = frame[operand.name]
        if self.op == "==":
            return np.asarray(column == operand)
        if self.op == "!=":
            return np.asarray(column != operand)
        if self.op == "<":
            return np.asarray(column < operand)
        if self.op == "<=":
            return np.asarray(column <= operand)
        if self.op == ">":
            return np.asarray(column > operand)
        return np.asarray(column >= operand)

    def __repr__(self):
        return f"(col({self.name!r}) {self.op} {self.operand!r})"


class _IsIn(Expr):
    def __init__(self, name: str, values: list):
        self.name = name
        self.values = values

    def evaluate(self, frame) -> np.ndarray:
        column = frame[self.name]
        out = np.zeros(len(column), dtype=bool)
        for value in self.values:
            out |= np.asarray(column == value)
        return out

    def __repr__(self):
        return f"col({self.name!r}).isin({self.values!r})"


class _NullTest(Expr):
    def __init__(self, name: str, is_null: bool):
        self.name = name
        self.null = is_null

    def evaluate(self, frame) -> np.ndarray:
        mask = frame[self.name].is_null()
        return mask if self.null else ~mask

    def __repr__(self):
        suffix = "is_null()" if self.null else "not_null()"
        return f"col({self.name!r}).{suffix}"


class _BoolOp(Expr):
    def __init__(self, op: str, left: Expr, right: Expr):
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, frame) -> np.ndarray:
        left = self.left.evaluate(frame)
        right = self.right.evaluate(frame)
        return (left & right) if self.op == "&" else (left | right)

    def __repr__(self):
        return f"({self.left!r} {self.op} {self.right!r})"


class _Not(Expr):
    def __init__(self, inner: Expr):
        self.inner = inner

    def evaluate(self, frame) -> np.ndarray:
        return ~self.inner.evaluate(frame)

    def __repr__(self):
        return f"~{self.inner!r}"
