"""Null-aware typed columns.

A :class:`Column` wraps a numpy array of values plus a boolean null mask.
Unlike raw numpy, nulls are representable for *every* dtype (pandas needs
object-dtype or NaN tricks for this). The mask convention is: ``mask[i] is
True`` means row ``i`` is null; the backing value at a null position is a
dtype-specific filler and must never be read directly.

Materialization from Python scalars is delegated to the column builder
factory in :mod:`repro.dataframe.builders`; columns themselves are
treated as **immutable** by the engine, which is what lets frames share
them zero-copy through ``select``/``copy``/``rename``.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.core.exceptions import ValidationError
from repro.dataframe.builders import FILLERS as _FILLERS
from repro.dataframe.builders import arrays_from_items, filler_for as _filler_for

_UNSET = object()  # sentinel: "no null_value supplied" (None is a valid fill)


class Column:
    """A named, typed, null-aware vector of values.

    Parameters
    ----------
    values:
        Backing values. Python ``None`` entries (and float NaN) are
        converted into nulls.
    mask:
        Optional explicit boolean null mask; computed from ``values`` when
        omitted.
    """

    __slots__ = ("values", "mask")

    def __init__(self, values, mask=None):
        if isinstance(values, Column):
            self.values = values.values.copy()
            self.mask = values.mask.copy()
            return
        values, inferred_mask = _coerce(values)
        self.values = values
        if mask is None:
            self.mask = inferred_mask
        else:
            mask = np.asarray(mask, dtype=bool)
            if mask.shape != values.shape:
                raise ValidationError(
                    f"mask shape {mask.shape} does not match values shape {values.shape}"
                )
            self.mask = mask | inferred_mask
        # Normalize fillers under the mask so equality and hashing of masked
        # slots never leak stale values.
        if self.mask.any():
            self.values = self.values.copy()
            self.values[self.mask] = _filler_for(self.values.dtype)

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.values)

    def __eq__(self, other):
        """Elementwise equality; null entries compare as False."""
        other_values, other_mask = _align(other, len(self))
        result = np.zeros(len(self), dtype=bool)
        valid = ~(self.mask | other_mask)
        result[valid] = self.values[valid] == other_values[valid]
        return result

    def __ne__(self, other):
        other_values, other_mask = _align(other, len(self))
        result = np.zeros(len(self), dtype=bool)
        valid = ~(self.mask | other_mask)
        result[valid] = self.values[valid] != other_values[valid]
        return result

    def __lt__(self, other):
        return self._compare(other, np.less)

    def __le__(self, other):
        return self._compare(other, np.less_equal)

    def __gt__(self, other):
        return self._compare(other, np.greater)

    def __ge__(self, other):
        return self._compare(other, np.greater_equal)

    def _compare(self, other, op):
        other_values, other_mask = _align(other, len(self))
        result = np.zeros(len(self), dtype=bool)
        valid = ~(self.mask | other_mask)
        result[valid] = op(self.values[valid], other_values[valid])
        return result

    def __hash__(self):  # columns are mutable containers
        raise TypeError("Column objects are unhashable")

    def __repr__(self) -> str:
        preview = ", ".join(repr(v) for v in self.to_list()[:6])
        suffix = ", ..." if len(self) > 6 else ""
        return f"Column([{preview}{suffix}], dtype={self.dtype}, nulls={int(self.mask.sum())})"

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def dtype(self) -> np.dtype:
        return self.values.dtype

    def is_null(self) -> np.ndarray:
        """Boolean mask of null positions."""
        return self.mask.copy()

    def not_null(self) -> np.ndarray:
        """Boolean mask of non-null positions."""
        return ~self.mask

    def null_count(self) -> int:
        return int(self.mask.sum())

    # ------------------------------------------------------------------
    # Access and transformation
    # ------------------------------------------------------------------
    def get(self, i: int):
        """Scalar at position ``i``; ``None`` when the slot is null."""
        if self.mask[i]:
            return None
        value = self.values[i]
        return value.item() if isinstance(value, np.generic) else value

    def take(self, indices) -> "Column":
        """Positional selection (used by every relational operator).

        A :class:`slice` selects zero-copy: the result's arrays are numpy
        views over this column's backing (safe because the engine never
        mutates a column's arrays in place).
        """
        if isinstance(indices, slice):
            return Column.__new__(Column)._init_raw(
                self.values[indices], self.mask[indices]
            )
        indices = np.asarray(indices)
        if indices.dtype == bool:
            indices = np.flatnonzero(indices)
        return Column.__new__(Column)._init_raw(
            self.values[indices], self.mask[indices]
        )

    def _init_raw(self, values, mask):
        self.values = values
        self.mask = mask
        return self

    @classmethod
    def _from_arrays(cls, values: np.ndarray, mask: np.ndarray,
                     *, normalize: bool = True) -> "Column":
        """Wrap freshly built ``(values, mask)`` arrays without copying.

        The caller transfers ownership of both arrays. With ``normalize``
        (the default) masked slots are overwritten with the dtype's
        canonical filler so stale values never leak through equality,
        hashing or exports.
        """
        if normalize and mask.any():
            values[mask] = _filler_for(values.dtype)
        return cls.__new__(cls)._init_raw(values, mask)

    def fill_null(self, value) -> "Column":
        """Return a copy with nulls replaced by ``value``."""
        values = self.values.copy()
        if self.mask.any():
            if self.dtype.kind in ("U", "O") or isinstance(value, str):
                values = values.astype(object)
            values[self.mask] = value
        return Column(values, np.zeros(len(values), dtype=bool))

    def map(self, func, *, skip_null: bool = True) -> "Column":
        """Apply a scalar UDF elementwise.

        With ``skip_null=True`` (the default), null inputs stay null and the
        UDF never observes them; otherwise the UDF receives ``None``.
        """
        out = []
        for i in range(len(self)):
            if self.mask[i] and skip_null:
                out.append(None)
            else:
                out.append(func(self.get(i)))
        return Column(out)

    def cast(self, dtype) -> "Column":
        """Cast values, preserving the null mask."""
        dtype = np.dtype(dtype)
        values = self.values.copy()
        if self.mask.any():
            values[self.mask] = _filler_for(self.values.dtype)
        if dtype.kind in ("i", "f") and values.dtype.kind in ("U", "O"):
            converted = np.array(
                [_filler_for(dtype) if m else dtype.type(v)
                 for v, m in zip(values, self.mask)],
                dtype=dtype,
            )
            return Column(converted, self.mask.copy())
        return Column(values.astype(dtype), self.mask.copy())

    def to_numpy(self, *, null_value=_UNSET) -> np.ndarray:
        """Materialize as a plain ndarray.

        Float columns encode nulls as NaN. For other dtypes with nulls
        present, pass an explicit ``null_value`` (``None`` is accepted and
        yields an object array with ``None`` entries).
        """
        if not self.mask.any():
            return self.values.copy()
        if null_value is _UNSET:
            if self.dtype.kind == "f":
                out = self.values.copy()
                out[self.mask] = np.nan
                return out
            raise ValidationError(
                f"column of dtype {self.dtype} has nulls; pass null_value to to_numpy"
            )
        out = self.values.astype(object)
        out[self.mask] = null_value
        return out

    def to_list(self) -> list:
        """Materialize as a Python list with ``None`` for nulls."""
        return [self.get(i) for i in range(len(self))]

    # ------------------------------------------------------------------
    # Reductions (null-skipping)
    # ------------------------------------------------------------------
    def _valid_values(self) -> np.ndarray:
        return self.values[~self.mask]

    def sum(self):
        return self._valid_values().sum()

    def mean(self):
        valid = self._valid_values()
        if len(valid) == 0:
            return None
        return float(valid.mean())

    def std(self):
        valid = self._valid_values()
        if len(valid) == 0:
            return None
        return float(valid.std())

    def min(self):
        valid = self._valid_values()
        return None if len(valid) == 0 else valid.min().item()

    def max(self):
        valid = self._valid_values()
        return None if len(valid) == 0 else valid.max().item()

    def mode(self):
        """Most frequent non-null value (ties broken by first occurrence)."""
        valid = self._valid_values()
        if len(valid) == 0:
            return None
        uniques, first_pos, counts = np.unique(
            valid, return_index=True, return_counts=True
        )
        best = np.lexsort((first_pos, -counts))[0]
        value = uniques[best]
        return value.item() if isinstance(value, np.generic) else value

    def unique(self) -> list:
        """Sorted distinct non-null values."""
        valid = self._valid_values()
        return [v.item() if isinstance(v, np.generic) else v for v in np.unique(valid)]

    def value_counts(self) -> dict:
        """Mapping of non-null value -> frequency."""
        valid = self._valid_values()
        uniques, counts = np.unique(valid, return_counts=True)
        return {
            (u.item() if isinstance(u, np.generic) else u): int(c)
            for u, c in zip(uniques, counts)
        }


def _coerce(values) -> tuple[np.ndarray, np.ndarray]:
    """Convert arbitrary input into (backing array, null mask)."""
    if isinstance(values, np.ndarray) and values.dtype.kind in ("i", "b"):
        return values.copy(), np.zeros(len(values), dtype=bool)
    if isinstance(values, np.ndarray) and values.dtype.kind == "f":
        mask = np.isnan(values)
        backing = values.copy()
        backing[mask] = np.nan
        return backing, mask
    if isinstance(values, np.ndarray) and values.dtype.kind == "U":
        return values.copy(), np.zeros(len(values), dtype=bool)

    if not isinstance(values, Iterable) or isinstance(values, str):
        raise ValidationError("Column values must be an iterable of scalars")
    # Python scalars go through the registered column builder for their
    # inferred dtype kind (the factory in repro.dataframe.builders).
    return arrays_from_items(list(values))


def _align(other, length: int) -> tuple[np.ndarray, np.ndarray]:
    """Broadcast a scalar / array / Column into (values, mask) of ``length``."""
    if isinstance(other, Column):
        if len(other) != length:
            raise ValidationError(f"length mismatch: {len(other)} != {length}")
        return other.values, other.mask
    if isinstance(other, (list, tuple, np.ndarray)):
        col = Column(other)
        return _align(col, length)
    if other is None:
        return np.zeros(length), np.ones(length, dtype=bool)
    values = np.full(length, other)
    return values, np.zeros(length, dtype=bool)
