"""The DataFrame: a dict of named columns with stable row identifiers.

Row identifiers (``row_ids``) give every row a durable identity that
survives filters, joins, projections and sorts. Provenance in
:mod:`repro.pipelines` is expressed entirely in terms of these ids, which
is what lets data-importance scores computed on pipeline *outputs* be
mapped back onto pipeline *source* rows.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping

import numpy as np

from repro.core.exceptions import SchemaError, ValidationError
from repro.dataframe.column import Column

_next_id_counter = [0]


def _fresh_row_ids(n: int) -> np.ndarray:
    """Allocate ``n`` globally unique row ids."""
    start = _next_id_counter[0]
    _next_id_counter[0] = start + n
    return np.arange(start, start + n, dtype=np.int64)


class DataFrame:
    """An ordered collection of equal-length named columns.

    Parameters
    ----------
    data:
        Mapping of column name to values (anything :class:`Column` accepts).
    row_ids:
        Optional explicit identifiers; freshly allocated when omitted.
        Operations that subset or reorder rows carry ids along, so
        ``frame.row_ids`` always answers "which original rows are these?".
    """

    def __init__(self, data: Mapping | None = None, row_ids=None):
        self._columns: dict[str, Column] = {}
        length = None
        for name, values in (data or {}).items():
            column = values if isinstance(values, Column) else Column(values)
            if length is None:
                length = len(column)
            elif len(column) != length:
                raise ValidationError(
                    f"column {name!r} has length {len(column)}, expected {length}"
                )
            self._columns[str(name)] = column
        if length is None:
            length = 0 if row_ids is None else len(np.asarray(row_ids))
        if row_ids is None:
            self.row_ids = _fresh_row_ids(length)
        else:
            self.row_ids = np.asarray(row_ids, dtype=np.int64)
            if len(self.row_ids) != length:
                raise ValidationError(
                    f"row_ids has length {len(self.row_ids)}, expected {length}"
                )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_records(cls, records: Iterable[Mapping], columns=None) -> "DataFrame":
        """Build from an iterable of row dicts (missing keys become null)."""
        records = list(records)
        if columns is None:
            columns, seen = [], set()
            for rec in records:
                for key in rec:
                    if key not in seen:
                        seen.add(key)
                        columns.append(key)
        data = {c: [rec.get(c) for rec in records] for c in columns}
        return cls(data)

    @classmethod
    def _from_columns(cls, columns: dict[str, Column], row_ids) -> "DataFrame":
        frame = cls.__new__(cls)
        frame._columns = columns
        frame.row_ids = np.asarray(row_ids, dtype=np.int64)
        return frame

    def copy(self) -> "DataFrame":
        return DataFrame._from_columns(
            {n: Column(c) for n, c in self._columns.items()}, self.row_ids.copy()
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def columns(self) -> list[str]:
        return list(self._columns)

    @property
    def shape(self) -> tuple[int, int]:
        return (len(self), len(self._columns))

    def __len__(self) -> int:
        return len(self.row_ids)

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __getitem__(self, key):
        """Column access by name, or row subsetting by boolean mask/indices."""
        if isinstance(key, str):
            if key not in self._columns:
                raise SchemaError(f"no column named {key!r}; have {self.columns}")
            return self._columns[key]
        if isinstance(key, (list, tuple)) and key and all(isinstance(k, str) for k in key):
            return self.select(list(key))
        return self.take(key)

    def __setitem__(self, name: str, values) -> None:
        column = values if isinstance(values, Column) else Column(
            np.full(len(self), values) if np.isscalar(values) or values is None else values
        )
        if len(column) != len(self):
            raise ValidationError(
                f"column length {len(column)} does not match frame length {len(self)}"
            )
        self._columns[str(name)] = column

    def __repr__(self) -> str:
        return f"DataFrame(shape={self.shape}, columns={self.columns})"

    def head(self, n: int = 5) -> "DataFrame":
        return self.take(np.arange(min(n, len(self))))

    def row(self, i: int) -> dict:
        """Row ``i`` as a plain dict (nulls become None)."""
        return {name: col.get(i) for name, col in self._columns.items()}

    def iter_rows(self):
        for i in range(len(self)):
            yield self.row(i)

    def to_records(self) -> list[dict]:
        return list(self.iter_rows())

    def null_counts(self) -> dict[str, int]:
        return {name: col.null_count() for name, col in self._columns.items()}

    def schema(self) -> dict[str, str]:
        return {name: str(col.dtype) for name, col in self._columns.items()}

    # ------------------------------------------------------------------
    # Row-wise operations
    # ------------------------------------------------------------------
    def take(self, indices) -> "DataFrame":
        """Positional row selection (boolean mask or integer indices)."""
        indices = np.asarray(indices)
        if indices.dtype == bool:
            if len(indices) != len(self):
                raise ValidationError(
                    f"boolean mask length {len(indices)} != frame length {len(self)}"
                )
            indices = np.flatnonzero(indices)
        columns = {n: c.take(indices) for n, c in self._columns.items()}
        return DataFrame._from_columns(columns, self.row_ids[indices])

    def filter(self, predicate) -> "DataFrame":
        """Keep rows where ``predicate`` holds.

        ``predicate`` is a boolean mask, or a callable mapping a row dict to
        bool (rows with a null consumed by the callable are the callable's
        responsibility).
        """
        if callable(predicate):
            mask = np.array([bool(predicate(row)) for row in self.iter_rows()])
        else:
            mask = np.asarray(predicate, dtype=bool)
        return self.take(mask)

    def drop_rows(self, row_ids) -> "DataFrame":
        """Remove rows by *identifier* (not position)."""
        drop = set(int(r) for r in np.atleast_1d(row_ids))
        keep = np.array([rid not in drop for rid in self.row_ids])
        return self.take(keep)

    def positions_of(self, row_ids) -> np.ndarray:
        """Map row identifiers to current positions (raises on misses)."""
        index = {int(rid): i for i, rid in enumerate(self.row_ids)}
        try:
            return np.array([index[int(r)] for r in np.atleast_1d(row_ids)], dtype=np.int64)
        except KeyError as exc:
            raise SchemaError(f"row id {exc.args[0]} not present in frame") from exc

    def sort_by(self, column: str, *, descending: bool = False) -> "DataFrame":
        col = self[column]
        order = np.argsort(col.values, kind="stable")
        # Stable-sort nulls to the end regardless of direction.
        if descending:
            non_null = order[~col.mask[order]][::-1]
        else:
            non_null = order[~col.mask[order]]
        nulls = order[col.mask[order]]
        return self.take(np.concatenate([non_null, nulls]))

    def sample(self, n: int, *, seed=None, replace: bool = False) -> "DataFrame":
        from repro.core.rng import ensure_rng

        rng = ensure_rng(seed)
        if not replace and n > len(self):
            raise ValidationError(f"cannot sample {n} rows from {len(self)} without replacement")
        indices = rng.choice(len(self), size=n, replace=replace)
        return self.take(indices)

    def split(self, fractions: Iterable[float], *, seed=None) -> list["DataFrame"]:
        """Random disjoint splits; fractions must sum to at most 1."""
        from repro.core.rng import ensure_rng

        fractions = list(fractions)
        if sum(fractions) > 1.0 + 1e-9:
            raise ValidationError(f"fractions sum to {sum(fractions)} > 1")
        rng = ensure_rng(seed)
        perm = rng.permutation(len(self))
        splits, start = [], 0
        for frac in fractions:
            count = int(round(frac * len(self)))
            splits.append(self.take(perm[start:start + count]))
            start += count
        return splits

    # ------------------------------------------------------------------
    # Column-wise operations
    # ------------------------------------------------------------------
    def select(self, names: list[str]) -> "DataFrame":
        missing = [n for n in names if n not in self._columns]
        if missing:
            raise SchemaError(f"no columns named {missing}; have {self.columns}")
        return DataFrame._from_columns(
            {n: Column(self._columns[n]) for n in names}, self.row_ids.copy()
        )

    def drop(self, names) -> "DataFrame":
        if isinstance(names, str):
            names = [names]
        missing = [n for n in names if n not in self._columns]
        if missing:
            raise SchemaError(f"no columns named {missing}; have {self.columns}")
        keep = [n for n in self.columns if n not in set(names)]
        return self.select(keep)

    def rename(self, mapping: Mapping[str, str]) -> "DataFrame":
        missing = [n for n in mapping if n not in self._columns]
        if missing:
            raise SchemaError(f"no columns named {missing}; have {self.columns}")
        columns = {mapping.get(n, n): Column(c) for n, c in self._columns.items()}
        return DataFrame._from_columns(columns, self.row_ids.copy())

    def with_column(self, name: str, func_or_values) -> "DataFrame":
        """Return a copy with an added or replaced column.

        ``func_or_values`` is either a row-dict UDF or column values.
        """
        out = self.copy()
        if callable(func_or_values):
            out[name] = Column([func_or_values(row) for row in self.iter_rows()])
        else:
            out[name] = func_or_values
        return out

    def set_values(self, row_ids, column: str, values) -> "DataFrame":
        """Return a copy with cells overwritten at the given row *ids*.

        This is the primitive the cleaning oracle uses to apply repairs.
        """
        positions = self.positions_of(row_ids)
        out = self.copy()
        col = out[column]
        values = list(values) if isinstance(values, (list, tuple, np.ndarray, Column)) \
            else [values] * len(positions)
        if len(values) != len(positions):
            raise ValidationError(
                f"got {len(values)} values for {len(positions)} rows"
            )
        items = col.to_list()
        for pos, val in zip(positions, values):
            items[int(pos)] = val
        out[column] = Column(items)
        return out

    # ------------------------------------------------------------------
    # Joins
    # ------------------------------------------------------------------
    def join(self, other: "DataFrame", on: str | tuple[str, str], *,
             how: str = "inner", suffix: str = "_right",
             return_indices: bool = False):
        """Hash join on an equality key.

        Parameters
        ----------
        on:
            A column name present in both frames, or a ``(left, right)``
            pair of names.
        how:
            ``"inner"`` or ``"left"``. Left joins null-fill unmatched right
            columns.
        return_indices:
            Also return ``(left_positions, right_positions)`` arrays, with
            ``-1`` marking unmatched right positions in a left join. The
            provenance layer uses these to connect output rows to inputs.
        """
        left_key, right_key = (on, on) if isinstance(on, str) else on
        if how not in ("inner", "left"):
            raise ValidationError(f"how must be 'inner' or 'left', got {how!r}")
        left_col, right_col = self[left_key], other[right_key]

        table: dict = {}
        for j in range(len(other)):
            if right_col.mask[j]:
                continue  # null keys never match
            table.setdefault(right_col.get(j), []).append(j)

        left_pos, right_pos = [], []
        for i in range(len(self)):
            matches = [] if left_col.mask[i] else table.get(left_col.get(i), [])
            if matches:
                for j in matches:
                    left_pos.append(i)
                    right_pos.append(j)
            elif how == "left":
                left_pos.append(i)
                right_pos.append(-1)
        left_pos = np.array(left_pos, dtype=np.int64)
        right_pos = np.array(right_pos, dtype=np.int64)

        result = self.take(left_pos) if len(left_pos) else self.take(np.array([], dtype=int))
        right_names = [n for n in other.columns if n != right_key or right_key != left_key]
        for name in right_names:
            if name == right_key and isinstance(on, str):
                continue
            out_name = name if name not in result._columns else name + suffix
            source = other[name]
            values, mask = [], []
            for j in right_pos:
                if j < 0:
                    values.append(None)
                else:
                    values.append(source.get(int(j)))
            result[out_name] = Column(values)
        if return_indices:
            return result, left_pos, right_pos
        return result

    def fuzzy_join(self, other: "DataFrame", on: str | tuple[str, str], *,
                   how: str = "inner", suffix: str = "_right",
                   normalizer: Callable[[str], str] | None = None,
                   max_edit_distance: int = 0,
                   return_indices: bool = False):
        """Join string keys after normalization — the tutorial's
        "(fuzzy) join".

        Normalization lowercases, trims, and collapses whitespace by
        default. With ``max_edit_distance > 0``, left keys that still
        match nothing are additionally resolved to the *unique* right key
        within that Levenshtein distance (ambiguous or distant keys stay
        unmatched — a wrong join is worse than a missing one).
        """
        left_key, right_key = (on, on) if isinstance(on, str) else on
        if normalizer is None:
            normalizer = _default_normalizer
        left = self.with_column("__fuzzy_key__",
                                self[left_key].map(lambda v: normalizer(str(v))))
        right = other.with_column("__fuzzy_key__",
                                  other[right_key].map(lambda v: normalizer(str(v))))
        if max_edit_distance > 0:
            right_keys = [k for k in right["__fuzzy_key__"].unique()]
            resolved = {}
            for key in left["__fuzzy_key__"].unique():
                if key in right_keys:
                    continue
                candidates = [rk for rk in right_keys
                              if _levenshtein_within(key, rk,
                                                     max_edit_distance)]
                if len(candidates) == 1:
                    resolved[key] = candidates[0]
            if resolved:
                left = left.with_column(
                    "__fuzzy_key__",
                    left["__fuzzy_key__"].map(lambda v: resolved.get(v, v)))
        # Preserve the original right key column under a disambiguated name.
        result = left.join(right, on="__fuzzy_key__", how=how, suffix=suffix,
                           return_indices=return_indices)
        if return_indices:
            frame, li, ri = result
            return frame.drop("__fuzzy_key__"), li, ri
        return result.drop("__fuzzy_key__")

    # ------------------------------------------------------------------
    # Grouping and concatenation
    # ------------------------------------------------------------------
    def group_by(self, *keys: str):
        from repro.dataframe.groupby import GroupBy

        return GroupBy(self, list(keys))

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_numpy(self, columns=None, *, null_value=None) -> np.ndarray:
        """Stack the selected columns into a 2-D float/object matrix."""
        columns = columns or self.columns
        arrays = [self[c].to_numpy(null_value=null_value) for c in columns]
        return np.column_stack(arrays)

    def describe(self) -> "DataFrame":
        """Per-column summary statistics (one row per column).

        Numeric columns report count/nulls/mean/std/min/max; other columns
        report count/nulls/distinct/mode.
        """
        records = []
        for name in self.columns:
            col = self[name]
            base = {"column": name, "dtype": str(col.dtype),
                    "count": len(col) - col.null_count(),
                    "nulls": col.null_count()}
            if col.dtype.kind in ("f", "i"):
                numeric = col.cast(float)
                base.update(mean=numeric.mean(), std=numeric.std(),
                            min=numeric.min(), max=numeric.max(),
                            distinct=None, mode=None)
            else:
                base.update(mean=None, std=None, min=None, max=None,
                            distinct=len(col.unique()),
                            mode=None if col.mode() is None
                            else str(col.mode()))
            records.append(base)
        return DataFrame.from_records(records)

    def pretty(self, max_rows: int = 10) -> str:
        """Render a fixed-width text table (the tutorial's pretty_print)."""
        names = ["row_id"] + self.columns
        rows = []
        for i in range(min(len(self), max_rows)):
            row = self.row(i)
            rows.append([str(self.row_ids[i])] +
                        [_fmt(row[c]) for c in self.columns])
        widths = [max(len(n), *(len(r[k]) for r in rows)) if rows else len(n)
                  for k, n in enumerate(names)]
        header = " | ".join(n.ljust(w) for n, w in zip(names, widths))
        sep = "-+-".join("-" * w for w in widths)
        body = "\n".join(" | ".join(v.ljust(w) for v, w in zip(r, widths)) for r in rows)
        suffix = f"\n... ({len(self) - max_rows} more rows)" if len(self) > max_rows else ""
        return f"{header}\n{sep}\n{body}{suffix}"


def _fmt(value) -> str:
    if value is None:
        return "<null>"
    if isinstance(value, float):
        return f"{value:.4g}"
    text = str(value)
    return text if len(text) <= 40 else text[:37] + "..."


def _default_normalizer(text: str) -> str:
    return " ".join(text.lower().split())


def _levenshtein_within(a: str, b: str, limit: int) -> bool:
    """True when edit_distance(a, b) <= limit (banded DP, early exit)."""
    if abs(len(a) - len(b)) > limit:
        return False
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        best = i
        for j, cb in enumerate(b, start=1):
            cost = min(previous[j] + 1,        # deletion
                       current[j - 1] + 1,     # insertion
                       previous[j - 1] + (ca != cb))  # substitution
            current.append(cost)
            best = min(best, cost)
        if best > limit:
            return False
        previous = current
    return previous[-1] <= limit


def concat_rows(frames: Iterable[DataFrame]) -> DataFrame:
    """Vertically concatenate frames with identical column sets.

    Row ids are preserved, so provenance through a union is the identity.
    """
    frames = list(frames)
    if not frames:
        raise ValidationError("concat_rows requires at least one frame")
    columns = frames[0].columns
    for f in frames[1:]:
        if f.columns != columns:
            raise SchemaError(
                f"column mismatch in concat: {f.columns} vs {columns}"
            )
    data = {
        name: Column([v for f in frames for v in f[name].to_list()])
        for name in columns
    }
    row_ids = np.concatenate([f.row_ids for f in frames])
    return DataFrame._from_columns(data, row_ids)
