"""The DataFrame: a dict of named columns with stable row identifiers.

Row identifiers (``row_ids``) give every row a durable identity that
survives filters, joins, projections and sorts. Provenance in
:mod:`repro.pipelines` is expressed entirely in terms of these ids, which
is what lets data-importance scores computed on pipeline *outputs* be
mapped back onto pipeline *source* rows.

The engine is columnar: every relational operator runs as a vectorized
kernel over typed array-backed columns (:mod:`repro.dataframe.kernels`),
with the original row-at-a-time loops retained in
:mod:`repro.dataframe.reference` as differential-test oracles and as
fallbacks for unsortable key dtypes. Columns are immutable, so
``select``/``copy``/``rename``/``head`` share backing arrays zero-copy;
mutation APIs (``__setitem__``, ``set_values``, ``with_column``) replace
whole columns instead.
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Iterable, Mapping

import numpy as np

from repro.core.exceptions import SchemaError, ValidationError
from repro.dataframe import kernels, reference
from repro.dataframe.column import Column
from repro.dataframe.expr import Expr
from repro.dataframe.kernels import KernelFallback
from repro.dataframe.reference import levenshtein_within as _levenshtein_within

_next_id_counter = [0]
#: Guards the global id counter: frames are constructed concurrently by
#: the repro.serve job tier, and a torn read-increment-write would hand
#: two frames overlapping ids (breaking provenance joins downstream).
_row_id_lock = threading.Lock()


def _fresh_row_ids(n: int) -> np.ndarray:
    """Allocate ``n`` globally unique row ids (thread-safe)."""
    with _row_id_lock:
        start = _next_id_counter[0]
        _next_id_counter[0] = start + n
    return np.arange(start, start + n, dtype=np.int64)


class DataFrame:
    """An ordered collection of equal-length named columns.

    Parameters
    ----------
    data:
        Mapping of column name to values (anything :class:`Column` accepts).
    row_ids:
        Optional explicit identifiers; freshly allocated when omitted.
        Operations that subset or reorder rows carry ids along, so
        ``frame.row_ids`` always answers "which original rows are these?".
    """

    def __init__(self, data: Mapping | None = None, row_ids=None):
        self._columns: dict[str, Column] = {}
        length = None
        for name, values in (data or {}).items():
            column = values if isinstance(values, Column) else Column(values)
            if length is None:
                length = len(column)
            elif len(column) != length:
                raise ValidationError(
                    f"column {name!r} has length {len(column)}, expected {length}"
                )
            self._columns[str(name)] = column
        if length is None:
            length = 0 if row_ids is None else len(np.asarray(row_ids))
        if row_ids is None:
            self.row_ids = _fresh_row_ids(length)
        else:
            self.row_ids = np.asarray(row_ids, dtype=np.int64)
            if len(self.row_ids) != length:
                raise ValidationError(
                    f"row_ids has length {len(self.row_ids)}, expected {length}"
                )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_records(cls, records: Iterable[Mapping], columns=None) -> "DataFrame":
        """Build from an iterable of row dicts (missing keys become null)."""
        records = list(records)
        if columns is None:
            columns, seen = [], set()
            for rec in records:
                for key in rec:
                    if key not in seen:
                        seen.add(key)
                        columns.append(key)
        data = {c: [rec.get(c) for rec in records] for c in columns}
        return cls(data)

    @classmethod
    def _from_columns(cls, columns: dict[str, Column], row_ids) -> "DataFrame":
        frame = cls.__new__(cls)
        frame._columns = columns
        frame.row_ids = np.asarray(row_ids, dtype=np.int64)
        return frame

    def copy(self) -> "DataFrame":
        """A new frame sharing this frame's (immutable) columns zero-copy.

        Mutation APIs replace whole columns, so sharing is safe; code that
        wants an independent backing array should copy a column explicitly
        via ``Column(frame[name])``.
        """
        return DataFrame._from_columns(dict(self._columns), self.row_ids.copy())

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def columns(self) -> list[str]:
        return list(self._columns)

    @property
    def shape(self) -> tuple[int, int]:
        return (len(self), len(self._columns))

    def __len__(self) -> int:
        return len(self.row_ids)

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __getitem__(self, key):
        """Column access by name, or row subsetting by boolean mask/indices."""
        if isinstance(key, str):
            if key not in self._columns:
                raise SchemaError(f"no column named {key!r}; have {self.columns}")
            return self._columns[key]
        if isinstance(key, (list, tuple)) and key and all(isinstance(k, str) for k in key):
            return self.select(list(key))
        return self.take(key)

    def __setitem__(self, name: str, values) -> None:
        column = values if isinstance(values, Column) else Column(
            np.full(len(self), values) if np.isscalar(values) or values is None else values
        )
        if len(column) != len(self):
            raise ValidationError(
                f"column length {len(column)} does not match frame length {len(self)}"
            )
        self._columns[str(name)] = column

    def __repr__(self) -> str:
        return f"DataFrame(shape={self.shape}, columns={self.columns})"

    def head(self, n: int = 5) -> "DataFrame":
        return self.take(slice(0, min(n, len(self))))

    def row(self, i: int) -> dict:
        """Row ``i`` as a plain dict (nulls become None)."""
        return {name: col.get(i) for name, col in self._columns.items()}

    def iter_rows(self):
        for i in range(len(self)):
            yield self.row(i)

    def to_records(self) -> list[dict]:
        return list(self.iter_rows())

    def to_shards(self, path, *, rows_per_shard: int, mirror: bool = False,
                  observer=None):
        """Spill the frame to an on-disk sharded dataset (see
        :func:`repro.data.frame_to_shards`); the round trip through
        :meth:`from_shards` is bitwise lossless. ``mirror=True`` keeps a
        verified replica of every shard for corruption healing."""
        from repro.data.frame_io import frame_to_shards
        return frame_to_shards(self, path, rows_per_shard=rows_per_shard,
                               mirror=mirror, observer=observer)

    @classmethod
    def from_shards(cls, dataset, *, observer=None, **reader_kwargs
                    ) -> "DataFrame":
        """Load a spilled frame back through the fault-tolerant reading
        service (see :func:`repro.data.frame_from_shards`);
        ``reader_kwargs`` are :class:`repro.data.ShardReader` knobs
        (``workers``, ``faults``, ``on_corrupt`` ...)."""
        from repro.data.frame_io import frame_from_shards
        return frame_from_shards(dataset, observer=observer,
                                 **reader_kwargs)

    def null_counts(self) -> dict[str, int]:
        return {name: col.null_count() for name, col in self._columns.items()}

    def schema(self) -> dict[str, str]:
        return {name: str(col.dtype) for name, col in self._columns.items()}

    # ------------------------------------------------------------------
    # Row-wise operations
    # ------------------------------------------------------------------
    def take(self, indices) -> "DataFrame":
        """Positional row selection (boolean mask, integer indices, or a
        :class:`slice` — slices are zero-copy views)."""
        if isinstance(indices, slice):
            columns = {n: c.take(indices) for n, c in self._columns.items()}
            return DataFrame._from_columns(columns, self.row_ids[indices])
        indices = np.asarray(indices)
        if indices.dtype == bool:
            if len(indices) != len(self):
                raise ValidationError(
                    f"boolean mask length {len(indices)} != frame length {len(self)}"
                )
            indices = np.flatnonzero(indices)
        columns = {n: c.take(indices) for n, c in self._columns.items()}
        return DataFrame._from_columns(columns, self.row_ids[indices])

    def filter(self, predicate) -> "DataFrame":
        """Keep rows where ``predicate`` holds.

        ``predicate`` is an :class:`~repro.dataframe.expr.Expr` (the fast
        path — evaluated as whole-column numpy operations), a boolean
        mask, or a callable mapping a row dict to bool (the retained
        row-wise fallback; rows with a null consumed by the callable are
        the callable's responsibility).
        """
        if isinstance(predicate, Expr):
            mask = predicate.evaluate(self)
        elif callable(predicate):
            mask = np.array([bool(predicate(row)) for row in self.iter_rows()])
        else:
            mask = np.asarray(predicate, dtype=bool)
        return self.take(mask)

    def drop_rows(self, row_ids, *, strict: bool = False) -> "DataFrame":
        """Remove rows by *identifier* (not position).

        With ``strict=True`` every id must exist in the frame;
        unknown ids raise :class:`ValidationError` listing the misses.
        The default keeps the historical tolerant behavior (unknown ids
        are ignored), which callers that *construct* id lists — rather
        than receive them from a user — rely on.
        """
        drop = np.asarray(np.atleast_1d(row_ids), dtype=np.int64)
        if strict and len(drop):
            present = np.isin(drop, self.row_ids)
            if not present.all():
                missing = sorted(int(i) for i in np.unique(drop[~present]))
                raise ValidationError(
                    f"row ids not present in frame: {missing} "
                    f"({len(missing)} of {len(drop)} requested)"
                )
        keep = ~np.isin(self.row_ids, drop)
        return self.take(keep)

    def _row_id_index(self):
        """Cached ``(order, sorted_ids)`` for vectorized id lookups."""
        cache = getattr(self, "_rid_cache", None)
        if cache is None:
            order = np.argsort(self.row_ids, kind="stable")
            cache = (order, self.row_ids[order])
            self._rid_cache = cache
        return cache

    def positions_of(self, row_ids) -> np.ndarray:
        """Map row identifiers to current positions (raises on misses)."""
        ids = np.asarray(np.atleast_1d(row_ids), dtype=np.int64)
        if len(ids) == 0:
            return np.empty(0, dtype=np.int64)
        if len(self) == 0:
            raise SchemaError(f"row id {int(ids[0])} not present in frame")
        order, sorted_ids = self._row_id_index()
        # side="right" - 1 lands on the *last* occurrence of a duplicated
        # id, matching the historical dict-overwrite semantics.
        pos = np.searchsorted(sorted_ids, ids, side="right") - 1
        bad = (pos < 0) | (sorted_ids[pos] != ids)
        if bad.any():
            raise SchemaError(
                f"row id {int(ids[int(np.argmax(bad))])} not present in frame"
            )
        return order[pos]

    def sort_by(self, column: str, *, descending: bool = False) -> "DataFrame":
        col = self[column]
        order = np.argsort(col.values, kind="stable")
        # Stable-sort nulls to the end regardless of direction.
        if descending:
            non_null = order[~col.mask[order]][::-1]
        else:
            non_null = order[~col.mask[order]]
        nulls = order[col.mask[order]]
        return self.take(np.concatenate([non_null, nulls]))

    def sample(self, n: int, *, seed=None, replace: bool = False) -> "DataFrame":
        from repro.core.rng import ensure_rng

        rng = ensure_rng(seed)
        if not replace and n > len(self):
            raise ValidationError(f"cannot sample {n} rows from {len(self)} without replacement")
        indices = rng.choice(len(self), size=n, replace=replace)
        return self.take(indices)

    def split(self, fractions: Iterable[float], *, seed=None) -> list["DataFrame"]:
        """Random disjoint splits; fractions must sum to at most 1."""
        from repro.core.rng import ensure_rng

        fractions = list(fractions)
        if sum(fractions) > 1.0 + 1e-9:
            raise ValidationError(f"fractions sum to {sum(fractions)} > 1")
        rng = ensure_rng(seed)
        perm = rng.permutation(len(self))
        splits, start = [], 0
        for frac in fractions:
            count = int(round(frac * len(self)))
            splits.append(self.take(perm[start:start + count]))
            start += count
        return splits

    # ------------------------------------------------------------------
    # Column-wise operations
    # ------------------------------------------------------------------
    def select(self, names: list[str]) -> "DataFrame":
        missing = [n for n in names if n not in self._columns]
        if missing:
            raise SchemaError(f"no columns named {missing}; have {self.columns}")
        return DataFrame._from_columns(
            {n: self._columns[n] for n in names}, self.row_ids.copy()
        )

    def drop(self, names) -> "DataFrame":
        if isinstance(names, str):
            names = [names]
        missing = [n for n in names if n not in self._columns]
        if missing:
            raise SchemaError(f"no columns named {missing}; have {self.columns}")
        keep = [n for n in self.columns if n not in set(names)]
        return self.select(keep)

    def rename(self, mapping: Mapping[str, str]) -> "DataFrame":
        missing = [n for n in mapping if n not in self._columns]
        if missing:
            raise SchemaError(f"no columns named {missing}; have {self.columns}")
        columns = {mapping.get(n, n): c for n, c in self._columns.items()}
        return DataFrame._from_columns(columns, self.row_ids.copy())

    def with_column(self, name: str, func_or_values) -> "DataFrame":
        """Return a copy with an added or replaced column.

        ``func_or_values`` is a :class:`Column`, column values, or a
        row-dict UDF (the retained row-wise fallback path).
        """
        out = self.copy()
        if isinstance(func_or_values, (Column, Expr)) or not callable(func_or_values):
            if isinstance(func_or_values, Expr):
                out[name] = Column(func_or_values.evaluate(self))
            else:
                out[name] = func_or_values
        else:
            out[name] = Column([func_or_values(row) for row in self.iter_rows()])
        return out

    def set_values(self, row_ids, column: str, values) -> "DataFrame":
        """Return a copy with cells overwritten at the given row *ids*.

        This is the primitive the cleaning oracle uses to apply repairs.
        Same-dtype repairs scatter directly into a copied backing array;
        dtype-changing repairs fall back to rebuilding the column from
        Python scalars (re-inferring its dtype, as always).
        """
        positions = self.positions_of(row_ids)
        out = self.copy()
        col = out[column]
        values = list(values) if isinstance(values, (list, tuple, np.ndarray, Column)) \
            else [values] * len(positions)
        if len(values) != len(positions):
            raise ValidationError(
                f"got {len(values)} values for {len(positions)} rows"
            )
        scattered = _scatter(col, positions, values)
        if scattered is not None:
            out[column] = scattered
        else:
            items = col.to_list()
            for pos, val in zip(positions, values):
                items[int(pos)] = val
            out[column] = Column(items)
        return out

    # ------------------------------------------------------------------
    # Joins
    # ------------------------------------------------------------------
    def join(self, other: "DataFrame", on: str | tuple[str, str], *,
             how: str = "inner", suffix: str = "_right",
             return_indices: bool = False):
        """Hash join on an equality key.

        The match table is computed by the vectorized factorize +
        ``searchsorted`` kernel (:func:`repro.dataframe.kernels.
        join_positions`); unsortable mixed-type keys fall back to the
        row-wise reference loop with identical semantics.

        Parameters
        ----------
        on:
            A column name present in both frames, or a ``(left, right)``
            pair of names.
        how:
            ``"inner"`` or ``"left"``. Left joins null-fill unmatched right
            columns.
        return_indices:
            Also return ``(left_positions, right_positions)`` arrays, with
            ``-1`` marking unmatched right positions in a left join. The
            provenance layer uses these to connect output rows to inputs.
        """
        left_key, right_key = (on, on) if isinstance(on, str) else on
        if how not in ("inner", "left"):
            raise ValidationError(f"how must be 'inner' or 'left', got {how!r}")
        left_col, right_col = self[left_key], other[right_key]

        try:
            left_pos, right_pos = kernels.join_positions(left_col, right_col, how)
        except KernelFallback:
            left_pos, right_pos = reference.join_positions_rowwise(
                left_col, right_col, how
            )

        result = self.take(left_pos)
        right_names = [n for n in other.columns if n != right_key or right_key != left_key]
        for name in right_names:
            if name == right_key and isinstance(on, str):
                continue
            out_name = name if name not in result._columns else name + suffix
            result[out_name] = kernels.gather_column(other[name], right_pos)
        if return_indices:
            return result, left_pos, right_pos
        return result

    def fuzzy_join(self, other: "DataFrame", on: str | tuple[str, str], *,
                   how: str = "inner", suffix: str = "_right",
                   normalizer: Callable[[str], str] | None = None,
                   max_edit_distance: int = 0,
                   return_indices: bool = False):
        """Join string keys after normalization — the tutorial's
        "(fuzzy) join".

        Normalization lowercases, trims, and collapses whitespace by
        default. With ``max_edit_distance > 0``, left keys that still
        match nothing are additionally resolved to the *unique* right key
        within that Levenshtein distance (ambiguous or distant keys stay
        unmatched — a wrong join is worse than a missing one). Candidate
        pairs are pruned by length bands and a character-bag lower bound
        before any edit-distance DP runs.
        """
        left_key, right_key = (on, on) if isinstance(on, str) else on
        if normalizer is None:
            normalizer = _default_normalizer
        left_norm = kernels.normalize_keys(self[left_key], normalizer)
        right_norm = kernels.normalize_keys(other[right_key], normalizer)
        if max_edit_distance > 0:
            resolved = kernels.resolve_fuzzy_keys(
                left_norm.unique(), right_norm.unique(),
                max_edit_distance, _levenshtein_within,
            )
            if resolved:
                rewritten = np.array(
                    [resolved.get(v, v) for v in left_norm.values], dtype=object
                )
                left_norm = Column._from_arrays(rewritten, left_norm.mask.copy())
        left = self.with_column("__fuzzy_key__", left_norm)
        right = other.with_column("__fuzzy_key__", right_norm)
        # Preserve the original right key column under a disambiguated name.
        result = left.join(right, on="__fuzzy_key__", how=how, suffix=suffix,
                           return_indices=return_indices)
        if return_indices:
            frame, li, ri = result
            return frame.drop("__fuzzy_key__"), li, ri
        return result.drop("__fuzzy_key__")

    # ------------------------------------------------------------------
    # Grouping and concatenation
    # ------------------------------------------------------------------
    def group_by(self, *keys: str):
        from repro.dataframe.groupby import GroupBy

        return GroupBy(self, list(keys))

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_numpy(self, columns=None, *, null_value=None) -> np.ndarray:
        """Stack the selected columns into a 2-D float/object matrix."""
        columns = columns or self.columns
        arrays = [self[c].to_numpy(null_value=null_value) for c in columns]
        return np.column_stack(arrays)

    def describe(self) -> "DataFrame":
        """Per-column summary statistics (one row per column).

        Numeric columns report count/nulls/mean/std/min/max; other columns
        report count/nulls/distinct/mode.
        """
        records = []
        for name in self.columns:
            col = self[name]
            base = {"column": name, "dtype": str(col.dtype),
                    "count": len(col) - col.null_count(),
                    "nulls": col.null_count()}
            if col.dtype.kind in ("f", "i"):
                numeric = col.cast(float)
                base.update(mean=numeric.mean(), std=numeric.std(),
                            min=numeric.min(), max=numeric.max(),
                            distinct=None, mode=None)
            else:
                base.update(mean=None, std=None, min=None, max=None,
                            distinct=len(col.unique()),
                            mode=None if col.mode() is None
                            else str(col.mode()))
            records.append(base)
        return DataFrame.from_records(records)

    def pretty(self, max_rows: int = 10) -> str:
        """Render a fixed-width text table (the tutorial's pretty_print)."""
        names = ["row_id"] + self.columns
        rows = []
        for i in range(min(len(self), max_rows)):
            row = self.row(i)
            rows.append([str(self.row_ids[i])] +
                        [_fmt(row[c]) for c in self.columns])
        widths = [max(len(n), *(len(r[k]) for r in rows)) if rows else len(n)
                  for k, n in enumerate(names)]
        header = " | ".join(n.ljust(w) for n, w in zip(names, widths))
        sep = "-+-".join("-" * w for w in widths)
        body = "\n".join(" | ".join(v.ljust(w) for v, w in zip(r, widths)) for r in rows)
        suffix = f"\n... ({len(self) - max_rows} more rows)" if len(self) > max_rows else ""
        return f"{header}\n{sep}\n{body}{suffix}"


def _scatter(col: Column, positions: np.ndarray, values: list) -> Column | None:
    """Scatter repair values into a copy of ``col``'s arrays when that is
    provably equivalent to rebuilding the column from scalars.

    Returns ``None`` when the repair could change the column dtype under
    re-inference (e.g. floats into an int column), signalling the caller
    to take the rebuild path.
    """
    kind = col.dtype.kind
    if kind == "f":
        if not all(v is None or (isinstance(v, (int, float, np.integer, np.floating))
                                 and not isinstance(v, bool)) for v in values):
            return None
        null = np.array([v is None or (isinstance(v, float) and np.isnan(v))
                         for v in values], dtype=bool)
        new_values = col.values.copy()
        new_mask = col.mask.copy()
        new_values[positions] = [np.nan if m else float(v)
                                 for v, m in zip(values, null)]
        new_mask[positions] = null
        return Column._from_arrays(new_values, new_mask)
    if kind == "i" and not col.mask.any():
        if not all(isinstance(v, (int, np.integer)) and not isinstance(v, bool)
                   for v in values):
            return None
        new_values = col.values.copy()
        new_values[positions] = [int(v) for v in values]
        return Column._from_arrays(new_values, np.zeros(len(new_values), dtype=bool))
    if kind == "b":
        if not all(isinstance(v, (bool, np.bool_)) for v in values):
            return None
        new_values = col.values.copy()
        new_mask = col.mask.copy()
        new_values[positions] = [bool(v) for v in values]
        new_mask[positions] = False
        return Column._from_arrays(new_values, new_mask)
    if kind == "O":
        if not all(v is None or isinstance(v, str) for v in values):
            return None
        null = np.array([v is None for v in values], dtype=bool)
        new_values = col.values.copy()
        new_mask = col.mask.copy()
        new_values[positions] = values
        new_mask[positions] = null
        return Column._from_arrays(new_values, new_mask)
    return None


def _fmt(value) -> str:
    if value is None:
        return "<null>"
    if isinstance(value, float):
        return f"{value:.4g}"
    text = str(value)
    return text if len(text) <= 40 else text[:37] + "..."


def _default_normalizer(text: str) -> str:
    return " ".join(text.lower().split())


def concat_rows(frames: Iterable[DataFrame]) -> DataFrame:
    """Vertically concatenate frames with identical column sets.

    Row ids are preserved, so provenance through a union is the identity.
    Same-dtype columns concatenate as arrays; mixed-dtype columns rebuild
    from Python scalars (re-inferring the promoted dtype).
    """
    frames = list(frames)
    if not frames:
        raise ValidationError("concat_rows requires at least one frame")
    columns = frames[0].columns
    for f in frames[1:]:
        if f.columns != columns:
            raise SchemaError(
                f"column mismatch in concat: {f.columns} vs {columns}"
            )
    data: dict[str, Column] = {}
    for name in columns:
        cols = [f[name] for f in frames]
        kinds = {c.dtype.kind for c in cols}
        if len(kinds) == 1 and next(iter(kinds)) in "fibUO":
            values = np.concatenate([c.values for c in cols])
            mask = np.concatenate([c.mask for c in cols])
            data[name] = Column._from_arrays(values, mask)
        else:
            data[name] = Column([v for c in cols for v in c.to_list()])
    row_ids = np.concatenate([f.row_ids for f in frames])
    return DataFrame._from_columns(data, row_ids)
