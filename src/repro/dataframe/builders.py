"""The column-constructor factory (torcharrow-style builder contract).

Every :class:`~repro.dataframe.column.Column` is materialized by a
*builder* looked up in a registry keyed on a logical dtype kind
(``"bool"``, ``"int"``, ``"float"``, ``"str"``, ``"object"``). A builder
obeys a four-method contract:

- ``_empty()`` — classmethod; start an empty builder.
- ``_append_value(value)`` — push one non-null scalar.
- ``_append_null()`` — push one null slot.
- ``_finalize()`` — seal the builder and return the finished
  :class:`Column`; no appends are allowed afterwards.

The default builders back columns with numpy arrays plus a boolean
validity mask, but nothing in the engine assumes that: a column runtime
with different storage (memory-mapped arrays, an Arrow buffer, a remote
shard) plugs in by registering its own builder per kind via
:func:`register_column`. The relational kernels only consume the
``values``/``mask`` pair a finalized column exposes.

Null-promotion rules are part of the contract (they are what the rest of
the repo's hex-identity guarantees rest on):

- ``int`` columns containing nulls finalize to float64 backing with NaN
  fillers (numpy has no nullable int storage).
- masked slots always hold the kind's canonical filler (NaN / 0 / False /
  ``""`` / ``None``) so equality and hashing never leak stale values.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ValidationError

#: Canonical backing-array filler per numpy dtype kind at masked slots.
FILLERS = {"f": np.nan, "i": 0, "b": False, "U": "", "O": ""}


def filler_for(dtype: np.dtype):
    return FILLERS.get(dtype.kind, 0)


class ColumnBuilder:
    """Base builder: collects scalars, finalizes into a Column.

    Subclasses set ``kind`` and implement :meth:`_make_arrays` turning the
    collected items/mask into a ``(values, mask)`` numpy pair honouring
    the kind's null-promotion rule.
    """

    kind: str = "object"

    def __init__(self):
        self._items: list = []
        self._mask: list[bool] = []
        self._finalized = False

    # -- the builder contract ------------------------------------------
    @classmethod
    def _empty(cls) -> "ColumnBuilder":
        """Start a fresh builder for this kind."""
        return cls()

    def _append_value(self, value) -> None:
        """Append one non-null scalar."""
        if self._finalized:
            raise ValidationError("builder already finalized")
        self._items.append(value)
        self._mask.append(False)

    def _append_null(self) -> None:
        """Append one null slot."""
        if self._finalized:
            raise ValidationError("builder already finalized")
        self._items.append(None)
        self._mask.append(True)

    def _finalize(self):
        """Seal the builder and return the finished Column."""
        if self._finalized:
            raise ValidationError("builder already finalized")
        self._finalized = True
        values, mask = self._make_arrays(self._items, np.array(self._mask, dtype=bool))
        from repro.dataframe.column import Column

        return Column._from_arrays(values, mask)

    def __len__(self) -> int:
        return len(self._items)

    # -- bulk path shared with Column construction ---------------------
    @classmethod
    def _from_items(cls, items: list, mask: np.ndarray):
        """Bulk-build ``(values, mask)`` arrays from a scanned item list."""
        return cls._make_arrays(items, mask)

    @classmethod
    def _make_arrays(cls, items: list, mask: np.ndarray):
        raise NotImplementedError


class BoolColumnBuilder(ColumnBuilder):
    """Packed ``bool`` backing; null slots hold ``False`` under the mask."""

    kind = "bool"

    @classmethod
    def _make_arrays(cls, items, mask):
        values = np.array([bool(v) if not m else False
                           for v, m in zip(items, mask)], dtype=bool)
        return values, mask


class IntColumnBuilder(ColumnBuilder):
    """Int64 backing; promotes to float64 when any slot is null."""

    kind = "int"

    @classmethod
    def _make_arrays(cls, items, mask):
        if mask.any():
            values = np.array([float(v) if not m else np.nan
                               for v, m in zip(items, mask)])
        else:
            values = np.array([int(v) for v in items], dtype=np.int64)
        return values, mask


class FloatColumnBuilder(ColumnBuilder):
    """Float64 backing; null slots hold ``NaN`` under the mask."""

    kind = "float"

    @classmethod
    def _make_arrays(cls, items, mask):
        values = np.array([float(v) if not m else np.nan
                           for v, m in zip(items, mask)])
        return values, mask


class StringColumnBuilder(ColumnBuilder):
    """Object-dtype string backing; null slots hold ``""`` under the mask."""

    kind = "str"

    @classmethod
    def _make_arrays(cls, items, mask):
        values = np.array([v if not m else ""
                           for v, m in zip(items, mask)], dtype=object)
        return values, mask


class ObjectColumnBuilder(ColumnBuilder):
    """Catch-all object backing; null slots hold ``None`` under the mask."""

    kind = "object"

    @classmethod
    def _make_arrays(cls, items, mask):
        values = np.array([v if not m else None
                           for v, m in zip(items, mask)], dtype=object)
        return values, mask


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, type[ColumnBuilder]] = {}


def register_column(kind: str, builder_cls: type[ColumnBuilder]) -> None:
    """Register (or replace) the builder used for a dtype kind.

    This is the plug point for alternative column runtimes: registering a
    different builder for, say, ``"float"`` swaps the storage every float
    column in the engine is built on, without touching any kernel.
    """
    if not issubclass(builder_cls, ColumnBuilder):
        raise ValidationError(
            f"{builder_cls!r} does not implement the ColumnBuilder contract"
        )
    _REGISTRY[kind] = builder_cls


def builder_for(kind: str) -> type[ColumnBuilder]:
    """Look up the registered builder class for a dtype kind."""
    try:
        return _REGISTRY[kind]
    except KeyError:
        raise ValidationError(
            f"no column builder registered for kind {kind!r}; "
            f"have {sorted(_REGISTRY)}"
        ) from None


def registered_kinds() -> list[str]:
    return sorted(_REGISTRY)


for _cls in (BoolColumnBuilder, IntColumnBuilder, FloatColumnBuilder,
             StringColumnBuilder, ObjectColumnBuilder):
    register_column(_cls.kind, _cls)


# ----------------------------------------------------------------------
# Kind inference (the dispatch key for Python-list construction)
# ----------------------------------------------------------------------
def infer_kind(items: list, mask: np.ndarray) -> str:
    """Infer the dtype kind of a scanned item list (nulls excluded).

    Mirrors the engine's long-standing inference: all-bool -> bool;
    all-int -> int; any mix of int/float -> float; all-str -> str;
    anything else -> object. All-null input is ``float`` (NaN backing).
    """
    non_null = [v for v, m in zip(items, mask) if not m]
    if not non_null:
        return "float"
    if all(isinstance(v, (bool, np.bool_)) for v in non_null):
        return "bool"
    if all(isinstance(v, (int, np.integer)) and not isinstance(v, bool)
           for v in non_null):
        return "int"
    if all(isinstance(v, (int, float, np.integer, np.floating))
           for v in non_null):
        return "float"
    if all(isinstance(v, str) for v in non_null):
        return "str"
    return "object"


def arrays_from_items(items: list) -> tuple[np.ndarray, np.ndarray]:
    """Scan a Python list into ``(values, mask)`` via the registered
    builder for its inferred kind — the list path of Column construction."""
    mask = np.array(
        [v is None or (isinstance(v, float) and np.isnan(v)) for v in items],
        dtype=bool,
    )
    if not len(items):
        return np.full(0, np.nan), mask
    kind = infer_kind(items, mask)
    return builder_for(kind)._from_items(items, mask)
