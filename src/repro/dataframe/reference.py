"""Row-wise reference implementations of the relational kernels.

These are the original interpreted loops the columnar engine replaced.
They are retained for two reasons:

1. **Differential testing** — every vectorized kernel in
   :mod:`repro.dataframe.kernels` is checked against these on randomized
   null-heavy frames; the two must agree on values, masks, row ids and
   output order exactly.
2. **Fallback** — vectorized kernels require sortable key values; object
   columns mixing incomparable types (e.g. ints and strings) route back
   through these loops so every input that used to work still works.

Do not "optimize" anything here: being obviously correct is the point.
"""

from __future__ import annotations

import numpy as np

from repro.dataframe.column import Column


def join_positions_rowwise(left: Column, right: Column, how: str):
    """Dict-probing equality join; the semantics the vectorized kernel
    must reproduce (see :func:`repro.dataframe.kernels.join_positions`)."""
    table: dict = {}
    for j in range(len(right)):
        if right.mask[j]:
            continue  # null keys never match
        table.setdefault(right.get(j), []).append(j)

    left_pos, right_pos = [], []
    for i in range(len(left)):
        matches = [] if left.mask[i] else table.get(left.get(i), [])
        if matches:
            for j in matches:
                left_pos.append(i)
                right_pos.append(j)
        elif how == "left":
            left_pos.append(i)
            right_pos.append(-1)
    return (np.array(left_pos, dtype=np.int64),
            np.array(right_pos, dtype=np.int64))


def gather_column_rowwise(source: Column, positions) -> Column:
    """Rebuild a gathered column from Python scalars (re-inferring dtype,
    which is the promotion behaviour the fast gather mirrors)."""
    values = []
    for j in positions:
        values.append(None if j < 0 else source.get(int(j)))
    return Column(values)


def group_positions_rowwise(key_columns: list[Column]):
    """Tuple-keyed dict grouping in first-seen order."""
    groups: dict[tuple, list[int]] = {}
    n = len(key_columns[0]) if key_columns else 0
    for i in range(n):
        key = tuple(col.get(i) for col in key_columns)
        groups.setdefault(key, []).append(i)
    firsts = np.array([positions[0] for positions in groups.values()],
                      dtype=np.int64)
    slices = [np.array(positions, dtype=np.int64)
              for positions in groups.values()]
    return firsts, slices


def resolve_fuzzy_keys_rowwise(left_keys, right_keys, max_edit_distance,
                               within) -> dict[str, str]:
    """All-pairs unique-match resolution (no candidate pruning)."""
    right_set = set(right_keys)
    resolved: dict[str, str] = {}
    for key in left_keys:
        if key in right_set:
            continue
        candidates = [rk for rk in right_keys
                      if within(key, rk, max_edit_distance)]
        if len(candidates) == 1:
            resolved[key] = candidates[0]
    return resolved


def levenshtein_within(a: str, b: str, limit: int) -> bool:
    """True when ``edit_distance(a, b) <= limit`` (banded DP, early exit,
    with the standard common prefix/suffix strip)."""
    if abs(len(a) - len(b)) > limit:
        return False
    # Shared prefixes and suffixes cost nothing; strip before the DP.
    lo = 0
    while lo < len(a) and lo < len(b) and a[lo] == b[lo]:
        lo += 1
    hi_a, hi_b = len(a), len(b)
    while hi_a > lo and hi_b > lo and a[hi_a - 1] == b[hi_b - 1]:
        hi_a -= 1
        hi_b -= 1
    a, b = a[lo:hi_a], b[lo:hi_b]
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        best = i
        for j, cb in enumerate(b, start=1):
            cost = min(previous[j] + 1,        # deletion
                       current[j - 1] + 1,     # insertion
                       previous[j - 1] + (ca != cb))  # substitution
            current.append(cost)
            best = min(best, cost)
        if best > limit:
            return False
        previous = current
    return previous[-1] <= limit
