"""A small columnar dataframe engine (the pandas stand-in).

Provides null-aware typed columns and a :class:`DataFrame` supporting the
relational operations the tutorial's pipelines need — filter, project,
map/UDF, hash join, fuzzy join, group-by aggregation, concat and sort —
with stable row identifiers so fine-grained provenance can be tracked
through every operation.

The engine is columnar: operators run as vectorized numpy kernels
(:mod:`repro.dataframe.kernels`) over typed array-backed columns built by
a dtype-keyed builder factory (:mod:`repro.dataframe.builders`), with the
original row-at-a-time loops retained in :mod:`repro.dataframe.reference`
as fallbacks and differential-test oracles. Filters can be expressed as
column expressions (``frame.filter(col("age") > 30)``) that evaluate as
whole-column masks. See ``docs/DATAFRAME.md`` for the data-layer
contract.
"""

from repro.dataframe.builders import (
    ColumnBuilder,
    builder_for,
    register_column,
    registered_kinds,
)
from repro.dataframe.column import Column
from repro.dataframe.expr import ColumnRef, Expr, col
from repro.dataframe.frame import DataFrame, concat_rows
from repro.dataframe.groupby import GroupBy
from repro.dataframe.io import read_csv, write_csv
from repro.dataframe.kernels import KernelFallback

__all__ = [
    "Column",
    "ColumnBuilder",
    "ColumnRef",
    "DataFrame",
    "Expr",
    "GroupBy",
    "KernelFallback",
    "builder_for",
    "col",
    "concat_rows",
    "read_csv",
    "register_column",
    "registered_kinds",
    "write_csv",
]
