"""A small columnar dataframe engine (the pandas stand-in).

Provides null-aware typed columns and a :class:`DataFrame` supporting the
relational operations the tutorial's pipelines need — filter, project,
map/UDF, hash join, fuzzy join, group-by aggregation, concat and sort —
with stable row identifiers so fine-grained provenance can be tracked
through every operation.
"""

from repro.dataframe.column import Column
from repro.dataframe.frame import DataFrame, concat_rows
from repro.dataframe.groupby import GroupBy
from repro.dataframe.io import read_csv, write_csv

__all__ = ["Column", "DataFrame", "GroupBy", "concat_rows", "read_csv", "write_csv"]
