"""Certain and approximately certain models (Zhen et al., ref [92]).

A model is *certain* when every completion of the incomplete training
data yields the same optimal parameters — then imputation is provably
irrelevant and training can proceed without cleaning. The paper gives
checkable conditions for linear regression and SVMs; we implement both:

- **Linear regression**: fit on the fully-observed rows. The model is
  certain iff every incomplete row would have zero residual no matter how
  its missing cells are completed — which requires (a) the coefficients
  of its missing features to be (near) zero and (b) the observed part to
  already be on the regression plane. *Approximately certain* relaxes
  both to a tolerance on the worst-case residual.
- **SVM (squared hinge)**: fit on complete rows. Certain iff every
  incomplete row lies strictly outside the margin for *all* completions
  (worst-case margin via interval arithmetic > 1), so it can never become
  a support vector.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ValidationError
from repro.core.validation import check_array
from repro.ml.linear import LinearRegression, LinearSVC
from repro.uncertain.intervals import IntervalArray


def _split_complete(X: np.ndarray):
    nan_rows = np.isnan(X).any(axis=1)
    return ~nan_rows, nan_rows


def _interval_from_nan(X_rows: np.ndarray, X_full: np.ndarray,
                       bounds: tuple | None) -> IntervalArray:
    """Box the NaN cells of ``X_rows`` using fill ranges derived from the
    *full* dataset (a column that is NaN in every incomplete row still has
    observed values elsewhere)."""
    if bounds is None:
        lo_fill = np.nanmin(X_full, axis=0)
        hi_fill = np.nanmax(X_full, axis=0)
        if np.isnan(lo_fill).any():
            raise ValidationError("some column has no observed values at all")
    else:
        lo_fill, hi_fill = bounds
    return IntervalArray.from_nan(X_rows, lo_fill, hi_fill)


def certain_model_linear_regression(X, y, *, tolerance: float = 0.0,
                                    bounds: tuple | None = None,
                                    alpha: float = 1e-6) -> dict:
    """Check whether the OLS model is (approximately) certain.

    Parameters
    ----------
    X:
        Features with NaN-marked missing cells.
    tolerance:
        Worst-case residual allowed per incomplete row; ``0`` demands an
        exactly certain model, positive values the paper's "approximately
        certain" relaxation.
    bounds:
        Optional ``(lo, hi)`` per-column fill ranges.

    Returns
    -------
    dict with ``certain`` (bool), ``model`` (fit on complete rows),
    ``worst_residuals`` per incomplete row, and ``n_incomplete``.
    """
    X = check_array(X, allow_nan=True)
    y = np.asarray(y, dtype=float)
    complete, incomplete = _split_complete(X)
    if complete.sum() < X.shape[1] + 1:
        raise ValidationError(
            "too few complete rows to fit the reference model"
        )
    model = LinearRegression(alpha=alpha)
    model.fit(X[complete], y[complete])

    if not incomplete.any():
        return {"certain": True, "model": model, "worst_residuals": np.array([]),
                "n_incomplete": 0}

    box = _interval_from_nan(X[incomplete], X, bounds)
    prediction_range = box.dot_vector(model.coef_) + IntervalArray.point(
        np.full(int(incomplete.sum()), model.intercept_)
    )
    residual = prediction_range - IntervalArray.point(y[incomplete])
    worst = np.maximum(np.abs(residual.lo), np.abs(residual.hi))
    return {
        "certain": bool(np.all(worst <= tolerance + 1e-9)),
        "model": model,
        "worst_residuals": worst,
        "n_incomplete": int(incomplete.sum()),
    }


def certain_model_svm(X, y, *, margin_slack: float = 0.0,
                      bounds: tuple | None = None, C: float = 1.0) -> dict:
    """Check whether the squared-hinge SVM is (approximately) certain.

    The SVM fit on complete rows is certain when every incomplete row
    satisfies ``y_i · f(x_i) >= 1`` for all completions (worst-case margin
    via intervals), hence contributes zero loss and zero gradient in every
    world. ``margin_slack`` relaxes the threshold to ``1 - margin_slack``.

    Returns a dict mirroring :func:`certain_model_linear_regression`, with
    ``worst_margins`` instead of residuals.
    """
    X = check_array(X, allow_nan=True)
    y = np.asarray(y)
    complete, incomplete = _split_complete(X)
    classes = np.unique(y)
    if len(classes) != 2:
        raise ValidationError("SVM certainty check requires binary labels")
    if complete.sum() < X.shape[1] + 1:
        raise ValidationError("too few complete rows to fit the reference model")
    model = LinearSVC(C=C)
    model.fit(X[complete], y[complete])

    if not incomplete.any():
        return {"certain": True, "model": model, "worst_margins": np.array([]),
                "n_incomplete": 0}

    signs = np.where(y[incomplete] == model.classes_[1], 1.0, -1.0)
    box = _interval_from_nan(X[incomplete], X, bounds)
    scores = box.dot_vector(model.coef_) + IntervalArray.point(
        np.full(int(incomplete.sum()), model.intercept_)
    )
    # Worst-case (smallest) signed margin per row.
    worst_margin = np.where(signs > 0, scores.lo, -scores.hi)
    return {
        "certain": bool(np.all(worst_margin >= 1.0 - margin_slack - 1e-9)),
        "model": model,
        "worst_margins": worst_margin,
        "n_incomplete": int(incomplete.sum()),
    }
