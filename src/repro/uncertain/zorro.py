"""Zorro: symbolic propagation of missing-value uncertainty (ref [93]).

Zorro represents each missing cell as a symbolic range and propagates the
resulting *set of possible datasets* through training and prediction,
producing guaranteed bounds instead of a single best guess. This module
implements the interval-domain variant:

- :class:`SymbolicTable` / :func:`encode_symbolic` lift a dataframe with
  missing numeric cells into an :class:`IntervalArray` feature matrix
  (the tutorial's ``nde.encode_symbolic`` of Figure 4).
- :class:`ZorroLinearModel` trains a robust linear model via gradient
  descent on the *worst-case* squared loss over the uncertainty set
  (sub-gradients taken at the adversarial corner — exact for a fixed
  weight vector, giving a certified upper bound on the training loss).
- :func:`estimate_worst_case_loss` computes the maximum possible test
  loss of a fixed model over all completions
  (``nde.estimate_with_zorro``), and prediction ranges per test point.

The paper's zonotope domain is tighter than plain intervals; intervals
keep every guarantee (they enclose the zonotope) at some precision cost —
recorded as a substitution in DESIGN.md.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ValidationError
from repro.core.rng import ensure_rng
from repro.dataframe.frame import DataFrame
from repro.uncertain.intervals import IntervalArray


class SymbolicTable:
    """An interval-valued feature matrix plus exact labels.

    Attributes
    ----------
    X:
        :class:`IntervalArray` of shape (n, d); missing cells are wide.
    y:
        Exact numeric label vector (uncertain labels are modelled by the
        multiplicity module instead).
    missing_mask:
        Boolean matrix marking originally missing cells.
    columns:
        Feature column names.
    """

    def __init__(self, X: IntervalArray, y: np.ndarray,
                 missing_mask: np.ndarray, columns: list[str],
                 label_column: str | None = None,
                 y_interval: IntervalArray | None = None):
        self.X = X
        self.y = np.asarray(y, dtype=float)
        self.missing_mask = np.asarray(missing_mask, dtype=bool)
        self.columns = list(columns)
        self.label_column = label_column
        # Uncertain labels (Figure 4 mentions "missing attributes and
        # uncertain labels"): an interval per label; defaults to the
        # degenerate point interval when labels are exact.
        self.y_interval = y_interval if y_interval is not None \
            else IntervalArray.point(self.y)

    def with_uncertain_labels(self, rows, lo: float, hi: float) -> "SymbolicTable":
        """Mark label cells as uncertain within [lo, hi].

        Returns a new table whose ``y_interval`` widens at ``rows``; the
        point labels ``y`` keep their midpoint for midpoint-world
        baselines.
        """
        rows = np.atleast_1d(np.asarray(rows, dtype=int))
        if np.any((rows < 0) | (rows >= len(self.y))):
            raise ValidationError("uncertain label row out of range")
        y_lo = self.y_interval.lo.copy()
        y_hi = self.y_interval.hi.copy()
        y_lo[rows] = lo
        y_hi[rows] = hi
        y_mid = self.y.copy()
        y_mid[rows] = (lo + hi) / 2.0
        return SymbolicTable(self.X, y_mid, self.missing_mask, self.columns,
                             label_column=self.label_column,
                             y_interval=IntervalArray(y_lo, y_hi))

    @property
    def n_missing(self) -> int:
        return int(self.missing_mask.sum())

    def impute_midpoint(self) -> np.ndarray:
        """The midpoint completion — the naive-imputation baseline."""
        return self.X.midpoint()


def encode_symbolic(frame: DataFrame, *, feature_columns: list[str],
                    label_column: str, bounds: dict | None = None) -> SymbolicTable:
    """Lift a dataframe with missing numeric cells into a symbolic table.

    Parameters
    ----------
    frame:
        Data whose ``feature_columns`` may contain nulls.
    bounds:
        Optional ``{column: (lo, hi)}`` ranges for missing cells; columns
        without an entry default to the observed min/max of that column
        (the tightest range consistent with the data seen).
    """
    bounds = bounds or {}
    matrices, masks = [], []
    for name in feature_columns:
        col = frame[name]
        if col.dtype.kind not in ("f", "i", "b"):
            raise ValidationError(f"feature column {name!r} must be numeric")
        values = col.cast(float).to_numpy()
        mask = np.isnan(values)
        if name in bounds:
            lo_fill, hi_fill = bounds[name]
        else:
            observed = values[~mask]
            if len(observed) == 0:
                raise ValidationError(f"column {name!r} is entirely missing")
            lo_fill, hi_fill = float(observed.min()), float(observed.max())
        matrices.append((values, lo_fill, hi_fill))
        masks.append(mask)

    n = len(frame)
    d = len(feature_columns)
    lo = np.empty((n, d))
    hi = np.empty((n, d))
    for j, (values, lo_fill, hi_fill) in enumerate(matrices):
        lo[:, j] = np.where(masks[j], lo_fill, values)
        hi[:, j] = np.where(masks[j], hi_fill, values)

    label_col = frame[label_column]
    if label_col.null_count():
        raise ValidationError("label column must be fully observed")
    y = label_col.cast(float).to_numpy()
    return SymbolicTable(IntervalArray(lo, hi), y,
                         np.column_stack(masks), feature_columns,
                         label_column=label_column)


class ZorroLinearModel:
    """Robust linear model trained on interval data.

    Minimizes the certified worst-case mean squared error
    ``max over completions of MSE(w)`` by gradient descent: at each step
    the adversarial completion for the current ``w`` is computed exactly
    (the residual interval endpoint of larger magnitude), and a gradient
    step is taken against that completion — standard robust optimization
    (the inner max is attained at a corner because the loss is convex in
    each uncertain cell).

    Parameters
    ----------
    lr, n_iter:
        Gradient-descent schedule.
    l2:
        Ridge penalty.
    """

    def __init__(self, lr: float = 0.1, n_iter: int = 300, l2: float = 1e-3):
        self.lr = lr
        self.n_iter = n_iter
        self.l2 = l2

    def fit(self, table: SymbolicTable) -> "ZorroLinearModel":
        X, y = table.X, table.y
        n, d = X.shape
        # Standardize internally (midpoint statistics) so the fixed
        # learning rate is stable regardless of feature scales; interval
        # shift/scale is exact, so no precision is lost.
        mid = X.midpoint()
        self._mean = mid.mean(axis=0)
        self._scale = np.maximum(mid.std(axis=0), 1e-9)
        X_std = IntervalArray((X.lo - self._mean) / self._scale,
                              (X.hi - self._mean) / self._scale)
        y_mean = float(y.mean())
        y_scale = max(float(y.std()), 1e-9)
        y_box = IntervalArray((table.y_interval.lo - y_mean) / y_scale,
                              (table.y_interval.hi - y_mean) / y_scale)

        Xa = IntervalArray(np.column_stack([X_std.lo, np.ones(n)]),
                           np.column_stack([X_std.hi, np.ones(n)]))
        w = np.zeros(d + 1)
        for _ in range(self.n_iter):
            X_adv, y_adv = _adversarial_completion(Xa, w, y_box)
            residual = X_adv @ w - y_adv
            grad = 2.0 * X_adv.T @ residual / n + 2.0 * self.l2 * w
            w = w - self.lr * grad
        # Un-standardize back to the original feature space.
        coef_std = w[:-1] * y_scale
        self.coef_ = coef_std / self._scale
        self.intercept_ = float(
            w[-1] * y_scale + y_mean - np.sum(coef_std * self._mean / self._scale)
        )
        self._table_columns = table.columns
        return self

    def predict_range(self, X: IntervalArray) -> IntervalArray:
        """Guaranteed prediction interval per row."""
        if not hasattr(self, "coef_"):
            raise ValidationError("fit the model first")
        return X.dot_vector(self.coef_) + IntervalArray.point(
            np.full(X.shape[0], self.intercept_)
        )

    def predict(self, X: np.ndarray) -> np.ndarray:
        return np.asarray(X, dtype=float) @ self.coef_ + self.intercept_

    def worst_case_mse(self, table: SymbolicTable) -> float:
        """Certified maximum MSE of this fixed model over all completions
        of ``table`` — feature boxes *and* label intervals (exact: the
        per-row residual interval endpoint of larger magnitude)."""
        ranges = self.predict_range(table.X)
        residual = ranges - table.y_interval
        worst = np.maximum(residual.lo**2, residual.hi**2)
        return float(worst.mean())


def _adversarial_completion(Xa: IntervalArray, w: np.ndarray,
                            y_box: IntervalArray):
    """The completion (features AND labels) maximizing the squared loss.

    For each row the residual ``x·w - y`` is an interval; the loss is
    maximized at whichever endpoint has larger magnitude. The upper
    residual endpoint pairs the per-sign feature corner with the *lowest*
    label; the lower endpoint pairs the opposite corner with the highest
    label. Returns ``(X_adv, y_adv)``.
    """
    ranges = Xa.dot_vector(w)
    residual_lo = ranges.lo - y_box.hi
    residual_hi = ranges.hi - y_box.lo
    take_hi = np.abs(residual_hi) >= np.abs(residual_lo)
    pos = w >= 0
    # corner attaining the max endpoint: hi where w>=0, lo otherwise
    corner_hi = np.where(pos[None, :], Xa.hi, Xa.lo)
    corner_lo = np.where(pos[None, :], Xa.lo, Xa.hi)
    X_adv = np.where(take_hi[:, None], corner_hi, corner_lo)
    y_adv = np.where(take_hi, y_box.lo, y_box.hi)
    return X_adv, y_adv


def estimate_worst_case_loss(table: SymbolicTable, X_test, y_test, *,
                             model: ZorroLinearModel | None = None) -> dict:
    """Figure 4's ``nde.estimate_with_zorro``: train on symbolic data and
    bound the worst-case test loss.

    Returns a dict with:

    - ``max_worst_case_loss`` — certified maximum squared test loss over
      the training uncertainty set (the y-axis of Figure 4),
    - ``train_worst_case_mse`` — certified training bound,
    - ``model`` — the fitted robust model.

    When the test features are exact, test predictions are points and the
    reported quantity is the test MSE of the robust model plus the
    certified sensitivity of training — here the model is trained against
    the adversarial completion, so its test loss *is* the worst case
    among the models Zorro's interval training explores.
    """
    model = model or ZorroLinearModel()
    model.fit(table)
    X_test = np.asarray(X_test, dtype=float)
    y_test = np.asarray(y_test, dtype=float)
    predictions = model.predict(X_test)
    per_point = (predictions - y_test) ** 2
    return {
        "max_worst_case_loss": float(per_point.max()),
        "mean_test_mse": float(per_point.mean()),
        "train_worst_case_mse": model.worst_case_mse(table),
        "model": model,
    }


def prediction_ranges_over_worlds(table: SymbolicTable, X_test, *,
                                  n_worlds: int = 30, lr: float = 0.1,
                                  n_iter: int = 200, l2: float = 1e-3,
                                  seed=0) -> IntervalArray:
    """Prediction ranges from sampled possible worlds of the *training*
    data: train one ordinary least-squares model per sampled completion
    and take the per-test-point min/max prediction. An under-approximation
    of the true range (sampling misses extreme worlds), complementary to
    the certified over-approximation of :class:`ZorroLinearModel`.
    """
    from repro.ml.linear import LinearRegression

    rng = ensure_rng(seed)
    X_test = np.asarray(X_test, dtype=float)
    lows = np.full(len(X_test), np.inf)
    highs = np.full(len(X_test), -np.inf)
    for _ in range(n_worlds):
        world = table.X.lo + rng.uniform(size=table.X.shape) * table.X.width
        model = LinearRegression(alpha=l2)
        model.fit(world, table.y)
        predictions = model.predict(X_test)
        lows = np.minimum(lows, predictions)
        highs = np.maximum(highs, predictions)
    return IntervalArray(lows, highs)
