"""Certified robustness of tree predictions under feature uncertainty.

The survey covers certifying decision trees against programmable data
bias (Meyer et al., ref [54]); the complementary *prediction-time*
question — is this tree's output invariant to the uncertainty in the
input features? — has an exact, cheap answer: walk the tree with an
interval box instead of a point, descending into *both* children whenever
the box straddles a split threshold. The union of reachable leaves gives
the complete set of possible predictions; a singleton set is a
certificate.

Works for single :class:`~repro.ml.tree.DecisionTreeClassifier` trees and
for :class:`~repro.ml.ensemble.RandomForestClassifier` ensembles (where
per-tree reachable-class sets combine into certified vote bounds).
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ValidationError
from repro.ml.base import check_fitted
from repro.ml.ensemble import RandomForestClassifier
from repro.ml.tree import DecisionTreeClassifier, _Node
from repro.uncertain.intervals import IntervalArray


def _reachable_leaves(node: _Node, lo: np.ndarray, hi: np.ndarray):
    """Yield every leaf reachable by some point of the box [lo, hi]."""
    if node.is_leaf:
        yield node
        return
    f, t = node.feature, node.threshold
    if lo[f] <= t:                      # some point goes left
        yield from _reachable_leaves(node.left, lo, hi)
    if hi[f] > t:                       # some point goes right
        yield from _reachable_leaves(node.right, lo, hi)


def tree_prediction_set(tree: DecisionTreeClassifier, box: IntervalArray,
                        row: int = 0) -> set:
    """All class labels the tree can output for points in the box row."""
    check_fitted(tree)
    lo, hi = box.lo, box.hi
    if lo.ndim == 2:
        lo, hi = lo[row], hi[row]
    if lo.shape[0] != tree.n_features_in_:
        raise ValidationError(
            f"box has {lo.shape[0]} features, tree expects "
            f"{tree.n_features_in_}")
    labels = set()
    for leaf in _reachable_leaves(tree.tree_, lo, hi):
        labels.add(tree.classes_[int(np.argmax(leaf.proba()))].item()
                   if isinstance(tree.classes_[0], np.generic)
                   else tree.classes_[int(np.argmax(leaf.proba()))])
    return labels


def certify_tree_robustness(tree: DecisionTreeClassifier,
                            box: IntervalArray) -> dict:
    """Per-row robustness certificates for a batch of interval inputs.

    Returns ``{"robust_mask", "predictions", "possible"}`` where
    ``robust_mask[i]`` is True iff every completion of row ``i``'s box
    yields the same class, ``predictions[i]`` is that certified class
    (midpoint-world prediction otherwise), and ``possible[i]`` the set of
    reachable classes.
    """
    n = box.shape[0]
    robust = np.zeros(n, dtype=bool)
    predictions = []
    possible = []
    midpoints = box.midpoint()
    for i in range(n):
        labels = tree_prediction_set(tree, box, row=i)
        possible.append(labels)
        if len(labels) == 1:
            robust[i] = True
            predictions.append(next(iter(labels)))
        else:
            predictions.append(tree.predict(midpoints[i:i + 1])[0])
    return {"robust_mask": robust, "predictions": np.array(predictions),
            "possible": possible}


def _tree_proba_range(tree: DecisionTreeClassifier, lo: np.ndarray,
                      hi: np.ndarray, class_index: dict) -> tuple:
    """Per-class [min, max] leaf probability over the reachable leaves,
    aligned to the forest's global class order."""
    k = len(class_index)
    p_lo = np.ones(k)
    p_hi = np.zeros(k)
    local_cols = [class_index[c.item() if isinstance(c, np.generic) else c]
                  for c in tree.classes_]
    for leaf in _reachable_leaves(tree.tree_, lo, hi):
        proba = np.zeros(k)
        proba[local_cols] = leaf.proba()
        p_lo = np.minimum(p_lo, proba)
        p_hi = np.maximum(p_hi, proba)
    return p_lo, p_hi


def certify_forest_robustness(forest: RandomForestClassifier,
                              box: IntervalArray) -> dict:
    """Certified robustness for a soft-voting random forest.

    The forest predicts by *averaging leaf probabilities*, so the sound
    certificate bounds each class's total probability: per tree, take the
    min/max leaf probability of the class over the reachable leaves; sum
    across trees. The prediction is certified when some class's summed
    lower bound beats every other class's summed upper bound (sound but
    conservative — per-class bounds ignore that probabilities within one
    leaf are coupled).
    """
    check_fitted(forest)
    n = box.shape[0]
    classes = [c.item() if isinstance(c, np.generic) else c
               for c in forest.classes_]
    class_index = {c: i for i, c in enumerate(classes)}
    robust = np.zeros(n, dtype=bool)
    predictions = forest.predict(box.midpoint())
    for i in range(n):
        total_lo = np.zeros(len(classes))
        total_hi = np.zeros(len(classes))
        for tree, features in zip(forest.trees_, forest.feature_subsets_):
            p_lo, p_hi = _tree_proba_range(tree, box.lo[i, features],
                                           box.hi[i, features], class_index)
            total_lo += p_lo
            total_hi += p_hi
        for c in range(len(classes)):
            others = np.delete(total_hi, c)
            if total_lo[c] > others.max():
                robust[i] = True
                predictions[i] = classes[c]
                break
    return {"robust_mask": robust, "predictions": predictions}
