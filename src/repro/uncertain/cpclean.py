"""Certain predictions for k-NN over incomplete data (CPClean, ref [40]).

A test point's prediction is *certain* when **every** completion of the
incomplete training data yields the same k-NN vote — then cleaning cannot
change the answer and is provably unnecessary for that query ("do we even
need to debug?"). CPClean's second contribution is picking *which* rows
to clean so the most validation queries become certain; the greedy
selector here follows that design.

Algorithm. Each incomplete training row has an interval distance
``[dmin, dmax]`` to the test point (features boxed by per-column bounds).
For the binary case, label ``c`` is a certain prediction iff ``c`` still
wins the k-NN vote in its own worst world — all ``c``-labelled rows pushed
to ``dmax``, all others pulled to ``dmin``. Pushing a same-label row
farther or an other-label row closer can only reduce ``c``'s vote, so the
check is exact (a completion attaining the worst case exists because each
row's distance varies continuously and independently over its interval).
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ValidationError
from repro.core.validation import check_array


def _interval_distances(X_lo, X_hi, x: np.ndarray):
    """Row-wise [min, max] euclidean distance to a complete point ``x``."""
    below = np.clip(X_lo - x, 0.0, None)
    above = np.clip(x - X_hi, 0.0, None)
    nearest_gap = np.maximum(below, above)           # 0 inside the box
    farthest_gap = np.maximum(np.abs(X_lo - x), np.abs(X_hi - x))
    return (np.sqrt((nearest_gap**2).sum(axis=1)),
            np.sqrt((farthest_gap**2).sum(axis=1)))


class CertainPredictionKNN:
    """Certain-prediction checker for binary k-NN classification.

    Parameters
    ----------
    k:
        Neighborhood size (odd values avoid vote ties).
    bounds:
        ``(lo, hi)`` arrays of per-column fill ranges for NaN cells; when
        omitted, observed per-column min/max are used.
    """

    def __init__(self, k: int = 3, bounds: tuple | None = None):
        if k < 1:
            raise ValidationError("k must be >= 1")
        self.k = k
        self.bounds = bounds

    def fit(self, X, y) -> "CertainPredictionKNN":
        X = check_array(X, allow_nan=True)
        y = np.asarray(y)
        self.classes_ = np.unique(y)
        if len(self.classes_) != 2:
            raise ValidationError("certain predictions implemented for binary tasks")
        if self.k > len(X):
            raise ValidationError(f"k={self.k} exceeds training size {len(X)}")
        if self.bounds is None:
            lo_fill = np.nanmin(X, axis=0)
            hi_fill = np.nanmax(X, axis=0)
        else:
            lo_fill, hi_fill = self.bounds
        nan = np.isnan(X)
        self._X_lo = np.where(nan, np.broadcast_to(lo_fill, X.shape), X)
        self._X_hi = np.where(nan, np.broadcast_to(hi_fill, X.shape), X)
        self._y = y
        self._incomplete_rows = np.flatnonzero(nan.any(axis=1))
        return self

    # ------------------------------------------------------------------
    def _wins_worst_case(self, dmin, dmax, candidate) -> bool:
        """Does ``candidate`` win the vote in its own worst world?"""
        is_candidate = self._y == candidate
        adversarial = np.where(is_candidate, dmax, dmin)
        order = np.lexsort((np.arange(len(adversarial)), adversarial))[: self.k]
        votes = int(is_candidate[order].sum())
        return votes * 2 > self.k

    def check(self, x) -> dict:
        """Decide certainty for a single complete test point.

        Returns ``{"certain": bool, "prediction": label_or_None,
        "votes_best_case": {...}}``. ``prediction`` is the certain label
        when one exists; ``None`` when no label wins all worlds.
        """
        x = np.asarray(x, dtype=float)
        if x.ndim != 1:
            raise ValidationError("check takes a single test point")
        dmin, dmax = _interval_distances(self._X_lo, self._X_hi, x)
        for candidate in self.classes_:
            if self._wins_worst_case(dmin, dmax, candidate):
                return {"certain": True, "prediction": candidate}
        # No certain winner: report the midpoint-world prediction.
        mid = (dmin + dmax) / 2.0
        order = np.lexsort((np.arange(len(mid)), mid))[: self.k]
        values, counts = np.unique(self._y[order], return_counts=True)
        return {"certain": False, "prediction": None,
                "midpoint_guess": values[np.argmax(counts)]}

    def certain_fraction(self, X_test) -> float:
        """Fraction of test points with certain predictions — the headline
        number of the T4 benchmark."""
        X_test = check_array(X_test)
        certain = sum(1 for x in X_test if self.check(x)["certain"])
        return certain / len(X_test)


def _candidate_fraction_task(shared, row: int) -> float:
    """Certain fraction after hypothetically cleaning one training row —
    reference implementation that refits a fresh checker per candidate.

    ``shared`` is ``(X_current, X_clean, y, X_test, k)``. The greedy
    selector now uses :func:`_incremental_candidate_fraction_task`
    (identical results, no per-candidate refit); this brute-force path
    is kept as the equivalence oracle for tests.
    """
    X_current, X_clean, y, X_test, k = shared
    candidate = X_current.copy()
    candidate[row] = X_clean[row]
    checker = CertainPredictionKNN(k=k).fit(candidate, y)
    return checker.certain_fraction(X_test)


def _distance_bounds(X_lo, X_hi, X_test):
    """``(n_train, n_test)`` interval-distance matrices; column ``j`` is
    bit-identical to ``_interval_distances(X_lo, X_hi, X_test[j])``."""
    dmin = np.empty((len(X_lo), len(X_test)))
    dmax = np.empty_like(dmin)
    for j, x in enumerate(X_test):
        dmin[:, j], dmax[:, j] = _interval_distances(X_lo, X_hi, x)
    return dmin, dmax


def _certain_fraction_from_bounds(dmin, dmax, y, classes, k: int) -> float:
    """Certain fraction over all test points, vectorized across columns.

    Per column this replays :meth:`CertainPredictionKNN.check` exactly:
    a point is certain iff some label wins the k-NN vote in its own
    worst world, with the same stable (distance, row-index) tie-break.
    """
    n, m = dmin.shape
    row_order = np.broadcast_to(np.arange(n)[:, None], (n, m))
    certain = np.zeros(m, dtype=bool)
    for label in classes:
        is_label = y == label
        adversarial = np.where(is_label[:, None], dmax, dmin)
        order = np.lexsort((row_order, adversarial), axis=0)[:k]
        votes = is_label[order].sum(axis=0)
        certain |= votes * 2 > k
    return int(certain.sum()) / m


def _incremental_candidate_fraction_task(shared, row: int) -> float:
    """Certain fraction after hypothetically cleaning one training row,
    from the round's precomputed interval-distance matrices.

    Cleaning row ``row`` only changes that row's distance bounds — its
    interval collapses to the exact distance — unless revealing the row
    moves a column's observed min/max, which shifts the NaN fill values
    of *other* rows too; that rare case recomputes the matrices from the
    candidate dataset (the reference path's cost). Either way the
    resulting fraction is bit-identical to
    :func:`_candidate_fraction_task`.
    """
    (X_current, X_clean, y, X_test, k, classes, lo_fill, hi_fill,
     base_dmin, base_dmax, exact_dist) = shared
    candidate = X_current.copy()
    candidate[row] = X_clean[row]
    cand_lo = np.nanmin(candidate, axis=0)
    cand_hi = np.nanmax(candidate, axis=0)
    if np.array_equal(cand_lo, lo_fill) and np.array_equal(cand_hi, hi_fill):
        dmin = base_dmin.copy()
        dmax = base_dmax.copy()
        dmin[row] = exact_dist[row]
        dmax[row] = exact_dist[row]
    else:
        nan = np.isnan(candidate)
        X_lo = np.where(nan, np.broadcast_to(cand_lo, candidate.shape),
                        candidate)
        X_hi = np.where(nan, np.broadcast_to(cand_hi, candidate.shape),
                        candidate)
        dmin, dmax = _distance_bounds(X_lo, X_hi, X_test)
    return _certain_fraction_from_bounds(dmin, dmax, y, classes, k)


def cpclean_greedy(X_dirty, y, X_clean, X_test, *, k: int = 3,
                   max_cleaned: int | None = None, runtime=None,
                   observer=None, checkpoint=None, checkpoint_every: int = 1,
                   resume_from=None) -> dict:
    """Greedy CPClean cleaning-set selection (simulated with ground truth).

    Repeatedly cleans (reveals) the incomplete training row whose repair
    certifies the most currently-uncertain test points, stopping when all
    test predictions are certain or the budget is exhausted.

    Parameters
    ----------
    X_dirty:
        Training features with NaN-marked missing cells.
    X_clean:
        Ground-truth features (the oracle's answers).
    max_cleaned:
        Optional budget on cleaned rows.
    runtime:
        Optional :class:`repro.runtime.Runtime` (or backend name): each
        round's candidate evaluations — one world enumeration per still-
        incomplete row — run in parallel. The greedy choice is identical
        on every backend (first-maximum tie-break on the row order).
        Each round precomputes the interval-distance matrices once and
        ships them with the shared payload, so a candidate evaluation is
        an O(update) bound swap instead of a full checker refit (bit-
        identical fractions either way).
    observer:
        Optional :class:`repro.observe.Observer`: spans the selection
        (``cpclean.greedy``), counts candidate evaluations and rows
        cleaned, and logs one ``cpclean.round`` event per repair plus a
        final ``cpclean.run`` summary.
    checkpoint / checkpoint_every / resume_from:
        Durable per-repair snapshots (cleaned rows + certain-fraction
        trajectory). A killed selection resumed with ``resume_from=``
        replays the recorded repairs (no candidate re-evaluation) and
        continues greedily — identical ``cleaned_rows`` and trajectory
        to an uninterrupted run on any backend. The selection is fully
        deterministic, so no seed is involved.

    Returns
    -------
    dict with ``cleaned_rows`` (order of repairs), ``certain_fraction``
    trajectory, and ``n_cleaned``.
    """
    from repro.observe.observer import resolve_observer
    from repro.runtime.runtime import Runtime, resolve_runtime

    observer = resolve_observer(observer)
    # A runtime built here from a backend name is ours to close; one
    # passed in by the caller is shared and stays open.
    owns_runtime = runtime is not None and not isinstance(runtime, Runtime)
    runtime = resolve_runtime(runtime)
    try:
        return _cpclean_greedy_run(X_dirty, y, X_clean, X_test, k=k,
                                   max_cleaned=max_cleaned, runtime=runtime,
                                   observer=observer, checkpoint=checkpoint,
                                   checkpoint_every=checkpoint_every,
                                   resume_from=resume_from)
    finally:
        # The armed flush guard inside the run exits before this close,
        # so a signal-flushed checkpoint never races pool teardown.
        if owns_runtime and runtime is not None:
            runtime.close()


def _cpclean_greedy_run(X_dirty, y, X_clean, X_test, *, k, max_cleaned,
                        runtime, observer, checkpoint=None,
                        checkpoint_every=1, resume_from=None) -> dict:
    """The selection loop behind :func:`cpclean_greedy` (runtime and
    observer already resolved)."""
    import contextlib

    from repro.runtime.cache import fingerprint
    from repro.runtime.checkpoint import LoopCheckpointer

    X_current = np.asarray(X_dirty, dtype=float).copy()
    X_clean = np.asarray(X_clean, dtype=float)
    y = np.asarray(y)
    X_test = np.asarray(X_test, dtype=float)
    incomplete = list(np.flatnonzero(np.isnan(X_current).any(axis=1)))
    budget = max_cleaned if max_cleaned is not None else len(incomplete)

    def fraction(X) -> float:
        checker = CertainPredictionKNN(k=k).fit(X, y)
        return checker.certain_fraction(X_test)

    ckpt = None
    if checkpoint is not None or resume_from is not None:
        # max_cleaned is excluded: the greedy order is a prefix property,
        # so a snapshot may seed a run with a larger budget.
        identity = fingerprint("checkpoint.cpclean.greedy", k, X_current,
                               y, X_clean, X_test)
        ckpt = LoopCheckpointer(checkpoint, kind="cpclean.greedy",
                                identity=identity, every=checkpoint_every,
                                observer=observer, resume_from=resume_from)

    cleaned, trajectory = [], []
    if ckpt is not None:
        payload = ckpt.resume()
        if payload is not None:
            # Replay the recorded repairs — no candidate re-evaluation.
            trajectory = [float.fromhex(s) for s in payload["trajectory"]]
            for row in payload["cleaned"]:
                row = int(row)
                X_current[row] = X_clean[row]
                incomplete.remove(row)
                cleaned.append(row)
            ckpt.record_skipped(completed=len(cleaned), total=budget,
                                method="cpclean.greedy")
    if not trajectory:
        trajectory = [fraction(X_current)]
    classes = np.unique(y)
    # Exact distances of fully-revealed rows, fixed for the whole run.
    exact_dist = _distance_bounds(X_clean, X_clean, X_test)[0]

    # Rebuilt at each repair boundary so a signal flush mid-round
    # persists the last consistent state.
    snapshot = {"completed": len(cleaned), "cleaned": list(cleaned),
                "trajectory": [s.hex() for s in trajectory]}
    guard = ckpt.armed(lambda: snapshot) if ckpt is not None \
        else contextlib.nullcontext()
    with observer.span("cpclean.greedy", k=k, budget=budget,
                       incomplete=len(incomplete)), guard:
        while incomplete and len(cleaned) < budget and trajectory[-1] < 1.0:
            nan = np.isnan(X_current)
            lo_fill = np.nanmin(X_current, axis=0)
            hi_fill = np.nanmax(X_current, axis=0)
            X_lo = np.where(nan, np.broadcast_to(lo_fill, X_current.shape),
                            X_current)
            X_hi = np.where(nan, np.broadcast_to(hi_fill, X_current.shape),
                            X_current)
            base_dmin, base_dmax = _distance_bounds(X_lo, X_hi, X_test)
            shared = (X_current, X_clean, y, X_test, k, classes, lo_fill,
                      hi_fill, base_dmin, base_dmax, exact_dist)
            if runtime is not None:
                fractions = runtime.map(_incremental_candidate_fraction_task,
                                        incomplete, shared=shared,
                                        stage="cpclean.greedy")
            else:
                fractions = [_incremental_candidate_fraction_task(shared, row)
                             for row in incomplete]
            best = int(np.argmax(fractions))  # first maximum, as in the loop
            best_row, best_fraction = incomplete[best], float(fractions[best])
            X_current[best_row] = X_clean[best_row]
            incomplete.remove(best_row)
            cleaned.append(int(best_row))
            trajectory.append(best_fraction)
            snapshot = {"completed": len(cleaned),
                        "cleaned": list(cleaned),
                        "trajectory": [s.hex() for s in trajectory]}
            if ckpt is not None:
                ckpt.maybe_flush(len(cleaned))
            if observer.enabled:
                observer.count("cpclean.candidate_evals", len(fractions))
                observer.count("cpclean.rows_cleaned")
                observer.event("cpclean.round", row=int(best_row),
                               certain_fraction=best_fraction,
                               candidates=len(fractions))
    if observer.enabled:
        observer.event("cpclean.run", k=k, budget=budget,
                       n_cleaned=len(cleaned),
                       initial_fraction=trajectory[0],
                       final_fraction=trajectory[-1],
                       cleaned_rows=list(cleaned))
    return {"cleaned_rows": cleaned, "certain_fraction": trajectory,
            "n_cleaned": len(cleaned)}
