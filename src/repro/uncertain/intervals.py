"""Interval arithmetic — the abstract domain for symbolic uncertainty.

An :class:`IntervalArray` is a pair of equal-shaped arrays ``lo <= hi``.
Operations return the tightest interval enclosure of the true result set
(exact for monotone elementwise ops; the standard four-products rule for
multiplication). This is a sound over-approximation: the true value of
any concrete completion always lies inside the returned interval.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ValidationError


class IntervalArray:
    """Elementwise interval box ``[lo, hi]`` over an ndarray shape."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo, hi):
        self.lo = np.asarray(lo, dtype=float)
        self.hi = np.asarray(hi, dtype=float)
        if self.lo.shape != self.hi.shape:
            raise ValidationError(
                f"interval bounds shapes differ: {self.lo.shape} vs {self.hi.shape}"
            )
        if np.any(self.lo > self.hi + 1e-12):
            raise ValidationError("interval lower bounds exceed upper bounds")

    # ------------------------------------------------------------------
    @classmethod
    def point(cls, values) -> "IntervalArray":
        """Degenerate interval: a known exact value."""
        values = np.asarray(values, dtype=float)
        return cls(values.copy(), values.copy())

    @classmethod
    def from_nan(cls, X, lo_fill, hi_fill) -> "IntervalArray":
        """Lift a NaN-holed matrix: observed cells become points, NaN
        cells the per-column ``[lo_fill[j], hi_fill[j]]`` box."""
        X = np.asarray(X, dtype=float)
        lo = X.copy()
        hi = X.copy()
        nan = np.isnan(X)
        lo[nan] = np.broadcast_to(lo_fill, X.shape)[nan]
        hi[nan] = np.broadcast_to(hi_fill, X.shape)[nan]
        return cls(lo, hi)

    # ------------------------------------------------------------------
    @property
    def shape(self):
        return self.lo.shape

    @property
    def width(self) -> np.ndarray:
        return self.hi - self.lo

    def midpoint(self) -> np.ndarray:
        return (self.lo + self.hi) / 2.0

    def is_point(self) -> np.ndarray:
        return self.hi == self.lo

    def contains(self, values) -> np.ndarray:
        values = np.asarray(values, dtype=float)
        return (self.lo - 1e-9 <= values) & (values <= self.hi + 1e-9)

    def __repr__(self) -> str:
        return f"IntervalArray(shape={self.shape}, max_width={self.width.max():.4g})"

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "IntervalArray":
        other = _lift(other)
        return IntervalArray(self.lo + other.lo, self.hi + other.hi)

    def __sub__(self, other) -> "IntervalArray":
        other = _lift(other)
        return IntervalArray(self.lo - other.hi, self.hi - other.lo)

    def __neg__(self) -> "IntervalArray":
        return IntervalArray(-self.hi, -self.lo)

    def __mul__(self, other) -> "IntervalArray":
        other = _lift(other)
        products = np.stack([
            self.lo * other.lo, self.lo * other.hi,
            self.hi * other.lo, self.hi * other.hi,
        ])
        return IntervalArray(products.min(axis=0), products.max(axis=0))

    __radd__ = __add__
    __rmul__ = __mul__

    def scale(self, scalar: float) -> "IntervalArray":
        """Multiply by a known scalar (tighter than generic __mul__)."""
        if scalar >= 0:
            return IntervalArray(self.lo * scalar, self.hi * scalar)
        return IntervalArray(self.hi * scalar, self.lo * scalar)

    def dot_vector(self, w: np.ndarray) -> "IntervalArray":
        """Row-wise dot product with a *known* weight vector.

        Exact (not just sound): each term is monotone in the feature, so
        the extremes are attained at per-sign corners.
        """
        w = np.asarray(w, dtype=float)
        if self.lo.ndim != 2 or self.lo.shape[1] != w.shape[0]:
            raise ValidationError(
                f"dot_vector shape mismatch: {self.shape} vs {w.shape}"
            )
        pos = np.clip(w, 0, None)
        neg = np.clip(w, None, 0)
        lo = self.lo @ pos + self.hi @ neg
        hi = self.hi @ pos + self.lo @ neg
        return IntervalArray(lo, hi)

    def sum(self, axis=None) -> "IntervalArray":
        return IntervalArray(self.lo.sum(axis=axis), self.hi.sum(axis=axis))

    def mean(self, axis=None) -> "IntervalArray":
        return IntervalArray(self.lo.mean(axis=axis), self.hi.mean(axis=axis))

    def clip(self, low: float, high: float) -> "IntervalArray":
        return IntervalArray(np.clip(self.lo, low, high),
                             np.clip(self.hi, low, high))

    def square(self) -> "IntervalArray":
        """Elementwise square (exact: accounts for intervals crossing 0)."""
        lo_sq = self.lo**2
        hi_sq = self.hi**2
        upper = np.maximum(lo_sq, hi_sq)
        lower = np.where((self.lo <= 0) & (self.hi >= 0), 0.0,
                         np.minimum(lo_sq, hi_sq))
        return IntervalArray(lower, upper)

    def take(self, indices) -> "IntervalArray":
        indices = np.asarray(indices)
        return IntervalArray(self.lo[indices], self.hi[indices])


def _lift(value) -> IntervalArray:
    if isinstance(value, IntervalArray):
        return value
    return IntervalArray.point(value)
