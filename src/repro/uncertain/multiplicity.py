"""Dataset multiplicity: robustness to label errors (Meyer et al., [55]).

The *dataset multiplicity problem*: when up to ``r`` training labels may
be wrong, a whole family of plausible datasets exists; a test prediction
is only trustworthy if it is invariant across the family. Two tools:

- :func:`knn_label_robustness` — for k-NN the exact robustness radius has
  a closed form: flipping one neighbor's label moves the vote difference
  by 2, so a prediction with vote margin ``m`` (winner votes minus
  runner-up votes among the k neighbors) tolerates ``ceil(m/2) - 1``
  adversarial flips and flips at ``ceil(m/2)``.
- :func:`multiplicity_prediction_range` — for arbitrary models, a
  Monte-Carlo *under*-approximation: sample label-flip sets of size ``r``,
  retrain, and report the disagreement per test point. If sampling finds
  any world changing the prediction, non-robustness is proven; agreement
  across all samples is evidence (not proof) of robustness.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ValidationError
from repro.core.rng import ensure_rng
from repro.core.validation import check_X_y
from repro.ml.base import clone
from repro.ml.neighbors import KNeighborsClassifier


def knn_label_robustness(X_train, y_train, X_test, *, k: int = 5) -> dict:
    """Exact per-test-point label-flip robustness radii for k-NN.

    Returns a dict with ``predictions``, ``radii`` (max flips tolerated;
    a prediction with radius >= r is certified robust to any r label
    errors) and ``certified_at(r)`` convenience via the returned arrays.
    """
    model = KNeighborsClassifier(n_neighbors=k).fit(X_train, y_train)
    _, neighbors = model.kneighbors(np.asarray(X_test, dtype=float))
    y_train = np.asarray(y_train)
    predictions, radii = [], []
    for row in neighbors:
        votes = y_train[row]
        values, counts = np.unique(votes, return_counts=True)
        order = np.argsort(-counts, kind="stable")
        winner = values[order[0]]
        runner_up = counts[order[1]] if len(values) > 1 else 0
        margin = int(counts[order[0]] - runner_up)
        # Each flip of a winner-vote to the runner-up closes the gap by 2;
        # the prediction changes once the gap goes non-positive under the
        # k-NN tie-break, i.e. after ceil(margin / 2) flips.
        flips_to_change = (margin + 1) // 2
        predictions.append(winner)
        radii.append(flips_to_change - 1 if margin > 0 else 0)
    return {"predictions": np.array(predictions), "radii": np.array(radii)}


def certified_fraction(radii, r: int) -> float:
    """Fraction of test points certified robust to ``r`` label flips."""
    radii = np.asarray(radii)
    if r < 0:
        raise ValidationError("r must be non-negative")
    return float(np.mean(radii >= r))


def multiplicity_prediction_range(model, X_train, y_train, X_test, *,
                                  radius: int, n_worlds: int = 20,
                                  seed=0) -> dict:
    """Monte-Carlo multiplicity analysis for an arbitrary model.

    Samples ``n_worlds`` datasets with exactly ``radius`` random label
    flips, retrains ``model`` on each, and reports per-test-point
    agreement with the original prediction.

    Returns ``{"base_predictions", "agreement", "robust_mask"}`` where
    ``agreement[i]`` is the fraction of worlds preserving the base
    prediction and ``robust_mask`` marks points preserved in *all*
    sampled worlds.
    """
    X_train, y_train = check_X_y(X_train, y_train)
    X_test = np.asarray(X_test, dtype=float)
    if radius < 0 or radius > len(y_train):
        raise ValidationError(f"radius must be in [0, {len(y_train)}]")
    classes = np.unique(y_train)
    if len(classes) < 2:
        raise ValidationError("need at least two classes")
    rng = ensure_rng(seed)

    base_model = clone(model)
    base_model.fit(X_train, y_train)
    base = base_model.predict(X_test)

    agree = np.zeros(len(X_test))
    for _ in range(n_worlds):
        y_world = y_train.copy()
        flip = rng.choice(len(y_train), size=radius, replace=False)
        for i in flip:
            alternatives = classes[classes != y_world[i]]
            y_world[i] = alternatives[int(rng.integers(0, len(alternatives)))]
        world_model = clone(model)
        world_model.fit(X_train, y_world)
        agree += (world_model.predict(X_test) == base).astype(float)
    agreement = agree / n_worlds
    return {
        "base_predictions": base,
        "agreement": agreement,
        "robust_mask": agreement >= 1.0 - 1e-12,
    }
