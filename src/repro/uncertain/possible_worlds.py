"""Possible-worlds ensembles: the sampling counterpart to symbolic bounds.

Where :mod:`repro.uncertain.zorro` *over*-approximates with intervals,
sampling completions of the missing cells and training one model per
world *under*-approximates the set of possible models — together they
bracket the truth (the comparison run by bench T5). The ensemble also
yields practical consensus predictions: majority vote across worlds, with
per-point disagreement as an uncertainty signal.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ValidationError
from repro.core.rng import ensure_rng
from repro.core.validation import check_array
from repro.ml.base import clone


class PossibleWorldsEnsemble:
    """Train one model per sampled completion of NaN-holed training data.

    Parameters
    ----------
    model:
        Unfitted estimator prototype.
    n_worlds:
        Number of completions to sample.
    sampler:
        ``"uniform"`` draws each missing cell uniformly from its column's
        observed range; ``"empirical"`` draws from the column's observed
        values (hot-deck imputation per world).
    seed:
        RNG seed.
    """

    def __init__(self, model, n_worlds: int = 20, sampler: str = "empirical",
                 seed=None):
        if n_worlds < 1:
            raise ValidationError("n_worlds must be >= 1")
        if sampler not in ("uniform", "empirical"):
            raise ValidationError("sampler must be 'uniform' or 'empirical'")
        self.model = model
        self.n_worlds = n_worlds
        self.sampler = sampler
        self.seed = seed

    def fit(self, X, y) -> "PossibleWorldsEnsemble":
        X = check_array(X, allow_nan=True)
        y = np.asarray(y)
        rng = ensure_rng(self.seed)
        nan = np.isnan(X)
        observed = [X[~nan[:, j], j] for j in range(X.shape[1])]
        for j, column in enumerate(observed):
            if len(column) == 0:
                raise ValidationError(f"column {j} entirely missing")
        self.models_ = []
        for _ in range(self.n_worlds):
            world = X.copy()
            for j in range(X.shape[1]):
                holes = np.flatnonzero(nan[:, j])
                if len(holes) == 0:
                    continue
                if self.sampler == "uniform":
                    lo, hi = observed[j].min(), observed[j].max()
                    world[holes, j] = rng.uniform(lo, hi, size=len(holes))
                else:
                    world[holes, j] = rng.choice(observed[j], size=len(holes))
            fitted = clone(self.model)
            fitted.fit(world, y)
            self.models_.append(fitted)
        return self

    def predict_all(self, X) -> np.ndarray:
        """(n_worlds, n_test) matrix of per-world predictions."""
        if not hasattr(self, "models_"):
            raise ValidationError("fit the ensemble first")
        X = check_array(X)
        return np.stack([m.predict(X) for m in self.models_])

    def predict(self, X) -> np.ndarray:
        """Consensus prediction: per-point majority across worlds."""
        worlds = self.predict_all(X)
        out = []
        for column in worlds.T:
            values, counts = np.unique(column, return_counts=True)
            out.append(values[np.argmax(counts)])
        return np.array(out)

    def disagreement(self, X) -> np.ndarray:
        """Per-point fraction of worlds dissenting from the consensus —
        0 means every possible world (sampled) agrees."""
        worlds = self.predict_all(X)
        consensus = self.predict(X)
        return 1.0 - (worlds == consensus[None, :]).mean(axis=0)

    def prediction_interval(self, X) -> tuple[np.ndarray, np.ndarray]:
        """For regression models: per-point (min, max) over worlds."""
        worlds = self.predict_all(X).astype(float)
        return worlds.min(axis=0), worlds.max(axis=0)
