"""Learning from uncertain and incomplete data (Section 2.3 of the paper).

When cleaning is too costly or impossible, these tools answer "do we even
need to debug?" by bounding what the missing information could do:

- :mod:`~repro.uncertain.intervals` — the interval abstract domain all
  other modules build on.
- :mod:`~repro.uncertain.zorro` — Zorro [93]: symbolic (interval)
  propagation of missing-value uncertainty through training and
  prediction; worst-case loss bounds and prediction ranges.
- :mod:`~repro.uncertain.cpclean` — CPClean [40]: certain predictions for
  k-NN over incomplete data, and greedy cleaning-set selection.
- :mod:`~repro.uncertain.certain_models` — certain / approximately
  certain models for linear regression and SVM [92].
- :mod:`~repro.uncertain.multiplicity` — dataset multiplicity [55]:
  prediction robustness under a label-error budget.
- :mod:`~repro.uncertain.possible_worlds` — Monte-Carlo possible-worlds
  ensembles as the sampling counterpart to the symbolic methods.
"""

from repro.uncertain.certain_models import (
    certain_model_linear_regression,
    certain_model_svm,
)
from repro.uncertain.cpclean import CertainPredictionKNN, cpclean_greedy
from repro.uncertain.intervals import IntervalArray
from repro.uncertain.multiplicity import (
    knn_label_robustness,
    multiplicity_prediction_range,
)
from repro.uncertain.possible_worlds import PossibleWorldsEnsemble
from repro.uncertain.tree_robustness import (
    certify_forest_robustness,
    certify_tree_robustness,
    tree_prediction_set,
)
from repro.uncertain.zorro import (
    SymbolicTable,
    ZorroLinearModel,
    encode_symbolic,
    estimate_worst_case_loss,
)

__all__ = [
    "IntervalArray",
    "SymbolicTable",
    "encode_symbolic",
    "ZorroLinearModel",
    "estimate_worst_case_loss",
    "CertainPredictionKNN",
    "cpclean_greedy",
    "certain_model_linear_regression",
    "certain_model_svm",
    "knn_label_robustness",
    "multiplicity_prediction_range",
    "PossibleWorldsEnsemble",
    "tree_prediction_set",
    "certify_tree_robustness",
    "certify_forest_robustness",
]
