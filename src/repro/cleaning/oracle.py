"""The cleaning oracle: ground-truth repairs with budget accounting.

The tutorial's hands-on sessions hand attendees an "oracle" cleaning
function — specify tuple identifiers, get their clean versions back.
:class:`CleaningOracle` implements that contract against a retained clean
copy of the data, enforcing an optional query budget (the challenge of
Section 3.2 limits how many tuples may be cleaned).
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import BudgetExhaustedError, ValidationError
from repro.dataframe.frame import DataFrame


class CleaningOracle:
    """Repairs rows of a dirty frame from a clean reference copy.

    Parameters
    ----------
    clean_frame:
        Ground-truth data; must contain every row id it will be asked to
        repair.
    columns:
        Columns the oracle repairs; all shared columns by default.
    budget:
        Maximum number of *distinct* rows that may ever be cleaned;
        ``None`` for unlimited. Repeating a row does not re-charge it.
    """

    def __init__(self, clean_frame: DataFrame, *, columns: list[str] | None = None,
                 budget: int | None = None):
        self._clean = clean_frame
        self.columns = columns
        if budget is not None and budget < 0:
            raise ValidationError("budget must be non-negative")
        self.budget = budget
        self._cleaned_ids: set[int] = set()

    @property
    def cleaned_count(self) -> int:
        return len(self._cleaned_ids)

    @property
    def remaining_budget(self) -> int | None:
        if self.budget is None:
            return None
        return self.budget - self.cleaned_count

    def clean(self, dirty_frame: DataFrame, row_ids) -> DataFrame:
        """Return a copy of ``dirty_frame`` with the given rows repaired.

        Raises :class:`BudgetExhaustedError` when the request would exceed
        the budget (no partial application).
        """
        row_ids = [int(r) for r in np.atleast_1d(row_ids)]
        new_ids = set(row_ids) - self._cleaned_ids
        if self.budget is not None and \
                self.cleaned_count + len(new_ids) > self.budget:
            raise BudgetExhaustedError(
                f"cleaning {len(new_ids)} new rows would exceed budget "
                f"{self.budget} (already cleaned {self.cleaned_count})"
            )
        columns = self.columns or [
            c for c in dirty_frame.columns if c in self._clean.columns
        ]
        clean_positions = self._clean.positions_of(row_ids)
        repaired = dirty_frame
        for column in columns:
            clean_values = [self._clean[column].get(int(p)) for p in clean_positions]
            repaired = repaired.set_values(row_ids, column, clean_values)
        self._cleaned_ids |= new_ids
        return repaired
