"""Iterative cleaning over an ML pipeline (the second attendee task).

Section 3.1: "attendees should now extend the code of their iterative
cleaning solution from the previous task to make it work on the ML
pipeline." The loop's moving parts change subtly: scores come from
Datascope (importance of *source* rows via provenance), repairs are
applied to the *source table*, and every round re-executes the pipeline
end to end because one repaired source row can change many derived rows.
"""

from __future__ import annotations

import numpy as np

from repro.cleaning.iterative import CleaningResult
from repro.cleaning.oracle import CleaningOracle
from repro.core.exceptions import ValidationError
from repro.dataframe.frame import DataFrame
from repro.ml.base import clone
from repro.ml.metrics import accuracy_score
from repro.pipelines.datascope import datascope_importance, rank_source_rows
from repro.pipelines.engine import DataPipeline


class PipelineIterativeCleaner:
    """Prioritized source-table cleaning through a pipeline.

    Parameters
    ----------
    pipeline:
        The :class:`DataPipeline` producing training data.
    model:
        Unfitted downstream estimator.
    oracle:
        :class:`CleaningOracle` holding the clean version of the dirty
        source table.
    dirty_source:
        Name of the source the oracle repairs.
    valid_frame:
        Validation data, routed through the same relational plan.
    batch:
        Source rows cleaned per round.
    k:
        KNN-Shapley neighborhood for the Datascope scores.
    """

    def __init__(self, pipeline: DataPipeline, model, oracle: CleaningOracle,
                 *, dirty_source: str, valid_frame: DataFrame,
                 batch: int = 10, k: int = 10, metric=accuracy_score):
        if dirty_source not in pipeline.source_names:
            raise ValidationError(
                f"{dirty_source!r} is not a source of this pipeline"
            )
        self.pipeline = pipeline
        self.model = model
        self.oracle = oracle
        self.dirty_source = dirty_source
        self.valid_frame = valid_frame
        self.batch = batch
        self.k = k
        self.metric = metric

    def run(self, sources: dict[str, DataFrame], *,
            n_rounds: int) -> CleaningResult:
        """Execute the loop; sources are not mutated (repairs happen on
        copies). Returns the validation-quality trajectory."""
        if n_rounds < 1:
            raise ValidationError("n_rounds must be >= 1")
        current = dict(sources)
        result = CleaningResult()
        result.scores.append(self._evaluate(current))

        for _ in range(n_rounds):
            run = self.pipeline.run(current, provenance=True)
            valid_sources = dict(current)
            valid_sources[self.dirty_source] = self.valid_frame
            X_valid, y_valid = run.apply(valid_sources)
            importances = datascope_importance(
                run, source=self.dirty_source,
                X_valid=X_valid, y_valid=y_valid, k=self.k)
            # Skip rows the oracle has already repaired this session.
            candidates = [rid for rid in rank_source_rows(importances)
                          if rid not in
                          {int(r) for r in result.cleaned_ids}]
            targets = candidates[: self.batch]
            if not targets:
                result.scores.append(result.scores[-1])
                result.rounds += 1
                continue
            current[self.dirty_source] = self.oracle.clean(
                current[self.dirty_source], targets)
            result.cleaned_ids.extend(int(t) for t in targets)
            result.scores.append(self._evaluate(current))
            result.rounds += 1
        return result

    def _evaluate(self, sources: dict[str, DataFrame]) -> float:
        run = self.pipeline.run(sources, provenance=False)
        fitted = clone(self.model)
        fitted.fit(run.X, run.y)
        valid_sources = dict(sources)
        valid_sources[self.dirty_source] = self.valid_frame
        X_valid, y_valid = run.apply(valid_sources)
        return float(self.metric(y_valid, fitted.predict(X_valid)))
