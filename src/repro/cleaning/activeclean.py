"""ActiveClean: budgeted cleaning driven by gradients (Krishnan et al., [42]).

ActiveClean interleaves cleaning with training: the model trained on the
partially-clean data points at the dirty records whose *gradients* would
move the parameters most, those get cleaned first, and the model is
updated. Against uniform-random cleaning it converges to the clean-data
model with a fraction of the cleaning effort.

This implementation targets binary logistic regression: per-record
gradient norms under the current parameters form the sampling
distribution (detect-then-sample variant with importance weighting
omitted — we retrain from scratch each step, which is affordable at
tutorial scale and keeps the estimator unbiased).
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ValidationError
from repro.core.rng import ensure_rng
from repro.core.validation import check_X_y
from repro.ml.base import clone
from repro.ml.linear import LogisticRegression
from repro.ml.metrics import accuracy_score


def active_clean(X_dirty, y_dirty, X_clean, y_clean, X_valid, y_valid, *,
                 dirty_mask, budget: int, batch: int = 10, seed=0,
                 model: LogisticRegression | None = None) -> dict:
    """Run the ActiveClean loop (simulated with ground truth).

    Parameters
    ----------
    X_dirty, y_dirty:
        Corrupted training data.
    X_clean, y_clean:
        Ground truth (the simulated cleaning crowd).
    dirty_mask:
        Boolean marker of records that are actually dirty (the detector's
        output; ActiveClean assumes a detector exists).
    budget / batch:
        Total records that may be cleaned, and per-iteration batch size.

    Returns
    -------
    dict with ``accuracy`` trajectory (per iteration), ``cleaned`` index
    order, and the final ``model``.
    """
    X, y = check_X_y(X_dirty, y_dirty)
    X_clean = np.asarray(X_clean, dtype=float)
    y_clean = np.asarray(y_clean)
    dirty = np.asarray(dirty_mask, dtype=bool).copy()
    if budget < 1 or batch < 1:
        raise ValidationError("budget and batch must be >= 1")
    rng = ensure_rng(seed)
    model = model or LogisticRegression(max_iter=100)

    X_current = X.copy()
    y_current = y.copy()
    cleaned: list[int] = []
    accuracies = []

    def evaluate():
        fitted = clone(model)
        fitted.fit(X_current, y_current)
        accuracies.append(
            accuracy_score(y_valid, fitted.predict(np.asarray(X_valid))))
        return fitted

    fitted = evaluate()
    while len(cleaned) < budget and dirty.any():
        # Gradient magnitude of each still-dirty record under current fit.
        proba = fitted.predict_proba(X_current)[:, 1]
        target = (y_current == fitted.classes_[1]).astype(float)
        grad_norm = np.abs(proba - target) * np.linalg.norm(X_current, axis=1)
        candidates = np.flatnonzero(dirty)
        weights = grad_norm[candidates] + 1e-12
        weights = weights / weights.sum()
        take = min(batch, budget - len(cleaned), len(candidates))
        chosen = rng.choice(candidates, size=take, replace=False, p=weights)
        X_current[chosen] = X_clean[chosen]
        y_current[chosen] = y_clean[chosen]
        dirty[chosen] = False
        cleaned.extend(int(c) for c in chosen)
        fitted = evaluate()
    return {"accuracy": accuracies, "cleaned": cleaned, "model": fitted}
