"""Imputation repair for dataframe columns."""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ValidationError
from repro.dataframe.frame import DataFrame
from repro.ml.preprocessing import KNNImputer


def impute_frame(frame: DataFrame, *, strategy: str = "mean",
                 columns: list[str] | None = None,
                 n_neighbors: int = 5) -> DataFrame:
    """Fill nulls in the selected columns.

    Strategies: ``mean``, ``median``, ``mode`` (works for categoricals),
    ``knn`` (numeric columns jointly, nan-euclidean donors).
    """
    columns = columns or frame.columns
    missing = [c for c in columns if c not in frame.columns]
    if missing:
        raise ValidationError(f"no such columns: {missing}")

    if strategy == "knn":
        numeric = [c for c in columns
                   if frame[c].dtype.kind in ("f", "i", "b")]
        if not numeric:
            raise ValidationError("knn imputation needs numeric columns")
        matrix = np.column_stack([
            frame[c].cast(float).to_numpy() for c in numeric
        ])
        filled = KNNImputer(n_neighbors=n_neighbors).fit_transform(matrix)
        out = frame.copy()
        for j, c in enumerate(numeric):
            out[c] = filled[:, j]
        return out

    out = frame.copy()
    for name in columns:
        col = frame[name]
        if col.null_count() == 0:
            continue
        if strategy == "mean":
            if col.dtype.kind not in ("f", "i", "b"):
                continue  # mean undefined for categoricals; skip silently
            fill = col.cast(float).mean()
        elif strategy == "median":
            if col.dtype.kind not in ("f", "i", "b"):
                continue
            values = col.cast(float).to_numpy()
            fill = float(np.nanmedian(values))
        elif strategy == "mode":
            fill = col.mode()
        else:
            raise ValidationError(f"unknown strategy {strategy!r}")
        if fill is None:
            raise ValidationError(f"column {name!r} has no observed values")
        out[name] = col.fill_null(fill)
    return out
