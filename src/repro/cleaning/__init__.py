"""Data repair: oracles, prioritized iterative cleaning, imputation.

Implements the cleaning side of the tutorial's loop — Figure 2's
"provide [impactful tuples] to an oracle cleaning function", the attendee
task of building an *iterative* cleaner, ActiveClean-style budgeted
gradient cleaning (ref [42]), and plain imputation repair.
"""

from repro.cleaning.activeclean import active_clean
from repro.cleaning.imputation import impute_frame
from repro.cleaning.iterative import CleaningResult, IterativeCleaner, make_strategy
from repro.cleaning.oracle import CleaningOracle
from repro.cleaning.pipeline_cleaning import PipelineIterativeCleaner

__all__ = [
    "CleaningOracle",
    "PipelineIterativeCleaner",
    "IterativeCleaner",
    "CleaningResult",
    "make_strategy",
    "impute_frame",
    "active_clean",
]
