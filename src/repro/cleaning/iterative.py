"""Iterative prioritized cleaning — the attendee task of Section 3.1.

Loop: score the (current) training data with an importance method, hand
the lowest-valued rows to the cleaning oracle, retrain, repeat. Because
scores are *recomputed on the partially cleaned data* each round, the
cleaner adapts: once the worst errors are fixed, the ranking surfaces the
next tier. This is what distinguishes the iterative solution from the
one-shot cleaning of Figure 2.
"""

from __future__ import annotations

import contextlib
import inspect

from dataclasses import dataclass, field

import numpy as np

from repro.core.exceptions import ValidationError
from repro.core.rng import ensure_rng
from repro.dataframe.frame import DataFrame
from repro.importance.banzhaf import DataBanzhaf
from repro.importance.base import Utility
from repro.importance.knn_shapley import knn_shapley
from repro.importance.loo import leave_one_out
from repro.importance.shapley_mc import MonteCarloShapley
from repro.ml.base import clone
from repro.ml.metrics import accuracy_score


def make_strategy(name: str, **kwargs):
    """Built-in prioritization strategies.

    - ``"random"`` — uniform random order (the baseline every importance
      method must beat).
    - ``"knn_shapley"`` — exact KNN-Shapley values (kwargs: ``k``).
    - ``"loss"`` — per-example training loss of the current model (a
      cheap self-diagnosis heuristic: high loss first).
    - ``"loo"`` — leave-one-out retraining values; ``n`` trainings per
      round, submitted through the cleaner's runtime.
    - ``"shapley_mc"`` — TMC-Shapley on the current dirty data (kwargs:
      ``n_permutations``, ``truncation_tol``); the most faithful — and
      most expensive — ranking, so a ``process`` runtime pays off here.
    - ``"banzhaf"`` — Data Banzhaf via MSR sampling (kwargs:
      ``n_samples``).

    Each strategy is ``f(model, X, y, X_valid, y_valid, rng) -> scores``
    with lower = cleaned first; strategies that retrain models also
    accept a keyword-only ``runtime`` which the cleaner forwards.
    """
    if name == "random":
        def random_strategy(model, X, y, X_valid, y_valid, rng):
            return rng.permutation(len(X)).astype(float)
        return random_strategy
    if name == "knn_shapley":
        k = kwargs.get("k", 5)

        def knn_strategy(model, X, y, X_valid, y_valid, rng):
            return knn_shapley(X, y, X_valid, y_valid, k=k)
        return knn_strategy
    if name == "loss":
        def loss_strategy(model, X, y, X_valid, y_valid, rng):
            fitted = clone(model)
            fitted.fit(X, y)
            proba = fitted.predict_proba(X)
            class_index = {c: i for i, c in enumerate(fitted.classes_.tolist())}
            cols = np.array([class_index[v] for v in y.tolist()])
            likelihood = proba[np.arange(len(y)), cols]
            return likelihood  # low likelihood of own label => clean first
        return loss_strategy
    if name == "loo":
        def loo_strategy(model, X, y, X_valid, y_valid, rng, *, runtime=None):
            utility = Utility(model, X, y, X_valid, y_valid, runtime=runtime)
            return leave_one_out(utility)
        return loo_strategy
    if name == "shapley_mc":
        n_permutations = kwargs.get("n_permutations", 20)
        truncation_tol = kwargs.get("truncation_tol", 0.02)

        def shapley_strategy(model, X, y, X_valid, y_valid, rng, *,
                             runtime=None):
            utility = Utility(model, X, y, X_valid, y_valid, runtime=runtime)
            # Fresh per-round seed from the loop's stream: each round
            # samples new permutations but stays reproducible end to end.
            estimator = MonteCarloShapley(
                n_permutations=n_permutations, truncation_tol=truncation_tol,
                seed=int(rng.integers(0, 2**31)))
            return estimator.score(utility)
        return shapley_strategy
    if name == "banzhaf":
        n_samples = kwargs.get("n_samples", 100)

        def banzhaf_strategy(model, X, y, X_valid, y_valid, rng, *,
                             runtime=None):
            utility = Utility(model, X, y, X_valid, y_valid, runtime=runtime)
            estimator = DataBanzhaf(n_samples=n_samples,
                                    seed=int(rng.integers(0, 2**31)))
            return estimator.score(utility)
        return banzhaf_strategy
    raise ValidationError(f"unknown strategy {name!r}")


@dataclass
class CleaningResult:
    """Trajectory of an iterative cleaning run."""

    scores: list[float] = field(default_factory=list)   # metric per round
    cleaned_ids: list[int] = field(default_factory=list)
    rounds: int = 0

    @property
    def initial(self) -> float:
        return self.scores[0]

    @property
    def final(self) -> float:
        return self.scores[-1]

    @property
    def improvement(self) -> float:
        return self.final - self.initial


class IterativeCleaner:
    """Budgeted, prioritized, re-scoring cleaning loop.

    Parameters
    ----------
    model:
        Unfitted estimator prototype (retrained every round).
    strategy:
        A strategy callable (see :func:`make_strategy`) or name.
    oracle:
        :class:`repro.cleaning.CleaningOracle` applying the repairs.
    encode:
        ``encode(frame) -> (X, y)`` turning the current dirty frame into
        training arrays (lets the loop run on raw frames or through a
        full pipeline).
    batch:
        Rows cleaned per round.
    metric:
        Evaluation metric; accuracy by default.
    runtime:
        Optional :class:`repro.runtime.Runtime` (or backend name)
        forwarded to strategies that retrain models (``"loo"``,
        ``"shapley_mc"``, ``"banzhaf"``, and any custom strategy whose
        signature accepts a ``runtime`` keyword).
    observer:
        Optional :class:`repro.observe.Observer`: spans the whole run
        (``cleaning.run``) and each round (``cleaning.round``), counts
        rows cleaned, and logs per-round provenance events (round index,
        cleaned row ids, post-cleaning score).
    checkpoint / checkpoint_every / resume_from:
        Durable per-round snapshots (scores, cleaned row ids, RNG
        state); a killed session resumed with ``resume_from=`` replays
        the recorded repairs through the oracle (no re-scoring, no
        retraining) and continues from the next round with an identical
        trajectory. Requires an integer ``seed``. ``resume_from`` may
        also carry *more* ``n_rounds`` than the original run — the
        trajectory prefix is shared.
    """

    def __init__(self, model, strategy, oracle, *, encode, batch: int = 10,
                 metric=accuracy_score, seed=0, runtime=None, observer=None,
                 checkpoint=None, checkpoint_every: int = 1,
                 resume_from=None):
        from repro.importance.base import require_checkpoint_seed
        from repro.observe.observer import resolve_observer
        from repro.runtime.runtime import Runtime, resolve_runtime

        self.model = model
        self.strategy = make_strategy(strategy) if isinstance(strategy, str) \
            else strategy
        self.oracle = oracle
        self.encode = encode
        self.batch = batch
        self.metric = metric
        self.seed = seed
        self.runtime = resolve_runtime(runtime)
        self._owns_runtime = (self.runtime is not None
                              and not isinstance(runtime, Runtime))
        self.observer = resolve_observer(observer)
        self.checkpoint = checkpoint
        self.checkpoint_every = checkpoint_every
        self.resume_from = resume_from
        if checkpoint is not None or resume_from is not None:
            require_checkpoint_seed(seed, "IterativeCleaner")
        parameters = inspect.signature(self.strategy).parameters
        self._strategy_takes_runtime = "runtime" in parameters

    def close(self) -> None:
        """Release the worker pool of a runtime this cleaner built for
        itself (``runtime="thread"`` / ``"process"``); a caller-provided
        :class:`~repro.runtime.Runtime` is left to its owner."""
        if self._owns_runtime and self.runtime is not None:
            self.runtime.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def _checkpointer(self, X, y, X_valid, y_valid):
        """Build the per-run :class:`~repro.runtime.LoopCheckpointer`
        (``None`` when checkpointing is off). The identity fingerprint
        covers everything that shapes the trajectory — strategy, batch,
        seed, model, data, metric — but *not* ``n_rounds`` (a prefix
        property: resuming with more rounds extends the same
        trajectory) nor the runtime backend."""
        if self.checkpoint is None and self.resume_from is None:
            return None
        from repro.runtime.cache import fingerprint
        from repro.runtime.checkpoint import LoopCheckpointer

        identity = fingerprint(
            "checkpoint.cleaning.iterative",
            getattr(self.strategy, "__name__", "custom"), self.batch,
            int(self.seed), self.model, X, y, np.asarray(X_valid),
            np.asarray(y_valid), self.metric)
        return LoopCheckpointer(self.checkpoint, kind="cleaning.iterative",
                                identity=identity,
                                every=self.checkpoint_every,
                                observer=self.observer,
                                resume_from=self.resume_from)

    def run(self, dirty_frame, X_valid, y_valid, *,
            n_rounds: int, reader: dict | None = None) -> CleaningResult:
        """Execute the loop; returns the quality trajectory.

        ``dirty_frame`` is a :class:`~repro.dataframe.DataFrame` — or a
        spilled one: a :class:`repro.data.ShardedDataset` (or its path)
        written by :meth:`~repro.dataframe.DataFrame.to_shards` /
        :func:`repro.data.frame_to_shards`. A spilled frame is streamed
        back in through the fault-tolerant reading service (``reader=``
        takes :class:`~repro.data.ShardReader` kwargs); since the spill
        round trip is bitwise lossless, the cleaning trajectory —
        scores, cleaned row ids, checkpoint identity — is hex-identical
        to the in-memory run, with or without reader faults on the way.
        """
        if n_rounds < 1:
            raise ValidationError("n_rounds must be >= 1")
        if not isinstance(dirty_frame, DataFrame):
            from repro.data.frame_io import frame_from_shards
            dirty_frame = frame_from_shards(dirty_frame,
                                            observer=self.observer,
                                            **(reader or {}))
        elif reader is not None:
            raise ValidationError(
                "reader= only applies when dirty_frame is a sharded "
                "dataset (path or ShardedDataset)")
        rng = ensure_rng(self.seed)
        obs = self.observer
        result = CleaningResult()
        current = dirty_frame
        X, y = self.encode(current)

        ckpt = self._checkpointer(X, y, X_valid, y_valid)
        cleaned_rounds: list[list[int]] = []
        if ckpt is not None:
            payload = ckpt.resume()
            if payload is not None:
                # Replay the recorded repairs through the oracle — no
                # strategy re-scoring, no retraining — and put the RNG
                # exactly where the interrupted run left it.
                result.scores.extend(
                    float.fromhex(s) for s in payload["scores"])
                for ids in payload["cleaned"]:
                    row_ids = np.asarray(ids)
                    current = self.oracle.clean(current, row_ids)
                    result.cleaned_ids.extend(int(r) for r in ids)
                    cleaned_rounds.append([int(r) for r in ids])
                X, y = self.encode(current)
                result.rounds = int(payload["completed"])
                rng.bit_generator.state = payload["rng_state"]
                ckpt.record_skipped(completed=result.rounds, total=n_rounds,
                                    method="cleaning.iterative")
        if not result.scores:
            result.scores.append(self._evaluate(X, y, X_valid, y_valid))

        # Snapshot dict rebuilt (and swapped atomically) at every round
        # boundary, so a signal flush mid-round persists the last
        # *consistent* state — never a half-updated round.
        snapshot = {"completed": result.rounds,
                    "scores": [s.hex() for s in result.scores],
                    "cleaned": [list(ids) for ids in cleaned_rounds],
                    "rng_state": rng.bit_generator.state}
        guard = ckpt.armed(lambda: snapshot) if ckpt is not None \
            else contextlib.nullcontext()

        strategy_name = getattr(self.strategy, "__name__", "custom")
        cache = self.runtime.cache if self.runtime is not None else None
        strategy_kwargs = {"runtime": self.runtime} \
            if self._strategy_takes_runtime else {}
        with obs.span("cleaning.run", strategy=strategy_name,
                      cache=cache, batch=self.batch, rounds=n_rounds), guard:
            for round_index in range(result.rounds, n_rounds):
                with obs.span("cleaning.round", round=round_index):
                    scores = np.asarray(
                        self.strategy(self.model, X, y, X_valid, y_valid, rng,
                                      **strategy_kwargs),
                        dtype=float,
                    )
                    order = np.lexsort((np.arange(len(scores)), scores))
                    target_positions = order[: self.batch]
                    row_ids = current.row_ids[target_positions]
                    current = self.oracle.clean(current, row_ids)
                    result.cleaned_ids.extend(int(r) for r in row_ids)
                    X, y = self.encode(current)
                    result.scores.append(
                        self._evaluate(X, y, X_valid, y_valid))
                    result.rounds += 1
                    cleaned_rounds.append([int(r) for r in row_ids])
                    snapshot = {"completed": result.rounds,
                                "scores": [s.hex() for s in result.scores],
                                "cleaned": [list(ids)
                                            for ids in cleaned_rounds],
                                "rng_state": rng.bit_generator.state}
                    if ckpt is not None:
                        ckpt.maybe_flush(result.rounds)
                if obs.enabled:
                    obs.count("cleaning.rows_cleaned", len(row_ids))
                    obs.event("cleaning.round", round=round_index,
                              strategy=strategy_name,
                              cleaned_row_ids=[int(r) for r in row_ids],
                              score=result.scores[-1])
        if obs.enabled:
            obs.event("cleaning.run", strategy=strategy_name,
                      seed=self.seed, batch=self.batch, rounds=result.rounds,
                      initial=result.initial, final=result.final,
                      improvement=result.improvement,
                      cleaned_row_ids=list(result.cleaned_ids))
        return result

    def _evaluate(self, X, y, X_valid, y_valid) -> float:
        fitted = clone(self.model)
        fitted.fit(X, y)
        return float(self.metric(y_valid, fitted.predict(X_valid)))
