"""The fault-tolerant prefetching reading service.

:class:`ShardReader` streams a :class:`~repro.data.ShardedDataset` shard
by shard, in manifest order, while a pool of prefetch worker threads
reads ahead — modeled on the torchdata ``dataloader2`` reading-service
protocol: shards are assigned **round-robin** to workers (worker ``w``
owns every shard with ``index % workers == w``), each worker feeds a
**bounded queue** (backpressure: a slow consumer stalls the readers, it
never balloons memory), and the service supports ``pause()`` /
``resume()`` plus ``snapshot()`` / ``restore`` of the read position.

Robustness is the contract, not an afterthought:

- Per-shard read failures (IO errors, checksum mismatches) are retried
  with the same :class:`~repro.runtime.FaultPolicy` vocabulary the
  executors speak — bounded retries, deterministic linear backoff.
- A **crashed worker thread** is detected by the consumer, counted, and
  replaced by a fresh worker assigned exactly the shards the dead one
  had not delivered — deterministic resubmission, so the stream's
  content is identical with or without the crash.
- A worker **stuck** past the policy's per-shard timeout is abandoned
  (threads cannot be interrupted) and its lane resubmitted the same way.
- A shard that stays **corrupt** after retries follows the
  ``on_corrupt`` policy: ``"raise"`` propagates a
  :class:`~repro.data.ShardCorruptionError`; ``"quarantine"`` first
  tries to heal the primary from the dataset's ``mirror/`` replica
  (stream content unchanged — bit-identical), else moves the damaged
  file into ``quarantine/`` and skips that shard, recording it in
  :attr:`ShardReader.quarantined`.

Every incident feeds ``repro.observe``: ``data.*`` counters
(``read_retries`` / ``worker_crashes`` / ``read_timeouts`` /
``quarantined_shards`` / ``shards_healed``) plus per-incident
``reader.fault`` and per-snapshot ``reader.snapshot`` runlog events.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.exceptions import ValidationError
from repro.data.shards import ShardCorruptionError, resolve_dataset
from repro.observe.observer import resolve_observer
from repro.runtime.faults import TaskError, resolve_fault_policy

__all__ = ["ShardBatch", "ShardReader", "read_arrays"]

#: Corrupt-shard policies: propagate, or quarantine (heal from mirror
#: when possible, else skip the shard and record it).
CORRUPT_MODES = ("raise", "quarantine")

#: Seconds between consumer liveness polls while waiting on a lane.
_POLL = 0.05

#: Snapshot payload version (see :meth:`ShardReader.snapshot`).
READER_SNAPSHOT_SCHEMA = 1


@dataclass(frozen=True)
class ShardBatch:
    """One delivered shard: global index, row offset, decoded arrays."""

    index: int
    offset: int
    rows: int
    arrays: dict

    def __getitem__(self, name: str) -> np.ndarray:
        return self.arrays[name]


@dataclass
class _Lane:
    """One worker slot: its thread, bounded queue, and remaining work."""

    worker: int
    pending: list[int]
    queue: "queue.Queue" = field(default_factory=queue.Queue)
    thread: threading.Thread | None = None


class ShardReader:
    """Multi-worker prefetch iterator over a sharded dataset.

    Parameters
    ----------
    dataset:
        :class:`~repro.data.ShardedDataset` or dataset directory path.
    workers:
        Prefetch worker threads; shards are assigned round-robin by
        ``index % workers``, so the assignment (and therefore recovery)
        is deterministic for a given worker count.
    prefetch:
        Bounded queue depth *per worker* — at most ``workers *
        (prefetch + 1)`` shards are resident at once (one may be
        in-flight inside each worker), whatever the dataset size.
    faults:
        :class:`~repro.runtime.FaultPolicy` (or dict / ``None``)
        governing per-shard read retries, backoff, the per-shard
        timeout, and ``max_worker_crashes`` — the bound on worker
        respawns per iteration pass.
    on_corrupt:
        ``"raise"`` (default) or ``"quarantine"`` — see the module
        docstring.
    start:
        First shard index to deliver (the snapshot-restore entry point;
        see :meth:`from_snapshot`).
    observer:
        Optional :class:`repro.observe.Observer`.
    load_fn:
        Read-path override ``load_fn(dataset, index) -> arrays dict``;
        defaults to checksum-verified :meth:`ShardedDataset.load_shard`.
        The fault-injection seam the robustness suite drives.

    Iterating yields :class:`ShardBatch` in manifest order regardless of
    worker count or fault history. The reader is single-pass: iterate
    once, then build a fresh reader (or restore from a snapshot).
    """

    def __init__(self, dataset, *, workers: int = 2, prefetch: int = 2,
                 faults=None, on_corrupt: str = "raise", start: int = 0,
                 observer=None, load_fn=None):
        self.dataset = resolve_dataset(dataset, observer=observer)
        if workers < 1:
            raise ValidationError("workers must be >= 1")
        if prefetch < 1:
            raise ValidationError("prefetch must be >= 1")
        if on_corrupt not in CORRUPT_MODES:
            raise ValidationError(
                f"on_corrupt must be one of {CORRUPT_MODES} — got "
                f"{on_corrupt!r}")
        if not 0 <= start <= self.dataset.n_shards:
            raise ValidationError(
                f"start shard {start} out of range "
                f"[0, {self.dataset.n_shards}]")
        self.workers = workers
        self.prefetch = prefetch
        self.faults = resolve_fault_policy(faults)
        self.on_corrupt = on_corrupt
        self.observer = resolve_observer(observer)
        self._load_fn = load_fn
        self._position = start
        self.quarantined: list[int] = []
        self._lanes: list[_Lane] = []
        self._started = False
        self._stop = threading.Event()
        self._paused = threading.Event()
        self._crashes = 0
        self._start_time = time.monotonic()

    # -- snapshot / restore ------------------------------------------------
    def snapshot(self) -> dict:
        """Serializable read position: the next shard to deliver plus the
        quarantine record. Feed the dict into a checkpoint payload and
        rebuild with :meth:`from_snapshot` to resume the stream exactly
        where it stopped."""
        state = {"schema": READER_SNAPSHOT_SCHEMA,
                 "next_index": int(self._position),
                 "quarantined": [int(i) for i in self.quarantined]}
        if self.observer.enabled:
            self.observer.event("reader.snapshot",
                                next_index=state["next_index"],
                                quarantined=len(state["quarantined"]),
                                n_shards=self.dataset.n_shards)
        return state

    @classmethod
    def from_snapshot(cls, dataset, state: dict, **kwargs) -> "ShardReader":
        """Rebuild a reader positioned at a :meth:`snapshot`'s state."""
        if not isinstance(state, dict) \
                or state.get("schema") != READER_SNAPSHOT_SCHEMA:
            raise ValidationError(
                "not a reader snapshot (missing/unknown schema); pass the "
                "dict ShardReader.snapshot() returned")
        reader = cls(dataset, start=int(state["next_index"]), **kwargs)
        reader.quarantined = [int(i) for i in state.get("quarantined", [])]
        return reader

    # -- pause / resume ----------------------------------------------------
    def pause(self) -> None:
        """Suspend prefetching: workers finish their in-flight shard and
        then block before the next read (the torchdata reading-service
        pause verb — used around phase boundaries and snapshots)."""
        self._paused.set()

    def resume(self) -> None:
        """Undo :meth:`pause`; workers continue their shard lists."""
        self._paused.clear()

    @property
    def paused(self) -> bool:
        return self._paused.is_set()

    # -- worker machinery --------------------------------------------------
    def _load(self, index: int) -> dict:
        if self._load_fn is not None:
            return self._load_fn(self.dataset, index)
        return self.dataset.load_shard(index, observer=self.observer)

    def _lane_pending(self, worker: int, start: int) -> list[int]:
        return [index for index in range(start, self.dataset.n_shards)
                if index % self.workers == worker]

    def _spawn(self, lane: _Lane) -> None:
        lane.queue = queue.Queue(maxsize=self.prefetch)
        lane.thread = threading.Thread(
            target=self._worker_loop, args=(lane,),
            name=f"shard-reader-{lane.worker}", daemon=True)
        lane.thread.start()

    def _worker_loop(self, lane: _Lane) -> None:
        # NOTE: only Exception is caught below. A BaseException — the
        # crash-injection seam, or a real interpreter-level failure —
        # kills the thread, which is exactly the "worker crash" the
        # consumer detects and recovers from.
        policy = self.faults
        for index in lane.pending:
            while self._paused.is_set() and not self._stop.is_set():
                time.sleep(_POLL)
            if self._stop.is_set():
                return
            attempt = 0
            while True:
                try:
                    arrays = self._load(index)
                except Exception as error:
                    attempt += 1
                    if attempt > policy.retries:
                        kind = "corrupt" \
                            if isinstance(error, ShardCorruptionError) \
                            else "error"
                        self._put(lane, (kind, index, error))
                        break
                    self._record_fault("retry", index, attempt, error)
                    if policy.backoff > 0:
                        time.sleep(policy.backoff * attempt)
                else:
                    self._put(lane, ("ok", index, arrays))
                    break
        self._put(lane, ("done", lane.worker, None))

    def _put(self, lane: _Lane, item) -> None:
        while not self._stop.is_set():
            try:
                lane.queue.put(item, timeout=_POLL)
                return
            except queue.Full:
                continue

    def _record_fault(self, kind: str, index: int, attempt: int,
                      error) -> None:
        if not self.observer.enabled:
            return
        counter = {"retry": "data.read_retries",
                   "worker_crash": "data.worker_crashes",
                   "timeout": "data.read_timeouts",
                   "quarantine": "data.quarantined_shards",
                   "corrupt_healed": "data.shards_healed"}[kind]
        self.observer.count(counter)
        self.observer.event("reader.fault", fault=kind, shard=index,
                            attempt=attempt, error=repr(error),
                            elapsed=time.monotonic() - self._start_time)

    # -- consumer ----------------------------------------------------------
    def start(self) -> None:
        """Spawn the worker pool (implicit on first iteration)."""
        if self._started:
            return
        self._started = True
        self._start_time = time.monotonic()
        self._lanes = []
        for worker in range(self.workers):
            lane = _Lane(worker=worker,
                         pending=self._lane_pending(worker, self._position))
            self._spawn(lane)
            self._lanes.append(lane)

    def _recover_lane(self, lane: _Lane, from_index: int, kind: str,
                      error) -> None:
        """Replace a dead/stuck worker; resubmit only its undelivered
        shards. Bounded by the policy's ``max_worker_crashes``."""
        self._crashes += 1
        self._record_fault(kind, from_index, self._crashes, error)
        if self._crashes > self.faults.max_worker_crashes:
            self.close()
            raise TaskError(stage="data.read", chunk_index=from_index,
                            backend="reader", attempts=self._crashes,
                            cause=error)
        lane.pending = [index for index in lane.pending
                        if index >= from_index]
        self._spawn(lane)

    def __iter__(self):
        self.start()
        n_shards = self.dataset.n_shards
        offset = self.dataset.row_offset(self._position)
        index = self._position
        while index < n_shards:
            lane = self._lanes[index % self.workers]
            item = self._next_item(lane, index)
            kind, _, payload = item
            if kind == "ok":
                rows = self.dataset.shards[index].rows
                batch = ShardBatch(index=index, offset=offset, rows=rows,
                                   arrays=payload)
                self._position = index + 1
                offset += rows
                index += 1
                yield batch
            elif kind == "corrupt" and self.on_corrupt == "quarantine":
                self._handle_quarantine(index, payload)
                if index not in self.quarantined:
                    # healed from the mirror: deliver the shard inline
                    rows = self.dataset.shards[index].rows
                    batch = ShardBatch(
                        index=index, offset=offset, rows=rows,
                        arrays=self.dataset.load_shard(
                            index, observer=self.observer))
                    self._position = index + 1
                    offset += rows
                    index += 1
                    yield batch
                else:
                    offset += self.dataset.shards[index].rows
                    self._position = index + 1
                    index += 1
            else:  # "corrupt" under raise-policy, or a hard read error
                self.close()
                if isinstance(payload, ShardCorruptionError):
                    raise payload
                raise TaskError(stage="data.read", chunk_index=index,
                                backend="reader",
                                attempts=self.faults.retries + 1,
                                cause=payload)
        self.close()

    def _next_item(self, lane: _Lane, index: int):
        """Wait for shard ``index`` on its lane, policing liveness: a
        dead worker thread or one stuck past the policy timeout gets its
        lane resubmitted (deterministically) and the wait continues."""
        waited = 0.0
        while True:
            if self._stop.is_set():
                raise ValidationError("reader is closed")
            try:
                item = lane.queue.get(timeout=_POLL)
            except queue.Empty:
                if self._paused.is_set():
                    waited = 0.0  # a paused stream is not a stuck stream
                    continue
                waited += _POLL
                if lane.thread is not None and not lane.thread.is_alive():
                    self._recover_lane(
                        lane, index, "worker_crash",
                        RuntimeError(f"reader worker {lane.worker} died "
                                     f"before delivering shard {index}"))
                    waited = 0.0
                    continue
                if self.faults.timeout is not None \
                        and waited >= self.faults.timeout:
                    self._recover_lane(
                        lane, index, "timeout",
                        TimeoutError(f"shard {index} exceeded the "
                                     f"{self.faults.timeout}s read timeout"))
                    waited = 0.0
                continue
            kind = item[0]
            if kind == "done":
                # The lane finished its list without delivering `index`:
                # only possible after a crash consumed the tail marker's
                # predecessor — treat like a crash and resubmit.
                self._recover_lane(
                    lane, index, "worker_crash",
                    RuntimeError(f"reader worker {lane.worker} finished "
                                 f"without delivering shard {index}"))
                waited = 0.0
                continue
            if item[1] != index:
                # Stale delivery from an abandoned (timed-out) thread
                # whose replacement already re-read this shard.
                continue
            return item

    def _handle_quarantine(self, index: int, error) -> None:
        if self.dataset.heal_from_mirror(index):
            self._record_fault("corrupt_healed", index, 0, error)
            return
        self.dataset.quarantine_shard(index)
        self.quarantined.append(index)
        self._record_fault("quarantine", index, 0, error)

    def read_all(self) -> dict[str, np.ndarray]:
        """Stream every remaining shard and concatenate per array name.

        The concatenation is bit-identical to the arrays the dataset was
        written from (quarantined shards excepted — under the
        ``"raise"`` policy it is *always* bit-identical or an error).
        """
        parts: dict[str, list] = {name: []
                                  for name in self.dataset.array_names}
        for batch in self:
            for name in parts:
                parts[name].append(batch.arrays[name])
        out: dict[str, np.ndarray] = {}
        for name, chunks in parts.items():
            if not chunks:
                raise ValidationError(
                    "no shards were delivered (all quarantined?)")
            out[name] = np.concatenate(chunks)
        return out

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Stop the workers and drain the queues. Idempotent."""
        self._stop.set()
        for lane in self._lanes:
            while True:
                try:
                    lane.queue.get_nowait()
                except queue.Empty:
                    break
        for lane in self._lanes:
            if lane.thread is not None:
                lane.thread.join(timeout=1.0)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def __repr__(self) -> str:
        return (f"ShardReader({str(self.dataset.path)!r}, "
                f"workers={self.workers}, prefetch={self.prefetch}, "
                f"position={self._position}/{self.dataset.n_shards})")


def read_arrays(dataset, *, observer=None, **reader_kwargs
                ) -> dict[str, np.ndarray]:
    """Load a sharded dataset back into memory through the reading
    service; returns ``{array_name: concatenated array}``.

    This is the out-of-core loops' assembly path: faults permitted by
    the reader's policy (worker crashes, retried reads, mirror-healed
    corruption) never change a byte of the result.
    """
    dataset = resolve_dataset(dataset, observer=observer)
    with ShardReader(dataset, observer=observer, **reader_kwargs) as reader:
        return reader.read_all()
