"""Spill :class:`~repro.dataframe.DataFrame` objects to shards and back.

A frame spills as one array triple per column — backing values, null
mask — plus the row-id vector, so the round trip is *bitwise* lossless:
dtypes, null masks, fillers under the mask, and the provenance-bearing
``row_ids`` all survive. This is what lets the iterative-cleaning loop
(and any other frame consumer) run on data that lives on disk: the
dirty table is spilled once, streamed back through the fault-tolerant
reading service, and every downstream score is hex-identical to the
in-memory run.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ValidationError
from repro.data.reader import read_arrays
from repro.data.shards import resolve_dataset, write_shards

__all__ = ["frame_from_shards", "frame_to_shards"]

_ROW_IDS = "__row_ids__"
_VALUES = "values::"
_MASK = "mask::"


def frame_to_shards(frame, path, *, rows_per_shard: int,
                    mirror: bool = False, observer=None):
    """Write a frame as a sharded dataset; returns the dataset.

    Column order is recorded in the manifest ``meta`` so the round trip
    restores it exactly.
    """
    arrays: dict[str, np.ndarray] = {_ROW_IDS: frame.row_ids}
    for name in frame.columns:
        column = frame[name]
        arrays[f"{_VALUES}{name}"] = column.values
        arrays[f"{_MASK}{name}"] = column.mask
    return write_shards(path, arrays, rows_per_shard=rows_per_shard,
                        mirror=mirror, observer=observer,
                        meta={"kind": "frame",
                              "columns": list(frame.columns)})


def frame_from_shards(dataset, *, observer=None, **reader_kwargs):
    """Load a spilled frame back through the reading service.

    Accepts everything :class:`~repro.data.ShardReader` does
    (``workers``, ``prefetch``, ``faults``, ``on_corrupt`` ...). The
    rebuilt frame is bitwise identical to the spilled one: same column
    order, dtypes, masks, and ``row_ids``.
    """
    from repro.dataframe.column import Column
    from repro.dataframe.frame import DataFrame

    dataset = resolve_dataset(dataset, observer=observer)
    if dataset.meta.get("kind") != "frame":
        raise ValidationError(
            f"{dataset.path} was not written by frame_to_shards "
            f"(meta.kind={dataset.meta.get('kind')!r}); use read_arrays "
            "for plain array datasets")
    arrays = read_arrays(dataset, observer=observer, **reader_kwargs)
    columns: dict[str, Column] = {}
    for name in dataset.meta["columns"]:
        # Rebuild around the exact spilled arrays (masked slots already
        # hold canonical fillers), bypassing value re-coercion so the
        # backing buffers stay bitwise identical.
        column = Column.__new__(Column)
        column.values = arrays[f"{_VALUES}{name}"]
        column.mask = np.asarray(arrays[f"{_MASK}{name}"], dtype=bool)
        columns[name] = column
    return DataFrame._from_columns(columns, arrays[_ROW_IDS])
