"""Streaming transforms over sharded datasets — error injection at scale.

:func:`transform_shards` is the out-of-core mapping primitive: stream an
input dataset through the fault-tolerant reading service, apply a pure
per-shard function, and publish the results as a new sharded dataset —
one shard resident at a time, with :class:`~repro.runtime.LoopCheckpointer`
wiring so a SIGKILLed pass resumes where it stopped (the checkpoint
payload carries the :meth:`~repro.data.ShardReader.snapshot` read
position) and produces an identical output dataset.

Determinism is per-shard: randomness comes from per-shard spawned
``SeedSequence`` streams, so the transform of shard ``k`` depends only
on (seed, ``k``, shard ``k``'s content) — never on worker count, read
order, crash history, or where a resume cut the pass.

On top of it, the sharded counterparts of the
:mod:`repro.errors` vector injectors:

- :func:`inject_label_errors_sharded` — flip a fraction of labels per
  shard (the Figure-2 noise model, out of core).
- :func:`inject_missing_sharded` — NaN-out a fraction of feature cells
  per shard.

Both return the output dataset plus ground-truth global row/cell
positions, the same contract their in-memory counterparts have.
"""

from __future__ import annotations

import contextlib
from pathlib import Path

import numpy as np

from repro.core.exceptions import ValidationError
from repro.core.validation import check_fraction
from repro.data.reader import ShardReader
from repro.data.shards import (
    PARTIAL_MANIFEST_NAME,
    ShardWriter,
    resolve_dataset,
)
from repro.observe.observer import resolve_observer
from repro.runtime.cache import fingerprint
from repro.runtime.checkpoint import LoopCheckpointer

__all__ = [
    "inject_label_errors_sharded",
    "inject_missing_sharded",
    "transform_shards",
]


def transform_shards(dataset, out_path, fn, *, seed=None, params=None,
                     mirror: bool = False, meta: dict | None = None,
                     checkpoint=None, checkpoint_every: int = 1,
                     resume_from=None, observer=None, workers: int = 2,
                     prefetch: int = 2, faults=None,
                     on_corrupt: str = "raise"):
    """Map ``fn`` over every shard of ``dataset`` into a new dataset.

    Parameters
    ----------
    fn:
        ``fn(index, arrays, rng) -> (out_arrays, side)`` — a pure
        function of the shard index, its decoded arrays, and the
        shard's own spawned :class:`numpy.random.Generator` (``None``
        when ``seed`` is). ``side`` is a JSON-serializable per-shard
        record (e.g. which rows were corrupted) collected into the
        returned side list; use ``None`` when there is nothing to report.
    seed:
        Root seed; shard ``k`` transforms under spawned stream ``k``, so
        results are independent of worker count and resume points.
    params:
        Transform parameters folded into the checkpoint identity
        fingerprint (closures all share a qualified name — without
        this, resuming an ``0.1``-fraction pass from a ``0.2`` store
        would go undetected).
    checkpoint / checkpoint_every / resume_from:
        Durable progress via :class:`~repro.runtime.LoopCheckpointer`:
        the payload carries the reader snapshot and per-shard sides. A
        killed pass resumed with ``resume_from=`` (and the same
        ``out_path``) continues after the last *published* output shard
        — the writer's journal is the source of truth, so a crash
        between publish and checkpoint flush never duplicates a shard —
        and finishes with a dataset identical to an uninterrupted run.
    workers / prefetch / faults / on_corrupt:
        Reading-service knobs (see :class:`~repro.data.ShardReader`).

    Returns ``(out_dataset, sides)`` where ``sides[k]`` is shard ``k``'s
    side record.
    """
    dataset = resolve_dataset(dataset, observer=observer)
    observer = resolve_observer(observer)
    out_path = Path(out_path)
    streams = (np.random.SeedSequence(seed).spawn(dataset.n_shards)
               if seed is not None else [None] * dataset.n_shards)

    ckpt = None
    if checkpoint is not None or resume_from is not None:
        identity = fingerprint(
            "checkpoint.data.transform",
            getattr(fn, "__name__", "custom"), params,
            None if seed is None else int(seed),
            [info.sha256 for info in dataset.shards])
        ckpt = LoopCheckpointer(checkpoint, kind="data.transform",
                                identity=identity, every=checkpoint_every,
                                observer=observer, resume_from=resume_from)

    # The output writer's journal decides where to continue: every
    # journaled shard was published atomically and checksummed, so
    # "resume after writer.n_shards" can neither tear nor duplicate.
    if (out_path / PARTIAL_MANIFEST_NAME).exists():
        writer = ShardWriter.resume(out_path, mirror=mirror,
                                    observer=observer)
    else:
        writer = ShardWriter(out_path, mirror=mirror, observer=observer)
    completed = writer.n_shards

    sides: list = []
    payload = ckpt.resume() if ckpt is not None else None
    if payload is not None:
        sides = list(payload["sides"])[:completed]
    # Shards published before the last checkpoint flush landed (or when
    # no checkpoint is in play at all): rebuild their side records by
    # replaying the deterministic transform, without writing anything.
    for index in range(len(sides), completed):
        arrays = dataset.load_shard(index, observer=observer)
        rng = (np.random.default_rng(streams[index])
               if streams[index] is not None else None)
        _, side = fn(index, arrays, rng)
        sides.append(side)
    if payload is not None:
        ckpt.record_skipped(completed=completed, total=dataset.n_shards,
                            method="data.transform")

    reader = ShardReader(dataset, workers=workers, prefetch=prefetch,
                         faults=faults, on_corrupt=on_corrupt,
                         start=completed, observer=observer)
    snapshot = {"completed": completed, "reader": reader.snapshot(),
                "sides": list(sides)}
    guard = ckpt.armed(lambda: snapshot) if ckpt is not None \
        else contextlib.nullcontext()
    with guard, reader:
        for batch in reader:
            rng = (np.random.default_rng(streams[batch.index])
                   if streams[batch.index] is not None else None)
            out_arrays, side = fn(batch.index, batch.arrays, rng)
            writer.append(out_arrays)
            sides.append(side)
            completed = batch.index + 1
            snapshot = {"completed": completed,
                        "reader": reader.snapshot(),
                        "sides": list(sides)}
            if ckpt is not None:
                ckpt.maybe_flush(completed)
    out_meta = dict(meta or {})
    out_meta.setdefault("transform", getattr(fn, "__name__", "custom"))
    out_dataset = writer.finalize(out_meta)
    if ckpt is not None:
        ckpt.flush()
    return out_dataset, sides


def _collect_classes(dataset, label: str) -> np.ndarray:
    """One streaming pass over the label array to learn the class set
    (flip targets must be drawn from the *global* classes, which no
    single shard is guaranteed to contain)."""
    classes: set = set()
    for index in range(dataset.n_shards):
        arrays = dataset.load_shard(index)
        if label not in arrays:
            raise ValidationError(
                f"dataset has no array named {label!r}; "
                f"have {dataset.array_names}")
        classes.update(np.unique(arrays[label]).tolist())
    if len(classes) < 2:
        raise ValidationError("need at least two classes to flip labels")
    return np.array(sorted(classes))


def inject_label_errors_sharded(dataset, out_path, *, label: str = "y",
                                fraction: float = 0.1, seed=0,
                                classes=None, **transform_kwargs):
    """Flip a per-shard fraction of labels, out of core.

    Each shard ``k`` flips ``round(fraction * rows_k)`` uniformly chosen
    rows to a different class under its own spawned RNG stream — the
    per-shard analogue of
    :func:`repro.errors.inject_label_errors_array`, deterministic for a
    given ``(seed, dataset)`` no matter how the stream is read or
    resumed. ``classes`` (the global flip-target pool) is collected in a
    streaming pre-pass when not supplied.

    Returns ``(out_dataset, flipped)`` with ``flipped`` the sorted
    global row positions that were corrupted.
    """
    check_fraction(fraction, name="fraction")
    dataset = resolve_dataset(dataset)
    classes = _collect_classes(dataset, label) if classes is None \
        else np.asarray(classes)

    def flip_labels(index, arrays, rng):
        y = np.asarray(arrays[label]).copy()
        n_flip = int(round(fraction * len(y)))
        positions = np.sort(rng.choice(len(y), size=n_flip, replace=False))
        for p in positions:
            alternatives = classes[classes != y[p]]
            y[p] = alternatives[int(rng.integers(0, len(alternatives)))]
        out = dict(arrays)
        out[label] = y
        return out, [int(p) for p in positions]

    out_dataset, sides = transform_shards(
        dataset, out_path, flip_labels, seed=seed,
        params={"inject": "label_errors", "label": label,
                "fraction": float(fraction),
                "classes": [str(c) for c in classes.tolist()]},
        meta={"inject": "label_errors", "fraction": float(fraction)},
        **transform_kwargs)
    flipped = [out_dataset.row_offset(k) + p
               for k, side in enumerate(sides) for p in side]
    return out_dataset, np.array(sorted(flipped), dtype=int)


def inject_missing_sharded(dataset, out_path, *, features: str = "X",
                           fraction: float = 0.1, seed=0,
                           **transform_kwargs):
    """NaN-out a per-shard fraction of feature cells, out of core.

    The per-shard analogue of
    :func:`repro.errors.inject_missing_array` (MCAR): each shard holes
    ``round(fraction * rows_k)`` cells per feature column under its own
    spawned stream. Returns ``(out_dataset, cells)`` where ``cells`` is
    an ``(n, 2)`` array of global ``(row, column)`` positions.
    """
    check_fraction(fraction, name="fraction")
    dataset = resolve_dataset(dataset)

    def hole_cells(index, arrays, rng):
        X = np.asarray(arrays[features], dtype=float).copy()
        if X.ndim != 2:
            raise ValidationError(f"array {features!r} must be 2-dimensional")
        holes: list[list[int]] = []
        for j in range(X.shape[1]):
            candidates = np.flatnonzero(~np.isnan(X[:, j]))
            n_missing = min(int(round(fraction * X.shape[0])),
                            len(candidates))
            if n_missing == 0:
                continue
            chosen = rng.choice(candidates, size=n_missing, replace=False)
            X[chosen, j] = np.nan
            holes.extend([int(r), int(j)] for r in np.sort(chosen))
        out = dict(arrays)
        out[features] = X
        return out, holes

    out_dataset, sides = transform_shards(
        dataset, out_path, hole_cells, seed=seed,
        params={"inject": "missing", "features": features,
                "fraction": float(fraction)},
        meta={"inject": "missing", "fraction": float(fraction)},
        **transform_kwargs)
    cells = [(out_dataset.row_offset(k) + row, col)
             for k, side in enumerate(sides) for row, col in side]
    cells.sort()
    return out_dataset, np.array(cells, dtype=int).reshape(-1, 2)
