"""The on-disk sharded dataset format: atomic, checksummed, resumable.

A sharded dataset is a directory of fixed-layout shard files plus a
versioned ``manifest.json``. The format's headline contract is
*robustness*: a SIGKILL at any byte boundary never leaves a torn shard
visible, and the manifest only ever references complete,
checksum-verified shards.

- **Shard files** hold one batch of named numpy arrays in a simple
  length-prefixed container (``.npy`` blobs behind a JSON header).
  Every shard is published atomically — written to a ``mkstemp`` temp
  file in the same directory, flushed, ``fsync``'d, then ``os.replace``d
  into its final name — and its SHA-256 is recorded at write time.
- **The manifest** is a schema-versioned envelope (payload JSON +
  content hash, the same shape as :class:`repro.runtime.CheckpointStore`
  records) published with the same atomic sequence. While a
  :class:`ShardWriter` is still appending, a *partial* manifest journal
  is re-published after every shard, so a killed writer can be resumed
  with :meth:`ShardWriter.resume` and the finished dataset is identical
  to one written in a single uninterrupted session.
- **Verification** happens on read: :meth:`ShardedDataset.load_shard`
  re-hashes the file and raises :class:`ShardCorruptionError` on any
  mismatch, which the reading service (:mod:`repro.data.reader`) turns
  into retry / quarantine / mirror-heal policy.

Layout of a dataset directory::

    dataset/
      manifest.json            # final manifest (absent while writing)
      manifest.partial.json    # writer journal (absent once finalized)
      shard-00000.shard
      shard-00001.shard
      mirror/                  # optional replica tier (mirror=True)
      quarantine/              # corrupt shards moved aside by the reader
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import shutil
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.exceptions import DataError, ValidationError
from repro.observe.observer import resolve_observer

__all__ = [
    "MANIFEST_SCHEMA",
    "ShardCorruptionError",
    "ShardInfo",
    "ShardWriter",
    "ShardedDataset",
    "write_shards",
]

#: Manifest schema version; bumped on incompatible layout changes. An
#: unknown version is treated as corruption (explicit error, no guess).
MANIFEST_SCHEMA = 1

MANIFEST_NAME = "manifest.json"
PARTIAL_MANIFEST_NAME = "manifest.partial.json"
MIRROR_DIR = "mirror"
QUARANTINE_DIR = "quarantine"

_SHARD_PREFIX = "shard-"
_SHARD_SUFFIX = ".shard"
_MAGIC = b"RSHARD1\n"

#: Test seam: seconds to sleep between writing a temp file and renaming
#: it into place, so torn-write tests can SIGKILL deterministically
#: inside the publish window. Never set outside the test suite.
_SLOW_PUBLISH_ENV = "REPRO_DATA_SLOW_PUBLISH"


class ShardCorruptionError(DataError):
    """A shard file failed checksum or container verification.

    Carries the shard ``index`` and ``path`` so the reading service can
    apply its quarantine policy to exactly the damaged file.
    """

    def __init__(self, message: str, *, index: int | None = None,
                 path: os.PathLike | str | None = None):
        super().__init__(message)
        self.index = index
        self.path = Path(path) if path is not None else None


@dataclass(frozen=True)
class ShardInfo:
    """One manifest entry: a complete, checksummed shard."""

    index: int
    name: str
    rows: int
    sha256: str
    nbytes: int

    def as_dict(self) -> dict:
        return {"index": self.index, "name": self.name, "rows": self.rows,
                "sha256": self.sha256, "nbytes": self.nbytes}

    @classmethod
    def from_dict(cls, entry: dict) -> "ShardInfo":
        return cls(index=int(entry["index"]), name=str(entry["name"]),
                   rows=int(entry["rows"]), sha256=str(entry["sha256"]),
                   nbytes=int(entry["nbytes"]))


# --- shard container (de)serialization --------------------------------------

def _pack_arrays(arrays: dict[str, np.ndarray]) -> bytes:
    """Serialize named arrays into the shard container format.

    Each array is an ``.npy`` blob (deterministic bytes for non-object
    dtypes); the header records name, offset, and length so arrays can
    be unpacked without trusting anything beyond the magic + header.
    """
    blobs: list[bytes] = []
    entries: list[dict] = []
    offset = 0
    for name, array in arrays.items():
        buffer = io.BytesIO()
        np.save(buffer, array, allow_pickle=True)
        blob = buffer.getvalue()
        entries.append({"name": str(name), "offset": offset,
                        "length": len(blob)})
        blobs.append(blob)
        offset += len(blob)
    header = json.dumps({"arrays": entries}, sort_keys=True).encode()
    return b"".join([_MAGIC, len(header).to_bytes(4, "little"), header,
                     *blobs])


def _unpack_arrays(data: bytes, *, index: int | None = None,
                   path=None) -> dict[str, np.ndarray]:
    """Decode a shard container; raises :class:`ShardCorruptionError`."""
    def corrupt(reason: str) -> ShardCorruptionError:
        where = f" ({path})" if path is not None else ""
        return ShardCorruptionError(
            f"shard {index if index is not None else '?'} is not a valid "
            f"shard container{where}: {reason}", index=index, path=path)

    if not data.startswith(_MAGIC):
        raise corrupt("bad magic")
    cursor = len(_MAGIC)
    if len(data) < cursor + 4:
        raise corrupt("truncated header length")
    header_len = int.from_bytes(data[cursor:cursor + 4], "little")
    cursor += 4
    try:
        header = json.loads(data[cursor:cursor + header_len])
    except ValueError as error:
        raise corrupt(f"garbled header: {error}") from error
    cursor += header_len
    arrays: dict[str, np.ndarray] = {}
    for entry in header.get("arrays", []):
        start = cursor + int(entry["offset"])
        end = start + int(entry["length"])
        if end > len(data):
            raise corrupt(f"array {entry['name']!r} extends past the file")
        try:
            arrays[entry["name"]] = np.load(io.BytesIO(data[start:end]),
                                            allow_pickle=True)
        except (ValueError, OSError) as error:
            raise corrupt(f"array {entry['name']!r} failed to decode: "
                          f"{error}") from error
    return arrays


# --- atomic publish ---------------------------------------------------------

def _atomic_publish(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` so a crash never exposes a torn file:
    temp file in the same directory, flush + fsync, then ``os.replace``
    and a best-effort directory fsync to make the rename durable."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        delay = os.environ.get(_SLOW_PUBLISH_ENV)
        if delay:  # torn-write test seam: widen the kill window
            time.sleep(float(delay))
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    _fsync_dir(path.parent)


def _fsync_dir(path: Path) -> None:
    try:
        dir_fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)


def _manifest_envelope(payload: dict) -> bytes:
    payload_json = json.dumps(payload, sort_keys=True)
    envelope = {
        "schema": MANIFEST_SCHEMA,
        "sha256": hashlib.sha256(payload_json.encode()).hexdigest(),
        "payload": payload_json,
    }
    return json.dumps(envelope).encode()


def _read_manifest(path: Path) -> dict | None:
    """Decode + verify one manifest file; ``None`` when absent, a
    :class:`ShardCorruptionError` when present but torn/garbled."""
    try:
        raw = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        return None
    except OSError as error:
        raise ShardCorruptionError(
            f"manifest {path} is unreadable: {error}", path=path) from error

    def corrupt(reason: str) -> ShardCorruptionError:
        return ShardCorruptionError(
            f"manifest {path} failed verification: {reason}", path=path)

    try:
        envelope = json.loads(raw)
    except ValueError as error:
        raise corrupt(f"garbled JSON: {error}") from error
    if not isinstance(envelope, dict) \
            or envelope.get("schema") != MANIFEST_SCHEMA:
        raise corrupt(f"unknown schema {envelope.get('schema')!r}"
                      if isinstance(envelope, dict) else "not an object")
    payload_json = envelope.get("payload")
    if not isinstance(payload_json, str):
        raise corrupt("missing payload")
    digest = hashlib.sha256(payload_json.encode()).hexdigest()
    if digest != envelope.get("sha256"):
        raise corrupt("content hash mismatch")
    try:
        return json.loads(payload_json)
    except ValueError as error:
        raise corrupt(f"garbled payload: {error}") from error


def _shard_name(index: int) -> str:
    return f"{_SHARD_PREFIX}{index:05d}{_SHARD_SUFFIX}"


# --- the writer -------------------------------------------------------------

class ShardWriter:
    """Append-only sharded dataset writer with crash-safe publication.

    Parameters
    ----------
    path:
        Dataset directory (created on demand). Refuses a directory that
        already holds a *finalized* dataset; a directory with a partial
        manifest (a killed writer) must be reopened via :meth:`resume`.
    mirror:
        Also publish a verified replica of every shard under
        ``mirror/`` — the tier the reading service heals corrupted
        primaries from under its quarantine policy.
    observer:
        Optional :class:`repro.observe.Observer`; feeds the
        ``data.shards_written`` / ``data.bytes_written`` counters.

    Every :meth:`append` publishes the shard file atomically and then
    re-publishes the *partial manifest* journal (same atomic sequence),
    so at every instant the journal references only complete,
    checksummed shards. :meth:`finalize` publishes the final manifest
    and removes the journal; a writer killed at any point resumes with
    ``ShardWriter.resume(path)`` and loses at most the shard whose
    rename had not yet landed.
    """

    def __init__(self, path: str | os.PathLike, *, mirror: bool = False,
                 observer=None, _resumed_shards: list[ShardInfo] | None = None,
                 _meta: dict | None = None):
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        if (self.path / MANIFEST_NAME).exists():
            raise ValidationError(
                f"{self.path} already holds a finalized dataset; write to a "
                "fresh directory (or delete the old dataset first)")
        if _resumed_shards is None \
                and (self.path / PARTIAL_MANIFEST_NAME).exists():
            raise ValidationError(
                f"{self.path} holds a partial dataset from a killed writer; "
                "reopen it with ShardWriter.resume(path) to continue, or "
                "clear the directory to start over")
        self.mirror = bool(mirror)
        self.observer = resolve_observer(observer)
        self.shards: list[ShardInfo] = list(_resumed_shards or [])
        self.array_names: list[str] | None = None
        self.meta: dict = dict(_meta or {})
        self._finalized = False
        if _resumed_shards is None:
            self._sweep_temp_files()
        self._publish_partial()

    # -- resume ------------------------------------------------------------
    @classmethod
    def resume(cls, path: str | os.PathLike, *, mirror: bool | None = None,
               observer=None) -> "ShardWriter":
        """Reopen a killed writer's directory and continue appending.

        The partial-manifest journal is verified (envelope hash) and
        every journaled shard is re-checksummed; the writer continues
        after the last complete shard. Stray temp files from the killed
        publish are swept. A journal that never landed (killed before
        the first append) resumes as an empty writer.
        """
        path = Path(path)
        if (path / MANIFEST_NAME).exists():
            raise ValidationError(
                f"{path} is already finalized; nothing to resume")
        payload = _read_manifest(path / PARTIAL_MANIFEST_NAME)
        shards: list[ShardInfo] = []
        meta: dict = {}
        journal_mirror = False
        if payload is not None:
            shards = [ShardInfo.from_dict(e) for e in payload["shards"]]
            meta = dict(payload.get("meta", {}))
            journal_mirror = bool(payload.get("mirror", False))
        writer = cls(path, mirror=journal_mirror if mirror is None else mirror,
                     observer=observer, _resumed_shards=shards, _meta=meta)
        writer.array_names = payload.get("arrays") if payload else None
        writer._sweep_temp_files()
        for info in shards:
            writer._verify_file(path / info.name, info)
        return writer

    def _sweep_temp_files(self) -> None:
        """Remove temp files a killed publish left behind (never visible
        to readers, but they waste space and confuse humans)."""
        for stray in self.path.glob("*.tmp"):
            try:
                stray.unlink()
            except OSError:
                pass
        mirror_dir = self.path / MIRROR_DIR
        if mirror_dir.is_dir():
            for stray in mirror_dir.glob("*.tmp"):
                try:
                    stray.unlink()
                except OSError:
                    pass

    @staticmethod
    def _verify_file(path: Path, info: ShardInfo) -> None:
        try:
            data = path.read_bytes()
        except OSError as error:
            raise ShardCorruptionError(
                f"journaled shard {info.index} is missing or unreadable "
                f"({path}): {error}", index=info.index, path=path) from error
        digest = hashlib.sha256(data).hexdigest()
        if digest != info.sha256:
            raise ShardCorruptionError(
                f"journaled shard {info.index} fails its checksum ({path})",
                index=info.index, path=path)

    # -- append ------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def n_rows(self) -> int:
        return sum(info.rows for info in self.shards)

    def append(self, arrays: dict[str, np.ndarray]) -> ShardInfo:
        """Publish one shard atomically and journal it.

        ``arrays`` maps array name to a numpy array; every array must
        have the same leading length (the shard's row count), and every
        shard in a dataset must carry the same array names.
        """
        if self._finalized:
            raise ValidationError("writer is finalized; no more appends")
        if not arrays:
            raise ValidationError("a shard needs at least one array")
        arrays = {str(name): np.asarray(values)
                  for name, values in arrays.items()}
        names = list(arrays)
        lengths = {name: len(array) for name, array in arrays.items()}
        rows = lengths[names[0]]
        if any(length != rows for length in lengths.values()):
            raise ValidationError(
                f"shard arrays must share one length — got {lengths}")
        if self.array_names is None:
            self.array_names = names
        elif names != self.array_names:
            raise ValidationError(
                f"shard arrays {names} do not match the dataset's "
                f"{self.array_names}")
        index = len(self.shards)
        data = _pack_arrays(arrays)
        digest = hashlib.sha256(data).hexdigest()
        name = _shard_name(index)
        _atomic_publish(self.path / name, data)
        if self.mirror:
            _atomic_publish(self.path / MIRROR_DIR / name, data)
        info = ShardInfo(index=index, name=name, rows=rows, sha256=digest,
                         nbytes=len(data))
        self.shards.append(info)
        self._publish_partial()
        if self.observer.enabled:
            self.observer.count("data.shards_written")
            self.observer.count("data.bytes_written", len(data))
        return info

    def _manifest_payload(self, *, partial: bool) -> dict:
        return {
            "partial": partial,
            "arrays": self.array_names,
            "n_rows": self.n_rows,
            "n_shards": self.n_shards,
            "mirror": self.mirror,
            "meta": self.meta,
            "shards": [info.as_dict() for info in self.shards],
        }

    def _publish_partial(self) -> None:
        _atomic_publish(self.path / PARTIAL_MANIFEST_NAME,
                        _manifest_envelope(
                            self._manifest_payload(partial=True)))

    # -- finalize ----------------------------------------------------------
    def finalize(self, meta: dict | None = None) -> "ShardedDataset":
        """Publish the final manifest; the dataset becomes readable.

        The journal is removed after the manifest lands, so a kill
        inside ``finalize`` leaves either a resumable partial dataset
        (manifest rename never happened) or a complete one — never an
        ambiguous mixture: the final manifest, once visible, wins.
        """
        if self._finalized:
            raise ValidationError("writer is already finalized")
        if not self.shards:
            raise ValidationError("cannot finalize an empty dataset")
        if meta:
            self.meta.update(meta)
        _atomic_publish(self.path / MANIFEST_NAME,
                        _manifest_envelope(
                            self._manifest_payload(partial=False)))
        try:
            (self.path / PARTIAL_MANIFEST_NAME).unlink()
        except OSError:
            pass
        self._finalized = True
        return ShardedDataset(self.path, observer=self.observer)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, *exc):
        if exc_type is None and not self._finalized and self.shards:
            self.finalize()
        return False

    def __repr__(self) -> str:
        return (f"ShardWriter({str(self.path)!r}, shards={self.n_shards}, "
                f"rows={self.n_rows})")


def write_shards(path, arrays: dict, *, rows_per_shard: int,
                 mirror: bool = False, meta: dict | None = None,
                 observer=None) -> "ShardedDataset":
    """Split in-memory arrays into a sharded dataset (the spill path).

    Rows are split in order into ``ceil(n / rows_per_shard)`` shards, so
    concatenating the shards back (what :func:`repro.data.read_arrays`
    does) reproduces the input arrays bit-identically.
    """
    if rows_per_shard < 1:
        raise ValidationError("rows_per_shard must be >= 1")
    arrays = {str(name): np.asarray(values)
              for name, values in arrays.items()}
    if not arrays:
        raise ValidationError("need at least one array")
    lengths = {len(a) for a in arrays.values()}
    if len(lengths) != 1:
        raise ValidationError("arrays must share one length")
    (n_rows,) = lengths
    if n_rows == 0:
        raise ValidationError("cannot shard zero rows")
    with ShardWriter(path, mirror=mirror, observer=observer) as writer:
        for start in range(0, n_rows, rows_per_shard):
            writer.append({name: array[start:start + rows_per_shard]
                           for name, array in arrays.items()})
        return writer.finalize(meta)


# --- the dataset ------------------------------------------------------------

class ShardedDataset:
    """A finalized sharded dataset directory, verified on open.

    Parameters
    ----------
    path:
        Directory holding ``manifest.json`` and the shard files.
    observer:
        Optional :class:`repro.observe.Observer`; :meth:`load_shard`
        feeds ``data.shards_read`` / ``data.bytes_read``.

    Opening verifies the manifest envelope (schema + content hash).
    Shard payloads are verified lazily on :meth:`load_shard` — the
    expensive re-hash happens on the reading service's prefetch
    workers, not on open.
    """

    def __init__(self, path: str | os.PathLike, *, observer=None):
        self.path = Path(path)
        self.observer = resolve_observer(observer)
        payload = _read_manifest(self.path / MANIFEST_NAME)
        if payload is None:
            if (self.path / PARTIAL_MANIFEST_NAME).exists():
                raise ValidationError(
                    f"{self.path} holds a partial dataset (the writer was "
                    "killed before finalize); reopen it with "
                    "ShardWriter.resume(path) and finalize, or clear it")
            raise ValidationError(
                f"{self.path} is not a sharded dataset (no {MANIFEST_NAME})")
        self.shards = [ShardInfo.from_dict(e) for e in payload["shards"]]
        self.array_names: list[str] = list(payload["arrays"] or [])
        self.meta: dict = dict(payload.get("meta", {}))
        self.mirror: bool = bool(payload.get("mirror", False))
        self.n_rows: int = int(payload["n_rows"])

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def __len__(self) -> int:
        return self.n_rows

    def shard_path(self, index: int) -> Path:
        return self.path / self.shards[index].name

    def row_offset(self, index: int) -> int:
        """Global row position of shard ``index``'s first row."""
        return sum(info.rows for info in self.shards[:index])

    # -- reading -----------------------------------------------------------
    def read_shard_bytes(self, index: int) -> bytes:
        info = self.shards[index]
        path = self.shard_path(index)
        try:
            return path.read_bytes()
        except FileNotFoundError as error:
            quarantined = self.path / QUARANTINE_DIR / info.name
            hint = " (it sits in quarantine/)" if quarantined.exists() else ""
            raise ShardCorruptionError(
                f"shard {index} is missing{hint}: {path}",
                index=index, path=path) from error
        except OSError as error:
            raise ShardCorruptionError(
                f"shard {index} is unreadable ({path}): {error}",
                index=index, path=path) from error

    def load_shard(self, index: int, *, verify: bool = True,
                   observer=None) -> dict[str, np.ndarray]:
        """Read, (optionally) checksum-verify, and decode one shard."""
        if not 0 <= index < self.n_shards:
            raise ValidationError(
                f"shard index {index} out of range [0, {self.n_shards})")
        info = self.shards[index]
        data = self.read_shard_bytes(index)
        if verify:
            digest = hashlib.sha256(data).hexdigest()
            if digest != info.sha256:
                raise ShardCorruptionError(
                    f"shard {index} fails its checksum "
                    f"({self.shard_path(index)}): the file was modified or "
                    "torn after publication", index=index,
                    path=self.shard_path(index))
        arrays = _unpack_arrays(data, index=index, path=self.shard_path(index))
        observer = self.observer if observer is None \
            else resolve_observer(observer)
        if observer.enabled:
            observer.count("data.shards_read")
            observer.count("data.bytes_read", len(data))
        return arrays

    def iter_shards(self, *, verify: bool = True):
        """Single-threaded in-order shard iteration (the baseline the
        reading service is benchmarked against)."""
        for index in range(self.n_shards):
            yield index, self.load_shard(index, verify=verify)

    # -- corruption handling ----------------------------------------------
    def quarantine_shard(self, index: int) -> Path | None:
        """Move a damaged shard file into ``quarantine/``; returns the
        new location (``None`` when the file is already gone)."""
        source = self.shard_path(index)
        target_dir = self.path / QUARANTINE_DIR
        target_dir.mkdir(exist_ok=True)
        target = target_dir / self.shards[index].name
        try:
            os.replace(source, target)
        except FileNotFoundError:
            return None
        return target

    def heal_from_mirror(self, index: int) -> bool:
        """Re-publish shard ``index`` from its ``mirror/`` replica.

        Returns ``True`` when a verified replica was promoted into the
        primary slot (atomically), ``False`` when no replica exists or
        the replica itself fails its checksum.
        """
        info = self.shards[index]
        replica = self.path / MIRROR_DIR / info.name
        try:
            data = replica.read_bytes()
        except OSError:
            return False
        if hashlib.sha256(data).hexdigest() != info.sha256:
            return False
        _atomic_publish(self.shard_path(index), data)
        return True

    def verify_all(self) -> list[int]:
        """Checksum every shard; returns the indices that fail (an
        offline ``fsck`` for operators, not a hot-path call)."""
        damaged: list[int] = []
        for index, info in enumerate(self.shards):
            try:
                data = self.read_shard_bytes(index)
            except ShardCorruptionError:
                damaged.append(index)
                continue
            if hashlib.sha256(data).hexdigest() != info.sha256:
                damaged.append(index)
        return damaged

    def delete(self) -> None:
        """Remove the whole dataset directory (shards, mirror, manifest)."""
        shutil.rmtree(self.path, ignore_errors=True)

    def __repr__(self) -> str:
        return (f"ShardedDataset({str(self.path)!r}, "
                f"shards={self.n_shards}, rows={self.n_rows}, "
                f"arrays={self.array_names})")


def resolve_dataset(dataset, *, observer=None) -> ShardedDataset:
    """Normalize the ``dataset`` argument the data APIs accept:
    a :class:`ShardedDataset` passes through, a path opens one."""
    if isinstance(dataset, ShardedDataset):
        return dataset
    if isinstance(dataset, (str, os.PathLike)):
        return ShardedDataset(dataset, observer=observer)
    raise ValidationError(
        "expected a ShardedDataset or a dataset directory path — got "
        f"{type(dataset).__name__}")
