"""Out-of-core sharded datasets with a fault-tolerant reading service.

The package gives the debugging loops a data path with the same
robustness contract PR 4–5 gave the compute path:

- :mod:`repro.data.shards` — the on-disk format: checksummed shards
  published atomically (mkstemp + fsync + rename), a versioned manifest
  that only ever references complete shards, resumable writers, and a
  quarantine/mirror-heal story for corruption.
- :mod:`repro.data.reader` — :class:`ShardReader`: round-robin shard
  assignment across prefetch workers with bounded-queue backpressure,
  :class:`~repro.runtime.FaultPolicy`-driven retries/timeouts,
  worker-crash recovery that resubmits only the lost shards, pause /
  resume, and snapshot / restore of the read position.
- :mod:`repro.data.inject` — streaming per-shard transforms
  (checkpointable via :class:`~repro.runtime.LoopCheckpointer`) and the
  sharded counterparts of the :mod:`repro.errors` injectors.
- :mod:`repro.data.frame_io` — bitwise-lossless spill/load of
  :class:`~repro.dataframe.DataFrame` tables.

Everything is deterministic by construction: out-of-core runs produce
results hex-identical to the in-memory path on every backend, with or
without injected faults.
"""

from repro.data.frame_io import frame_from_shards, frame_to_shards
from repro.data.inject import (
    inject_label_errors_sharded,
    inject_missing_sharded,
    transform_shards,
)
from repro.data.reader import ShardBatch, ShardReader, read_arrays
from repro.data.shards import (
    MANIFEST_SCHEMA,
    ShardCorruptionError,
    ShardedDataset,
    ShardInfo,
    ShardWriter,
    resolve_dataset,
    write_shards,
)

__all__ = [
    "MANIFEST_SCHEMA",
    "ShardBatch",
    "ShardCorruptionError",
    "ShardInfo",
    "ShardReader",
    "ShardWriter",
    "ShardedDataset",
    "frame_from_shards",
    "frame_to_shards",
    "inject_label_errors_sharded",
    "inject_missing_sharded",
    "read_arrays",
    "resolve_dataset",
    "transform_shards",
    "write_shards",
]
