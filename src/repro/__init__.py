"""Navigating Data Errors in Machine Learning Pipelines — reproduction.

A full implementation of the system taught in Karlaš, Salimi & Schelter's
SIGMOD/ICDE 2025 tutorial: identify data errors with data importance
(Section 2.1), debug end-to-end ML pipelines through fine-grained
provenance (Section 2.2), and learn from uncertain and incomplete data
with certified guarantees (Section 2.3) — plus the hands-on scenarios of
Section 3 (error injection, cleaning oracles, the data-debugging
challenge) and every substrate they need (a columnar dataframe engine, an
ML library, and text featurization), built from scratch on numpy.

Subpackages
-----------
- ``repro.dataframe`` — columnar relational engine with stable row ids.
- ``repro.ml`` — estimators, preprocessing, metrics, model selection.
- ``repro.text`` — text featurization (the SentenceBERT stand-in).
- ``repro.datasets`` — synthetic generators (hiring scenario & toys).
- ``repro.errors`` — error injection with ground-truth reports.
- ``repro.importance`` — LOO, Shapley (MC & exact KNN), Banzhaf, Beta
  Shapley, influence functions, confident learning, AUM.
- ``repro.pipelines`` — operator DAGs, why-provenance, Datascope,
  inspections, what-if analyses.
- ``repro.uncertain`` — Zorro intervals, CPClean certain predictions,
  certain models, dataset multiplicity, possible worlds.
- ``repro.fairness`` — group metrics, Gopher explanations, label-bias
  reweighting.
- ``repro.cleaning`` — oracles, iterative prioritized cleaning,
  ActiveClean, imputation.
- ``repro.challenge`` — the budgeted data-debugging challenge with a
  leaderboard.
- ``repro.unlearning`` — SISA-style sharded unlearning with exact
  deletion guarantees.
- ``repro.core`` — shared substrate: validation, RNG spawning, the
  tutorial facade, exceptions.
- ``repro.runtime`` — parallel execution backends (serial/thread/process),
  fingerprint-keyed utility caching, progress/cancellation hooks; every
  retraining loop accepts its ``runtime=`` handle.
- ``repro.observe`` — tracing spans, metrics, and JSONL run-provenance
  logging; importance/cleaning/unlearning runs accept an ``observer=``
  handle and become replayable, diffable, and reportable.

The paper's figure snippets run almost verbatim against the top-level
facade::

    import repro as nde
    train_df, valid_df, test_df = nde.load_recommendation_letters()
    train_df_err, _ = nde.inject_labelerrors(train_df, fraction=0.1)
    print(nde.evaluate_model(train_df_err, validation=valid_df))
"""

from repro.core.api import (
    default_letter_encoder,
    encode_symbolic,
    estimate_with_zorro,
    evaluate_model,
    inject_labelerrors,
    knn_shapley_values,
    pretty_print,
    visualize_uncertainty,
)
from repro.datasets.hiring import load_recommendation_letters, load_sidedata
from repro.pipelines.plan import show_query_plan

__version__ = "1.0.0"

__all__ = [
    "load_recommendation_letters",
    "load_sidedata",
    "inject_labelerrors",
    "evaluate_model",
    "knn_shapley_values",
    "pretty_print",
    "default_letter_encoder",
    "encode_symbolic",
    "estimate_with_zorro",
    "visualize_uncertainty",
    "show_query_plan",
    "__version__",
]
